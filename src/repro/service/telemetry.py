"""Serving telemetry: throughput, queue depth, batch sizes, latency.

One :class:`Telemetry` instance rides along with a
:class:`~repro.service.scheduler.Scheduler` and records every event the
serving path emits — request admitted / rejected / expired / completed /
failed, batch executed, queue depth observed.  Everything is guarded by
one lock (events arrive from every client and worker thread at once) and
exposed as a JSON-serialisable :meth:`snapshot`, which is what the
``serve-bench`` artifact and the CI smoke step consume.

Latencies are kept as raw samples up to ``max_latency_samples`` and
summarised into percentiles at snapshot time; past the cap a simple
deterministic decimation keeps every ``k``-th sample so long runs stay
bounded without a dependency on reservoir randomness.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter

__all__ = ["Telemetry", "merge_snapshots", "percentile"]


def percentile(samples: list[float], pct: float) -> float:
    """The ``pct``-th percentile of ``samples`` (nearest-rank).

    >>> percentile([4.0, 1.0, 3.0, 2.0], 50)
    2.0
    >>> percentile([4.0, 1.0, 3.0, 2.0], 100)
    4.0
    >>> percentile([1.0, 3.0], 50)
    1.0
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class Telemetry:
    """Thread-safe event counters and distributions for one scheduler."""

    def __init__(self, max_latency_samples: int = 100_000) -> None:
        self.max_latency_samples = int(max_latency_samples)
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self._started_wall = time.time()
        self.submitted = 0
        self.rejected = 0      #: admission failures (queue full / closed)
        self.expired = 0       #: deadlines missed before execution
        self.completed = 0
        self.failed = 0        #: requests whose execution raised
        self.mutations = 0     #: edge mutations applied while serving
        self.approx = 0        #: completions served by the sampling tier
        self.batches = 0
        self._batch_sizes: Counter[int] = Counter()
        self._queue_depth_last = 0
        self._queue_depth_max = 0
        self._latencies_ms: list[float] = []
        self._latency_stride = 1
        self._latency_seen = 0

    # -- event sinks ---------------------------------------------------
    def record_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self._queue_depth_last = queue_depth
            self._queue_depth_max = max(self._queue_depth_max, queue_depth)

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_expired(self, n: int = 1) -> None:
        with self._lock:
            self.expired += n

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self._batch_sizes[int(size)] += 1

    def record_completed(self, latency_seconds: float) -> None:
        with self._lock:
            self.completed += 1
            self._record_latency(latency_seconds * 1e3)

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_mutations(self, n: int = 1) -> None:
        with self._lock:
            self.mutations += n

    def record_approx(self, n: int = 1) -> None:
        with self._lock:
            self.approx += n

    def _record_latency(self, ms: float) -> None:
        self._latency_seen += 1
        if self._latency_seen % self._latency_stride:
            return
        self._latencies_ms.append(ms)
        if len(self._latencies_ms) >= self.max_latency_samples:
            # decimate in place and sample half as often from here on
            self._latencies_ms = self._latencies_ms[::2]
            self._latency_stride *= 2

    # -- reporting -----------------------------------------------------
    def elapsed_seconds(self) -> float:
        return time.monotonic() - self._started_at

    def snapshot(self, include_samples: bool = False) -> dict:
        """A JSON-serialisable view of everything recorded so far.

        Throughput is completed requests per elapsed second since the
        telemetry was created (i.e. since the scheduler started).

        With ``include_samples=True`` the raw (decimated) latency
        samples and the current decimation stride ride along under
        ``latency_samples_ms`` / ``latency_stride`` — the extra payload
        :func:`merge_snapshots` needs, since percentiles of percentiles
        are not percentiles.
        """
        with self._lock:
            elapsed = self.elapsed_seconds()
            sizes = self._batch_sizes
            total_batched = sum(s * n for s, n in sizes.items())
            lat = self._latencies_ms
            out = {
                "started_at": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ",
                    time.gmtime(self._started_wall)),
                "elapsed_seconds": elapsed,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "expired": self.expired,
                "completed": self.completed,
                "failed": self.failed,
                "mutations": self.mutations,
                "approx_completed": self.approx,
                "throughput_qps": (self.completed / elapsed) if elapsed > 0
                                  else 0.0,
                "queue_depth": {"last": self._queue_depth_last,
                                "max": self._queue_depth_max},
                "batches": {
                    "count": self.batches,
                    "mean_size": (total_batched / self.batches)
                                 if self.batches else 0.0,
                    "max_size": max(sizes) if sizes else 0,
                    "histogram": {str(s): n for s, n in sorted(sizes.items())},
                },
                "latency_ms": {
                    "samples": len(lat),
                    "mean": (sum(lat) / len(lat)) if lat else 0.0,
                    "min": min(lat) if lat else 0.0,
                    "p50": percentile(lat, 50),
                    "p90": percentile(lat, 90),
                    "p95": percentile(lat, 95),
                    "p99": percentile(lat, 99),
                    "max": max(lat) if lat else 0.0,
                },
            }
            if include_samples:
                out["latency_samples_ms"] = list(lat)
                out["latency_stride"] = self._latency_stride
            return out


def merge_snapshots(snapshots) -> dict:
    """Fold per-worker telemetry snapshots into one cluster view.

    Counters sum; the batch-size histogram merges; queue depth reports
    the sum of last-seen depths and the max of maxima.  Latency
    percentiles are recomputed from the union of each snapshot's raw
    ``latency_samples_ms`` (so inputs should come from
    ``snapshot(include_samples=True)``) — exact when every stream is
    undecimated, and within decimation tolerance otherwise, which is
    the same contract one long-running :class:`Telemetry` offers.
    Cluster throughput is total completions over the *longest* elapsed
    time, since workers run concurrently, not back to back.
    """
    snaps = [s for s in snapshots if s]
    merged_sizes: Counter[int] = Counter()
    samples: list[float] = []
    elapsed = 0.0
    counters = {k: 0 for k in ("submitted", "rejected", "expired",
                               "completed", "failed", "mutations",
                               "approx_completed")}
    depth_last = depth_max = 0
    started = None
    stride = 1
    for snap in snaps:
        for key in counters:
            counters[key] += int(snap.get(key, 0))
        elapsed = max(elapsed, float(snap.get("elapsed_seconds", 0.0)))
        for size, n in snap.get("batches", {}).get("histogram",
                                                   {}).items():
            merged_sizes[int(size)] += int(n)
        depth = snap.get("queue_depth", {})
        depth_last += int(depth.get("last", 0))
        depth_max = max(depth_max, int(depth.get("max", 0)))
        samples.extend(snap.get("latency_samples_ms", []))
        stride = max(stride, int(snap.get("latency_stride", 1)))
        at = snap.get("started_at")
        if at is not None:
            started = at if started is None else min(started, at)
    batches = sum(merged_sizes.values())
    total_batched = sum(s * n for s, n in merged_sizes.items())
    return {
        "workers": len(snaps),
        "started_at": started,
        "elapsed_seconds": elapsed,
        **counters,
        "throughput_qps": (counters["completed"] / elapsed)
                          if elapsed > 0 else 0.0,
        "queue_depth": {"last": depth_last, "max": depth_max},
        "batches": {
            "count": batches,
            "mean_size": (total_batched / batches) if batches else 0.0,
            "max_size": max(merged_sizes) if merged_sizes else 0,
            "histogram": {str(s): n
                          for s, n in sorted(merged_sizes.items())},
        },
        "latency_ms": {
            "samples": len(samples),
            "stride": stride,
            "mean": (sum(samples) / len(samples)) if samples else 0.0,
            "min": min(samples) if samples else 0.0,
            "p50": percentile(samples, 50),
            "p90": percentile(samples, 90),
            "p95": percentile(samples, 95),
            "p99": percentile(samples, 99),
            "max": max(samples) if samples else 0.0,
        },
    }
