"""Serving telemetry: throughput, queue depth, batch sizes, latency.

One :class:`Telemetry` instance rides along with a
:class:`~repro.service.scheduler.Scheduler` and records every event the
serving path emits — request admitted / rejected / expired / completed /
failed, batch executed, queue depth observed.  Everything is guarded by
one lock (events arrive from every client and worker thread at once) and
exposed as a JSON-serialisable :meth:`snapshot`, which is what the
``serve-bench`` artifact and the CI smoke step consume.

Latencies are kept as raw samples up to ``max_latency_samples`` and
summarised into percentiles at snapshot time; past the cap a simple
deterministic decimation keeps every ``k``-th sample so long runs stay
bounded without a dependency on reservoir randomness.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter

__all__ = ["Telemetry", "percentile"]


def percentile(samples: list[float], pct: float) -> float:
    """The ``pct``-th percentile of ``samples`` (nearest-rank).

    >>> percentile([4.0, 1.0, 3.0, 2.0], 50)
    2.0
    >>> percentile([4.0, 1.0, 3.0, 2.0], 100)
    4.0
    >>> percentile([1.0, 3.0], 50)
    1.0
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class Telemetry:
    """Thread-safe event counters and distributions for one scheduler."""

    def __init__(self, max_latency_samples: int = 100_000) -> None:
        self.max_latency_samples = int(max_latency_samples)
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self._started_wall = time.time()
        self.submitted = 0
        self.rejected = 0      #: admission failures (queue full / closed)
        self.expired = 0       #: deadlines missed before execution
        self.completed = 0
        self.failed = 0        #: requests whose execution raised
        self.mutations = 0     #: edge mutations applied while serving
        self.approx = 0        #: completions served by the sampling tier
        self.batches = 0
        self._batch_sizes: Counter[int] = Counter()
        self._queue_depth_last = 0
        self._queue_depth_max = 0
        self._latencies_ms: list[float] = []
        self._latency_stride = 1
        self._latency_seen = 0

    # -- event sinks ---------------------------------------------------
    def record_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self._queue_depth_last = queue_depth
            self._queue_depth_max = max(self._queue_depth_max, queue_depth)

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_expired(self, n: int = 1) -> None:
        with self._lock:
            self.expired += n

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self._batch_sizes[int(size)] += 1

    def record_completed(self, latency_seconds: float) -> None:
        with self._lock:
            self.completed += 1
            self._record_latency(latency_seconds * 1e3)

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_mutations(self, n: int = 1) -> None:
        with self._lock:
            self.mutations += n

    def record_approx(self, n: int = 1) -> None:
        with self._lock:
            self.approx += n

    def _record_latency(self, ms: float) -> None:
        self._latency_seen += 1
        if self._latency_seen % self._latency_stride:
            return
        self._latencies_ms.append(ms)
        if len(self._latencies_ms) >= self.max_latency_samples:
            # decimate in place and sample half as often from here on
            self._latencies_ms = self._latencies_ms[::2]
            self._latency_stride *= 2

    # -- reporting -----------------------------------------------------
    def elapsed_seconds(self) -> float:
        return time.monotonic() - self._started_at

    def snapshot(self) -> dict:
        """A JSON-serialisable view of everything recorded so far.

        Throughput is completed requests per elapsed second since the
        telemetry was created (i.e. since the scheduler started).
        """
        with self._lock:
            elapsed = self.elapsed_seconds()
            sizes = self._batch_sizes
            total_batched = sum(s * n for s, n in sizes.items())
            lat = self._latencies_ms
            return {
                "started_at": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ",
                    time.gmtime(self._started_wall)),
                "elapsed_seconds": elapsed,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "expired": self.expired,
                "completed": self.completed,
                "failed": self.failed,
                "mutations": self.mutations,
                "approx_completed": self.approx,
                "throughput_qps": (self.completed / elapsed) if elapsed > 0
                                  else 0.0,
                "queue_depth": {"last": self._queue_depth_last,
                                "max": self._queue_depth_max},
                "batches": {
                    "count": self.batches,
                    "mean_size": (total_batched / self.batches)
                                 if self.batches else 0.0,
                    "max_size": max(sizes) if sizes else 0,
                    "histogram": {str(s): n for s, n in sorted(sizes.items())},
                },
                "latency_ms": {
                    "samples": len(lat),
                    "mean": (sum(lat) / len(lat)) if lat else 0.0,
                    "min": min(lat) if lat else 0.0,
                    "p50": percentile(lat, 50),
                    "p90": percentile(lat, 90),
                    "p95": percentile(lat, 95),
                    "p99": percentile(lat, 99),
                    "max": max(lat) if lat else 0.0,
                },
            }
