"""The ``serve-mutate-bench`` harness: incremental maintenance vs
rebuild-per-edit, plus a mixed read/write serving drive.

For each named graph the benchmark replays one deterministic toggle
stream two ways:

* **incremental** — a :class:`~repro.dynamic.DynamicGraphSession`
  tracking every benchmark shape applies the stream edit by edit, each
  tracked count maintained through the :mod:`repro.core.delta` rule
  (or a cutover recount when an edit lands on a hub pair);
* **rebuild-per-edit** — the pre-dynamic workflow: after every edit,
  rebuild the CSR graph from scratch, open a fresh
  :class:`~repro.query.GraphSession`, and recount every shape.

The rebuild arm is capped at ``rebuild_limit`` edits (it exists to set
a per-edit rate, which the cap does not change); over that shared
prefix the two arms' per-prefix counts are compared bit-for-bit and any
difference is reported as a mismatch — as with ``serve-bench``, a
speedup can never hide a correctness regression.  A final
full-recount check over the complete stream closes the loop.

When ``serve_spec`` carries ``mutate_fraction > 0`` the harness also
drives a real :class:`~repro.service.scheduler.Scheduler` over dynamic
pool entries with the mixed read/write stream and reports the serving
telemetry (reads answered, mutations applied, final epochs).  The
resulting dict is what the CLI writes as ``BENCH_mutate.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.counts import BicliqueQuery
from repro.dynamic import DynamicGraphSession, EdgeMutation
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.builders import from_edges
from repro.parallel.sharding import default_workers
from repro.query import GraphSession
from repro.service.bench import write_artifact
from repro.service.pool import SessionPool
from repro.service.scheduler import Scheduler, SchedulerConfig
from repro.service.workload import WorkloadSpec, run_workload

__all__ = ["edit_stream", "mutate_bench", "write_artifact"]


def edit_stream(graph: BipartiteGraph, edits: int,
                seed: int = 0) -> list[EdgeMutation]:
    """A deterministic stream of ``edits`` uniform toggles on ``graph``'s
    coordinate space — the replayable workload both benchmark arms and
    the golden mutation traces share."""
    rng = np.random.default_rng((seed, graph.num_u, graph.num_v))
    return [EdgeMutation("toggle", int(rng.integers(graph.num_u)),
                         int(rng.integers(graph.num_v)))
            for _ in range(int(edits))]


def _bench_one(name: str, graph: BipartiteGraph,
               shapes: list[tuple[int, int]], edits: int,
               rebuild_limit: int, method: str, backend: str,
               seed: int) -> dict:
    stream = edit_stream(graph, edits, seed)
    limit = min(int(rebuild_limit), len(stream))
    queries = [BicliqueQuery(p, q) for p, q in shapes]

    # incremental arm: tracking (baseline counts + cutover pricing) is
    # one-time preparation, excluded like prepare_seconds elsewhere
    dyn = DynamicGraphSession.from_graph(graph, name=name, method=method,
                                         backend=backend)
    for p, q in shapes:
        dyn.track(p, q)
    incr_prefix: list[list[int]] = []
    t0 = time.monotonic()
    for i, m in enumerate(stream):
        dyn.apply(m)
        counts = [dyn.count(p, q) for p, q in shapes]
        if i < limit:
            incr_prefix.append(counts)
    incr_seconds = time.monotonic() - t0

    # rebuild-per-edit arm over the shared prefix
    edges = {(u, int(v)) for u in range(graph.num_u)
             for v in graph.neighbors(LAYER_U, u)}
    rebuild_prefix: list[list[int]] = []
    t0 = time.monotonic()
    for m in stream[:limit]:
        key = (m.u, m.v)
        if key in edges:
            edges.discard(key)
        else:
            edges.add(key)
        rebuilt = from_edges(graph.num_u, graph.num_v, sorted(edges),
                             name=f"{name}/rebuilt")
        session = GraphSession(rebuilt)
        rebuild_prefix.append([session.count(q, method,
                                             backend=backend).count
                               for q in queries])
    rebuild_seconds = time.monotonic() - t0

    mismatches = []
    for i, (got, want) in enumerate(zip(incr_prefix, rebuild_prefix)):
        if got != want:
            mismatches.append({"edit": i, "incremental": got,
                               "rebuild": want})
    for (p, q) in shapes:
        final, oracle = dyn.count(p, q), dyn.recount(p, q)
        if final != oracle:
            mismatches.append({"edit": len(stream) - 1, "shape": [p, q],
                               "incremental": final, "recount": oracle})

    incr_eps = len(stream) / incr_seconds if incr_seconds > 0 else 0.0
    rebuild_eps = limit / rebuild_seconds if rebuild_seconds > 0 else 0.0
    return {
        "graph": name,
        "num_u": graph.num_u, "num_v": graph.num_v,
        "num_edges_start": graph.num_edges,
        "num_edges_end": dyn.num_edges,
        "edits": len(stream),
        "rebuild_edits": limit,
        "incremental_seconds": incr_seconds,
        "incremental_edits_per_s": incr_eps,
        "rebuild_seconds": rebuild_seconds,
        "rebuild_edits_per_s": rebuild_eps,
        "speedup_vs_rebuild": (incr_eps / rebuild_eps)
                              if rebuild_eps > 0 else 0.0,
        "dynamic_stats": dyn.stats.as_dict(),
        "final_epoch": dyn.epoch,
        "mismatches": mismatches,
    }


def _serve_mixed(graphs: dict[str, BipartiteGraph],
                 shapes: list[tuple[int, int]],
                 serve_spec: WorkloadSpec,
                 config: SchedulerConfig,
                 method: str, backend: str) -> dict:
    pool = SessionPool(max_sessions=max(len(graphs), 1))
    for name, graph in graphs.items():
        pool.register(name, DynamicGraphSession.from_graph(
            graph, name=name, track=shapes, method=method, backend=backend))
    scheduler = Scheduler(pool, config=config)
    try:
        result = run_workload(scheduler, serve_spec)
    finally:
        scheduler.close()
    return {
        "spec": serve_spec.as_dict(),
        "served": result.as_dict(),
        "telemetry": scheduler.telemetry.snapshot(),
        "pool": pool.snapshot(),
    }


def mutate_bench(graphs: dict[str, BipartiteGraph], *,
                 shapes=((2, 2), (2, 3), (3, 3)),
                 edits: int = 200, rebuild_limit: int = 16,
                 method: str = "GBC", backend: str = "fast",
                 seed: int = 0,
                 serve_spec: WorkloadSpec | None = None,
                 config: SchedulerConfig | None = None) -> dict:
    """Run the mutate benchmark on every graph; returns the artifact.

    ``serve_spec`` (optional) additionally drives a live scheduler with
    a mixed read/write workload over dynamic pool entries for the same
    graphs.
    """
    shapes = [(int(p), int(q)) for p, q in shapes]
    per_graph = [_bench_one(name, graph, shapes, edits, rebuild_limit,
                            method, backend, seed)
                 for name, graph in sorted(graphs.items())]
    speedups = [g["speedup_vs_rebuild"] for g in per_graph]
    artifact = {
        "kind": "mutate_bench",
        "host": {"usable_cpus": default_workers()},
        "shapes": [list(s) for s in shapes],
        "edits": int(edits),
        "rebuild_limit": int(rebuild_limit),
        "method": method,
        "backend": backend,
        "seed": int(seed),
        "graphs": per_graph,
        "min_speedup_vs_rebuild": min(speedups) if speedups else 0.0,
        "mismatches": sum(len(g["mismatches"]) for g in per_graph),
    }
    if serve_spec is not None:
        artifact["serve"] = _serve_mixed(graphs, shapes, serve_spec,
                                         config or SchedulerConfig(),
                                         method, backend)
    return artifact
