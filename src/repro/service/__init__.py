"""repro.service — the concurrent query-serving subsystem.

The layer that turns the library into a service: many clients, many
graphs, one process.  Four parts, composed top-down:

* :class:`~repro.service.scheduler.Scheduler` — accepts concurrent
  ``(graph, method, p, q)`` requests (thread-safe :meth:`submit`
  returning futures, plus an asyncio front-end), coalesces same-graph
  arrivals within a micro-batching window, and applies admission
  control (bounded queue -> :class:`~repro.errors.QueueFullError`) and
  per-request deadlines.
* :class:`~repro.service.pool.SessionPool` — the bounded LRU pool of
  prepared :class:`~repro.query.GraphSession` state behind the
  scheduler, with entry/memory budgets and transparent rebuild after
  eviction.
* :class:`~repro.service.telemetry.Telemetry` — throughput, queue
  depth, batch-size distribution and latency percentiles, as a JSON
  snapshot.
* :mod:`~repro.service.workload` / :mod:`~repro.service.bench` — the
  declarative workload generator (zipf graph popularity, mixed query
  shapes, open/closed loop) and the ``serve-bench`` harness comparing
  served throughput against a naive one-at-a-time loop with a
  bit-identical correctness oracle.

>>> from repro import random_bipartite
>>> from repro.service import Scheduler, SessionPool
>>> pool = SessionPool(max_sessions=2)
>>> pool.register("demo", random_bipartite(30, 20, 200, seed=7))
>>> with Scheduler(pool, batch_window=0.0) as sched:
...     sched.count("demo", 2, 3).count
528
"""

from repro.service.bench import serve_bench, verify_served, write_artifact
from repro.service.mutate import edit_stream, mutate_bench
from repro.service.pool import PoolStats, SessionPool, graph_resident_bytes
from repro.service.scheduler import Scheduler, SchedulerConfig
from repro.service.telemetry import Telemetry, percentile
from repro.service.workload import (ServedQuery, WorkloadResult,
                                    WorkloadSpec, generate_requests,
                                    run_workload)

__all__ = [
    "Scheduler", "SchedulerConfig",
    "SessionPool", "PoolStats", "graph_resident_bytes",
    "Telemetry", "percentile",
    "WorkloadSpec", "WorkloadResult", "ServedQuery",
    "generate_requests", "run_workload",
    "serve_bench", "verify_served", "write_artifact",
    "mutate_bench", "edit_stream",
]
