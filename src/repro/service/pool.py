"""A bounded, concurrent pool of prepared :class:`~repro.query.GraphSession`s.

A serving process answers queries over *many* named graphs, but prepared
state (wedge index, reorder permutations, HTBs, result cache) is per
graph and not free — an unbounded ``dict[name, GraphSession]`` is a
memory leak with a production traffic pattern.  :class:`SessionPool`
keeps at most ``max_sessions`` sessions (and, optionally, at most
``max_bytes`` of estimated graph-resident memory) alive at once,
evicting the least recently used when either budget is exceeded.

Graphs are registered as objects or as zero-argument **loaders**; a
loader lets an evicted graph's session be rebuilt transparently on its
next request, which is what makes eviction safe mid-flight: a request
holding an already-acquired session keeps a live object reference (the
pool forgetting it does not destroy it), and the next request simply
pays the rebuild.

Entries may also be **dynamic**: registering a
:class:`~repro.dynamic.DynamicGraphSession` makes the name mutable
through :meth:`SessionPool.mutate` while staying readable — each
:meth:`SessionPool.session` call returns an epoch-pinned
:class:`~repro.dynamic.SnapshotSession`, so an in-flight scheduler
batch keeps one consistent version while writers advance the epoch.
Evicting a dynamic entry drops its cached snapshot/prepared state; the
graph, its epoch and its tracked counts survive.

All pool operations are safe under concurrent access from scheduler
worker threads; :attr:`stats` counts hits, builds, evictions and
mutations so sizing decisions are observable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.dynamic import DynamicGraphSession
from repro.errors import ServiceError
from repro.graph.bipartite import BipartiteGraph
from repro.obs.log import get_logger
from repro.query import GraphSession

__all__ = ["SessionPool", "PoolStats", "graph_resident_bytes"]

log = get_logger(__name__)


def graph_resident_bytes(graph: BipartiteGraph) -> int:
    """Estimated resident size of one graph's CSR arrays, in bytes.

    Prepared session state (two-hop index, HTBs) scales with the same
    arrays, so this is the pool's unit of memory accounting — an
    estimate for budget enforcement, not an exact RSS measurement.
    """
    return int(sum(arr.nbytes for arr in (
        graph.u_offsets, graph.u_neighbors,
        graph.v_offsets, graph.v_neighbors)))


@dataclass
class PoolStats:
    """Observability counters for one :class:`SessionPool`."""

    hits: int = 0        #: session() served from a live session
    builds: int = 0      #: sessions constructed (first use or rebuild)
    evictions: int = 0   #: sessions dropped to satisfy a budget
    loads: int = 0       #: loader invocations (graph materialisations)
    mutations: int = 0   #: edge mutations applied to dynamic entries
    #: eviction count per graph name, for spotting thrash
    evicted_by_name: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "builds": self.builds,
                "evictions": self.evictions, "loads": self.loads,
                "mutations": self.mutations,
                "evicted_by_name": dict(self.evicted_by_name)}


class SessionPool:
    """LRU-bounded map of graph name -> prepared :class:`GraphSession`.

    ``max_sessions`` bounds the entry count; ``max_bytes`` (optional)
    bounds the summed :func:`graph_resident_bytes` of pooled graphs.
    At least one session is always allowed to live, so a single graph
    larger than ``max_bytes`` still serves (with a warning-sized budget
    the pool degrades to rebuild-per-switch rather than failing).

    >>> from repro import random_bipartite
    >>> pool = SessionPool(max_sessions=1)
    >>> pool.register("a", random_bipartite(10, 10, 30, seed=1))
    >>> pool.register("b", lambda: random_bipartite(10, 10, 30, seed=2))
    >>> pool.session("a") is pool.session("a")   # cached
    True
    >>> _ = pool.session("b")                    # evicts "a"
    >>> pool.live_names()
    ['b']
    >>> pool.stats.evictions
    1
    """

    def __init__(self, max_sessions: int = 8,
                 max_bytes: int | None = None, *,
                 spec=None, max_cached_results: int = 256,
                 ledger=None) -> None:
        if max_sessions < 1:
            raise ServiceError(
                f"max_sessions must be >= 1, got {max_sessions}")
        if max_bytes is not None and max_bytes < 1:
            raise ServiceError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_sessions = int(max_sessions)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.spec = spec
        self.max_cached_results = int(max_cached_results)
        #: shared CostLedger handed to every pooled session, so one
        #: serving process accumulates measurements across graphs
        self.ledger = ledger
        self.stats = PoolStats()
        self._lock = threading.RLock()
        self._loaders: dict[str, object] = {}
        self._sessions: OrderedDict[str, GraphSession] = OrderedDict()
        self._bytes: dict[str, int] = {}
        self._closed = False

    # -- registration --------------------------------------------------
    def register(self, name: str, graph_or_loader) -> None:
        """Register ``name`` as a :class:`BipartiteGraph`, a
        zero-argument loader returning one, or a
        :class:`~repro.dynamic.DynamicGraphSession` (a *dynamic* entry:
        readable through epoch-pinned snapshots, writable through
        :meth:`mutate`).

        Registration is cheap: nothing is prepared until the first
        :meth:`session` call.  Re-registering a name drops its live
        session (the definition changed).
        """
        with self._lock:
            self._loaders[name] = graph_or_loader
            self._drop(name)

    def is_dynamic(self, name: str) -> bool:
        """Whether ``name`` is a mutable dynamic entry."""
        with self._lock:
            return isinstance(self._loaders.get(name), DynamicGraphSession)

    def dynamic_names(self) -> list[str]:
        """Every registered dynamic (mutable) graph name."""
        with self._lock:
            return sorted(n for n, ld in self._loaders.items()
                          if isinstance(ld, DynamicGraphSession))

    def names(self) -> list[str]:
        """Every registered graph name (live session or not)."""
        with self._lock:
            return sorted(self._loaders)

    def live_names(self) -> list[str]:
        """Names with a live pooled session, least recently used first."""
        with self._lock:
            return list(self._sessions)

    # -- the serving path ----------------------------------------------
    def session(self, name: str) -> GraphSession:
        """The prepared session for ``name``, building (or rebuilding
        after eviction) on demand and refreshing LRU recency.  A
        dynamic entry returns an epoch-pinned
        :class:`~repro.dynamic.SnapshotSession` instead (same ``count``
        / ``plan`` surface).

        Loaders run *outside* the pool lock — a slow disk load for one
        graph must not stall ``session()`` calls for every other graph —
        so on reacquire the pool re-checks for a session another thread
        built meanwhile (returned as a hit; this load is discarded) and
        for a re-registration mid-load (retried against the new
        definition).
        """
        while True:
            with self._lock:
                if self._closed:
                    raise ServiceError("session pool is closed")
                got = self._sessions.get(name)
                if got is not None:
                    self._sessions.move_to_end(name)
                    self.stats.hits += 1
                    return got
                loader = self._loaders.get(name)
                if loader is None:
                    raise ServiceError(
                        f"unknown graph {name!r}; registered: "
                        f"{self.names()}")
                if isinstance(loader, DynamicGraphSession):
                    # dynamic entries hand out epoch-pinned snapshots:
                    # the caller (one scheduler batch) reads a single
                    # consistent version no matter how writers race
                    self.stats.hits += 1
                    return loader.pinned()
                if isinstance(loader, BipartiteGraph):
                    graph = loader
                else:
                    graph = None
                    self.stats.loads += 1
            if graph is None:
                graph = loader()
                if not isinstance(graph, BipartiteGraph):
                    raise ServiceError(
                        f"loader for {name!r} returned "
                        f"{type(graph).__name__}, expected BipartiteGraph")
            with self._lock:
                if self._closed:
                    raise ServiceError("session pool is closed")
                if self._loaders.get(name) is not loader:
                    continue
                got = self._sessions.get(name)
                if got is not None:
                    self._sessions.move_to_end(name)
                    self.stats.hits += 1
                    return got
                session = GraphSession(
                    graph, spec=self.spec,
                    max_cached_results=self.max_cached_results,
                    ledger=self.ledger)
                self.stats.builds += 1
                if self.stats.evicted_by_name.get(name):
                    log.info("rebuilding %r after eviction "
                             "(evicted %d time(s) so far)", name,
                             self.stats.evicted_by_name[name])
                self._sessions[name] = session
                self._bytes[name] = graph_resident_bytes(graph)
                self._enforce_budgets(keep=name)
                return session

    def evict(self, name: str) -> bool:
        """Drop ``name``'s live session (its next request rebuilds).
        For a dynamic entry this releases its cached snapshot and
        prepared state; graph, epoch and tracked counts survive.
        Returns whether anything was actually dropped."""
        with self._lock:
            loader = self._loaders.get(name)
            if isinstance(loader, DynamicGraphSession):
                dropped = loader.drop_caches()
            else:
                dropped = self._drop(name)
            if dropped:
                self.stats.evictions += 1
                by = self.stats.evicted_by_name
                by[name] = by.get(name, 0) + 1
                log.info("evicted session %r (eviction #%d for this "
                         "name)", name, by[name])
            return dropped

    # -- the mutation path ---------------------------------------------
    def mutate(self, name: str, mutations) -> int:
        """Apply an edge-mutation batch to dynamic entry ``name``.

        ``mutations`` is an iterable of
        :class:`~repro.dynamic.EdgeMutation`.  Returns the entry's new
        epoch.  Snapshots already handed out keep serving their pinned
        version; the next :meth:`session` call pins the new one.
        Mutating a non-dynamic entry raises
        :class:`~repro.errors.ServiceError`.
        """
        mutations = list(mutations)
        with self._lock:
            if self._closed:
                raise ServiceError("session pool is closed")
            loader = self._loaders.get(name)
            if loader is None:
                raise ServiceError(f"unknown graph {name!r}; registered: "
                                   f"{self.names()}")
            if not isinstance(loader, DynamicGraphSession):
                raise ServiceError(
                    f"graph {name!r} is not dynamic; register a "
                    f"DynamicGraphSession to make it mutable")
        # apply outside the pool lock: the writer serialises on the
        # dynamic session's own lock, readers keep pinning freely
        epoch = loader.apply_batch(mutations)
        with self._lock:
            self.stats.mutations += len(mutations)
        return epoch

    def refresh(self, name: str) -> bool:
        """Re-validate ``name``'s live session against its graph's
        current content (the repair for a registered *static* graph
        object mutated in place — see ``GraphSession.refresh``).

        Returns True when stale prepared state was detected and
        dropped.  Dynamic entries are versioned, never stale, so this
        is always False for them; a name with no live session has
        nothing to refresh.
        """
        with self._lock:
            loader = self._loaders.get(name)
            if loader is None:
                raise ServiceError(f"unknown graph {name!r}; registered: "
                                   f"{self.names()}")
            if isinstance(loader, DynamicGraphSession):
                return False
            session = self._sessions.get(name)
        return session.refresh() if session is not None else False

    def dimensions(self, name: str) -> tuple[int, int]:
        """(num_u, num_v) of graph ``name`` — the valid mutation
        coordinate space for a dynamic entry — materialising the graph
        if needed."""
        with self._lock:
            loader = self._loaders.get(name)
            if isinstance(loader, DynamicGraphSession):
                return loader.num_u, loader.num_v
            if isinstance(loader, BipartiteGraph):
                return loader.num_u, loader.num_v
        graph = self.session(name).graph
        return graph.num_u, graph.num_v

    def resident_bytes(self) -> int:
        """Summed size estimate of all live pooled graphs."""
        with self._lock:
            return sum(self._bytes.values())

    def close(self) -> None:
        """Drop every session and refuse further :meth:`session` calls."""
        with self._lock:
            self._closed = True
            self._sessions.clear()
            self._bytes.clear()
            for loader in self._loaders.values():
                if isinstance(loader, DynamicGraphSession):
                    loader.drop_caches()

    def snapshot(self) -> dict:
        """JSON-serialisable pool state for telemetry artifacts."""
        with self._lock:
            dynamic = {n: ld.epoch for n, ld in self._loaders.items()
                       if isinstance(ld, DynamicGraphSession)}
            return {"max_sessions": self.max_sessions,
                    "max_bytes": self.max_bytes,
                    "registered": len(self._loaders),
                    "live": list(self._sessions),
                    "dynamic_epochs": dynamic,
                    "resident_bytes": sum(self._bytes.values()),
                    **self.stats.as_dict()}

    # -- internals (call with the lock held) ---------------------------
    def _drop(self, name: str) -> bool:
        self._bytes.pop(name, None)
        return self._sessions.pop(name, None) is not None

    def _enforce_budgets(self, keep: str) -> None:
        # never evict `keep` (the session being handed out right now)
        def evictable() -> str | None:
            for name in self._sessions:      # LRU order
                if name != keep:
                    return name
            return None

        while len(self._sessions) > self.max_sessions:
            victim = evictable()
            if victim is None:
                break
            self.evict(victim)
        if self.max_bytes is None:
            return
        while sum(self._bytes.values()) > self.max_bytes \
                and len(self._sessions) > 1:
            victim = evictable()
            if victim is None:
                break
            self.evict(victim)
