"""The ``serve-bench`` harness: serving throughput vs a naive loop.

Measures the same declarative workload two ways:

* **naive** — one thread, one request at a time, no shared state: every
  query pays the full prepare-and-count cost through
  :func:`repro.bench.runner.run_method`, exactly how a caller drove the
  repo before the service layer existed;
* **served** — the same stream through a
  :class:`~repro.service.scheduler.Scheduler` over a
  :class:`~repro.service.pool.SessionPool`, with micro-batching and
  shared prepared state.

Every distinct ``(graph, p, q)`` the service answered is then re-counted
with a direct single-query call and compared bit-for-bit — the artifact
reports ``mismatches`` (which must be zero) alongside the speedup, so a
throughput win can never hide a correctness regression.  The resulting
dict is JSON-serialisable and is what the CLI writes as
``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.counts import BicliqueQuery
from repro.graph.bipartite import BipartiteGraph
from repro.parallel.sharding import default_workers
from repro.service.pool import SessionPool
from repro.service.scheduler import Scheduler, SchedulerConfig
from repro.service.workload import (WorkloadResult, WorkloadSpec,
                                    generate_requests, run_workload)

__all__ = ["serve_bench", "verify_served", "write_artifact"]


def _method_resolver(graphs: dict[str, BipartiteGraph], method: str,
                     backend: str):
    """A ``(graph name, p, q) -> concrete method`` function.

    Explicit methods pass through; ``"auto"`` is resolved through the
    planner once per (graph, shape) and memoised — under the same
    ``backend`` the requests execute on, so the choice matches what the
    served path's pooled sessions pick — and the naive baseline and
    verification oracle then time *counting*, not repeated planning
    probes.
    """
    if method != "auto":
        return lambda name, p, q: method
    from repro.plan import plan_query

    cache: dict[tuple[str, int, int], str] = {}

    def resolve(name: str, p: int, q: int) -> str:
        key = (name, p, q)
        if key not in cache:
            cache[key] = plan_query(graphs[name], BicliqueQuery(p, q),
                                    method="auto", backend=backend).method
        return cache[key]

    return resolve


def verify_served(graphs: dict[str, BipartiteGraph],
                  result: WorkloadResult,
                  backend: str = "fast") -> list[dict]:
    """Re-count every distinct served ``(graph, p, q)`` directly and
    return the mismatches (empty list = all bit-identical).

    The direct run uses a fresh call with no session, cache or
    batching — the strongest available oracle for the served answers.
    """
    from repro.bench.runner import run_method

    resolve = _method_resolver(graphs, result.spec.method, backend)
    served_counts: dict[tuple[str, int, int], set[int]] = {}
    served_approx: dict[tuple[str, int, int], list] = {}
    for s in result.served:
        if s.ci95 is None:
            served_counts.setdefault((s.graph, s.p, s.q), set()).add(s.count)
        else:
            served_approx.setdefault((s.graph, s.p, s.q), []).append(s)
    mismatches = []
    directs: dict[tuple[str, int, int], int] = {}
    for key in sorted(set(served_counts) | set(served_approx)):
        name, p, q = key
        directs[key] = run_method(resolve(name, p, q), graphs[name],
                                  BicliqueQuery(p, q), backend=backend).count
    for (name, p, q), counts in sorted(served_counts.items()):
        direct = directs[(name, p, q)]
        if counts != {direct}:
            mismatches.append({"graph": name, "p": p, "q": q,
                               "served": sorted(counts), "direct": direct})
    # sampling-tier answers are held to the precision they reported:
    # the estimate must land within its own ci95 of the exact count
    # (+0.5 for the integer rounding of the reported count)
    for (name, p, q), items in sorted(served_approx.items()):
        direct = directs[(name, p, q)]
        for s in items:
            if abs(s.count - direct) > s.ci95 + 0.5:
                mismatches.append({"graph": name, "p": p, "q": q,
                                   "served": s.count, "ci95": s.ci95,
                                   "direct": direct, "tier": "approx"})
    return mismatches


def _naive_loop(graphs: dict[str, BipartiteGraph], spec: WorkloadSpec,
                n: int, backend: str) -> dict:
    """Time ``n`` requests of the spec's stream, one direct call each."""
    from repro.bench.runner import run_method

    resolve = _method_resolver(graphs, spec.method, backend)
    requests = generate_requests(spec, n)
    t0 = time.monotonic()
    for name, p, q in requests:
        run_method(resolve(name, p, q), graphs[name], BicliqueQuery(p, q),
                   backend=backend)
    seconds = time.monotonic() - t0
    return {"requests": len(requests), "wall_seconds": seconds,
            "throughput_qps": len(requests) / seconds if seconds > 0
                              else 0.0}


def serve_bench(graphs: dict[str, BipartiteGraph],
                spec: WorkloadSpec, *,
                config: SchedulerConfig | None = None,
                max_sessions: int | None = None,
                max_bytes: int | None = None,
                naive_limit: int | None = 100,
                verify: bool = True) -> dict:
    """Run the full serving benchmark; returns the artifact dict.

    ``naive_limit`` caps the single-threaded baseline's request count
    (it exists to bound benchmark wall time; throughput is a rate, so
    the comparison is unaffected).  Set ``verify=False`` to skip the
    direct-recount oracle when only throughput is of interest.
    """
    config = config or SchedulerConfig()
    pool = SessionPool(
        max_sessions=len(graphs) if max_sessions is None else max_sessions,
        max_bytes=max_bytes)
    for name, graph in graphs.items():
        pool.register(name, graph)
    scheduler = Scheduler(pool, config=config)
    try:
        result = run_workload(scheduler, spec)
    finally:
        scheduler.close()
    telemetry = scheduler.telemetry.snapshot()

    naive_n = result.completed if naive_limit is None \
        else min(result.completed, naive_limit)
    naive = _naive_loop(graphs, spec, max(naive_n, 1), config.backend)

    mismatches = verify_served(graphs, result, config.backend) \
        if verify else None
    served_qps = result.throughput_qps
    return {
        "kind": "serve_bench",
        "host": {"usable_cpus": default_workers()},
        "spec": spec.as_dict(),
        "scheduler": {
            "batch_window": config.batch_window,
            "max_batch": config.max_batch,
            "max_pending": config.max_pending,
            "workers": config.workers,
            "backend": config.backend,
            "accuracy": config.accuracy,
        },
        "pool": pool.snapshot(),
        "served": result.as_dict(),
        "telemetry": telemetry,
        "naive": naive,
        "speedup_vs_naive": (served_qps / naive["throughput_qps"])
                            if naive["throughput_qps"] > 0 else 0.0,
        "verified": verify,
        "mismatches": mismatches if mismatches is not None else "skipped",
    }


def write_artifact(artifact: dict, path: str | Path) -> Path:
    """Write the artifact as pretty JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
