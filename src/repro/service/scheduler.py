"""Micro-batching scheduler: many concurrent clients, one count per batch.

Clients — threads or asyncio tasks — submit individual ``(graph, method,
p, q)`` requests and get a future back.  The scheduler coalesces
requests that target the same ``(graph, method)`` within a small
time/size window into one shared-session evaluation (the same
amortisation :func:`repro.query.batch_count` gives a hand-written batch),
executes batches on a small pool of worker threads, and resolves each
request's future with the exact :class:`~repro.core.counts.CountResult`
a direct call would have produced.

Operationally it behaves like a bounded service, not a script:

* **admission control** — at most ``max_pending`` requests may be queued;
  past that, :meth:`submit` fails fast with
  :class:`~repro.errors.QueueFullError` so overload surfaces as
  backpressure instead of unbounded memory growth;
* **deadlines** — a per-request ``deadline=`` (seconds from submission)
  expires the request with
  :class:`~repro.errors.DeadlineExceededError` if a worker has not
  started it in time;
* **graceful shutdown** — :meth:`close` drains queued work by default,
  or fails it fast with :class:`~repro.errors.ServiceClosedError` when
  ``drain=False``.

Batching never changes answers: a batch executes through the pooled
:class:`~repro.query.GraphSession`, whose counts are bit-identical to
direct single-query calls on every backend (tested in
``tests/service/``).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.counts import BicliqueQuery, CountResult
from repro.errors import (DeadlineExceededError, QueueFullError,
                          ServiceClosedError, ServiceError)
from repro.obs import trace as _trace
from repro.obs.log import get_logger
from repro.plan import ensure_accuracy, ensure_known
from repro.service.pool import SessionPool
from repro.service.telemetry import Telemetry

__all__ = ["Scheduler", "SchedulerConfig"]

log = get_logger(__name__)


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of one :class:`Scheduler` (see ``docs/SERVING.md``)."""

    #: seconds a batch stays open for co-arriving requests; 0 disables
    #: time-based coalescing (batches still form under queue pressure)
    batch_window: float = 0.002
    #: hard per-batch size cap; a full batch dispatches immediately
    max_batch: int = 64
    #: admission bound: queued-but-unstarted requests across all graphs
    max_pending: int = 1024
    #: worker threads executing batches (one batch each, concurrently)
    workers: int = 2
    #: kernel backend every batch runs on ("sim" / "fast" / "par")
    backend: str = "fast"
    #: worker processes for the "par" backend (None = backend default)
    backend_workers: int | None = None
    #: default counting method for requests that do not name one;
    #: ``"auto"`` lets the pooled session's planner pick per shape
    method: str = "GBC"
    #: default service tier for requests that do not name one:
    #: "exact" treats a deadline as a hard admission bound, "approx"
    #: always serves the sampling tier, "auto" falls back to sampling
    #: when a deadline makes every exact plan infeasible
    accuracy: str = "exact"

    def __post_init__(self) -> None:
        ensure_known(self.method, allow_auto=True)
        ensure_accuracy(self.accuracy)
        if self.batch_window < 0:
            raise ServiceError(
                f"batch_window must be >= 0, got {self.batch_window}")
        if self.max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_pending < 1:
            raise ServiceError(
                f"max_pending must be >= 1, got {self.max_pending}")
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")


@dataclass
class _Request:
    query: BicliqueQuery
    method: str
    accuracy: str
    future: Future
    submitted_at: float
    deadline_at: float | None   # absolute monotonic, None = no deadline
    rid: int = 0                # per-scheduler request id (trace linkage)


@dataclass
class _Bucket:
    opened_at: float
    items: list[_Request] = field(default_factory=list)


class Scheduler:
    """Accepts concurrent count requests and serves them in micro-batches.

    ``pool`` supplies (and bounds) the per-graph prepared state; the
    scheduler owns only queues and worker threads, so closing it never
    discards prepared sessions.  Constructed schedulers are live
    immediately; use as a context manager for deterministic teardown::

        with Scheduler(pool) as sched:
            future = sched.submit("yt", 3, 3)
            result = future.result()
    """

    def __init__(self, pool: SessionPool,
                 config: SchedulerConfig | None = None,
                 telemetry: Telemetry | None = None,
                 ident: str | None = None,
                 **overrides) -> None:
        if config is not None and overrides:
            raise ServiceError("pass config= or keyword tunables, not both")
        self.pool = pool
        self.config = config or SchedulerConfig(**overrides)
        self.telemetry = telemetry or Telemetry()
        #: optional serving-process identity; when set, every
        #: ``serve.*`` trace event/span carries it as ``worker=`` so
        #: multi-process traces stay attributable after aggregation
        self.ident = ident
        self._tk = {} if ident is None else {"worker": ident}
        self._cond = threading.Condition()
        self._rids = itertools.count(1)
        self._buckets: dict[tuple[str, str, str], _Bucket] = {}
        self._pending = 0
        self._closed = False
        self._drain = True
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-serve-{i}", daemon=True)
            for i in range(self.config.workers)]
        for t in self._workers:
            t.start()

    # -- client API ----------------------------------------------------
    def submit(self, graph: str, p: int | BicliqueQuery,
               q: int | None = None, *, method: str | None = None,
               deadline: float | None = None,
               accuracy: str | None = None) -> "Future[CountResult]":
        """Enqueue one count request; returns its future immediately.

        ``graph`` is a name registered on the pool; ``p``/``q`` are the
        biclique sides (or ``p`` is a ready
        :class:`~repro.core.counts.BicliqueQuery`); ``deadline`` is a
        budget in seconds — if no worker has started the request when it
        lapses, the future fails with
        :class:`~repro.errors.DeadlineExceededError`, and the budget
        remaining at execution is passed through to
        :meth:`repro.query.GraphSession.count` as a planning
        constraint.  ``accuracy`` overrides the config default per
        request: under ``"auto"`` a deadline no exact plan fits is
        served by the sampling tier instead of expiring, with
        ``extras["ci95"]`` reporting the precision bought.

        Raises :class:`~repro.errors.QueueFullError` when ``max_pending``
        requests are already queued,
        :class:`~repro.errors.ServiceClosedError` after :meth:`close`,
        and :class:`~repro.errors.UnknownMethodError` when ``method``
        names nothing in the :mod:`repro.plan` registry (``"auto"`` is
        allowed and resolves per batch through the pooled session's
        planner).  All are admission failures: the request was never
        queued — a bad method name can never reach a worker batch and
        poison its co-batched futures.
        """
        query = p if isinstance(p, BicliqueQuery) else BicliqueQuery(p, q)
        if deadline is not None and deadline <= 0:
            raise ServiceError(f"deadline must be > 0 seconds, "
                               f"got {deadline}")
        resolved_accuracy = ensure_accuracy(accuracy or self.config.accuracy)
        resolved_method = ensure_known(method or self.config.method,
                                       allow_auto=True)
        if resolved_accuracy != "exact" \
                and resolved_method not in ("auto", "approx"):
            # a non-exact tier plans the method itself; an un-asked-for
            # exact default (config or omitted arg) silently upgrades,
            # but an explicitly named exact method is a contradiction
            # the caller must resolve — fail at admission, not in a
            # worker batch
            if method is not None:
                raise ServiceError(
                    f"accuracy={resolved_accuracy!r} plans the method "
                    f"itself; drop method={method!r} or pass 'auto'")
            resolved_method = "auto"
        now = time.monotonic()
        req = _Request(
            query=query,
            method=resolved_method,
            accuracy=resolved_accuracy,
            future=Future(),
            submitted_at=now,
            deadline_at=None if deadline is None else now + deadline)
        with self._cond:
            if self._closed:
                self.telemetry.record_rejected()
                log.warning("rejected %s on %r: scheduler is closed",
                            query, graph)
                _trace.event("serve.rejected", graph=graph,
                             reason="closed", **self._tk)
                raise ServiceClosedError("scheduler is closed")
            if self._pending >= self.config.max_pending:
                self.telemetry.record_rejected()
                log.warning("rejected %s on %r: queue full "
                            "(%d pending, max_pending=%d)",
                            query, graph, self._pending,
                            self.config.max_pending)
                _trace.event("serve.rejected", graph=graph,
                             reason="queue_full", pending=self._pending,
                             **self._tk)
                raise QueueFullError(
                    f"{self._pending} requests already pending "
                    f"(max_pending={self.config.max_pending})")
            req.rid = next(self._rids)
            bucket = self._buckets.get((graph, req.method, req.accuracy))
            if bucket is None:
                bucket = _Bucket(opened_at=now)
                self._buckets[(graph, req.method, req.accuracy)] = bucket
            bucket.items.append(req)
            self._pending += 1
            self.telemetry.record_submit(self._pending)
            _trace.event("serve.queued", rid=req.rid, graph=graph,
                         method=req.method, p=query.p, q=query.q,
                         **self._tk)
            self._cond.notify_all()
        return req.future

    async def submit_async(self, graph: str, p: int | BicliqueQuery,
                           q: int | None = None, *,
                           method: str | None = None,
                           deadline: float | None = None,
                           accuracy: str | None = None) -> CountResult:
        """Asyncio front-end: awaitable wrapper around :meth:`submit`.

        Admission failures raise immediately (synchronously inside the
        coroutine); everything else resolves through the event loop.
        """
        future = self.submit(graph, p, q, method=method, deadline=deadline,
                             accuracy=accuracy)
        return await asyncio.wrap_future(future)

    def count(self, graph: str, p: int | BicliqueQuery,
              q: int | None = None, *, method: str | None = None,
              deadline: float | None = None,
              accuracy: str | None = None,
              timeout: float | None = None) -> CountResult:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(graph, p, q, method=method, deadline=deadline,
                           accuracy=accuracy).result(timeout=timeout)

    def mutate(self, graph: str, mutations) -> int:
        """Apply an edge-mutation batch to a dynamic pooled graph.

        The synchronous write path of mutate-while-serving: writers go
        straight to the pool (serialised on the dynamic session's own
        lock) while reader batches keep executing against the epochs
        they pinned at batch start.  Returns the graph's new epoch.
        """
        with self._cond:
            if self._closed:
                raise ServiceClosedError("scheduler is closed")
        mutations = list(mutations)
        epoch = self.pool.mutate(graph, mutations)
        self.telemetry.record_mutations(len(mutations))
        return epoch

    def pending(self) -> int:
        """Requests queued but not yet handed to a worker."""
        with self._cond:
            return self._pending

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admitting requests and shut the workers down.

        With ``drain=True`` (default) queued batches still execute;
        with ``drain=False`` every queued request fails fast with
        :class:`~repro.errors.ServiceClosedError`.  Idempotent.
        """
        with self._cond:
            self._closed = True
            self._drain = drain
            if not drain:
                for bucket in self._buckets.values():
                    for req in bucket.items:
                        if req.future.set_running_or_notify_cancel():
                            req.future.set_exception(
                                ServiceClosedError("scheduler closed "
                                                   "before execution"))
                self._pending -= sum(len(b.items)
                                     for b in self._buckets.values())
                self._buckets.clear()
            self._cond.notify_all()
        for t in self._workers:
            t.join(timeout=timeout)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker side ---------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            picked = self._next_batch()
            if picked is None:
                return
            graph, requests = picked
            self._execute(graph, requests)

    def _next_batch(self) -> tuple[str, list[_Request]] | None:
        """Block until a bucket is ready (full, aged past the window, or
        draining at close), pop and return it; None means shut down."""
        cfg = self.config
        with self._cond:
            while True:
                if self._closed and not self._buckets:
                    return None
                now = time.monotonic()
                best_key, best_ready = None, None
                for key, bucket in self._buckets.items():
                    ready_at = bucket.opened_at + cfg.batch_window
                    if len(bucket.items) >= cfg.max_batch or self._closed:
                        ready_at = now
                    if best_ready is None or ready_at < best_ready:
                        best_key, best_ready = key, ready_at
                if best_key is None:
                    self._cond.wait()
                    continue
                if best_ready <= now:
                    bucket = self._buckets.pop(best_key)
                    # oversize buckets dispatch max_batch and stay open
                    take = bucket.items[:cfg.max_batch]
                    rest = bucket.items[cfg.max_batch:]
                    if rest:
                        self._buckets[best_key] = _Bucket(
                            opened_at=bucket.opened_at, items=rest)
                    self._pending -= len(take)
                    return best_key[0], take
                self._cond.wait(timeout=best_ready - now)

    def _claim_live(self, graph: str,
                    requests: list[_Request]) -> list[_Request]:
        """Claim each request's future; drop cancellations, expire
        requests whose deadline lapsed in the queue.  Shared by the
        in-process batch path and the distributed router."""
        now = time.monotonic()
        live: list[_Request] = []
        for req in requests:
            if not req.future.set_running_or_notify_cancel():
                continue                       # client cancelled it
            if req.deadline_at is not None and now > req.deadline_at:
                req.future.set_exception(DeadlineExceededError(
                    f"deadline passed {now - req.deadline_at:.3f}s before "
                    f"execution of {req.query} on {graph!r}"))
                self.telemetry.record_expired()
                log.info("expired request %d (%s on %r): deadline "
                         "passed %.3fs before execution", req.rid,
                         req.query, graph, now - req.deadline_at)
                _trace.event("serve.expired", rid=req.rid, graph=graph,
                             late_s=now - req.deadline_at, **self._tk)
                continue
            live.append(req)
        return live

    def _complete(self, req: _Request, result: CountResult,
                  graph: str) -> None:
        """Resolve one claimed request with its result (+telemetry)."""
        req.future.set_result(result)
        if result.algorithm == "approx":
            self.telemetry.record_approx()
        latency = time.monotonic() - req.submitted_at
        self.telemetry.record_completed(latency)
        _trace.event("serve.completed", rid=req.rid,
                     graph=graph, method=result.algorithm,
                     latency_ms=latency * 1e3, **self._tk)

    def _fail(self, req: _Request, exc: Exception, graph: str) -> None:
        """Fail one claimed request (deadline misses count as expiry)."""
        req.future.set_exception(exc)
        if isinstance(exc, DeadlineExceededError):
            self.telemetry.record_expired()
            log.info("expired request %d (%s on %r): %s",
                     req.rid, req.query, graph, exc)
            _trace.event("serve.expired", rid=req.rid, graph=graph,
                         **self._tk)
        else:
            self.telemetry.record_failed()
            log.warning("request %d (%s on %r) failed: %s",
                        req.rid, req.query, graph, exc)

    def _execute(self, graph: str, requests: list[_Request]) -> None:
        cfg = self.config
        live = self._claim_live(graph, requests)
        if not live:
            return
        self.telemetry.record_batch(len(live))
        with _trace.span("serve.batch", graph=graph, size=len(live),
                         method=live[0].method,
                         rids=[r.rid for r in live], **self._tk):
            try:
                session = self.pool.session(graph)
            except Exception as exc:           # unknown graph, loader bug
                log.warning("batch of %d on %r failed: no session (%s)",
                            len(live), graph, exc)
                for req in live:
                    req.future.set_exception(exc)
                    self.telemetry.record_failed()
                return
            for req in live:
                # the budget still standing when the worker reaches the
                # request becomes a planning constraint: exact tiers
                # admit against it, "auto" downgrades to sampling
                deadline_left = None if req.deadline_at is None \
                    else max(req.deadline_at - time.monotonic(), 1e-3)
                try:
                    result = session.count(req.query, req.method,
                                           backend=cfg.backend,
                                           workers=cfg.backend_workers,
                                           accuracy=req.accuracy,
                                           deadline=deadline_left)
                except Exception as exc:
                    self._fail(req, exc, graph)
                    continue
                self._complete(req, result, graph)
