"""Declarative query workloads for the serving layer.

A :class:`WorkloadSpec` describes a mixed query stream the way the
μBench-style replication packages describe theirs — a small, fully
serialisable record (graph popularity skew, query-shape mix, load mode,
duration) from which the exact stream can be regenerated bit-for-bit
from its seed.  Two load modes:

* **closed loop** — ``clients`` threads each keep exactly one request in
  flight (submit, wait, repeat): throughput measures service capacity;
* **open loop** — one pacer submits at ``rate_qps`` regardless of
  completions: queue depth and backpressure measure overload behaviour.

Graph popularity is zipf-skewed (rank ``i`` drawn with weight
``1 / (i+1)**zipf_s``), matching the few-hot-graphs-many-cold traffic a
shared serving tier actually sees; query shapes are drawn from a
weighted mix.  :func:`run_workload` drives a
:class:`~repro.service.scheduler.Scheduler` with the stream and returns
everything needed for a benchmark artifact.

A spec can also mix **writes** into the stream: with
``mutate_fraction > 0`` each client replaces that fraction of its draws
with a single-edge toggle (a seeded uniform (u, v) pick on a graph from
``mutate_graphs``, which must be dynamic pool entries) submitted through
``scheduler.mutate`` — the mutate-while-serving traffic shape
``serve-mutate-bench`` measures.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.dynamic import EdgeMutation
from repro.errors import DeadlineExceededError, QueueFullError, ServiceError
from repro.plan import ensure_accuracy, ensure_known

__all__ = ["WorkloadSpec", "WorkloadResult", "ServedQuery",
           "generate_requests", "run_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible mixed query stream, declaratively.

    ``shapes`` maps each ``(p, q)`` shape to a draw weight; ``graphs``
    are pool-registered names ranked hot-to-cold for the zipf draw.
    ``duration_seconds`` (when set) takes precedence over
    ``num_queries`` and runs the stream for wall time instead of count.
    """

    graphs: tuple[str, ...]
    shapes: tuple[tuple[int, int], ...] = ((2, 2), (2, 3), (3, 3))
    shape_weights: tuple[float, ...] | None = None
    num_queries: int = 200
    duration_seconds: float | None = None
    mode: str = "closed"            #: "closed" or "open"
    clients: int = 4                #: closed-loop threads
    rate_qps: float = 200.0         #: open-loop submission rate
    zipf_s: float = 1.1             #: graph-popularity skew exponent
    method: str = "GBC"
    deadline: float | None = None   #: per-request deadline (seconds)
    #: service tier: "exact", "approx", or "auto" (exact when it fits
    #: the deadline, the sampling tier when it does not)
    accuracy: str = "exact"
    seed: int = 0
    #: fraction of each client's draws that become edge toggles
    mutate_fraction: float = 0.0
    #: names the writer targets (defaults to ``graphs``); must be
    #: dynamic pool entries
    mutate_graphs: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.graphs:
            raise ServiceError("workload needs at least one graph name")
        if not self.shapes:
            raise ServiceError("workload needs at least one (p, q) shape")
        if self.mode not in ("closed", "open"):
            raise ServiceError(f"mode must be 'closed' or 'open', "
                               f"got {self.mode!r}")
        if self.shape_weights is not None \
                and len(self.shape_weights) != len(self.shapes):
            raise ServiceError(
                f"{len(self.shape_weights)} shape_weights for "
                f"{len(self.shapes)} shapes")
        if self.mode == "open" and self.rate_qps <= 0:
            raise ServiceError(f"open-loop rate_qps must be > 0, "
                               f"got {self.rate_qps}")
        if self.clients < 1:
            raise ServiceError(f"clients must be >= 1, got {self.clients}")
        if not 0.0 <= self.mutate_fraction < 1.0:
            raise ServiceError(f"mutate_fraction must be in [0, 1), "
                               f"got {self.mutate_fraction}")
        if self.mutate_graphs is not None and not self.mutate_graphs:
            raise ServiceError("mutate_graphs must be None or non-empty")
        ensure_known(self.method, allow_auto=True)
        ensure_accuracy(self.accuracy)

    def as_dict(self) -> dict:
        return {
            "graphs": list(self.graphs),
            "shapes": [list(s) for s in self.shapes],
            "shape_weights": None if self.shape_weights is None
                             else list(self.shape_weights),
            "num_queries": self.num_queries,
            "duration_seconds": self.duration_seconds,
            "mode": self.mode,
            "clients": self.clients,
            "rate_qps": self.rate_qps,
            "zipf_s": self.zipf_s,
            "method": self.method,
            "deadline": self.deadline,
            "accuracy": self.accuracy,
            "seed": self.seed,
            "mutate_fraction": self.mutate_fraction,
            "mutate_graphs": None if self.mutate_graphs is None
                             else list(self.mutate_graphs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        """Build a spec from a JSON-shaped dict (unknown keys rejected)."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ServiceError(f"unknown workload keys: {sorted(unknown)}")
        data = dict(data)
        if "graphs" in data:
            data["graphs"] = tuple(data["graphs"])
        if data.get("shapes") is not None:
            data["shapes"] = tuple((int(p), int(q))
                                   for p, q in data["shapes"])
        if data.get("shape_weights") is not None:
            data["shape_weights"] = tuple(float(w)
                                          for w in data["shape_weights"])
        if data.get("mutate_graphs") is not None:
            data["mutate_graphs"] = tuple(data["mutate_graphs"])
        return cls(**data)


def _zipf_weights(n: int, s: float) -> np.ndarray:
    w = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** s
    return w / w.sum()


def generate_requests(spec: WorkloadSpec, n: int,
                      seed_offset: int = 0) -> list[tuple[str, int, int]]:
    """The first ``n`` requests of the spec's stream, as
    ``(graph, p, q)`` triples — deterministic in ``(seed, seed_offset)``.

    ``seed_offset`` derives disjoint per-client streams from one spec.
    """
    return _generate_chunk(spec, n, seed_offset)


def _generate_chunk(spec: WorkloadSpec, n: int,
                    seed_offset: int) -> list[tuple[str, int, int]]:
    rng = np.random.default_rng((spec.seed, seed_offset))
    gw = _zipf_weights(len(spec.graphs), spec.zipf_s)
    if spec.shape_weights is None:
        sw = np.full(len(spec.shapes), 1.0 / len(spec.shapes))
    else:
        sw = np.asarray(spec.shape_weights, dtype=np.float64)
        sw = sw / sw.sum()
    graph_idx = rng.choice(len(spec.graphs), size=n, p=gw)
    shape_idx = rng.choice(len(spec.shapes), size=n, p=sw)
    return [(spec.graphs[g], *spec.shapes[s])
            for g, s in zip(graph_idx, shape_idx)]


def _endless_stream(spec: WorkloadSpec, seed_offset: int, stride: int):
    """An inexhaustible deterministic request stream: chunk after chunk
    of :func:`generate_requests`, advancing ``seed_offset`` by
    ``stride`` so concurrent clients' continuations never collide.
    Duration-bounded workloads must never run dry mid-run."""
    chunk = max(spec.num_queries, 1024)
    while True:
        yield from _generate_chunk(spec, chunk, seed_offset)
        seed_offset += stride


@dataclass(frozen=True)
class ServedQuery:
    """One completed request and the count it was served."""

    graph: str
    p: int
    q: int
    count: int
    #: half-width of the 95% confidence interval for sampling-tier
    #: answers; None marks an exact count
    ci95: float | None = None


@dataclass
class WorkloadResult:
    """Outcome of one :func:`run_workload` drive."""

    spec: WorkloadSpec
    served: list[ServedQuery]
    issued: int = 0
    rejected: int = 0          #: admission failures (queue full)
    expired: int = 0           #: deadline misses
    failed: int = 0            #: other per-request errors
    mutations: int = 0         #: edge toggles applied by the writer draws
    wall_seconds: float = 0.0

    @property
    def completed(self) -> int:
        return len(self.served)

    @property
    def throughput_qps(self) -> float:
        return self.completed / self.wall_seconds \
            if self.wall_seconds > 0 else 0.0

    @property
    def approx_served(self) -> int:
        """Completions answered by the sampling tier (ci95 present)."""
        return sum(1 for s in self.served if s.ci95 is not None)

    def as_dict(self) -> dict:
        return {"spec": self.spec.as_dict(), "issued": self.issued,
                "completed": self.completed, "rejected": self.rejected,
                "expired": self.expired, "failed": self.failed,
                "mutations": self.mutations,
                "approx_served": self.approx_served,
                "wall_seconds": self.wall_seconds,
                "throughput_qps": self.throughput_qps}


def _classify(outcome: "WorkloadResult", exc: Exception) -> None:
    if isinstance(exc, DeadlineExceededError):
        outcome.expired += 1
    elif isinstance(exc, QueueFullError):
        outcome.rejected += 1
    else:
        outcome.failed += 1


def run_workload(scheduler, spec: WorkloadSpec) -> WorkloadResult:
    """Drive ``scheduler`` with the spec's stream and collect outcomes.

    Closed loop: ``spec.clients`` threads submit-and-wait until the
    query budget (or ``duration_seconds``) is spent.  Open loop: one
    pacer thread submits at ``rate_qps`` and outcomes are gathered at
    the end.  Counts of every completed request are returned so callers
    can verify them against direct single-query runs.
    """
    outcome = WorkloadResult(spec=spec, served=[])
    lock = threading.Lock()
    dims: dict[str, tuple[int, int]] = {}
    t0 = time.monotonic()
    stop_at = None if spec.duration_seconds is None \
        else t0 + spec.duration_seconds

    def mutate_once(rng) -> None:
        # one seeded uniform toggle; failures (non-dynamic target,
        # out-of-range name) are recorded, never fatal to the drive
        names = spec.mutate_graphs or spec.graphs
        gname = names[int(rng.integers(len(names)))]
        try:
            if gname not in dims:
                dims[gname] = scheduler.pool.dimensions(gname)
            nu, nv = dims[gname]
            scheduler.mutate(gname, [EdgeMutation(
                "toggle", int(rng.integers(nu)), int(rng.integers(nv)))])
        except Exception as exc:
            with lock:
                _classify(outcome, exc)
            return
        with lock:
            outcome.mutations += 1

    def settle(graph: str, p: int, q: int, future) -> None:
        # any exception, not just ReproError: the scheduler parks
        # whatever a loader or counter raised on the future, and a
        # workload drive must record it, never die with it
        try:
            result = future.result()
        except Exception as exc:
            with lock:
                _classify(outcome, exc)
            return
        ci95 = result.extras.get("ci95") \
            if result.algorithm == "approx" else None
        with lock:
            outcome.served.append(ServedQuery(graph, p, q, result.count,
                                              ci95=ci95))

    if spec.mode == "closed":
        budget = threading.Semaphore(spec.num_queries) \
            if stop_at is None else None

        def client(client_id: int) -> None:
            stream = _endless_stream(spec, seed_offset=client_id,
                                     stride=spec.clients)
            mut_rng = np.random.default_rng((spec.seed, 48879, client_id))
            for graph, p, q in stream:
                if stop_at is not None:
                    if time.monotonic() >= stop_at:
                        return
                elif not budget.acquire(blocking=False):
                    return
                if spec.mutate_fraction \
                        and mut_rng.random() < spec.mutate_fraction:
                    mutate_once(mut_rng)
                    continue
                try:
                    future = scheduler.submit(graph, p, q,
                                              method=spec.method,
                                              deadline=spec.deadline,
                                              accuracy=spec.accuracy)
                except Exception as exc:
                    with lock:
                        outcome.issued += 1
                        _classify(outcome, exc)
                    continue
                with lock:
                    outcome.issued += 1
                settle(graph, p, q, future)

        threads = [threading.Thread(target=client, args=(i,), daemon=True)
                   for i in range(spec.clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        interval = 1.0 / spec.rate_qps
        inflight: list[tuple[str, int, int, object]] = []
        mut_rng = np.random.default_rng((spec.seed, 48879, 0))
        n = spec.num_queries if stop_at is None \
            else max(1, int(spec.rate_qps * spec.duration_seconds * 2))
        for i, (graph, p, q) in enumerate(generate_requests(spec, n)):
            target = t0 + i * interval
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if stop_at is not None and time.monotonic() >= stop_at:
                break
            if spec.mutate_fraction \
                    and mut_rng.random() < spec.mutate_fraction:
                mutate_once(mut_rng)
                continue
            outcome.issued += 1
            try:
                inflight.append(
                    (graph, p, q,
                     scheduler.submit(graph, p, q, method=spec.method,
                                      deadline=spec.deadline,
                                      accuracy=spec.accuracy)))
            except Exception as exc:
                _classify(outcome, exc)
        for graph, p, q, future in inflight:
            settle(graph, p, q, future)

    outcome.wall_seconds = time.monotonic() - t0
    return outcome
