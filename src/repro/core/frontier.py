"""Level-synchronous frontier traversal for the batch-kernel engine.

The per-root recursion in :mod:`repro.core.gbl` / :mod:`repro.core.gbc`
batches one recursion node at a time, so a sparse graph hands the
engine frontiers of two or three candidates — far too little work to
amortise a kernel dispatch.  This module restores the paper's real
launch shape: **one call per search level across every root of a
chunk**.  The whole level lives in ragged CSR-style arrays (an
``offsets`` array delimiting one row per live task), candidates carry
their task id, and each level issues a constant number of pairwise
batch kernels (:meth:`repro.engine.base.KernelBackend.intersect_pairs`
and friends) regardless of how many roots or candidates are in flight.

Counts are bit-identical to the per-root recursion: the same
(candidate, adjacency-row) intersections run with the same ``>= q`` /
``>= p - depth - 1`` survivor guards, only grouped by level instead of
by root, and the binomial sum is an exact integer so regrouping cannot
change it.  The drivers route through here only for engines that
declare ``frontier = True`` (the native backend); ``sim`` keeps the
per-root path, whose call-for-call accounting is golden-pinned.
"""

from __future__ import annotations

import numpy as np

from repro.core.device_common import comb_sum
from repro.graph.csr import gather_rows, row_lengths, row_positions

__all__ = ["csr_frontier_count", "htb_frontier_count",
           "decode_bitmap_rows", "FRONTIER_ROOT_CHUNK"]

#: roots per frontier chunk — bounds the widest level's scratch arrays
#: (the flat needle gather is proportional to the level's comparison
#: count) while keeping enough tasks in flight to amortise dispatch
FRONTIER_ROOT_CHUNK = 4096

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=np.uint64)


def _offsets(lens: np.ndarray) -> np.ndarray:
    """Ragged-row offsets (length ``len(lens) + 1``) from row lengths."""
    off = np.zeros(len(lens) + 1, dtype=np.int64)
    np.cumsum(lens, out=off[1:])
    return off


def _select_rows(off: np.ndarray, flat: np.ndarray,
                 keep: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Keep a subset of ragged rows: new offsets plus the masked flat."""
    lens = np.diff(off)
    return _offsets(lens[keep]), flat[np.repeat(keep, lens)]


def decode_bitmap_rows(off: np.ndarray, idx: np.ndarray, val: np.ndarray,
                       word_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Decode ragged truncated-bitmap rows to ragged sorted vertex rows.

    One ``unpackbits`` over the whole level replaces a per-task
    ``BitmapSet.vertices()`` call.  Bit ``i`` of the flat uint64 view
    belongs to word ``i // 64``; only the low ``word_bits`` bits of a
    word are ever set, so the in-word position is the vertex residue.
    """
    num_rows = len(off) - 1
    if len(val) == 0:
        return _EMPTY_I64, np.zeros(num_rows, dtype=np.int64)
    flags = np.unpackbits(np.ascontiguousarray(val).view(np.uint8),
                          bitorder="little")
    nz = np.flatnonzero(flags)
    word, bit = nz >> 6, nz & 63
    verts = idx[word] * word_bits + bit
    pops = np.bitwise_count(val).astype(np.int64)
    csum = np.zeros(len(pops) + 1, dtype=np.int64)
    np.cumsum(pops, out=csum[1:])
    return verts, csum[off[1:]] - csum[off[:-1]]


def csr_frontier_count(engine, metrics, adj_off, adj_val, idx_off, idx_val,
                       roots, p: int, q: int, *, warps: int = 1,
                       root_chunk: int = FRONTIER_ROOT_CHUNK
                       ) -> tuple[int, int]:
    """Count over CSR candidate sets, one kernel call per search level.

    Returns ``(total, peak_words)`` where ``peak_words`` is the largest
    level footprint (live CL/CR rows plus staged children) in words —
    the BFS analogue of the recursion's working-set peak.
    """
    roots = np.asarray(roots, dtype=np.int64)
    if p == 1:
        return int(comb_sum(row_lengths(adj_off, roots), q)), 0
    total, peak = 0, 0
    for start in range(0, len(roots), root_chunk):
        chunk = roots[start:start + root_chunk]
        cr_val, cr_lens = gather_rows(adj_val, adj_off, chunk)
        cl_val, cl_lens = gather_rows(idx_val, idx_off, chunk)
        cr_off, cl_off = _offsets(cr_lens), _offsets(cl_lens)
        depth = 1
        while len(cl_off) > 1:
            level_words = len(cl_val) + len(cr_val)
            task_of = np.repeat(np.arange(len(cl_off) - 1, dtype=np.int64),
                                np.diff(cl_off))
            if depth + 1 == p:
                sizes = engine.intersect_pairs_sizes(
                    cr_off, cr_val, task_of, adj_off, adj_val, cl_val,
                    metrics, warps=warps)
                total += comb_sum(sizes, q)
                peak = max(peak, level_words)
                break
            new_cr_off, new_cr_val = engine.intersect_pairs(
                cr_off, cr_val, task_of, adj_off, adj_val, cl_val,
                metrics, warps=warps)
            keep = np.diff(new_cr_off) >= q
            if not keep.any():
                peak = max(peak, level_words + len(new_cr_val))
                break
            new_cl_off, new_cl_val = engine.intersect_pairs(
                cl_off, cl_val, task_of[keep], idx_off, idx_val,
                cl_val[keep], metrics, warps=warps)
            peak = max(peak, level_words + len(new_cr_val)
                       + len(new_cl_val))
            live = np.diff(new_cl_off) >= p - depth - 1
            cl_off, cl_val = _select_rows(new_cl_off, new_cl_val, live)
            cr_off, cr_val = _select_rows(
                *_select_rows(new_cr_off, new_cr_val, keep), live)
            depth += 1
    return total, peak


def htb_frontier_count(engine, metrics, htb1, htb2, roots, p: int, q: int,
                       *, warps: int = 1,
                       root_chunk: int = FRONTIER_ROOT_CHUNK
                       ) -> tuple[int, int]:
    """Count over truncated-bitmap candidate sets, one call per level.

    ``htb1`` holds the anchored adjacency bitmaps (the CR side),
    ``htb2`` the rank-filtered two-hop bitmaps (the CL side) — the same
    pair the per-root HTB kernel walks.  Returns ``(total,
    peak_words)`` with the footprint measured in stored (idx, val)
    word pairs, matching the recursion's 2-words-per-stored-word rule.
    """
    roots = np.asarray(roots, dtype=np.int64)
    word_bits = htb1.word_bits
    if p == 1:
        flat_val, lens = gather_rows(htb1.val, htb1.off, roots)
        pops = np.bitwise_count(flat_val).astype(np.int64)
        csum = np.zeros(len(pops) + 1, dtype=np.int64)
        np.cumsum(pops, out=csum[1:])
        ends = np.cumsum(lens)
        return int(comb_sum(csum[ends] - csum[ends - lens], q)), 0
    total, peak = 0, 0
    for start in range(0, len(roots), root_chunk):
        chunk = roots[start:start + root_chunk]
        cr_pos, cr_lens = row_positions(htb1.off, chunk)
        cr_idx, cr_val = htb1.idx[cr_pos], htb1.val[cr_pos]
        cl_pos, cl_lens = row_positions(htb2.off, chunk)
        cl_idx, cl_val = htb2.idx[cl_pos], htb2.val[cl_pos]
        cr_off, cl_off = _offsets(cr_lens), _offsets(cl_lens)
        depth = 1
        while len(cl_off) > 1:
            level_words = 2 * (len(cl_idx) + len(cr_idx))
            cand, cand_lens = decode_bitmap_rows(cl_off, cl_idx, cl_val,
                                                 word_bits)
            task_of = np.repeat(np.arange(len(cl_off) - 1, dtype=np.int64),
                                cand_lens)
            if depth + 1 == p:
                counts = engine.bitmap_pairs_counts(
                    cr_off, cr_idx, cr_val, task_of, htb1, cand,
                    metrics, warps=warps)
                total += comb_sum(counts, q)
                peak = max(peak, level_words)
                break
            ncr_off, ncr_idx, ncr_val, ncr_counts = engine.bitmap_pairs(
                cr_off, cr_idx, cr_val, task_of, htb1, cand,
                metrics, warps=warps)
            keep = ncr_counts >= q
            if not keep.any():
                peak = max(peak, level_words + 2 * len(ncr_idx))
                break
            ncl_off, ncl_idx, ncl_val, ncl_counts = engine.bitmap_pairs(
                cl_off, cl_idx, cl_val, task_of[keep], htb2, cand[keep],
                metrics, warps=warps)
            peak = max(peak, level_words + 2 * len(ncr_idx)
                       + 2 * len(ncl_idx))
            live = ncl_counts >= p - depth - 1
            cl_off, cl_idx = _select_rows(ncl_off, ncl_idx, live)
            _, cl_val = _select_rows(ncl_off, ncl_val, live)
            kept_off, kept_idx = _select_rows(ncr_off, ncr_idx, keep)
            _, kept_val = _select_rows(ncr_off, ncr_val, keep)
            cr_off, cr_idx = _select_rows(kept_off, kept_idx, live)
            _, cr_val = _select_rows(kept_off, kept_val, live)
            depth += 1
    return total, peak
