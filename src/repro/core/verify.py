"""Exact brute-force biclique counting — the ground truth for every test.

Enumerates p-subsets of U depth-first with incremental common-neighbour
intersection, adding C(|common|, q) at each full subset.  Exponential, but
fine for the test-scale graphs; every production algorithm in the package
is validated against this.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.core.counts import BicliqueQuery
from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V

__all__ = ["brute_force_count", "brute_force_count_both_anchors"]


def _count_anchored(graph: BipartiteGraph, p: int, q: int) -> int:
    """Count bicliques expanding p vertices on layer U of ``graph``."""
    num_u = graph.num_u
    total = 0

    def extend(start: int, depth: int, common: np.ndarray) -> None:
        nonlocal total
        if depth == p:
            if len(common) >= q:
                total += comb(len(common), q)
            return
        # still need p - depth vertices from [start, num_u)
        for u in range(start, num_u - (p - depth) + 1):
            nxt = np.intersect1d(common, graph.neighbors(LAYER_U, u),
                                 assume_unique=True) if depth else \
                graph.neighbors(LAYER_U, u)
            if len(nxt) < q:
                continue
            extend(u + 1, depth + 1, nxt)

    extend(0, 0, np.empty(0, dtype=np.int64))
    return total


def brute_force_count(graph: BipartiteGraph, query: BicliqueQuery,
                      anchor: str = LAYER_U) -> int:
    """Exact (p, q)-biclique count via exhaustive subset enumeration.

    ``anchor`` picks which layer the subsets are drawn from; the result is
    identical either way (checked by
    :func:`brute_force_count_both_anchors`), so tests can pick the cheaper
    side.
    """
    if anchor == LAYER_U:
        return _count_anchored(graph, query.p, query.q)
    return _count_anchored(graph.swapped(), query.q, query.p)


def brute_force_count_both_anchors(graph: BipartiteGraph,
                                   query: BicliqueQuery) -> int:
    """Count from both anchors and assert agreement (self-check)."""
    a = brute_force_count(graph, query, LAYER_U)
    b = brute_force_count(graph, query, LAYER_V)
    if a != b:
        raise AssertionError(
            f"brute force disagrees with itself: {a} (U) vs {b} (V)")
    return a
