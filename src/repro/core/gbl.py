"""GBL — the naive GPU baseline of §III-B, on the simulated device.

One thread block per root (strided ``i += gridDim`` assignment), pure DFS
backtracking, and parallel binary search over CSR adjacency lists for both
candidate-set updates.  Every binary-search probe gathers from global
memory, so transaction counts blow up with list length and tree depth —
the inefficiency HTB was designed against (Example 5).
"""

from __future__ import annotations

import time
from math import comb

import numpy as np

from repro.core.counts import BicliqueQuery, DeviceRunResult
from repro.core.device_common import (
    assign_roots_to_blocks,
    comb_sum,
    prepare_device_inputs,
    resolve_native_pack,
)
from repro.core.frontier import csr_frontier_count
from repro.graph.csr import row_lengths
from repro.engine.base import KernelBackend, resolve_backend
from repro.gpu.costmodel import effective_cycles, kernel_seconds
from repro.plan.registry import CostSignals, MethodSpec, register_method
from repro.gpu.device import DeviceSpec, rtx_3090
from repro.gpu.metrics import KernelMetrics
from repro.gpu.workqueue import simulate_blocks
from repro.graph.bipartite import BipartiteGraph, LAYER_U

__all__ = ["gbl_count"]


def _gbl_root_kernel(inputs, root: int, spec: DeviceSpec,
                     engine: KernelBackend,
                     pack=None) -> tuple[int, KernelMetrics]:
    """DFS search tree of one root with binary-search intersections.

    Each recursion level submits its whole frontier (every candidate's
    CR update, then the survivors' CL updates) through the engine's
    batch entry points — one kernel call per level instead of one per
    candidate, the launch shape of the paper's kernels.  The default
    batch implementations loop the scalar kernel with identical
    arguments, so simulated metrics are unchanged.
    """
    g = inputs.graph
    index = inputs.index
    if pack is not None:
        adj_off, adj_val = pack.adj_offsets, pack.adj_values
        idx_off, idx_val = pack.idx_offsets, pack.idx_values
    else:
        adj_off, adj_val = g.u_offsets, g.u_neighbors
        idx_off, idx_val = index.offsets, index.neighbors
    p, q = inputs.p, inputs.q
    warps = spec.warps_per_block
    metrics = engine.new_metrics()

    cr0 = g.neighbors(LAYER_U, root)
    cl0 = index.of(root)
    # initial coalesced loads of N(root) and N2^q(root)
    engine.charge_stream(metrics, len(cr0) + len(cl0))
    total = 0
    if p == 1:
        return comb(len(cr0), q), metrics

    def rec(depth: int, cl: np.ndarray, cr: np.ndarray) -> None:
        nonlocal total
        if depth + 1 == p:
            # leaf level: only intersection sizes feed the binomial sum
            sizes = engine.intersect_sizes(cr, adj_off, adj_val, cl,
                                           metrics, warps=warps)
            total += comb_sum(sizes, q)
            return
        new_crs = engine.intersect_many(cr, adj_off, adj_val, cl,
                                        metrics, warps=warps)
        keep = [j for j, arr in enumerate(new_crs) if len(arr) >= q]
        if not keep:
            return
        new_cls = engine.intersect_many(cl, idx_off, idx_val, cl[keep],
                                        metrics, warps=warps)
        need = p - depth - 1
        for j, new_cl in zip(keep, new_cls):
            if len(new_cl) < need:
                continue
            rec(depth + 1, new_cl, new_crs[j])

    rec(1, cl0, cr0)
    return total, metrics


def _gbl_chunk_kernel(inputs, positions, spec: DeviceSpec,
                      engine: KernelBackend, pack=None
                      ) -> tuple[int, list[float], KernelMetrics]:
    """Run the per-root kernel over a chunk of root positions."""
    total = 0
    cycles: list[float] = []
    agg = KernelMetrics()
    for pos in positions:
        got, metrics = _gbl_root_kernel(inputs, int(inputs.roots[pos]),
                                        spec, engine, pack)
        total += got
        cycles.append(effective_cycles(metrics, spec))
        agg.merge(metrics)
    return total, cycles, agg


def gbl_count(graph: BipartiteGraph, query: BicliqueQuery,
              spec: DeviceSpec | None = None,
              layer: str | None = None,
              num_blocks: int | None = None,
              backend: KernelBackend | str | None = None,
              workers: int | None = None,
              session=None) -> DeviceRunResult:
    """Count (p, q)-bicliques with the GPU baseline on the simulator.

    ``session=`` (a :class:`repro.query.GraphSession`) serves the
    priority order and two-hop index from the per-graph caches.
    """
    spec = spec or rtx_3090()
    engine = resolve_backend(backend, spec, workers=workers)
    wall0 = time.perf_counter()
    inputs = prepare_device_inputs(graph, query, layer, session=session)
    pack = resolve_native_pack(engine, inputs, session=session)
    blocks = num_blocks or spec.blocks_per_launch

    weights = row_lengths(inputs.index.offsets,
                          inputs.roots).astype(np.float64)
    total = 0
    per_root_cycles = [0.0] * len(inputs.roots)
    agg = KernelMetrics()
    if engine.parallel:
        for idxs, (part_total, part_cycles, part_agg) in engine.map_shards(
                lambda idxs: _gbl_chunk_kernel(inputs, idxs, spec, engine,
                                               pack),
                len(inputs.roots), weights=weights):
            total += part_total
            agg.merge(part_agg)
            for pos, i in enumerate(idxs):
                per_root_cycles[i] = part_cycles[pos]
    elif engine.frontier:
        # level-synchronous traversal: one pairwise kernel call per
        # search level across every root (identical counts, none of the
        # per-node dispatch the recursion pays)
        if pack is not None:
            adj = (pack.adj_offsets, pack.adj_values)
            idx = (pack.idx_offsets, pack.idx_values)
        else:
            adj = (inputs.graph.u_offsets, inputs.graph.u_neighbors)
            idx = (inputs.index.offsets, inputs.index.neighbors)
        agg = engine.new_metrics()
        total, _ = csr_frontier_count(
            engine, agg, adj[0], adj[1], idx[0], idx[1], inputs.roots,
            inputs.p, inputs.q, warps=spec.warps_per_block)
    else:
        total, per_root_cycles, agg = _gbl_chunk_kernel(
            inputs, range(len(inputs.roots)), spec, engine, pack)

    if engine.frontier:
        # no per-root cycle profile exists on the frontier path (the
        # engine is uninstrumented and roots run level-batched, not
        # block-by-block), so there is no schedule to simulate
        sched = simulate_blocks([], spec, stealing=False)
    else:
        assignment = assign_roots_to_blocks(inputs.roots, weights, blocks,
                                            "interleave")
        costs = [[per_root_cycles[i] for i in blk] for blk in assignment]
        sched = simulate_blocks(costs, spec, stealing=False)

    return DeviceRunResult(
        algorithm="GBL",
        query=query,
        count=total,
        wall_seconds=time.perf_counter() - wall0,
        anchored_layer=inputs.anchored_layer,
        metrics=agg,
        makespan_cycles=sched.makespan_cycles,
        device_seconds=spec.seconds(sched.makespan_cycles),
        steals=sched.steals,
        breakdown={
            "prepare_seconds": inputs.prepare_seconds,
            "imbalance": sched.imbalance,
            "utilization": agg.utilization,
        },
        backend=engine.name,
        backend_instrumented=engine.instrumented,
    )


def _predicted_seconds(signals: CostSignals) -> float:
    """GBL on the simulated device prices through the SIMT cost model:
    per-element binary-search intersections make roughly one global
    transaction per comparison and leave most warp lanes idle.  On the
    uninstrumented engines its headline is host wall time — the same
    enumeration as BCL plus the device-bookkeeping overhead."""
    if signals.backend == "sim":
        metrics = KernelMetrics(
            global_transactions=int(signals.comparisons) + 1,
            comparisons=int(signals.comparisons * 2),
            alu_ops=int(signals.comparisons),
        )
        metrics.record_slots(active=1, total=4)      # sparse warp lanes
        return kernel_seconds(metrics, signals.device)
    overhead = GBL_NATIVE_OVERHEAD if signals.backend == "native" \
        else GBL_HOST_OVERHEAD
    enum = overhead * signals.enum_seconds(signals.merge_calls,
                                           signals.comparisons)
    return signals.priority_prepare_seconds() + signals.sharded(enum)


#: fast-backend wall overhead of the device bookkeeping vs plain BCL
GBL_HOST_OVERHEAD = 1.25
#: native-backend overhead: frontier batching amortises the per-call
#: bookkeeping across each level's kernel submission
GBL_NATIVE_OVERHEAD = 1.1

register_method(MethodSpec(
    name="GBL",
    runner=gbl_count,
    accepts=("spec", "layer", "backend", "workers", "session"),
    instrumented_metrics=True,
    device_model=True,
    cost=_predicted_seconds,
    order=40,
    summary="naive GPU port: binary-search intersections (§III-B)",
))
