"""BCL — the state-of-the-art CPU algorithm of Yang et al. [53] (§III-A).

Backtracking enumeration anchored on one layer: partial result ``L`` grows
one vertex at a time from the candidate set ``CL`` (mutual 2-hop
neighbours sharing >= q common neighbours), while ``CR`` (common 1-hop
neighbours) shrinks by intersection; reaching |L| = p contributes
C(|CR|, q) bicliques.  Duplicate suppression uses the vertex priority of
Definition 2: the 2-hop index only stores lower-priority (higher-rank)
neighbours, so each L is generated exactly once in priority order.

The Fig. 1(b) breakdown (wall time and comparison counts split into the
2-hop candidate intersections — ``comp_s``: CL updates + N2^q
construction — and the 1-hop intersections — ``comp_h``: CR updates, with
everything else under ``other``) is *opt-in*: it runs by default on the
instrumented simulated backend, and is compiled out entirely when the
caller only wants a count (``backend="fast"`` or ``instrument=False``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from math import comb

import numpy as np

from repro.core.counts import BicliqueQuery, CountResult, anchored_view
from repro.engine.base import KernelBackend, resolve_backend
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.priority import priority_order, rank_from_order
from repro.graph.twohop import TwoHopIndex, build_two_hop_index
from repro.plan.registry import CostSignals, MethodSpec, register_method

__all__ = ["bcl_count", "bcl_per_root_profile", "BCLProfile"]


@dataclass
class BCLProfile:
    """Per-run instrumentation of BCL (feeds Fig. 1(b) and BCLP)."""

    seconds_two_hop: float = 0.0     # "Comp. S": shared 2-hop searches
    seconds_one_hop: float = 0.0     # "Comp. H'": shared 1-hop searches
    seconds_total: float = 0.0
    comparisons_two_hop: int = 0
    comparisons_one_hop: int = 0
    per_root_seconds: list[float] = field(default_factory=list)
    per_root_counts: list[int] = field(default_factory=list)
    root_ids: list[int] = field(default_factory=list)

    @property
    def seconds_other(self) -> float:
        return max(self.seconds_total
                   - self.seconds_two_hop - self.seconds_one_hop, 0.0)

    def fraction_intersections(self) -> float:
        """Share of runtime spent searching shared 1-/2-hop neighbours."""
        if self.seconds_total <= 0:
            return 0.0
        return (self.seconds_two_hop + self.seconds_one_hop) / self.seconds_total


def _enumerate_root(graph: BipartiteGraph, index: TwoHopIndex,
                    root: int, p: int, q: int,
                    profile: BCLProfile, engine: KernelBackend,
                    instrument: bool) -> int:
    """Count all bicliques whose highest-priority U-vertex is ``root``."""
    cr0 = graph.neighbors(LAYER_U, root)
    if len(cr0) < q:
        return 0
    if p == 1:
        return comb(len(cr0), q)
    cl0 = index.of(root)
    if len(cl0) < p - 1:
        return 0
    total = 0
    cmp_cell = [0]

    def rec(depth: int, cl: np.ndarray, cr: np.ndarray) -> None:
        nonlocal total
        for u in cl:
            u = int(u)
            if instrument:
                t0 = time.perf_counter()
                cmp_cell[0] = 0
                new_cr = engine.merge(cr, graph.neighbors(LAYER_U, u),
                                      cmp_cell)
                profile.seconds_one_hop += time.perf_counter() - t0
                profile.comparisons_one_hop += cmp_cell[0]
            else:
                new_cr = engine.merge(cr, graph.neighbors(LAYER_U, u))
            if len(new_cr) < q:
                continue
            if depth + 1 == p:
                total += comb(len(new_cr), q)
                continue
            if instrument:
                t0 = time.perf_counter()
                cmp_cell[0] = 0
                new_cl = engine.merge(cl, index.of(u), cmp_cell)
                profile.seconds_two_hop += time.perf_counter() - t0
                profile.comparisons_two_hop += cmp_cell[0]
            else:
                new_cl = engine.merge(cl, index.of(u))
            if len(new_cl) < p - depth - 1:
                continue
            rec(depth + 1, new_cl, new_cr)

    rec(1, cl0, cr0)
    return total


def _prepare(graph: BipartiteGraph, query: BicliqueQuery,
             layer: str | None, profile: BCLProfile, session=None):
    """Anchor, rank, and build the rank-filtered 2-hop index (timed as
    2-hop search work, which is what it is).  A
    :class:`repro.query.GraphSession` serves order and index from its
    caches instead — identical structures, built at most once."""
    g, p, q, anchored = anchored_view(graph, query, layer)
    t0 = time.perf_counter()
    if session is not None:
        session.check_owns(graph)
        g = session.anchored(anchored)
        order = session.priority_order(anchored, q)
        index = session.two_hop_index(anchored, q)
    else:
        order = priority_order(g, LAYER_U, q)
        rank = rank_from_order(order)
        index = build_two_hop_index(g, LAYER_U, q, min_priority_rank=rank)
    profile.seconds_two_hop += time.perf_counter() - t0
    return g, p, q, anchored, order, index


def _enumerate_chunk(g: BipartiteGraph, index: TwoHopIndex,
                     roots: list[int], p: int, q: int,
                     engine: KernelBackend, instrument: bool) -> BCLProfile:
    """Enumerate a chunk of roots into a fresh partial profile."""
    part = BCLProfile()
    for root in roots:
        r0 = time.perf_counter()
        got = _enumerate_root(g, index, root, p, q, part, engine, instrument)
        part.per_root_seconds.append(time.perf_counter() - r0)
        part.per_root_counts.append(got)
        part.root_ids.append(root)
    return part


def _run_roots(g: BipartiteGraph, index: TwoHopIndex, order,
               p: int, q: int, engine: KernelBackend, instrument: bool,
               profile: BCLProfile) -> int:
    """Enumerate every promising root into ``profile``; returns the count.

    On a parallel engine the promising roots are sharded over worker
    processes (weights: second-level sizes, the paper's edge-oriented
    proxy) and the partial profiles are scattered back into priority
    order, so per-root data and the total are independent of worker
    count and scheduling.
    """
    selected = [int(root) for root in order
                if not (p > 1 and index.size(int(root)) < p - 1)]

    if engine.parallel and selected:
        weights = np.asarray([index.size(r) for r in selected],
                             dtype=np.float64)
        n = len(selected)
        secs, cnts = [0.0] * n, [0] * n
        for idxs, part in engine.map_shards(
                lambda idxs: _enumerate_chunk(
                    g, index, [selected[i] for i in idxs], p, q,
                    engine, instrument),
                n, weights=weights):
            profile.seconds_one_hop += part.seconds_one_hop
            profile.seconds_two_hop += part.seconds_two_hop
            profile.comparisons_one_hop += part.comparisons_one_hop
            profile.comparisons_two_hop += part.comparisons_two_hop
            for pos, i in enumerate(idxs):
                secs[i] = part.per_root_seconds[pos]
                cnts[i] = part.per_root_counts[pos]
        profile.per_root_seconds.extend(secs)
        profile.per_root_counts.extend(cnts)
        profile.root_ids.extend(selected)
        return sum(cnts)

    part = _enumerate_chunk(g, index, selected, p, q, engine, instrument)
    profile.seconds_one_hop += part.seconds_one_hop
    profile.seconds_two_hop += part.seconds_two_hop
    profile.comparisons_one_hop += part.comparisons_one_hop
    profile.comparisons_two_hop += part.comparisons_two_hop
    profile.per_root_seconds.extend(part.per_root_seconds)
    profile.per_root_counts.extend(part.per_root_counts)
    profile.root_ids.extend(part.root_ids)
    return sum(part.per_root_counts)


def bcl_count(graph: BipartiteGraph, query: BicliqueQuery,
              layer: str | None = None,
              backend: KernelBackend | str | None = None,
              instrument: bool | None = None,
              workers: int | None = None,
              session=None) -> CountResult:
    """Run BCL and return the exact count.

    ``instrument`` controls the per-call Fig. 1(b) timers and comparison
    cells; it defaults to the backend's ``instrumented`` flag (on for the
    simulated engine, off for the fast one), so an uninstrumented run
    reports an empty breakdown but an identical count.  With the parallel
    engine (``backend="par"`` or ``workers=``) the promising roots are
    sharded over worker processes — the count is identical regardless.
    ``session=`` (a :class:`repro.query.GraphSession`) serves the
    priority order and two-hop index from the per-graph caches.
    """
    engine = resolve_backend(backend, workers=workers)
    if instrument is None:
        instrument = engine.instrumented
    profile = BCLProfile()
    start = time.perf_counter()
    g, p, q, anchored, order, index = _prepare(graph, query, layer, profile,
                                               session)
    total = _run_roots(g, index, order, p, q, engine, instrument, profile)
    profile.seconds_total = time.perf_counter() - start
    breakdown = {
        "comp_s_seconds": profile.seconds_two_hop,
        "comp_h_seconds": profile.seconds_one_hop,
        "other_seconds": profile.seconds_other,
        "intersection_fraction": profile.fraction_intersections(),
    } if instrument else {}
    extras = {
        "comparisons_two_hop": float(profile.comparisons_two_hop),
        "comparisons_one_hop": float(profile.comparisons_one_hop),
    } if instrument else {}
    return CountResult(
        algorithm="BCL",
        query=query,
        count=total,
        wall_seconds=profile.seconds_total,
        anchored_layer=anchored,
        breakdown=breakdown,
        extras=extras,
        backend=engine.name,
        backend_instrumented=engine.instrumented,
    )


def bcl_per_root_profile(graph: BipartiteGraph, query: BicliqueQuery,
                         layer: str | None = None,
                         backend: KernelBackend | str | None = None,
                         instrument: bool | None = None,
                         workers: int | None = None,
                         session=None) -> BCLProfile:
    """Run BCL and return the full per-root profile (BCLP's input).

    Per-root wall times are always collected (they are the profile's
    purpose); the per-call breakdown follows ``instrument`` as in
    :func:`bcl_count`.
    """
    engine = resolve_backend(backend, workers=workers)
    if instrument is None:
        instrument = engine.instrumented
    profile = BCLProfile()
    start = time.perf_counter()
    g, p, q, _, order, index = _prepare(graph, query, layer, profile,
                                        session)
    _run_roots(g, index, order, p, q, engine, instrument, profile)
    profile.seconds_total = time.perf_counter() - start
    return profile


def _predicted_seconds(signals: CostSignals) -> float:
    """BCL: priority-ordered serial enumeration after the full prepare."""
    enum = signals.enum_seconds(signals.merge_calls, signals.comparisons)
    return signals.priority_prepare_seconds() + signals.sharded(enum)


register_method(MethodSpec(
    name="BCL",
    runner=bcl_count,
    accepts=("layer", "backend", "workers", "session"),
    cost=_predicted_seconds,
    order=20,
    summary="priority-ordered CPU state of the art (§III-A)",
))
