"""GBC — GPU-based Biclique Counting (Algorithm 1), on the simulated device.

The full system of the paper: hybrid DFS-BFS exploration (§IV), HTB
truncated-bitmap intersections (§V-A), and joint pre-runtime + runtime
load balancing (§V-C).  Each ingredient can be disabled independently,
which yields the ablation variants of Fig. 9:

* ``hybrid=False``  -> NH (pure DFS, per-child warp rounds, global keys)
* ``use_htb=False`` -> NB (CSR parallel binary search)
* ``balance="none"`` -> NW (naive contiguous split, no stealing)

Counting is exact regardless of the toggles — they change the simulated
execution (transactions, slot occupancy, shared-memory traffic, makespan),
which is precisely what the paper's ablation measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from math import comb

import numpy as np

from repro.core.counts import BicliqueQuery, DeviceRunResult
from repro.core.device_common import (
    BALANCE_STRATEGIES,
    assign_roots_to_blocks,
    comb_sum,
    prepare_device_inputs,
    resolve_native_pack,
)
from repro.core.frontier import csr_frontier_count, htb_frontier_count
from repro.graph.csr import row_lengths
from repro.engine.base import KernelBackend, resolve_backend
from repro.errors import QueryError
from repro.gpu.costmodel import effective_cycles, kernel_seconds
from repro.gpu.device import DeviceSpec, rtx_3090
from repro.gpu.metrics import KernelMetrics
from repro.gpu.workqueue import simulate_blocks
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.htb.htb import HTB, BitmapSet, htb_from_graph, htb_from_two_hop
from repro.plan.registry import CostSignals, MethodSpec, register_method

__all__ = ["GBCOptions", "gbc_count", "gbc_variant"]


@dataclass(frozen=True)
class GBCOptions:
    """Feature toggles and tuning knobs for a GBC run."""

    hybrid: bool = True            # hybrid DFS-BFS exploration (§IV)
    use_htb: bool = True           # HTB intersections (§V-A)
    balance: str = "joint"         # none | pre | runtime | joint (§V-C)
    num_blocks: int | None = None  # defaults to the device's resident blocks
    batch_limit: int | None = None # cap on children per BFS batch (testing)

    def __post_init__(self) -> None:
        if self.balance not in BALANCE_STRATEGIES:
            raise QueryError(
                f"balance must be one of {BALANCE_STRATEGIES}, "
                f"got {self.balance!r}")

    @property
    def variant_name(self) -> str:
        """The paper's name for this configuration (GBC/NH/NB/NW)."""
        if not self.hybrid and self.use_htb and self.balance == "joint":
            return "GBC-NH"
        if self.hybrid and not self.use_htb and self.balance == "joint":
            return "GBC-NB"
        if self.hybrid and self.use_htb and self.balance == "none":
            return "GBC-NW"
        if self.hybrid and self.use_htb and self.balance == "joint":
            return "GBC"
        return "GBC-custom"


def gbc_variant(name: str) -> GBCOptions:
    """Options for the paper's named variants: GBC, NH, NB, NW."""
    table = {
        "GBC": GBCOptions(),
        "NH": GBCOptions(hybrid=False),
        "NB": GBCOptions(use_htb=False),
        "NW": GBCOptions(balance="none"),
    }
    if name not in table:
        raise QueryError(f"unknown GBC variant {name!r}; "
                         f"expected one of {sorted(table)}")
    return table[name]


class _WorkingSet:
    """Tracks the kernel's intermediate-result footprint in words.

    DFS holds one CL/CR pair per search level; hybrid BFS additionally
    stages the duplicated parent set plus the batch's child results —
    the 1.3x memory overhead of Fig. 11 made measurable.
    """

    def __init__(self) -> None:
        self.current = 0
        self.peak = 0

    def push(self, words: int) -> None:
        self.current += words
        if self.current > self.peak:
            self.peak = self.current

    def pop(self, words: int) -> None:
        self.current -= words


@dataclass
class _RootKernel:
    """Per-root search executor (one simulated thread block)."""

    inputs: object
    spec: DeviceSpec
    opts: GBCOptions
    engine: KernelBackend
    htb1: HTB | None
    htb2: HTB | None
    pack: object = None
    metrics: KernelMetrics = field(default_factory=KernelMetrics)
    working: _WorkingSet = field(default_factory=_WorkingSet)
    total: int = 0

    # -- representation helpers ---------------------------------------
    def _batch_size(self, cl_words: int) -> int:
        """⌊|B| / |CL[l-1]|⌋ with B the shared-memory buffer (§IV)."""
        if not self.opts.hybrid:
            return 1
        buffer_words = self.spec.shared_mem_per_block // 4
        size = max(1, buffer_words // max(cl_words, 1))
        if self.opts.batch_limit is not None:
            size = min(size, self.opts.batch_limit)
        return size

    # -- HTB path ------------------------------------------------------
    def _run_htb(self, root: int, p: int, q: int) -> None:
        htb1, htb2 = self.htb1, self.htb2
        cr0 = htb1.view(root)
        cl0 = htb2.view(root)
        self.engine.charge_stream(self.metrics,
                                  2 * (cr0.num_words + cl0.num_words))
        if p == 1:
            self.total += comb(cr0.count(), q)
            return
        self._rec_htb(1, cl0, cr0, p, q)

    def _rec_htb(self, depth: int, cl: BitmapSet, cr: BitmapSet,
                 p: int, q: int) -> None:
        children = cl.vertices()
        parent_words = 2 * (cl.num_words + cr.num_words)
        self.working.push(parent_words)
        batch = self._batch_size(parent_words)
        hybrid = self.opts.hybrid and batch > 1
        warps = self.spec.warps_per_block
        for start in range(0, len(children), batch):
            group = children[start:start + batch]
            if hybrid:
                # one global->shared staging of the parent sets, duplicated
                # |group| times in the shared buffer
                self.engine.charge_stream(self.metrics, parent_words)
                dup_words = parent_words * len(group)
                self.engine.note_shared_peak(self.metrics, 4 * dup_words)
                self.working.push(dup_words)
                self.engine.record_work(
                    self.metrics,
                    len(group) * max(cl.num_words, cr.num_words),
                    self.spec.warps_per_block)
            if depth + 1 == p:
                # leaf level: only popcounts feed the binomial sum —
                # sizes below q contribute comb(.) == 0, like the
                # per-child guard they replace
                counts = self.engine.bitmap_intersect_counts(
                    cr, self.htb1, group, self.metrics, warps=warps,
                    keys_in_shared=hybrid, record_slots=not hybrid)
                self.total += comb_sum(counts, q)
                if hybrid:
                    self.working.pop(parent_words * len(group))
                continue
            new_crs = self.engine.bitmap_intersect_many(
                cr, self.htb1, group, self.metrics, warps=warps,
                keys_in_shared=hybrid, record_slots=not hybrid)
            keep = [j for j, s in enumerate(new_crs) if s.count() >= q]
            results = []
            if keep:
                new_cls = self.engine.bitmap_intersect_many(
                    cl, self.htb2, group[keep], self.metrics,
                    warps=warps,
                    keys_in_shared=hybrid, record_slots=not hybrid)
                need = p - depth - 1
                for j, new_cl in zip(keep, new_cls):
                    if new_cl.count() < need:
                        continue
                    results.append((new_cl, new_crs[j]))
            if hybrid:
                self.working.pop(parent_words * len(group))
            for new_cl, new_cr in results:
                self._rec_htb(depth + 1, new_cl, new_cr, p, q)
        self.working.pop(parent_words)

    # -- CSR path (NB variant) ----------------------------------------
    def _run_csr(self, root: int, p: int, q: int) -> None:
        g = self.inputs.graph
        index = self.inputs.index
        cr0 = g.neighbors(LAYER_U, root)
        cl0 = index.of(root)
        self.engine.charge_stream(self.metrics, len(cr0) + len(cl0))
        if p == 1:
            self.total += comb(len(cr0), q)
            return
        self._rec_csr(1, cl0, cr0, p, q)

    def _rec_csr(self, depth: int, cl: np.ndarray, cr: np.ndarray,
                 p: int, q: int) -> None:
        if self.pack is not None:
            adj_off, adj_val = self.pack.adj_offsets, self.pack.adj_values
            idx_off, idx_val = self.pack.idx_offsets, self.pack.idx_values
        else:
            g = self.inputs.graph
            index = self.inputs.index
            adj_off, adj_val = g.u_offsets, g.u_neighbors
            idx_off, idx_val = index.offsets, index.neighbors
        parent_words = len(cl) + len(cr)
        self.working.push(parent_words)
        batch = self._batch_size(parent_words)
        hybrid = self.opts.hybrid and batch > 1
        warps = self.spec.warps_per_block
        for start in range(0, len(cl), batch):
            group = cl[start:start + batch]
            if hybrid:
                self.engine.charge_stream(self.metrics, parent_words)
                dup_words = parent_words * len(group)
                self.engine.note_shared_peak(self.metrics, 4 * dup_words)
                self.working.push(dup_words)
                self.engine.record_work(self.metrics,
                                        len(group) * max(len(cl), len(cr)),
                                        self.spec.warps_per_block)
            if depth + 1 == p:
                sizes = self.engine.intersect_sizes(
                    cr, adj_off, adj_val, group, self.metrics,
                    warps=warps, record_slots=not hybrid)
                self.total += comb_sum(sizes, q)
                if hybrid:
                    self.working.pop(parent_words * len(group))
                continue
            new_crs = self.engine.intersect_many(
                cr, adj_off, adj_val, group, self.metrics,
                warps=warps, record_slots=not hybrid)
            keep = [j for j, arr in enumerate(new_crs) if len(arr) >= q]
            results = []
            if keep:
                new_cls = self.engine.intersect_many(
                    cl, idx_off, idx_val, group[keep], self.metrics,
                    warps=warps, record_slots=not hybrid)
                need = p - depth - 1
                for j, new_cl in zip(keep, new_cls):
                    if len(new_cl) < need:
                        continue
                    results.append((new_cl, new_crs[j]))
            if hybrid:
                self.working.pop(parent_words * len(group))
            for new_cl, new_cr in results:
                self._rec_csr(depth + 1, new_cl, new_cr, p, q)
        self.working.pop(parent_words)

    # -------------------------------------------------------------
    def run(self, root: int, p: int, q: int) -> None:
        if self.opts.use_htb:
            self._run_htb(root, p, q)
        else:
            self._run_csr(root, p, q)


def _gbc_chunk_kernel(inputs, positions, spec: DeviceSpec, opts: GBCOptions,
                      engine: KernelBackend, htb1: HTB | None,
                      htb2: HTB | None, pack=None
                      ) -> tuple[int, list[float], KernelMetrics, int]:
    """Run the per-root kernel over a chunk of root positions."""
    total = 0
    cycles: list[float] = []
    agg = KernelMetrics()
    peak_words = 0
    for pos in positions:
        kernel = _RootKernel(inputs=inputs, spec=spec, opts=opts,
                             engine=engine, htb1=htb1, htb2=htb2,
                             pack=pack, metrics=engine.new_metrics())
        kernel.run(int(inputs.roots[pos]), inputs.p, inputs.q)
        total += kernel.total
        cycles.append(effective_cycles(kernel.metrics, spec))
        agg.merge(kernel.metrics)
        peak_words = max(peak_words, kernel.working.peak)
    return total, cycles, agg, peak_words


def gbc_count(graph: BipartiteGraph, query: BicliqueQuery,
              spec: DeviceSpec | None = None,
              options: GBCOptions | None = None,
              layer: str | None = None,
              backend: KernelBackend | str | None = None,
              workers: int | None = None,
              session=None) -> DeviceRunResult:
    """Count (p, q)-bicliques with GBC on the simulated device.

    Returns a :class:`DeviceRunResult` whose ``breakdown`` carries the
    Table V components (HTB transform seconds, counting makespan) and the
    utilisation/imbalance diagnostics used across §VII.  With
    ``backend="fast"`` the count is identical but all device accounting
    (metrics, makespan, device seconds) stays zero — use ``wall_seconds``.
    With ``backend="par"`` (or ``workers=``) the root set additionally
    shards over worker processes, merged deterministically.  With a
    :class:`repro.query.GraphSession` as ``session=``, the priority
    order, two-hop index and both HTBs come from the session's caches —
    built once and shared across every query of a batch.
    """
    spec = spec or rtx_3090()
    engine = resolve_backend(backend, spec, workers=workers)
    opts = options or GBCOptions()
    wall0 = time.perf_counter()
    inputs = prepare_device_inputs(graph, query, layer, session=session)
    blocks = opts.num_blocks or spec.blocks_per_launch

    htb1 = htb2 = None
    htb_seconds = 0.0
    if opts.use_htb:
        t0 = time.perf_counter()
        if session is not None:
            htb1, htb2 = session.htb_pair(inputs.anchored_layer, inputs.q)
        else:
            htb1 = htb_from_graph(inputs.graph, LAYER_U)
            htb2 = htb_from_two_hop(inputs.index)
        htb_seconds = time.perf_counter() - t0

    # the CSR path (NB variant) is the only consumer of the native pack
    pack = (None if opts.use_htb
            else resolve_native_pack(engine, inputs, session=session))

    weights = row_lengths(inputs.index.offsets,
                          inputs.roots).astype(np.float64)
    total = 0
    per_root_cycles = [0.0] * len(inputs.roots)
    agg = KernelMetrics()
    peak_words = 0
    if engine.parallel:
        for idxs, part in engine.map_shards(
                lambda idxs: _gbc_chunk_kernel(inputs, idxs, spec, opts,
                                               engine, htb1, htb2, pack),
                len(inputs.roots), weights=weights):
            part_total, part_cycles, part_agg, part_peak = part
            total += part_total
            agg.merge(part_agg)
            peak_words = max(peak_words, part_peak)
            for pos, i in enumerate(idxs):
                per_root_cycles[i] = part_cycles[pos]
    elif engine.frontier:
        # level-synchronous traversal (identical counts, one pairwise
        # kernel call per search level across every root); the hybrid
        # batching knobs only shape simulated accounting, which the
        # frontier engines don't collect
        agg = engine.new_metrics()
        if opts.use_htb:
            total, peak_words = htb_frontier_count(
                engine, agg, htb1, htb2, inputs.roots, inputs.p,
                inputs.q, warps=spec.warps_per_block)
        else:
            if pack is not None:
                adj = (pack.adj_offsets, pack.adj_values)
                idx = (pack.idx_offsets, pack.idx_values)
            else:
                adj = (inputs.graph.u_offsets, inputs.graph.u_neighbors)
                idx = (inputs.index.offsets, inputs.index.neighbors)
            total, peak_words = csr_frontier_count(
                engine, agg, adj[0], adj[1], idx[0], idx[1],
                inputs.roots, inputs.p, inputs.q,
                warps=spec.warps_per_block)
    else:
        total, per_root_cycles, agg, peak_words = _gbc_chunk_kernel(
            inputs, range(len(inputs.roots)), spec, opts, engine,
            htb1, htb2, pack)

    stealing = opts.balance in ("runtime", "joint")
    if engine.frontier:
        # no per-root cycle profile exists on the frontier path (the
        # engine is uninstrumented and roots run level-batched, not
        # block-by-block), so there is no schedule to simulate
        sched = simulate_blocks([], spec, stealing=stealing)
    else:
        assignment = assign_roots_to_blocks(inputs.roots, weights, blocks,
                                            opts.balance)
        costs = [[per_root_cycles[i] for i in blk] for blk in assignment]
        sched = simulate_blocks(costs, spec, stealing=stealing)

    return DeviceRunResult(
        algorithm=opts.variant_name,
        query=query,
        count=total,
        wall_seconds=time.perf_counter() - wall0,
        anchored_layer=inputs.anchored_layer,
        metrics=agg,
        makespan_cycles=sched.makespan_cycles,
        device_seconds=spec.seconds(sched.makespan_cycles),
        steals=sched.steals,
        peak_working_set_bytes=4 * peak_words,
        per_root_cycles=per_root_cycles,
        root_weights=weights.tolist(),
        breakdown={
            "prepare_seconds": inputs.prepare_seconds,
            "htb_transform_seconds": htb_seconds,
            "imbalance": sched.imbalance,
            "utilization": agg.utilization,
            "htb_bytes": float((htb1.nbytes + htb2.nbytes)
                               if opts.use_htb else 0.0),
        },
        backend=engine.name,
        backend_instrumented=engine.instrumented,
    )


def _predicted_seconds(signals: CostSignals) -> float:
    """GBC's simulated-device prediction: HTB collapses word-aligned
    runs of comparisons into single coalesced transactions (§V-A) and
    hybrid DFS-BFS keeps warp lanes busy (§IV), so both the transaction
    count and the idle-lane inflation drop relative to GBL.  On the
    uninstrumented engines the Python HTB kernel makes it the slowest
    *host* path — the cost hook says so, which is exactly why
    ``method="auto"`` only picks GBC when the device model is the
    headline."""
    if signals.backend == "sim":
        metrics = KernelMetrics(
            global_transactions=int(signals.comparisons / 16) + 1,
            bitwise_ops=int(signals.comparisons / 8),
            shared_accesses=int(signals.comparisons / 16),
        )
        metrics.record_slots(active=3, total=4)      # hybrid DFS-BFS
        return kernel_seconds(metrics, signals.device)
    overhead = GBC_NATIVE_OVERHEAD if signals.backend == "native" \
        else GBC_HOST_OVERHEAD
    enum = overhead * signals.enum_seconds(signals.merge_calls,
                                           signals.comparisons)
    htb = (signals.num_edges * HTB_BUILD_SECONDS_PER_EDGE
           + (signals.num_u + signals.num_v) * HTB_BUILD_SECONDS_PER_VERTEX)
    return signals.priority_prepare_seconds() + htb + signals.sharded(enum)


#: fast-backend wall overhead of the Python HTB kernel vs plain BCL
GBC_HOST_OVERHEAD = 2.5
#: native-backend overhead: whole HTB frontiers per vectorised call
#: instead of one Python bitmap intersection per child
GBC_NATIVE_OVERHEAD = 1.4
#: HTB materialisation cost per edge / per vertex
HTB_BUILD_SECONDS_PER_EDGE = 1.5e-6
HTB_BUILD_SECONDS_PER_VERTEX = 5e-6

register_method(MethodSpec(
    name="GBC",
    runner=gbc_count,
    accepts=("spec", "options", "layer", "backend", "workers", "session"),
    instrumented_metrics=True,
    device_model=True,
    prepared_kinds=("wedges", "order", "two_hop", "htb"),
    cost=_predicted_seconds,
    order=50,
    summary="hybrid DFS-BFS + HTB + joint balancing (the paper's system)",
))

for _variant in ("NH", "NB", "NW"):
    register_method(MethodSpec(
        name=f"GBC-{_variant}",
        runner=gbc_count,
        accepts=("spec", "options", "layer", "backend", "workers",
                 "session"),
        instrumented_metrics=True,
        device_model=True,
        ablation=True,
        prepared_kinds=("wedges", "order", "two_hop", "htb"),
        default_options=(lambda v=_variant: gbc_variant(v)),
        order=60 + ("NH", "NB", "NW").index(_variant),
        summary=f"Fig. 9 ablation: GBC without "
                f"{dict(NH='hybrid DFS-BFS', NB='HTB bitmaps', NW='load balancing')[_variant]}",
    ))
