"""The Basic backtracking model of §III-A, kept as the pedagogical baseline.

Differences from BCL: no degree-based layer selection (always anchors on
U) and no Definition-2 priority — candidates are simply restricted to
larger vertex ids.  The paper's literal Basic revisits permutations of the
same L (Example 3 finds a duplicate leaf); a *counting* implementation
must not double count, so we keep the id-order restriction, which is the
minimal fix and leaves Basic's inefficiencies (unselected layer, unordered
skewed workloads) intact.
"""

from __future__ import annotations

import time
from math import comb

import numpy as np

from repro.core.counts import BicliqueQuery, CountResult
from repro.engine.base import KernelBackend, resolve_backend
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.twohop import TwoHopIndex, build_two_hop_index
from repro.plan.registry import CostSignals, MethodSpec, register_method

__all__ = ["basic_count"]


def _root_total(graph: BipartiteGraph, index: TwoHopIndex, root: int,
                p: int, q: int, engine: KernelBackend) -> int:
    """Bicliques of the search tree rooted at ``root`` (id-order model)."""
    cr0 = graph.neighbors(LAYER_U, root)
    if len(cr0) < q:
        return 0
    if p == 1:
        return comb(len(cr0), q)
    cl0 = index.of(root)
    if len(cl0) < p - 1:
        return 0
    total = 0

    def rec(depth: int, cl: np.ndarray, cr: np.ndarray) -> None:
        nonlocal total
        for u in cl:
            u = int(u)
            new_cr = engine.merge(cr, graph.neighbors(LAYER_U, u))
            if len(new_cr) < q:
                continue
            if depth + 1 == p:
                total += comb(len(new_cr), q)
                continue
            new_cl = engine.merge(cl, index.of(u))
            if len(new_cl) < p - depth - 1:
                continue
            rec(depth + 1, new_cl, new_cr)

    rec(1, cl0, cr0)
    return total


def basic_count(graph: BipartiteGraph, query: BicliqueQuery,
                backend: KernelBackend | str | None = None,
                workers: int | None = None,
                session=None) -> CountResult:
    """Count (p, q)-bicliques with the Basic model (anchor fixed on U).

    With the parallel engine (``backend="par"`` or ``workers=``) the root
    set is sharded over worker processes; the count is identical for any
    worker count.  ``session=`` (a :class:`repro.query.GraphSession`)
    serves the id-ordered two-hop index from the per-graph caches.
    """
    engine = resolve_backend(backend, workers=workers)
    start = time.perf_counter()
    p, q = query.p, query.q
    if session is not None:
        session.check_owns(graph)
        index = session.id_order_index(q)
    else:
        ids = np.arange(graph.num_u, dtype=np.int64)
        index = build_two_hop_index(graph, LAYER_U, q, min_priority_rank=ids)

    def count_chunk(roots) -> int:
        return sum(_root_total(graph, index, int(r), p, q, engine)
                   for r in roots)

    if engine.parallel:
        weights = np.diff(index.offsets).astype(np.float64)
        total = sum(part for _, part in
                    engine.map_shards(count_chunk, graph.num_u,
                                      weights=weights))
    else:
        total = count_chunk(range(graph.num_u))

    return CountResult(
        algorithm="Basic",
        query=query,
        count=total,
        wall_seconds=time.perf_counter() - start,
        anchored_layer=LAYER_U,
        backend=engine.name,
        backend_instrumented=engine.instrumented,
    )


def _predicted_seconds(signals: CostSignals) -> float:
    """Basic pays id-order enumeration (probed directly — it is what
    the ``basic_*`` signals count) but skips the wedge-mass reorder
    entirely, which is why it wins on graphs whose priority prepare
    dwarfs the search."""
    enum = signals.enum_seconds(signals.basic_merge_calls,
                                signals.basic_comparisons)
    return signals.id_prepare_seconds() + signals.sharded(enum)


register_method(MethodSpec(
    name="Basic",
    runner=basic_count,
    accepts=("backend", "workers", "session"),
    supports_layer=False,
    prepared_kinds=("wedges", "two_hop_id"),
    cost=_predicted_seconds,
    order=10,
    summary="id-ordered backtracking baseline, anchored on U (§III-A)",
))
