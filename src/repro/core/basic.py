"""The Basic backtracking model of §III-A, kept as the pedagogical baseline.

Differences from BCL: no degree-based layer selection (always anchors on
U) and no Definition-2 priority — candidates are simply restricted to
larger vertex ids.  The paper's literal Basic revisits permutations of the
same L (Example 3 finds a duplicate leaf); a *counting* implementation
must not double count, so we keep the id-order restriction, which is the
minimal fix and leaves Basic's inefficiencies (unselected layer, unordered
skewed workloads) intact.
"""

from __future__ import annotations

import time
from math import comb

import numpy as np

from repro.core.counts import BicliqueQuery, CountResult
from repro.engine.base import KernelBackend, resolve_backend
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.twohop import build_two_hop_index

__all__ = ["basic_count"]


def basic_count(graph: BipartiteGraph, query: BicliqueQuery,
                backend: KernelBackend | str | None = None) -> CountResult:
    """Count (p, q)-bicliques with the Basic model (anchor fixed on U)."""
    engine = resolve_backend(backend)
    start = time.perf_counter()
    p, q = query.p, query.q
    ids = np.arange(graph.num_u, dtype=np.int64)
    index = build_two_hop_index(graph, LAYER_U, q, min_priority_rank=ids)
    total = 0

    def rec(depth: int, cl: np.ndarray, cr: np.ndarray) -> None:
        nonlocal total
        for u in cl:
            u = int(u)
            new_cr = engine.merge(cr, graph.neighbors(LAYER_U, u))
            if len(new_cr) < q:
                continue
            if depth + 1 == p:
                total += comb(len(new_cr), q)
                continue
            new_cl = engine.merge(cl, index.of(u))
            if len(new_cl) < p - depth - 1:
                continue
            rec(depth + 1, new_cl, new_cr)

    for root in range(graph.num_u):
        cr0 = graph.neighbors(LAYER_U, root)
        if len(cr0) < q:
            continue
        if p == 1:
            total += comb(len(cr0), q)
            continue
        cl0 = index.of(root)
        if len(cl0) < p - 1:
            continue
        rec(1, cl0, cr0)

    return CountResult(
        algorithm="Basic",
        query=query,
        count=total,
        wall_seconds=time.perf_counter() - start,
        anchored_layer=LAYER_U,
        backend=engine.name,
        backend_instrumented=engine.instrumented,
    )
