"""Incremental butterfly ((2,2)-biclique) maintenance under edge updates.

The paper situates itself in a line of work that includes butterfly
counting on *streaming* graphs ([37] FLEET, [40] sGrapp).  This module
implements the exact dynamic primitive those systems build on: maintain
the global butterfly count under single edge insertions and deletions.

Inserting edge (u, v) creates exactly

    delta(u, v) = sum over u' in N(v) \\ {u} of |N(u) ∩ N(u')|

new butterflies *after* the insertion — each common neighbour w != v of
a wedge partner u' closes a rectangle (u, u', v, w).  Deletion destroys
the same quantity computed before removal.  Each update costs
O(d(v) * (d(u) + max d(u'))) with sorted-merge intersections, far below
recounting.

The wedge-closure sum is the (2, 2) instance of the general rule in
:mod:`repro.core.delta` — the bicliques through (u, v) are the
(p-1, q-1)-bicliques of the subgraph induced on N(v)\\{u} x N(u)\\{v} —
and this counter now evaluates its delta through that shared rule.
:class:`repro.dynamic.DynamicGraphSession` is the generalisation:
arbitrary tracked shapes, epoch-versioned snapshots, and a
delta-vs-rebuild cost cutover.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.butterfly import butterfly_count
from repro.core.delta import bicliques_containing_edge
from repro.errors import GraphValidationError
from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V
from repro.graph.builders import from_edges

__all__ = ["DynamicButterflyCounter"]


@dataclass
class DynamicButterflyCounter:
    """Exact butterfly count maintained under edge insertions/deletions.

    Keeps adjacency as sorted Python lists (cheap single-edge updates);
    rebuild a :class:`BipartiteGraph` via :meth:`snapshot` when a static
    structure is needed.
    """

    num_u: int
    num_v: int
    adj_u: list[list[int]] = field(default_factory=list)
    adj_v: list[list[int]] = field(default_factory=list)
    butterflies: int = 0
    updates_applied: int = 0

    @classmethod
    def from_graph(cls, graph: BipartiteGraph) -> "DynamicButterflyCounter":
        """Initialise from a static graph (one exact count, then O(1)-ish
        maintenance per update)."""
        counter = cls(
            num_u=graph.num_u,
            num_v=graph.num_v,
            adj_u=[graph.neighbors(LAYER_U, u).tolist()
                   for u in range(graph.num_u)],
            adj_v=[graph.neighbors(LAYER_V, v).tolist()
                   for v in range(graph.num_v)],
            butterflies=butterfly_count(graph).count,
        )
        return counter

    @classmethod
    def empty(cls, num_u: int, num_v: int) -> "DynamicButterflyCounter":
        return cls(num_u=num_u, num_v=num_v,
                   adj_u=[[] for _ in range(num_u)],
                   adj_v=[[] for _ in range(num_v)],
                   butterflies=0)

    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        row = self.adj_u[u]
        import bisect
        i = bisect.bisect_left(row, v)
        return i < len(row) and row[i] == v

    def _delta(self, u: int, v: int) -> int:
        """Butterflies closed by edge (u, v) — the (2, 2) instance of the
        shared :func:`repro.core.delta.bicliques_containing_edge` rule,
        invariant to whether (u, v) itself is currently present."""
        return bicliques_containing_edge(self.adj_u, self.adj_v, u, v, 2, 2)

    def insert(self, u: int, v: int) -> int:
        """Insert edge (u, v); returns the number of butterflies created."""
        self._check(u, v)
        if self.has_edge(u, v):
            raise GraphValidationError(f"edge ({u},{v}) already present")
        import bisect
        delta = self._delta(u, v)
        bisect.insort(self.adj_u[u], v)
        bisect.insort(self.adj_v[v], u)
        self.butterflies += delta
        self.updates_applied += 1
        return delta

    def delete(self, u: int, v: int) -> int:
        """Delete edge (u, v); returns the number of butterflies destroyed."""
        self._check(u, v)
        if not self.has_edge(u, v):
            raise GraphValidationError(f"edge ({u},{v}) not present")
        self.adj_u[u].remove(v)
        self.adj_v[v].remove(u)
        delta = self._delta(u, v)
        self.butterflies -= delta
        self.updates_applied += 1
        return delta

    # ------------------------------------------------------------------
    def snapshot(self) -> BipartiteGraph:
        """Materialise the current adjacency as a static graph."""
        edges = [(u, v) for u in range(self.num_u) for v in self.adj_u[u]]
        return from_edges(self.num_u, self.num_v, edges, name="dynamic")

    def recount(self) -> int:
        """Exact recount from scratch (testing / resync)."""
        return butterfly_count(self.snapshot()).count

    def _check(self, u: int, v: int) -> None:
        if not (0 <= u < self.num_u and 0 <= v < self.num_v):
            raise GraphValidationError(f"edge ({u},{v}) out of range")
