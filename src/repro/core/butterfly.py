"""Butterfly ((2,2)-biclique) counting via the wedge formula.

The butterfly is the special case the paper anchors its motivation on
(§I: "the well-known butterfly concept corresponds to the (2,2)-biclique").
Counting them has a closed form over wedges: for each pair of U-vertices
sharing c common neighbours there are C(c, 2) butterflies, and the pair
totals can be aggregated per intermediate vertex.  This gives an
independent O(Σ d(v)^2) counter used to cross-check the general
algorithms at (p, q) = (2, 2).
"""

from __future__ import annotations

import time
from itertools import combinations
from math import comb

from repro.core.counts import BicliqueQuery, CountResult
from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V

__all__ = ["butterfly_count"]


def butterfly_count(graph: BipartiteGraph) -> CountResult:
    """Exact butterfly count via pairwise wedge aggregation.

    Wedges centred on V are accumulated into per-U-pair common-neighbour
    counts c(u1, u2); the butterfly total is sum of C(c, 2).
    """
    start = time.perf_counter()
    pair_counts: dict[tuple[int, int], int] = {}
    for v in range(graph.num_v):
        nbrs = graph.neighbors(LAYER_V, v)
        for a, b in combinations(map(int, nbrs), 2):
            pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
    total = sum(comb(c, 2) for c in pair_counts.values())
    return CountResult(
        algorithm="wedge-butterfly",
        query=BicliqueQuery(2, 2),
        count=total,
        wall_seconds=time.perf_counter() - start,
        anchored_layer=LAYER_U,
        extras={"u_pairs_with_wedges": float(len(pair_counts))},
    )
