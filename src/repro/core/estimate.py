"""Sampling-based approximate (p, q)-biclique counting.

The exact count explodes combinatorially with (p, q); the literature the
paper builds on uses sampling when exactness is unnecessary (butterfly
estimation [36], near-clique sampling [33]).  This module implements a
*root-sampling* estimator over the same duplicate-free search space as
the exact counters:

1. every root's search tree is an independent summand of the total
   (that independence is what the paper parallelises);
2. sample m roots with probability proportional to an importance weight
   (their second-level size, the pre-runtime balance proxy), count their
   subtrees exactly, and form the Horvitz-Thompson estimate.

The estimator is unbiased for any weighting (proved by linearity — each
root's contribution is inflated by 1/(m * pi_i)); tests check exactness
in expectation over fixed seeds and exact recovery when m = all roots.

Since the approx tier became a first-class counting method the module
has two public faces: :func:`estimate_count` returns the raw
:class:`EstimateResult` (estimate, std_error, ci95), and
:func:`approx_count` is the registered ``"approx"``
:class:`~repro.plan.registry.MethodSpec` runner — a normal
:class:`~repro.core.counts.CountResult` whose ``extras`` carry the
(ε, δ)-style diagnostics (``estimate``/``std_error``/``ci95``/
``samples``/``population``/``seed``), dispatchable through
:func:`repro.plan.execute_plan` like every exact counter.  The estimate
depends only on the seed and the per-root integer counts, never on the
engine's timing, so one seed gives bit-identical results on every
backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from math import sqrt

import numpy as np

from repro.core.bcl import BCLProfile, _enumerate_root
from repro.core.counts import BicliqueQuery, CountResult, anchored_view
from repro.engine.base import KernelBackend, resolve_backend
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.priority import priority_rank
from repro.graph.twohop import build_two_hop_index
from repro.plan.registry import CostSignals, MethodSpec, register_method

__all__ = ["DEFAULT_SAMPLES", "EstimateResult", "Z95", "approx_cost",
           "approx_count", "estimate_count", "RootProbe",
           "sample_root_profile"]

#: z-value of the two-sided 95% normal interval ``ci95`` reports
Z95 = 1.959963984540054

#: sample budget when neither the caller nor the planner sizes one
DEFAULT_SAMPLES = 64


@dataclass
class EstimateResult:
    """A sampled estimate with its sampling diagnostics."""

    query: BicliqueQuery
    estimate: float
    std_error: float
    samples: int
    population: int
    wall_seconds: float
    anchored_layer: str = LAYER_U

    @property
    def ci95(self) -> float:
        """Half-width of the normal-approximation 95% confidence
        interval (0.0 on the exact-recovery path, where the estimate is
        the true count with zero variance)."""
        return Z95 * self.std_error

    def ci_bounds(self, z: float = Z95) -> tuple[float, float]:
        """The ``estimate ± z * std_error`` interval as (low, high)."""
        return (self.estimate - z * self.std_error,
                self.estimate + z * self.std_error)

    def relative_error(self, truth: int) -> float:
        """|estimate - truth| / truth (for evaluation against exact runs)."""
        if truth == 0:
            return abs(self.estimate)
        return abs(self.estimate - truth) / truth


def estimate_count(graph: BipartiteGraph, query: BicliqueQuery,
                   samples: int = DEFAULT_SAMPLES,
                   seed: int | None = 0,
                   layer: str | None = None,
                   backend: KernelBackend | str | None = None,
                   session=None) -> EstimateResult:
    """Horvitz-Thompson root-sampling estimate of the (p, q) count.

    With ``samples`` >= the number of promising roots the estimator runs
    every tree once and returns the exact count with zero variance.
    ``session`` (a :class:`repro.query.GraphSession` over ``graph``)
    serves the anchored view and two-hop index from its caches, so a
    warm session estimates without building anything.
    """
    # the per-root profile is internal here, so the per-call breakdown
    # instrumentation is never worth its cost
    engine = resolve_backend(backend)
    start = time.perf_counter()
    g, p, q, anchored = anchored_view(graph, query, layer)
    if session is not None:
        session.check_owns(graph)
        g = session.anchored(anchored)
        index = session.two_hop_index(anchored, q)
    else:
        rank = priority_rank(g, LAYER_U, q)
        index = build_two_hop_index(g, LAYER_U, q, min_priority_rank=rank)
    roots = [u for u in range(g.num_u)
             if g.degree(LAYER_U, u) >= q
             and (p == 1 or index.size(u) >= p - 1)]
    population = len(roots)
    profile = BCLProfile()
    if population == 0:
        return EstimateResult(query, 0.0, 0.0, 0, 0,
                              time.perf_counter() - start, anchored)

    if samples >= population:
        total = sum(_enumerate_root(g, index, r, p, q, profile, engine,
                                    instrument=False)
                    for r in roots)
        return EstimateResult(query, float(total), 0.0, population,
                              population, time.perf_counter() - start,
                              anchored)

    # importance weights: second-level sizes (0-weight roots can still
    # carry bicliques when p == 1, so floor at 1)
    weights = np.asarray([max(index.size(r), 1) for r in roots],
                         dtype=np.float64)
    pi = weights / weights.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(population, size=samples, replace=True, p=pi)
    contributions = np.empty(samples, dtype=np.float64)
    cache: dict[int, int] = {}
    for j, i in enumerate(picks):
        root = roots[int(i)]
        if root not in cache:
            cache[root] = _enumerate_root(g, index, root, p, q, profile,
                                          engine, instrument=False)
        contributions[j] = cache[root] / pi[int(i)]
    estimate = float(contributions.mean())
    std_error = float(contributions.std(ddof=1) / sqrt(samples)) \
        if samples > 1 else 0.0
    return EstimateResult(query, estimate, std_error, samples, population,
                          time.perf_counter() - start, anchored)


def approx_count(graph: BipartiteGraph, query: BicliqueQuery,
                 backend: KernelBackend | str | None = None,
                 session=None,
                 layer: str | None = None,
                 samples: int | None = None,
                 seed: int | None = 0) -> CountResult:
    """The registered ``"approx"`` method: a sampled count as a
    :class:`~repro.core.counts.CountResult`.

    ``count`` is the rounded Horvitz-Thompson estimate; the sampling
    diagnostics ride in ``extras`` — ``estimate``, ``std_error``,
    ``ci95`` (the 95% half-width), ``samples``, ``population`` and the
    ``seed`` that makes the run bit-reproducible.  ``samples=None``
    (and a plan without a budget) falls back to
    :data:`DEFAULT_SAMPLES`; ``seed=None`` pins seed 0 rather than
    letting numpy draw an irreproducible one.
    """
    samples = DEFAULT_SAMPLES if samples is None else int(samples)
    seed = 0 if seed is None else int(seed)
    est = estimate_count(graph, query, samples=samples, seed=seed,
                         layer=layer, backend=backend, session=session)
    engine = resolve_backend(backend)
    return CountResult(
        algorithm="approx",
        query=query,
        count=int(round(est.estimate)),
        wall_seconds=est.wall_seconds,
        anchored_layer=est.anchored_layer,
        extras={
            "estimate": est.estimate,
            "std_error": est.std_error,
            "ci95": est.ci95,
            "samples": float(est.samples),
            "population": float(est.population),
            "seed": float(seed),
        },
        backend=engine.name,
        backend_instrumented=engine.instrumented,
    )


def approx_cost(signals: CostSignals, samples: int) -> float:
    """Predicted seconds for an approx run with this sample budget.

    The distinct-root cache bounds the enumerated work by
    ``min(samples, population)`` trees, so the predicted enumeration is
    the exact priority-order total scaled by that fraction, on top of
    the same priority prepare every priority-ordered counter pays.
    """
    population = max(signals.population, 1)
    fraction = min(1.0, samples / population)
    enum = signals.enum_seconds(signals.merge_calls,
                                signals.comparisons) * fraction
    return signals.priority_prepare_seconds() + enum


def _predicted_seconds(signals: CostSignals) -> float:
    return approx_cost(signals, DEFAULT_SAMPLES)


register_method(MethodSpec(
    name="approx",
    runner=approx_count,
    accepts=("backend", "session", "layer", "samples", "seed"),
    # the estimator is serial by construction (one rng stream); sharding
    # it would change which roots are drawn and break seed-reproducibility
    supports_partitioned=False,
    approximate=True,
    prepared_kinds=("wedges", "order", "two_hop"),
    cost=_predicted_seconds,
    order=90,
    summary="Horvitz-Thompson root sampling with ci95 error bars "
            "(the butterfly-estimation lineage, [36]/[33])",
))


# ---------------------------------------------------------------------------
# root-sampling probe for the cost-based planner (repro.plan)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RootProbe:
    """Deterministic work signals from a seeded root sample.

    Unlike :class:`EstimateResult` this never reports wall-clock: the
    probe counts *merge comparisons* through the instrumented engine, so
    two probes with the same seed are bit-identical — the property the
    planner's determinism guarantee rests on.  Work is measured under
    both orders the repo's methods use: the Definition-2 priority order
    (BCL/BCLP/GBL/GBC) and Basic's id order, whose relative sizes are
    exactly what separates Basic from the rest on skewed graphs.
    """

    p: int
    q: int
    anchored_layer: str          #: layer the degree heuristic anchors on
    population: int              #: promising roots, priority order
    basic_population: int        #: promising roots, Basic's id order
    samples: int                 #: roots sampled per order (<= population)
    comparisons: float           #: HT-estimated total comparisons (priority)
    basic_comparisons: float     #: HT-estimated total comparisons (id)
    merge_calls: float           #: HT-estimated merge invocations (priority)
    basic_merge_calls: float     #: HT-estimated merge invocations (id)
    max_root_comparisons: float  #: heaviest sampled root's comparisons
    max_root_merge_calls: float  #: heaviest sampled root's merge calls
    mean_index_size: float       #: mean N2^k size over promising roots
    est_count: float             #: HT-estimated (p, q)-biclique count


class _CountingEngine:
    """Delegates ``merge`` to an engine while counting invocations —
    merge-call counts track the per-call kernel overhead that dominates
    enumeration wall time on small candidate sets, which comparison
    counts alone cannot see."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.calls = 0

    def merge(self, a, b, comparisons=None):
        self.calls += 1
        return self._inner.merge(a, b, comparisons)


@dataclass(frozen=True)
class _IndexProbe:
    population: int
    comparisons: float
    merge_calls: float
    est_count: float
    max_root_comparisons: float
    max_root_merge_calls: float


_EMPTY_PROBE = _IndexProbe(0, 0.0, 0.0, 0.0, 0.0, 0.0)


def _probe_index(g, index, p: int, q: int, samples: int, rng,
                 engine) -> _IndexProbe:
    """Horvitz-Thompson work estimates for one rooted search space."""
    roots = [u for u in range(g.num_u)
             if g.degree(LAYER_U, u) >= q
             and (p == 1 or index.size(u) >= p - 1)]
    population = len(roots)
    if population == 0:
        return _EMPTY_PROBE

    def run(root: int) -> tuple[int, int, int]:
        profile = BCLProfile()
        counting = _CountingEngine(engine)
        count = _enumerate_root(g, index, root, p, q, profile, counting,
                                instrument=True)
        return (profile.comparisons_one_hop + profile.comparisons_two_hop,
                counting.calls, count)

    if samples >= population:
        triples = [run(r) for r in roots]
        return _IndexProbe(
            population=population,
            comparisons=float(sum(c for c, _, _ in triples)),
            merge_calls=float(sum(m for _, m, _ in triples)),
            est_count=float(sum(n for _, _, n in triples)),
            max_root_comparisons=float(max(c for c, _, _ in triples)),
            max_root_merge_calls=float(max(m for _, m, _ in triples)),
        )
    weights = np.asarray([max(index.size(r), 1) for r in roots],
                         dtype=np.float64)
    pi = weights / weights.sum()
    picks = rng.choice(population, size=samples, replace=True, p=pi)
    cache: dict[int, tuple[int, int, int]] = {}
    cmp_contrib = np.empty(samples, dtype=np.float64)
    call_contrib = np.empty(samples, dtype=np.float64)
    cnt_contrib = np.empty(samples, dtype=np.float64)
    for j, i in enumerate(picks):
        i = int(i)
        root = roots[i]
        if root not in cache:
            cache[root] = run(root)
        comparisons, calls, count = cache[root]
        cmp_contrib[j] = comparisons / pi[i]
        call_contrib[j] = calls / pi[i]
        cnt_contrib[j] = count / pi[i]
    sampled = cache.values()
    return _IndexProbe(
        population=population,
        comparisons=float(cmp_contrib.mean()),
        merge_calls=float(call_contrib.mean()),
        est_count=float(cnt_contrib.mean()),
        max_root_comparisons=float(max(c for c, _, _ in sampled)),
        max_root_merge_calls=float(max(m for _, m, _ in sampled)),
    )


def sample_root_profile(graph: BipartiteGraph, query: BicliqueQuery,
                        samples: int = 8,
                        seed: int | None = 0,
                        layer: str | None = None,
                        session=None) -> RootProbe:
    """Probe a seeded sample of root search trees and extrapolate.

    The planner's raw material (see :mod:`repro.plan.planner`): counted
    comparisons under the priority order *and* under Basic's id order,
    the promising-root populations, the mean two-hop index size, and an
    estimated count — all deterministic for a fixed ``seed``.  A
    :class:`repro.query.GraphSession` serves the indexes from its
    caches, so probing a warm session builds nothing new.
    """
    # the simulated engine's merge fills the comparison cells the probe
    # counts; a handful of sampled roots keeps its overhead negligible
    engine = resolve_backend("sim")
    g, p, q, anchored = anchored_view(graph, query, layer)
    if session is not None:
        session.check_owns(graph)
        g = session.anchored(anchored)
        index = session.two_hop_index(anchored, q)
        basic_index = session.id_order_index(query.q)
    else:
        rank = priority_rank(g, LAYER_U, q)
        index = build_two_hop_index(g, LAYER_U, q, min_priority_rank=rank)
        ids = np.arange(graph.num_u, dtype=np.int64)
        basic_index = build_two_hop_index(graph, LAYER_U, query.q,
                                          min_priority_rank=ids)
    rng = np.random.default_rng(seed)
    probe = _probe_index(g, index, p, q, samples, rng, engine)
    # Basic never swaps layers: probe it on the original orientation
    basic = _probe_index(graph, basic_index, query.p, query.q, samples,
                         rng, engine)
    sizes = [index.size(u) for u in range(g.num_u)
             if g.degree(LAYER_U, u) >= q]
    mean_index_size = float(np.mean(sizes)) if sizes else 0.0
    return RootProbe(
        p=query.p, q=query.q, anchored_layer=anchored,
        population=probe.population, basic_population=basic.population,
        samples=min(samples, max(probe.population, basic.population)),
        comparisons=probe.comparisons,
        basic_comparisons=basic.comparisons,
        merge_calls=probe.merge_calls,
        basic_merge_calls=basic.merge_calls,
        max_root_comparisons=probe.max_root_comparisons,
        max_root_merge_calls=probe.max_root_merge_calls,
        mean_index_size=mean_index_size, est_count=probe.est_count,
    )
