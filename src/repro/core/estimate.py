"""Sampling-based approximate (p, q)-biclique counting.

The exact count explodes combinatorially with (p, q); the literature the
paper builds on uses sampling when exactness is unnecessary (butterfly
estimation [36], near-clique sampling [33]).  This module implements a
*root-sampling* estimator over the same duplicate-free search space as
the exact counters:

1. every root's search tree is an independent summand of the total
   (that independence is what the paper parallelises);
2. sample m roots with probability proportional to an importance weight
   (their second-level size, the pre-runtime balance proxy), count their
   subtrees exactly, and form the Horvitz-Thompson estimate.

The estimator is unbiased for any weighting (proved by linearity — each
root's contribution is inflated by 1/(m * pi_i)); tests check exactness
in expectation over fixed seeds and exact recovery when m = all roots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from math import comb, sqrt

import numpy as np

from repro.core.bcl import BCLProfile, _enumerate_root
from repro.core.counts import BicliqueQuery, anchored_view
from repro.engine.base import KernelBackend, resolve_backend
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.priority import priority_rank
from repro.graph.twohop import build_two_hop_index

__all__ = ["EstimateResult", "estimate_count"]


@dataclass
class EstimateResult:
    """A sampled estimate with its sampling diagnostics."""

    query: BicliqueQuery
    estimate: float
    std_error: float
    samples: int
    population: int
    wall_seconds: float

    def relative_error(self, truth: int) -> float:
        """|estimate - truth| / truth (for evaluation against exact runs)."""
        if truth == 0:
            return abs(self.estimate)
        return abs(self.estimate - truth) / truth


def estimate_count(graph: BipartiteGraph, query: BicliqueQuery,
                   samples: int = 64,
                   seed: int | None = 0,
                   layer: str | None = None,
                   backend: KernelBackend | str | None = None) -> EstimateResult:
    """Horvitz-Thompson root-sampling estimate of the (p, q) count.

    With ``samples`` >= the number of promising roots the estimator runs
    every tree once and returns the exact count with zero variance.
    """
    # the per-root profile is internal here, so the per-call breakdown
    # instrumentation is never worth its cost
    engine = resolve_backend(backend)
    start = time.perf_counter()
    g, p, q, _ = anchored_view(graph, query, layer)
    rank = priority_rank(g, LAYER_U, q)
    index = build_two_hop_index(g, LAYER_U, q, min_priority_rank=rank)
    roots = [u for u in range(g.num_u)
             if g.degree(LAYER_U, u) >= q
             and (p == 1 or index.size(u) >= p - 1)]
    population = len(roots)
    profile = BCLProfile()
    if population == 0:
        return EstimateResult(query, 0.0, 0.0, 0, 0,
                              time.perf_counter() - start)

    if samples >= population:
        total = sum(_enumerate_root(g, index, r, p, q, profile, engine,
                                    instrument=False)
                    for r in roots)
        return EstimateResult(query, float(total), 0.0, population,
                              population, time.perf_counter() - start)

    # importance weights: second-level sizes (0-weight roots can still
    # carry bicliques when p == 1, so floor at 1)
    weights = np.asarray([max(index.size(r), 1) for r in roots],
                         dtype=np.float64)
    pi = weights / weights.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(population, size=samples, replace=True, p=pi)
    contributions = np.empty(samples, dtype=np.float64)
    cache: dict[int, int] = {}
    for j, i in enumerate(picks):
        root = roots[int(i)]
        if root not in cache:
            cache[root] = _enumerate_root(g, index, root, p, q, profile,
                                          engine, instrument=False)
        contributions[j] = cache[root] / pi[int(i)]
    estimate = float(contributions.mean())
    std_error = float(contributions.std(ddof=1) / sqrt(samples)) \
        if samples > 1 else 0.0
    return EstimateResult(query, estimate, std_error, samples, population,
                          time.perf_counter() - start)
