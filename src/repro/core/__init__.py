"""Counting core: Basic, BCL, BCLP (CPU); GBL, GBC (simulated device);
brute-force verifier; butterfly fast path; full pipeline."""

from repro.core.basic import basic_count
from repro.core.bcl import BCLProfile, bcl_count, bcl_per_root_profile
from repro.core.bclp import bclp_count, schedule_makespan
from repro.core.butterfly import butterfly_count
from repro.core.counts import (
    BicliqueQuery,
    CountResult,
    DeviceRunResult,
    anchored_view,
)
from repro.core.enumerate import enumerate_bicliques
from repro.core.estimate import (DEFAULT_SAMPLES, Z95, EstimateResult,
                                 approx_count, estimate_count)
from repro.core.gbc import GBCOptions, gbc_count, gbc_variant
from repro.core.incremental import DynamicButterflyCounter
from repro.core.localcounts import LocalCountResult, local_biclique_counts
from repro.core.gbl import gbl_count
from repro.core.pipeline import REORDER_METHODS, PipelineResult, run_pipeline
from repro.core.profile import LevelStats, SearchTreeProfile, profile_search
from repro.core.verify import brute_force_count, brute_force_count_both_anchors

__all__ = [
    "BicliqueQuery", "CountResult", "DeviceRunResult", "anchored_view",
    "basic_count",
    "bcl_count", "bcl_per_root_profile", "BCLProfile",
    "bclp_count", "schedule_makespan",
    "butterfly_count",
    "gbl_count",
    "gbc_count", "GBCOptions", "gbc_variant",
    "run_pipeline", "PipelineResult", "REORDER_METHODS",
    "brute_force_count", "brute_force_count_both_anchors",
    "enumerate_bicliques",
    "estimate_count", "EstimateResult", "approx_count",
    "DEFAULT_SAMPLES", "Z95",
    "local_biclique_counts", "LocalCountResult",
    "profile_search", "SearchTreeProfile", "LevelStats",
    "DynamicButterflyCounter",
]
