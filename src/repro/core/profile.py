"""Search-tree profiler: per-depth statistics of the biclique search.

§IV's hybrid-exploration argument rests on an empirical claim: "as the
search level increases, the value of m (= |CL[l-1]|) typically
decreases", which is why deep levels starve warps under pure DFS.  This
profiler runs the exact duplicate-free search once and records, per
depth: node counts, candidate-set sizes, and pruning outcomes — the
numbers that justify both the hybrid strategy and the batching formula.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.counts import BicliqueQuery, anchored_view
from repro.engine.base import KernelBackend, resolve_backend
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.priority import priority_order, priority_rank
from repro.graph.twohop import build_two_hop_index

__all__ = ["LevelStats", "SearchTreeProfile", "profile_search"]


@dataclass
class LevelStats:
    """Aggregates for one search depth (depth = |L| after extension)."""

    depth: int
    nodes: int = 0                 # nodes expanded at this depth
    pruned_cr: int = 0             # children cut by |CR| < q
    pruned_cl: int = 0             # children cut by |CL| too small
    sum_cl: int = 0                # Σ |CL| over surviving nodes
    sum_cr: int = 0                # Σ |CR| over surviving nodes
    leaves: int = 0                # nodes that completed a biclique set

    @property
    def mean_cl(self) -> float:
        return self.sum_cl / self.nodes if self.nodes else 0.0

    @property
    def mean_cr(self) -> float:
        return self.sum_cr / self.nodes if self.nodes else 0.0


@dataclass
class SearchTreeProfile:
    """Whole-search profile: one LevelStats per depth, plus totals."""

    query: BicliqueQuery
    levels: list[LevelStats] = field(default_factory=list)
    roots: int = 0
    wall_seconds: float = 0.0

    def level(self, depth: int) -> LevelStats:
        while len(self.levels) <= depth:
            self.levels.append(LevelStats(depth=len(self.levels)))
        return self.levels[depth]

    def mean_cl_by_depth(self) -> list[float]:
        return [lv.mean_cl for lv in self.levels]

    def total_nodes(self) -> int:
        return sum(lv.nodes for lv in self.levels)

    def shrink_ratio(self) -> float:
        """mean |CL| at the deepest populated level over the first level —
        the §IV 'm decreases with depth' quantity (< 1 when it holds)."""
        populated = [lv for lv in self.levels
                     if lv.nodes > 0 and lv.mean_cl > 0]
        if len(populated) < 2:
            return 1.0
        return populated[-1].mean_cl / populated[0].mean_cl


def profile_search(graph: BipartiteGraph, query: BicliqueQuery,
                   layer: str | None = None,
                   backend: KernelBackend | str | None = None
                   ) -> SearchTreeProfile:
    """Run the exact search once, collecting per-depth statistics."""
    engine = resolve_backend(backend)
    start = time.perf_counter()
    g, p, q, _ = anchored_view(graph, query, layer)
    rank = priority_rank(g, LAYER_U, q)
    order = priority_order(g, LAYER_U, q)
    index = build_two_hop_index(g, LAYER_U, q, min_priority_rank=rank)
    profile = SearchTreeProfile(query=query)

    def rec(depth: int, cl: np.ndarray, cr: np.ndarray) -> None:
        stats = profile.level(depth)
        stats.nodes += 1
        stats.sum_cl += len(cl)
        stats.sum_cr += len(cr)
        for u in cl:
            u = int(u)
            new_cr = engine.merge(cr, g.neighbors(LAYER_U, u))
            if len(new_cr) < q:
                stats.pruned_cr += 1
                continue
            if depth + 1 == p:
                profile.level(depth + 1).nodes += 1
                profile.level(depth + 1).sum_cr += len(new_cr)
                profile.level(depth + 1).leaves += 1
                continue
            new_cl = engine.merge(cl, index.of(u))
            if len(new_cl) < p - depth - 1:
                stats.pruned_cl += 1
                continue
            rec(depth + 1, new_cl, new_cr)

    for root in order:
        root = int(root)
        cr0 = g.neighbors(LAYER_U, root)
        if len(cr0) < q:
            continue
        if p == 1:
            profile.roots += 1
            profile.level(1).nodes += 1
            profile.level(1).leaves += 1
            profile.level(1).sum_cr += len(cr0)
            continue
        cl0 = index.of(root)
        if len(cl0) < p - 1:
            continue
        profile.roots += 1
        rec(1, cl0, cr0)

    profile.wall_seconds = time.perf_counter() - start
    return profile
