"""BCLP — the multi-threaded CPU parallelisation of BCL [53].

The paper runs BCLP with 16 OS threads, each executing BCL on its share of
root vertices.  CPython's GIL makes a real thread pool meaningless for a
compute-bound reproduction, so BCLP is modelled the way the paper
describes it: per-root costs are measured once by the instrumented BCL
run, then list-scheduled onto T logical threads (each idle thread takes
the next unprocessed root, exactly the paper's distribution of
selected-layer vertices).  The reported ``wall_seconds`` is the schedule
makespan plus the sequential preprocessing — deterministic, and faithful
to the skew-limited scaling the paper observes.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.core.bcl import bcl_per_root_profile
from repro.core.counts import BicliqueQuery, CountResult
from repro.engine.base import KernelBackend, resolve_backend
from repro.plan.registry import (SECONDS_PER_ROOT_PROFILED, CostSignals,
                                 MethodSpec, register_method)

__all__ = ["bclp_count", "schedule_makespan"]

DEFAULT_THREADS = 16


def schedule_makespan(costs: list[float], threads: int) -> float:
    """List-schedule costs in the given order over ``threads`` workers.

    Each worker takes the next root when free — the paper's dynamic
    distribution of vertices to CPU threads.
    """
    if not costs:
        return 0.0
    heap = [0.0] * min(threads, max(len(costs), 1))
    heapq.heapify(heap)
    for c in costs:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + c)
    return max(heap)


def bclp_count(graph, query: BicliqueQuery,
               threads: int = DEFAULT_THREADS,
               layer: str | None = None,
               backend: KernelBackend | str | None = None,
               workers: int | None = None,
               session=None) -> CountResult:
    """BCLP: BCL's per-root work list-scheduled over ``threads`` threads.

    ``threads`` is the *modelled* thread count of the paper's CPU
    parallelisation; ``workers`` (or ``backend="par"``) additionally runs
    the underlying per-root measurement over real worker processes.
    Counts are unchanged, but the per-root timings are then measured
    under multi-process contention, so the modelled timing figures
    (``wall_seconds``, ``sequential_seconds``, ``speedup_vs_sequential``)
    are only comparable between runs of the same mode — use a serial
    backend when reproducing the paper's BCLP timings.
    """
    engine = resolve_backend(backend, workers=workers)
    start = time.perf_counter()
    profile = bcl_per_root_profile(graph, query, layer, backend=engine,
                                   session=session)
    sequential = sum(profile.per_root_seconds)
    preprocessing = max(profile.seconds_total - sequential, 0.0)
    makespan = schedule_makespan(profile.per_root_seconds, threads)
    total = int(np.sum(np.asarray(profile.per_root_counts, dtype=object))) \
        if profile.per_root_counts else 0
    wall = time.perf_counter() - start
    return CountResult(
        algorithm="BCLP",
        query=query,
        count=total,
        wall_seconds=preprocessing + makespan,
        breakdown={
            "threads": float(threads),
            "sequential_seconds": sequential,
            "preprocessing_seconds": preprocessing,
            "makespan_seconds": makespan,
            "speedup_vs_sequential": (sequential / makespan) if makespan else 1.0,
        },
        extras={"measurement_wall_seconds": wall},
        backend=engine.name,
        backend_instrumented=engine.instrumented,
    )


def _predicted_seconds(signals: CostSignals) -> float:
    """BCLP's headline is the modelled makespan: the serial enumeration
    spread over ``threads``, floored by the heaviest root's tree (list
    scheduling cannot split one root — the paper's skew-limited
    scaling), plus the per-root profiling loop."""
    serial = signals.enum_seconds(signals.merge_calls, signals.comparisons)
    makespan = max(serial / max(signals.threads, 1),
                   signals.max_root_seconds())
    loop = signals.population * SECONDS_PER_ROOT_PROFILED
    return (signals.priority_prepare_seconds() + loop
            + signals.sharded(makespan))


register_method(MethodSpec(
    name="BCLP",
    runner=bclp_count,
    accepts=("threads", "layer", "backend", "workers", "session"),
    cost=_predicted_seconds,
    order=30,
    summary="BCL list-scheduled over modelled CPU threads (§III-A)",
))
