"""Per-vertex local (p, q)-biclique counts.

The paper's GNN motivation ([53], §I) weights information aggregation by
each vertex's participation in (p, q)-bicliques, which needs *local*
counts: ``local(x)`` = number of (p, q)-bicliques containing vertex
``x``.  The enumeration is the same duplicate-free search the global
counters use, with two attribution rules at each leaf holding partial
result L and candidate set CR:

* every u in L joins all C(|CR|, q) bicliques of that leaf;
* every v in CR joins C(|CR| - 1, q - 1) of them (the bicliques whose R
  contains v).

Identities used as self-checks (and asserted in tests):
``sum(local_u) == p * total`` and ``sum(local_v) == q * total``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from math import comb

import numpy as np

from repro.core.counts import BicliqueQuery, anchored_view
from repro.engine.base import KernelBackend, resolve_backend
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.priority import priority_order, priority_rank
from repro.graph.twohop import build_two_hop_index

__all__ = ["LocalCountResult", "local_biclique_counts"]


@dataclass
class LocalCountResult:
    """Local counts for both layers plus the implied global count."""

    query: BicliqueQuery
    total: int
    counts_u: np.ndarray    # per original-U vertex
    counts_v: np.ndarray    # per original-V vertex
    wall_seconds: float

    def top_vertices(self, layer: str, k: int = 10) -> list[tuple[int, int]]:
        """The k vertices of ``layer`` with the highest participation."""
        arr = self.counts_u if layer == LAYER_U else self.counts_v
        order = np.argsort(-arr, kind="stable")[:k]
        return [(int(i), int(arr[i])) for i in order]


def local_biclique_counts(graph: BipartiteGraph,
                          query: BicliqueQuery,
                          layer: str | None = None,
                          backend: KernelBackend | str | None = None
                          ) -> LocalCountResult:
    """Exact local (p, q)-biclique counts for every vertex."""
    engine = resolve_backend(backend)
    start = time.perf_counter()
    g, p, q, anchored = anchored_view(graph, query, layer)
    rank = priority_rank(g, LAYER_U, q)
    order = priority_order(g, LAYER_U, q)
    index = build_two_hop_index(g, LAYER_U, q, min_priority_rank=rank)

    counts_anchor = np.zeros(g.num_u, dtype=object)
    counts_other = np.zeros(g.num_v, dtype=object)
    total = 0

    def leaf(path: list[int], cr: np.ndarray) -> None:
        nonlocal total
        found = comb(len(cr), q)
        if found == 0:
            return
        total += found
        for u in path:
            counts_anchor[u] += found
        share = comb(len(cr) - 1, q - 1)
        for v in cr:
            counts_other[int(v)] += share

    def rec(path: list[int], cl: np.ndarray, cr: np.ndarray) -> None:
        for u in cl:
            u = int(u)
            new_cr = engine.merge(cr, g.neighbors(LAYER_U, u))
            if len(new_cr) < q:
                continue
            path.append(u)
            if len(path) == p:
                leaf(path, new_cr)
            else:
                new_cl = engine.merge(cl, index.of(u))
                if len(new_cl) >= p - len(path):
                    rec(path, new_cl, new_cr)
            path.pop()

    for root in order:
        root = int(root)
        cr0 = g.neighbors(LAYER_U, root)
        if len(cr0) < q:
            continue
        if p == 1:
            leaf([root], cr0)
            continue
        cl0 = index.of(root)
        if len(cl0) < p - 1:
            continue
        rec([root], cl0, cr0)

    if anchored == LAYER_U:
        counts_u, counts_v = counts_anchor, counts_other
    else:
        counts_u, counts_v = counts_other, counts_anchor
    return LocalCountResult(
        query=query,
        total=total,
        counts_u=counts_u.astype(object),
        counts_v=counts_v.astype(object),
        wall_seconds=time.perf_counter() - start,
    )
