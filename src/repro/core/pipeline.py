"""End-to-end GBC pipeline: reorder -> HTB transform -> count.

This is the deployment path of the paper's full system, and the source of
the Table V component breakdown (reorder seconds, HTB transform seconds,
counting time).  Reordering is done once per graph and amortised across
(p, q) queries, which the appendix calls out explicitly — reuse is
supported by keeping the reordered graph in the result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.counts import BicliqueQuery, DeviceRunResult
from repro.core.gbc import GBCOptions, gbc_count
from repro.engine.base import KernelBackend
from repro.gpu.device import DeviceSpec, rtx_3090
from repro.graph.bipartite import BipartiteGraph
from repro.reorder.base import Reordering, apply_reordering
from repro.reorder.border import border_reordering
from repro.reorder.degree import degree_reordering
from repro.reorder.gorder import gorder_reordering

__all__ = ["PipelineResult", "run_pipeline", "REORDER_METHODS"]

REORDER_METHODS = ("none", "degree", "gorder", "border")


@dataclass
class PipelineResult:
    """Everything produced by one full GBC pipeline run."""

    reorder_method: str
    reorder_seconds: float
    reordered_graph: BipartiteGraph
    reordering: Reordering | None
    result: DeviceRunResult

    @property
    def htb_transform_seconds(self) -> float:
        return self.result.breakdown.get("htb_transform_seconds", 0.0)

    @property
    def counting_seconds(self) -> float:
        """Simulated device counting time (Table V 'Counting' column)."""
        return self.result.device_seconds


def _make_reordering(graph: BipartiteGraph, method: str,
                     border_iterations: int | None) -> Reordering | None:
    if method == "none":
        return None
    if method == "degree":
        return degree_reordering(graph)
    if method == "gorder":
        return gorder_reordering(graph)
    if method == "border":
        reordering, _ = border_reordering(graph, iterations=border_iterations)
        return reordering
    raise ValueError(f"unknown reorder method {method!r}; "
                     f"expected one of {REORDER_METHODS}")


def run_pipeline(graph: BipartiteGraph, query: BicliqueQuery,
                 reorder: str = "border",
                 spec: DeviceSpec | None = None,
                 options: GBCOptions | None = None,
                 border_iterations: int | None = None,
                 reordered: BipartiteGraph | None = None,
                 backend: KernelBackend | str | None = None) -> PipelineResult:
    """Run reorder + HTB + GBC; pass ``reordered`` to reuse a prior layout.

    The count is invariant under reordering (the reordered graph is
    isomorphic); only the simulated execution cost changes — which is the
    entire point of Table III.
    """
    spec = spec or rtx_3090()
    if reordered is not None:
        reordering = None
        reorder_seconds = 0.0
        g = reordered
    else:
        t0 = time.perf_counter()
        reordering = _make_reordering(graph, reorder, border_iterations)
        g = apply_reordering(graph, reordering) if reordering else graph
        reorder_seconds = time.perf_counter() - t0
    result = gbc_count(g, query, spec=spec, options=options, backend=backend)
    return PipelineResult(
        reorder_method=reorder,
        reorder_seconds=reorder_seconds,
        reordered_graph=g,
        reordering=reordering,
        result=result,
    )
