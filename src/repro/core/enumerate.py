"""Biclique *enumeration*: yield every (p, q)-biclique, not just the count.

The paper's problem family is "counting and enumeration" ([53] is titled
that way); densest-subgraph and cohesive-subgroup applications need the
actual vertex sets.  This module exposes a generator over (L, R) pairs
using the same duplicate-free priority-ordered search as the counters —
each biclique is produced exactly once, with L in priority-rank order and
R as a sorted tuple.

Enumeration is inherently output-bound (the count is often astronomically
larger than anything one wants to materialise), so the generator is lazy
and supports an explicit ``limit``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

import numpy as np

from repro.core.counts import BicliqueQuery, anchored_view
from repro.engine.base import KernelBackend, resolve_backend
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.priority import priority_order, priority_rank
from repro.graph.twohop import build_two_hop_index

__all__ = ["enumerate_bicliques"]


def enumerate_bicliques(graph: BipartiteGraph,
                        query: BicliqueQuery,
                        layer: str | None = None,
                        limit: int | None = None,
                        backend: KernelBackend | str | None = None
                        ) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Yield every (p, q)-biclique of ``graph`` as (L, R) id tuples.

    ``L`` always holds U-layer ids of the *original* graph and ``R`` the
    V-layer ids, regardless of which layer the search anchors on.
    """
    engine = resolve_backend(backend)
    g, p, q, anchored = anchored_view(graph, query, layer)
    rank = priority_rank(g, LAYER_U, q)
    order = priority_order(g, LAYER_U, q)
    index = build_two_hop_index(g, LAYER_U, q, min_priority_rank=rank)
    produced = 0

    def emit(path: list[int], cr: np.ndarray):
        nonlocal produced
        left = tuple(sorted(path))
        for right in combinations(map(int, cr), q):
            if limit is not None and produced >= limit:
                return
            produced += 1
            if anchored == LAYER_U:
                yield left, right
            else:
                yield right, left

    def rec(path: list[int], cl: np.ndarray, cr: np.ndarray):
        for u in cl:
            if limit is not None and produced >= limit:
                return
            u = int(u)
            new_cr = engine.merge(cr, g.neighbors(LAYER_U, u))
            if len(new_cr) < q:
                continue
            path.append(u)
            if len(path) == p:
                yield from emit(path, new_cr)
            else:
                new_cl = engine.merge(cl, index.of(u))
                if len(new_cl) >= p - len(path):
                    yield from rec(path, new_cl, new_cr)
            path.pop()

    for root in order:
        if limit is not None and produced >= limit:
            return
        root = int(root)
        cr0 = g.neighbors(LAYER_U, root)
        if len(cr0) < q:
            continue
        if p == 1:
            yield from emit([root], cr0)
            continue
        cl0 = index.of(root)
        if len(cl0) < p - 1:
            continue
        yield from rec([root], cl0, cr0)
