"""Shared query/result types for the biclique counters.

Every algorithm (Basic, BCL, BCLP, GBL, GBC) takes a
:class:`BicliqueQuery` and returns a :class:`CountResult`; the GPU-model
algorithms return the :class:`DeviceRunResult` extension carrying the
simulated-device accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb

from repro.errors import QueryError
from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V
from repro.graph.priority import select_layer
from repro.gpu.metrics import KernelMetrics

__all__ = ["BicliqueQuery", "CountResult", "DeviceRunResult", "comb",
           "anchored_view"]


@dataclass(frozen=True)
class BicliqueQuery:
    """A (p, q)-biclique counting query: p vertices from U, q from V."""

    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.q < 1:
            raise QueryError(f"p and q must be >= 1, got ({self.p}, {self.q})")

    def swapped(self) -> "BicliqueQuery":
        return BicliqueQuery(self.q, self.p)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.p},{self.q})"


@dataclass
class CountResult:
    """Outcome of one counting run."""

    algorithm: str
    query: BicliqueQuery
    count: int
    wall_seconds: float
    anchored_layer: str = LAYER_U
    breakdown: dict[str, float] = field(default_factory=dict)
    extras: dict[str, float] = field(default_factory=dict)
    #: registry name of the kernel backend that executed the run
    backend: str = "sim"
    #: whether that backend collected live device metrics/timers —
    #: False means any simulated-time or metrics fields are all zero
    backend_instrumented: bool = True


@dataclass
class DeviceRunResult(CountResult):
    """A count produced on the simulated device, with its accounting."""

    metrics: KernelMetrics = field(default_factory=KernelMetrics)
    makespan_cycles: float = 0.0
    device_seconds: float = 0.0
    steals: int = 0
    peak_working_set_bytes: int = 0
    # per-root schedule inputs, kept so balancing strategies can be
    # re-evaluated without re-running the kernels (Table IV)
    per_root_cycles: list = field(default_factory=list)
    root_weights: list = field(default_factory=list)


def anchored_view(graph: BipartiteGraph, query: BicliqueQuery,
                  layer: str | None = None):
    """Pick the anchored layer (BCL's degree heuristic) and normalise.

    Returns ``(graph', p', q', anchored_layer)`` where the search always
    expands p' vertices on the U layer of ``graph'`` (the graph is swapped
    when anchoring on V).
    """
    chosen = layer or select_layer(graph, query.p, query.q)
    if chosen == LAYER_U:
        return graph, query.p, query.q, LAYER_U
    return graph.swapped(), query.q, query.p, LAYER_V
