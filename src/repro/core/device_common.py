"""Shared machinery for the simulated-device counters (GBL and GBC).

Both algorithms follow Algorithm 1's host-side recipe: anchor a layer,
rank vertices by Definition-2 priority, materialise the rank-filtered
N2^q index, filter unpromising roots, then hand each root's search tree
to a thread block.  What differs is the per-root kernel (CSR binary
search + pure DFS for GBL; HTB + hybrid DFS-BFS for GBC) and the block
assignment policy — which is exactly the split this module encodes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from math import comb

import numpy as np

from repro.core.counts import BicliqueQuery, anchored_view
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.priority import priority_order, rank_from_order
from repro.graph.twohop import TwoHopIndex, build_two_hop_index

__all__ = ["DeviceInputs", "prepare_device_inputs", "assign_roots_to_blocks",
           "comb_sum", "resolve_native_pack", "BALANCE_STRATEGIES"]

BALANCE_STRATEGIES = ("none", "pre", "runtime", "joint")


def comb_sum(sizes: np.ndarray, k: int) -> int:
    """Exact ``sum(C(s, k) for s in sizes)`` over a leaf frontier.

    The search-leaf contribution of a whole batch: sizes below ``k``
    contribute zero, exactly like the per-candidate ``comb`` calls they
    replace.  A small lookup table vectorises the common case; when the
    largest binomial could overflow a summed int64, the sum falls back
    to Python's arbitrary-precision integers — counts stay exact, which
    the golden harness asserts bit-for-bit.
    """
    if len(sizes) == 0:
        return 0
    top = int(sizes.max())
    if top < k:
        return 0
    table = [comb(s, k) for s in range(top + 1)]
    if table[top] < (1 << 62) // len(sizes):
        lut = np.asarray(table, dtype=np.int64)
        return int(lut[sizes].sum())
    return sum(table[s] for s in sizes.tolist())


def resolve_native_pack(engine, inputs: "DeviceInputs", session=None):
    """The CSR pack a batch-kernel engine runs over, or ``None``.

    Engines that declare ``wants_pack`` (the native backend) receive a
    :class:`repro.engine.native.NativePack`: from the session's
    prepared-state cache when one is supplied (built once per
    (layer, k), the ``native:<layer>:<k>`` plan requirement), otherwise
    packed ad hoc from the freshly prepared inputs.  Other engines get
    ``None`` and the counters index the graph arrays directly.
    """
    if not getattr(engine, "wants_pack", False):
        return None
    if session is not None:
        return session.native_pack(inputs.anchored_layer, inputs.q)
    from repro.engine.native import build_native_pack

    return build_native_pack(inputs.graph, inputs.index,
                             inputs.anchored_layer, inputs.q)


@dataclass
class DeviceInputs:
    """Host-side preprocessing products shared by GBL and GBC."""

    graph: BipartiteGraph          # anchored view (U is the selected layer)
    p: int
    q: int
    anchored_layer: str
    order: np.ndarray              # roots in priority order (high -> low)
    rank: np.ndarray
    index: TwoHopIndex             # rank-filtered N2^q
    roots: np.ndarray              # promising roots, in priority order
    prepare_seconds: float


def prepare_device_inputs(graph: BipartiteGraph, query: BicliqueQuery,
                          layer: str | None = None,
                          session=None) -> DeviceInputs:
    """Anchor, rank, build the 2-hop index and filter unpromising roots.

    With a :class:`repro.query.GraphSession` the order/rank/index come
    from the session's caches (built at most once per anchored layer and
    k); only the cheap per-query root filter runs every time.  The
    structures are identical either way — the session derives them from
    one shared wedge pass instead of enumerating wedges afresh.
    """
    t0 = time.perf_counter()
    g, p, q, anchored = anchored_view(graph, query, layer)
    if session is not None:
        session.check_owns(graph)
        g = session.anchored(anchored)
        order = session.priority_order(anchored, q)
        rank = session.priority_rank(anchored, q)
        index = session.two_hop_index(anchored, q)
        session.stats.prepare_calls += 1
    else:
        order = priority_order(g, LAYER_U, q)
        rank = rank_from_order(order)
        index = build_two_hop_index(g, LAYER_U, q, min_priority_rank=rank)
    promising = []
    for root in order:
        root = int(root)
        if g.degree(LAYER_U, root) < q:
            continue
        if p > 1 and index.size(root) < p - 1:
            continue
        promising.append(root)
    return DeviceInputs(
        graph=g, p=p, q=q, anchored_layer=anchored,
        order=order, rank=rank, index=index,
        roots=np.asarray(promising, dtype=np.int64),
        prepare_seconds=time.perf_counter() - t0,
    )


def assign_roots_to_blocks(roots: np.ndarray,
                           weights: np.ndarray,
                           num_blocks: int,
                           strategy: str) -> list[list[int]]:
    """Distribute root indices (positions into ``roots``) over blocks.

    * ``none`` / ``runtime`` — contiguous equal-count chunks in priority
      order (the naive split; ``runtime`` later adds stealing on top).
    * ``pre`` / ``joint`` — the paper's pre-runtime edge-oriented policy:
      greedy weighted assignment (weight = the root's number of
      second-level search-tree vertices) to the currently lightest block,
      heaviest roots first.
    * ``interleave`` — GBL's ``i += gridDim`` striding (§III-B).
    """
    from repro.balance.preruntime import (
        contiguous_split,
        interleaved_split,
        weighted_greedy_split,
    )

    n = len(roots)
    if n == 0:
        return [[] for _ in range(num_blocks)]
    if strategy in ("none", "runtime"):
        return contiguous_split(n, num_blocks)
    if strategy == "interleave":
        return interleaved_split(n, num_blocks)
    if strategy in ("pre", "joint"):
        return weighted_greedy_split(np.asarray(weights), num_blocks)
    raise ValueError(f"unknown balance strategy {strategy!r}; "
                     f"expected one of {BALANCE_STRATEGIES} or 'interleave'")
