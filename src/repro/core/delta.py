"""Exact per-edge delta rules for (p, q)-biclique counts.

The streaming lineage the paper cites ([37] FLEET, [40] sGrapp)
maintains butterfly counts under edge updates through a wedge-closure
argument: inserting (u, v) creates one butterfly per edge of the
bipartite subgraph induced on ``N(v) \\ {u}`` x ``N(u) \\ {v}``.  That
argument generalises verbatim to arbitrary shapes:

    the number of (p, q)-bicliques containing edge (u, v) equals the
    number of (p-1, q-1)-bicliques of the subgraph induced on
    A = N(v) \\ {u}  (the other U-side vertices adjacent to v) and
    B = N(u) \\ {v}  (the other V-side vertices adjacent to u).

Every biclique through (u, v) picks its remaining p-1 U-vertices from A
and q-1 V-vertices from B, mutually adjacent — and neither A, B, nor
the edges between them involve u or v, so the quantity is identical
whether (u, v) itself is present.  Hence one function serves both
directions: insertion adds it to the running count, deletion subtracts
it.  For (p, q) = (2, 2) the induced (1, 1) count is exactly the
wedge-closure sum :class:`~repro.core.incremental.DynamicButterflyCounter`
has always computed.

The induced count runs over Python-int bitmasks of B (arbitrary width,
``int.bit_count`` popcounts), with combinatorial short-circuits for the
degenerate sides: a (0, b)-biclique is any b-subset of B, so the p = 1
column is ``C(|B|, q-1)`` with no enumeration at all.
"""

from __future__ import annotations

from math import comb
from typing import Sequence

__all__ = ["bicliques_containing_edge", "delta_work_estimate"]


def _intersect_sorted(row: Sequence[int], other: Sequence[int]) -> list[int]:
    """Sorted-merge intersection of two ascending sequences."""
    out: list[int] = []
    i = j = 0
    n, m = len(row), len(other)
    while i < n and j < m:
        a, b = row[i], other[j]
        if a == b:
            out.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return out


def bicliques_containing_edge(adj_u: Sequence[Sequence[int]],
                              adj_v: Sequence[Sequence[int]],
                              u: int, v: int, p: int, q: int) -> int:
    """Exact number of (p, q)-bicliques that contain edge (u, v).

    ``adj_u[x]`` is the ascending V-neighbour list of U-vertex ``x``;
    ``adj_v[y]`` the ascending U-neighbour list of V-vertex ``y``.  The
    result does not depend on whether (u, v) itself is currently in the
    adjacency, so callers may evaluate it before or after the
    structural update — insertion increases the global (p, q) count by
    exactly this value, deletion decreases it by the same.

    >>> adj_u = [[0, 1], [0, 1]]     # K_{2,2}
    >>> adj_v = [[0, 1], [0, 1]]
    >>> bicliques_containing_edge(adj_u, adj_v, 0, 0, 2, 2)
    1
    >>> bicliques_containing_edge(adj_u, adj_v, 0, 0, 1, 2)
    1
    >>> bicliques_containing_edge(adj_u, adj_v, 0, 0, 1, 1)
    1
    """
    a, b = p - 1, q - 1
    row_u = adj_u[u]
    len_b = len(row_u) - (1 if _contains(row_u, v) else 0)
    if a == 0:
        return comb(len_b, b)
    row_v = adj_v[v]
    len_a = len(row_v) - (1 if _contains(row_v, u) else 0)
    if b == 0:
        return comb(len_a, a)
    if len_a < a or len_b < b:
        return 0

    cand_b = [w for w in row_u if w != v]
    pos = {w: i for i, w in enumerate(cand_b)}
    rows: list[int] = []
    for x in row_v:
        if x == u:
            continue
        common = _intersect_sorted(adj_u[x], cand_b)
        if len(common) < b:
            continue
        mask = 0
        for w in common:
            mask |= 1 << pos[w]
        rows.append(mask)
    if len(rows) < a:
        return 0

    full = (1 << len(cand_b)) - 1

    def choose(start: int, remaining: int, mask: int) -> int:
        total = 0
        for i in range(start, len(rows) - remaining + 1):
            m = mask & rows[i]
            c = m.bit_count()
            if c < b:
                continue
            if remaining == 1:
                total += comb(c, b)
            else:
                total += choose(i + 1, remaining - 1, m)
        return total

    return choose(0, a, full)


def delta_work_estimate(adj_u: Sequence[Sequence[int]],
                        adj_v: Sequence[Sequence[int]],
                        u: int, v: int) -> int:
    """Cheap upper-ish bound on the work one delta evaluation costs.

    The dominant term of :func:`bicliques_containing_edge` is building
    the |A| row bitmasks over B — one sorted merge per wedge partner —
    so d(u) * d(v) prices the edit well enough for the delta-vs-rebuild
    cutover (the subset recursion only runs over rows that survived the
    ``>= q-1`` guard).  Work units, never wall-clock: the cutover
    decision stays deterministic.
    """
    return max(1, len(adj_u[u])) * max(1, len(adj_v[v]))


def _contains(row: Sequence[int], value: int) -> bool:
    import bisect

    i = bisect.bisect_left(row, value)
    return i < len(row) and row[i] == value
