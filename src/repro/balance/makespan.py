"""Makespan diagnostics for balance experiments."""

from __future__ import annotations

import numpy as np

__all__ = ["perfect_makespan", "imbalance_factor", "lpt_upper_bound"]


def perfect_makespan(costs: np.ndarray, num_blocks: int) -> float:
    """The unattainable ideal: total work spread perfectly, but never less
    than the single largest task."""
    costs = np.asarray(costs, dtype=np.float64)
    if len(costs) == 0 or num_blocks <= 0:
        return 0.0
    return max(float(costs.sum()) / num_blocks, float(costs.max()))


def imbalance_factor(block_loads: np.ndarray) -> float:
    """max load / mean load; 1.0 means perfectly even."""
    loads = np.asarray(block_loads, dtype=np.float64)
    if len(loads) == 0:
        return 1.0
    mean = float(loads.mean())
    return float(loads.max()) / mean if mean > 0 else 1.0


def lpt_upper_bound(costs: np.ndarray, num_blocks: int) -> float:
    """Graham's bound: LPT makespan <= (4/3 - 1/(3m)) * OPT."""
    opt = perfect_makespan(costs, num_blocks)
    if num_blocks <= 0:
        return 0.0
    return (4.0 / 3.0 - 1.0 / (3.0 * num_blocks)) * opt
