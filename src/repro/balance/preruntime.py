"""Pre-runtime task allocation policies (§V-C, "Pre-runtime load balancing").

The unit of allocation is one root's search tree; its *weight* is the
number of second-level vertices (|N2^q(root)|), which is the paper's
edge-oriented proxy: distributing second-level vertices evenly is the
same as weighted root placement.  Three static policies are provided:

* :func:`contiguous_split` — naive equal-count chunks (the "No balance"
  baseline of Table IV);
* :func:`interleaved_split` — GBL's ``i += gridDim`` striding (§III-B);
* :func:`weighted_greedy_split` — the paper's pre-runtime policy: heaviest
  root first onto the currently lightest block (LPT scheduling).
"""

from __future__ import annotations

import numpy as np

__all__ = ["contiguous_split", "interleaved_split", "weighted_greedy_split",
           "split_loads"]


def contiguous_split(num_tasks: int, num_blocks: int) -> list[list[int]]:
    """Equal-count contiguous chunks of task indices."""
    blocks: list[list[int]] = [[] for _ in range(num_blocks)]
    if num_tasks <= 0:
        return blocks
    bounds = np.linspace(0, num_tasks, num_blocks + 1).astype(int)
    for b in range(num_blocks):
        blocks[b] = list(range(int(bounds[b]), int(bounds[b + 1])))
    return blocks


def interleaved_split(num_tasks: int, num_blocks: int) -> list[list[int]]:
    """Round-robin striding: task i goes to block i % num_blocks."""
    blocks: list[list[int]] = [[] for _ in range(num_blocks)]
    for i in range(num_tasks):
        blocks[i % num_blocks].append(i)
    return blocks


def weighted_greedy_split(weights: np.ndarray,
                          num_blocks: int) -> list[list[int]]:
    """LPT: heaviest task first, always onto the lightest block.

    Deterministic (stable sort; ties by block id), and within 4/3 of the
    optimal makespan for any weight vector — good enough that the paper's
    "Pre-runtime Only" row already beats "Runtime Only".
    """
    weights = np.asarray(weights, dtype=np.float64)
    blocks: list[list[int]] = [[] for _ in range(num_blocks)]
    loads = np.zeros(num_blocks, dtype=np.float64)
    for i in np.argsort(-weights, kind="stable"):
        b = int(loads.argmin())
        blocks[b].append(int(i))
        loads[b] += float(weights[i])
    return blocks


def split_loads(blocks: list[list[int]], costs: np.ndarray) -> np.ndarray:
    """Total cost per block under an assignment."""
    costs = np.asarray(costs, dtype=np.float64)
    return np.asarray([float(costs[blk].sum()) if len(blk) else 0.0
                       for blk in blocks])
