"""The four load-balancing strategies of Table IV, as one evaluable object.

``none``          static contiguous split, no stealing
``pre``           weighted greedy (edge-oriented) split, no stealing
``runtime``       contiguous split + work stealing
``joint``         weighted greedy split + work stealing (the GBC default)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.balance.preruntime import (
    contiguous_split,
    interleaved_split,
    weighted_greedy_split,
)
from repro.gpu.device import DeviceSpec
from repro.gpu.workqueue import StealingResult, simulate_blocks

__all__ = ["BalanceStrategy", "STRATEGIES", "get_strategy", "evaluate_strategy"]


@dataclass(frozen=True)
class BalanceStrategy:
    """A named combination of static placement and runtime stealing."""

    name: str
    placement: str   # "contiguous" | "weighted" | "interleaved"
    stealing: bool

    def assign(self, weights: np.ndarray, num_blocks: int) -> list[list[int]]:
        """Static placement of task indices onto blocks."""
        n = len(weights)
        if self.placement == "contiguous":
            return contiguous_split(n, num_blocks)
        if self.placement == "interleaved":
            return interleaved_split(n, num_blocks)
        if self.placement == "weighted":
            return weighted_greedy_split(weights, num_blocks)
        raise ValueError(f"unknown placement {self.placement!r}")


STRATEGIES: dict[str, BalanceStrategy] = {
    "none": BalanceStrategy("none", "contiguous", stealing=False),
    "pre": BalanceStrategy("pre", "weighted", stealing=False),
    "runtime": BalanceStrategy("runtime", "contiguous", stealing=True),
    "joint": BalanceStrategy("joint", "weighted", stealing=True),
}


def get_strategy(name: str) -> BalanceStrategy:
    """Look up one of the Table IV strategies by name."""
    if name not in STRATEGIES:
        raise ValueError(f"unknown strategy {name!r}; "
                         f"expected one of {sorted(STRATEGIES)}")
    return STRATEGIES[name]


def evaluate_strategy(name: str,
                      task_cycles: np.ndarray,
                      weights: np.ndarray,
                      num_blocks: int,
                      spec: DeviceSpec) -> StealingResult:
    """Schedule measured per-task cycles under a strategy (Table IV row).

    ``weights`` are the *pre-runtime estimates* (second-level sizes) used
    for placement; ``task_cycles`` are the true costs the schedule then
    pays — the gap between the two is why runtime stealing still helps.
    """
    strategy = get_strategy(name)
    assignment = strategy.assign(np.asarray(weights), num_blocks)
    costs = [[float(task_cycles[i]) for i in blk] for blk in assignment]
    return simulate_blocks(costs, spec, stealing=strategy.stealing)
