"""Load balancing (§V-C): pre-runtime placement, work stealing, makespan."""

from repro.balance.makespan import imbalance_factor, lpt_upper_bound, perfect_makespan
from repro.balance.preruntime import (
    contiguous_split,
    interleaved_split,
    split_loads,
    weighted_greedy_split,
)
from repro.balance.strategies import (
    STRATEGIES,
    BalanceStrategy,
    evaluate_strategy,
    get_strategy,
)

__all__ = [
    "contiguous_split", "interleaved_split", "weighted_greedy_split",
    "split_loads",
    "BalanceStrategy", "STRATEGIES", "get_strategy", "evaluate_strategy",
    "perfect_makespan", "imbalance_factor", "lpt_upper_bound",
]
