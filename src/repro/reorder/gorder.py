"""Gorder-style sliding-window reordering (the Table III comparator).

Wei et al.'s Gorder [50] greedily appends, at each step, the vertex with
the highest locality score against a sliding window of the last ``w``
placed vertices; the score counts shared neighbours (and direct links in
unipartite graphs).  We implement the natural bipartite transcription: the
score of candidate ``v`` is the number of common 1-hop neighbours with the
window vertices, accumulated via sparse adjacency walks.

Gorder optimises CPU cache hit rate, not HTB block fill — the paper's
point in §VII-D is that it helps (2.4x) but less than Border (3.1x).  We
keep it faithful enough to exhibit exactly that gap.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V, other_layer
from repro.reorder.base import Reordering, identity_permutation

__all__ = ["gorder_permutation", "gorder_reordering"]


def gorder_permutation(graph: BipartiteGraph, layer: str,
                       window: int = 5) -> np.ndarray:
    """Gorder-like permutation of one layer: perm[old_id] = new_id."""
    n = graph.layer_size(layer)
    if n == 0:
        return identity_permutation(0)
    rows_layer = other_layer(layer)
    degrees = graph.degrees(layer)
    placed = np.zeros(n, dtype=bool)
    # score[v] = number of shared-neighbour hits with the current window
    score = np.zeros(n, dtype=np.int64)
    recent: deque[int] = deque()
    order: list[int] = []

    def bump(vertex: int, delta: int) -> None:
        for mid in graph.neighbors(layer, vertex):
            nbrs = graph.neighbors(rows_layer, int(mid))
            score[nbrs] += delta

    start = int(degrees.argmax())
    current = start
    for _ in range(n):
        placed[current] = True
        order.append(current)
        recent.append(current)
        bump(current, +1)
        if len(recent) > window:
            bump(recent.popleft(), -1)
        masked = np.where(placed, np.iinfo(np.int64).min, score)
        nxt = int(masked.argmax())
        if placed[nxt]:
            remaining = np.flatnonzero(~placed)
            if len(remaining) == 0:
                break
            nxt = int(remaining[0])
        current = nxt
    perm = np.empty(n, dtype=np.int64)
    perm[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    return perm


def gorder_reordering(graph: BipartiteGraph, window: int = 5,
                      layers: tuple[str, ...] = (LAYER_U, LAYER_V)) -> Reordering:
    """Gorder-like reordering applied per layer."""
    perm_u = gorder_permutation(graph, LAYER_U, window) if LAYER_U in layers \
        else identity_permutation(graph.num_u)
    perm_v = gorder_permutation(graph, LAYER_V, window) if LAYER_V in layers \
        else identity_permutation(graph.num_v)
    return Reordering(method="gorder", perm_u=perm_u, perm_v=perm_v)
