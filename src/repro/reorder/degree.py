"""Degree-based preordering.

Border's preprocessing step (§V-B, final paragraph): placing vertices in
descending degree order clusters the head of the power-law distribution
into adjacent ids, which already compacts adjacency-list bit layouts and
cuts the number of Border iterations needed afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V
from repro.reorder.base import Reordering, identity_permutation

__all__ = ["degree_permutation", "degree_reordering"]


def degree_permutation(graph: BipartiteGraph, layer: str,
                       descending: bool = True) -> np.ndarray:
    """perm[old_id] = new_id sorted by degree (desc by default), id tiebreak."""
    degrees = graph.degrees(layer)
    ids = np.arange(graph.layer_size(layer), dtype=np.int64)
    key = -degrees if descending else degrees
    order = ids[np.lexsort((ids, key))]  # order[new_id] = old_id
    perm = np.empty_like(order)
    perm[order] = ids
    return perm


def degree_reordering(graph: BipartiteGraph,
                      layers: tuple[str, ...] = (LAYER_U, LAYER_V)) -> Reordering:
    """Degree-descending reordering of the requested layers."""
    perm_u = degree_permutation(graph, LAYER_U) if LAYER_U in layers \
        else identity_permutation(graph.num_u)
    perm_v = degree_permutation(graph, LAYER_V) if LAYER_V in layers \
        else identity_permutation(graph.num_v)
    return Reordering(method="degree", perm_u=perm_u, perm_v=perm_v)
