"""Border — the paper's HTB-aware vertex reordering (Algorithm 2, §V-B).

Border reorders one layer at a time (bipartite layers must keep separate
id spaces).  Each greedy iteration:

1. finds the column vertex ``vm`` owning the most 1-blocks,
2. builds the candidate set of vertices sharing the *fewest* common
   neighbours with ``vm`` (computed, as the paper notes, by a sparse
   matrix-vector product),
3. scores each candidate ``vn`` by the swap profit
   ``x_m + x_n - y_m - y_n`` (1-blocks destroyed minus 1-blocks created in
   the two affected block columns),
4. swaps the column positions of ``vm`` and ``vn`` and updates the block
   counts incrementally.

Two engineering choices beyond the paper's pseudo-code:

* when the best candidate for ``vm`` has non-positive profit, ``vm`` is
  parked (skipped until some swap changes the landscape) instead of
  aborting the whole loop — Algorithm 2 as written would either cycle or
  stop at the first stuck vertex;
* the per-vertex 1-block census is recomputed with one vectorised pass
  over the edge list per iteration, so thousands of iterations stay cheap.

The implementation never materialises the dense bit matrix: it keeps the
(rows x num_blocks) ones-per-block count matrix and each vertex's row set
(its bipartite adjacency), so one iteration is O(|E|).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V, other_layer
from repro.htb.bitmap import WORD_BITS
from repro.reorder.base import Reordering, identity_permutation
from repro.reorder.blocks import build_block_counts
from repro.reorder.degree import degree_permutation

__all__ = ["border_permutation", "border_reordering", "BorderStats"]


@dataclass
class BorderStats:
    """Diagnostics from one Border run (per layer)."""

    iterations_run: int = 0
    swaps_applied: int = 0
    one_blocks_before: int = 0
    one_blocks_after: int = 0
    total_profit: int = 0


class _BorderState:
    """Mutable state for a single-layer Border run."""

    def __init__(self, graph: BipartiteGraph, layer: str,
                 positions: np.ndarray, word_bits: int):
        self.graph = graph
        self.layer = layer
        self.word_bits = word_bits
        self.rows_layer = other_layer(layer)
        self.n_cols = graph.layer_size(layer)
        self.positions = positions.copy()           # vertex -> column position
        self.counts = build_block_counts(graph, layer, self.positions, word_bits)
        # rows_of[v]: sorted opposite-layer rows containing column vertex v
        self.rows_of = [graph.neighbors(layer, v) for v in range(self.n_cols)]
        # flat edge arrays for the vectorised 1-block census
        if self.n_cols and graph.num_edges:
            edge_rows, edge_cols = [], []
            for v in range(self.n_cols):
                rows = self.rows_of[v]
                edge_rows.append(rows)
                edge_cols.append(np.full(len(rows), v, dtype=np.int64))
            self.edge_rows = np.concatenate(edge_rows)
            self.edge_cols = np.concatenate(edge_cols)
        else:
            self.edge_rows = np.empty(0, dtype=np.int64)
            self.edge_cols = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def block_of(self, vertex: int) -> int:
        return int(self.positions[vertex]) // self.word_bits

    def one_blocks_per_vertex(self) -> np.ndarray:
        """ones[v] = number of rows where v sits alone in its block.

        One vectorised gather over the edge list: edge (r, v) contributes
        when counts[r, block(v)] == 1.
        """
        ones = np.zeros(self.n_cols, dtype=np.int64)
        if len(self.edge_rows) == 0:
            return ones
        blk = self.positions[self.edge_cols] // self.word_bits
        hits = self.counts[self.edge_rows, blk] == 1
        np.add.at(ones, self.edge_cols[hits], 1)
        return ones

    def total_one_blocks(self) -> int:
        return int(np.count_nonzero(self.counts == 1))

    def common_neighbor_counts(self, vm: int) -> np.ndarray:
        """|N(v) ∩ N(vm)| for every column vertex v (the SpMV of step 2)."""
        shared = np.zeros(self.n_cols, dtype=np.int64)
        for r in self.rows_of[vm]:
            nbrs = self.graph.neighbors(self.rows_layer, int(r))
            shared[nbrs] += 1
        return shared

    def swap_profit(self, va: int, vb: int) -> int:
        """x_a + x_b - y_a - y_b for exchanging the two column positions."""
        ka, kb = self.block_of(va), self.block_of(vb)
        if ka == kb:
            return 0
        ra, rb = self.rows_of[va], self.rows_of[vb]
        only_a = np.setdiff1d(ra, rb, assume_unique=True)
        only_b = np.setdiff1d(rb, ra, assume_unique=True)
        # moving va out of block ka: rows where it was alone lose a 1-block
        x_a = int(np.count_nonzero(self.counts[only_a, ka] == 1))
        # moving va into block kb: rows where kb was empty gain a 1-block
        y_a = int(np.count_nonzero(self.counts[only_a, kb] == 0))
        x_b = int(np.count_nonzero(self.counts[only_b, kb] == 1))
        y_b = int(np.count_nonzero(self.counts[only_b, ka] == 0))
        return x_a + x_b - y_a - y_b

    def apply_swap(self, va: int, vb: int) -> None:
        """Exchange the positions of va and vb, updating block counts."""
        ka, kb = self.block_of(va), self.block_of(vb)
        if ka != kb:
            ra, rb = self.rows_of[va], self.rows_of[vb]
            only_a = np.setdiff1d(ra, rb, assume_unique=True)
            only_b = np.setdiff1d(rb, ra, assume_unique=True)
            self.counts[only_a, ka] -= 1
            self.counts[only_a, kb] += 1
            self.counts[only_b, kb] -= 1
            self.counts[only_b, ka] += 1
        pa, pb = self.positions[va], self.positions[vb]
        self.positions[va], self.positions[vb] = pb, pa


def _border_single_layer(graph: BipartiteGraph, layer: str,
                         iterations: int,
                         start_positions: np.ndarray,
                         word_bits: int,
                         candidate_cap: int = 64) -> tuple[np.ndarray, BorderStats]:
    """Run Algorithm 2 on one layer; returns (positions, stats)."""
    state = _BorderState(graph, layer, start_positions, word_bits)
    stats = BorderStats(one_blocks_before=state.total_one_blocks())
    if state.n_cols <= word_bits:
        # a single block column: no swap can change anything
        stats.one_blocks_after = stats.one_blocks_before
        return state.positions, stats
    big = np.iinfo(np.int64).max
    parked: set[int] = set()   # vertices whose best swap is unprofitable
    for _ in range(iterations):
        ones = state.one_blocks_per_vertex()
        if parked:
            ones[list(parked)] = -1
        vm = int(ones.argmax())
        if ones[vm] <= 0:
            break
        stats.iterations_run += 1
        shared = state.common_neighbor_counts(vm)
        shared[vm] = big
        # exclude same-block vertices: a same-block swap is a no-op
        same_block = (state.positions // word_bits) == state.block_of(vm)
        shared[same_block] = big
        finite = shared < big
        if not finite.any():
            parked.add(vm)
            continue
        low = shared[finite].min()
        cand = np.flatnonzero(shared == low)
        if len(cand) > candidate_cap:
            cand = cand[:candidate_cap]
        best_profit = None
        best = None
        for vn in cand:
            profit = state.swap_profit(vm, int(vn))
            if best_profit is None or profit > best_profit:
                best_profit, best = profit, int(vn)
        if best is None or best_profit is None or best_profit <= 0:
            # the paper accepts profit >= 0; demanding > 0 avoids cycling.
            # park this vertex and keep going with the next-worst one.
            parked.add(vm)
            continue
        state.apply_swap(vm, best)
        stats.swaps_applied += 1
        stats.total_profit += best_profit
        parked.clear()  # the landscape changed; parked vertices may free up
    stats.one_blocks_after = state.total_one_blocks()
    return state.positions, stats


def _default_iterations(n_cols: int) -> int:
    """Iteration budget scaling with the layer width (adaptive default)."""
    return max(128, 2 * n_cols)


def border_permutation(graph: BipartiteGraph, layer: str,
                       iterations: int | None = None,
                       degree_preorder: bool = True,
                       word_bits: int = WORD_BITS,
                       candidate_cap: int = 64) -> tuple[np.ndarray, BorderStats]:
    """Border permutation for one layer: perm[old_id] = new_id.

    The paper preorders by degree to compact the power-law head; on
    inputs whose id order is already local (e.g. the synthetic recipe's
    window-sampled neighbourhoods) that preorder *scatters* the layout,
    so with ``degree_preorder=True`` we start from whichever of
    {identity, degree-descending} has fewer 1-blocks.
    """
    n = graph.layer_size(layer)
    if degree_preorder:
        identity = identity_permutation(n)
        degree = degree_permutation(graph, layer)
        ones_identity = int(np.count_nonzero(
            build_block_counts(graph, layer, identity, word_bits) == 1))
        ones_degree = int(np.count_nonzero(
            build_block_counts(graph, layer, degree, word_bits) == 1))
        start = degree if ones_degree <= ones_identity else identity
    else:
        start = identity_permutation(n)
    if iterations is None:
        iterations = _default_iterations(n)
    positions, stats = _border_single_layer(
        graph, layer, iterations, start, word_bits, candidate_cap)
    return positions, stats


def border_reordering(graph: BipartiteGraph,
                      iterations: int | None = None,
                      degree_preorder: bool = True,
                      layers: tuple[str, ...] = (LAYER_U, LAYER_V),
                      word_bits: int = WORD_BITS) -> tuple[Reordering, dict[str, BorderStats]]:
    """Border over both layers (each reordered independently, §V-B)."""
    stats: dict[str, BorderStats] = {}
    if LAYER_U in layers:
        perm_u, stats[LAYER_U] = border_permutation(
            graph, LAYER_U, iterations, degree_preorder, word_bits)
    else:
        perm_u = identity_permutation(graph.num_u)
    if LAYER_V in layers:
        perm_v, stats[LAYER_V] = border_permutation(
            graph, LAYER_V, iterations, degree_preorder, word_bits)
    else:
        perm_v = identity_permutation(graph.num_v)
    return Reordering(method="border", perm_u=perm_u, perm_v=perm_v), stats
