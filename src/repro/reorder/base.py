"""Reordering plumbing: permutation validation and application.

A reordering produces, per layer, a permutation array ``perm`` with
``perm[old_id] = new_id``.  Applying it yields an isomorphic graph whose
adjacency lists are re-sorted under the new ids — the layout HTB is then
built from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReorderError
from repro.graph.bipartite import BipartiteGraph

__all__ = ["Reordering", "identity_permutation", "validate_permutation",
           "apply_reordering", "compose_permutations"]


@dataclass(frozen=True)
class Reordering:
    """Per-layer permutations plus the method that produced them."""

    method: str
    perm_u: np.ndarray
    perm_v: np.ndarray

    def apply(self, graph: BipartiteGraph) -> BipartiteGraph:
        return apply_reordering(graph, self)


def identity_permutation(n: int) -> np.ndarray:
    """The do-nothing permutation of size n."""
    return np.arange(n, dtype=np.int64)


def validate_permutation(perm: np.ndarray, n: int) -> None:
    """Raise :class:`ReorderError` unless perm is a bijection on [0, n)."""
    perm = np.asarray(perm)
    if len(perm) != n or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ReorderError(f"not a permutation of {n} elements")


def apply_reordering(graph: BipartiteGraph, reordering: Reordering) -> BipartiteGraph:
    """Materialise the reordered (isomorphic) graph."""
    validate_permutation(reordering.perm_u, graph.num_u)
    validate_permutation(reordering.perm_v, graph.num_v)
    out = graph.relabeled(reordering.perm_u, reordering.perm_v)
    return BipartiteGraph(out.num_u, out.num_v, out.u_offsets,
                          out.u_neighbors, out.v_offsets, out.v_neighbors,
                          name=f"{graph.name}/{reordering.method}")


def compose_permutations(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Permutation equal to applying ``first`` then ``second``."""
    first = np.asarray(first, dtype=np.int64)
    second = np.asarray(second, dtype=np.int64)
    if len(first) != len(second):
        raise ReorderError("permutation sizes differ")
    return second[first]
