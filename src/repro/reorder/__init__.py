"""Vertex reordering: degree preorder, Border (§V-B), Gorder comparator."""

from repro.reorder.base import (
    Reordering,
    apply_reordering,
    compose_permutations,
    identity_permutation,
    validate_permutation,
)
from repro.reorder.blocks import (
    BlockCensus,
    block_census,
    build_block_counts,
    htb_word_total,
)
from repro.reorder.border import BorderStats, border_permutation, border_reordering
from repro.reorder.degree import degree_permutation, degree_reordering
from repro.reorder.gorder import gorder_permutation, gorder_reordering

__all__ = [
    "Reordering", "identity_permutation", "validate_permutation",
    "apply_reordering", "compose_permutations",
    "BlockCensus", "block_census", "build_block_counts", "htb_word_total",
    "BorderStats", "border_permutation", "border_reordering",
    "degree_permutation", "degree_reordering",
    "gorder_permutation", "gorder_reordering",
]
