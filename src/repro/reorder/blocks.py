"""Block-census utilities shared by Border and the reorder benchmarks.

A *block* is a run of 32 consecutive column positions within one row of
the layer-adjacency matrix (§V-B); an *m-block* contains exactly m ones.
1-blocks are the sparsity pathology HTB suffers from — each stores a whole
32-bit word for a single neighbour — so both Border's objective and the
reorder-quality metrics are phrased in block counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph, other_layer
from repro.htb.bitmap import WORD_BITS

__all__ = ["BlockCensus", "block_census", "build_block_counts", "htb_word_total"]


@dataclass(frozen=True)
class BlockCensus:
    """Distribution of m-block sizes over all rows of a layer matrix."""

    histogram: dict[int, int]  # m -> number of m-blocks (m >= 1)

    @property
    def one_blocks(self) -> int:
        return self.histogram.get(1, 0)

    @property
    def nonzero_blocks(self) -> int:
        return sum(self.histogram.values())

    @property
    def mean_fill(self) -> float:
        """Average ones per non-zero block (HTB density)."""
        total = sum(m * c for m, c in self.histogram.items())
        blocks = self.nonzero_blocks
        return total / blocks if blocks else 0.0


def build_block_counts(graph: BipartiteGraph, reorder_layer: str,
                       positions: np.ndarray | None = None,
                       word_bits: int = WORD_BITS) -> np.ndarray:
    """Dense (rows x num_blocks) matrix of ones-per-block counts.

    Rows are the vertices of the *opposite* layer (each row is one
    adjacency list); columns of the conceptual bit matrix are the
    reorder-layer vertices at their current ``positions``.
    """
    rows_layer = other_layer(reorder_layer)
    n_cols = graph.layer_size(reorder_layer)
    n_rows = graph.layer_size(rows_layer)
    if positions is None:
        positions = np.arange(n_cols, dtype=np.int64)
    num_blocks = -(-n_cols // word_bits) if n_cols else 0
    counts = np.zeros((n_rows, max(num_blocks, 1)), dtype=np.int32)
    for r in range(n_rows):
        nbrs = graph.neighbors(rows_layer, r)
        if len(nbrs):
            np.add.at(counts[r], positions[nbrs] // word_bits, 1)
    return counts


def block_census(graph: BipartiteGraph, reorder_layer: str,
                 positions: np.ndarray | None = None,
                 word_bits: int = WORD_BITS) -> BlockCensus:
    """Histogram of m-block counts for the layer matrix."""
    counts = build_block_counts(graph, reorder_layer, positions, word_bits)
    nz = counts[counts > 0]
    values, freq = np.unique(nz, return_counts=True)
    return BlockCensus(histogram={int(m): int(c)
                                  for m, c in zip(values, freq)})


def htb_word_total(graph: BipartiteGraph, reorder_layer: str,
                   positions: np.ndarray | None = None,
                   word_bits: int = WORD_BITS) -> int:
    """Total HTB words needed for all rows under the given column layout
    (= number of non-zero blocks); the direct memory cost Border shrinks."""
    return block_census(graph, reorder_layer, positions, word_bits).nonzero_blocks
