"""The GCL work-stealing queue of §V-C, as a deterministic timeline model.

The paper keeps one ``GCL`` entry per thread block recording how many of
the block's assigned root vertices have been processed (0xFFFFFFFF once
exhausted), plus a lock word per entry.  An idle block scans ``GCL`` for a
victim, locks the entry, advances the index, unlocks, and processes the
stolen root (Fig. 6).

Block execution is simulated as a discrete-event timeline: each block has
a clock; processing root r costs its measured cycles; every own-queue pop
costs one atomic, every steal costs a scan plus two atomics.  The result
exposes makespan and per-block busy time, which is exactly what Table IV
compares across balancing strategies.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec

__all__ = ["StealingResult", "simulate_blocks"]


@dataclass(frozen=True)
class StealingResult:
    """Outcome of a simulated multi-block execution."""

    makespan_cycles: float
    block_busy_cycles: np.ndarray
    steals: int
    atomics: int

    @property
    def imbalance(self) -> float:
        """max busy / mean busy — 1.0 is perfectly balanced."""
        busy = self.block_busy_cycles
        mean = float(busy.mean()) if len(busy) else 0.0
        return float(busy.max()) / mean if mean > 0 else 1.0


def simulate_blocks(assignments: list[list[float]],
                    spec: DeviceSpec,
                    stealing: bool = True,
                    scan_cost_per_block: float = 2.0) -> StealingResult:
    """Run blocks over their assigned per-root cycle costs.

    ``assignments[b]`` is the ordered list of root costs for block ``b``.
    With ``stealing`` disabled each block simply drains its own queue; the
    makespan is the largest queue sum (the paper's "No/Pre-runtime only"
    rows).  With stealing, an idle block scans GCL (cost proportional to
    the number of blocks), locks the victim with the most remaining work,
    and takes its next root.
    """
    num_blocks = len(assignments)
    if num_blocks == 0:
        return StealingResult(0.0, np.zeros(0), 0, 0)
    next_idx = [0] * num_blocks          # the GCL array
    busy = np.zeros(num_blocks, dtype=np.float64)
    clock = [(0.0, b) for b in range(num_blocks)]
    heapq.heapify(clock)
    steals = 0
    atomics = 0
    finish = np.zeros(num_blocks, dtype=np.float64)

    def remaining(b: int) -> int:
        return len(assignments[b]) - next_idx[b]

    while clock:
        t, b = heapq.heappop(clock)
        if remaining(b) > 0:
            cost = assignments[b][next_idx[b]]
            next_idx[b] += 1
            atomics += 1
            step = cost + spec.atomic_latency_cycles
            busy[b] += step
            finish[b] = t + step
            heapq.heappush(clock, (t + step, b))
            continue
        if not stealing:
            finish[b] = max(finish[b], t)
            continue
        # scan GCL for the victim with the most remaining work; leave
        # singleton queues alone — their owner starts that task next, so
        # stealing it would only add lock traffic (the paper's stealing
        # granularity is the *next unprocessed* root of a loaded block)
        victims = [(remaining(v), v) for v in range(num_blocks)
                   if v != b and remaining(v) > 1]
        scan = scan_cost_per_block * num_blocks
        if not victims:
            # a fruitless scan retires the block; it no longer contributes
            # to the kernel's completion time
            continue
        victims.sort(reverse=True)
        _, victim = victims[0]
        cost = assignments[victim][next_idx[victim]]
        next_idx[victim] += 1
        steals += 1
        atomics += 2  # lock + unlock of the GCL entry
        step = scan + cost + 2 * spec.atomic_latency_cycles
        busy[b] += step
        finish[b] = t + step
        heapq.heappush(clock, (t + step, b))

    makespan = float(finish.max()) if num_blocks else 0.0
    return StealingResult(makespan_cycles=makespan,
                          block_busy_cycles=busy,
                          steals=steals,
                          atomics=atomics)
