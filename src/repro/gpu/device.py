"""Simulated GPU device description.

The reproduction has no physical GPU, so the paper's RTX 3090 is replaced
by a parameterised :class:`DeviceSpec` consumed by the SIMT execution and
cost models.  The defaults mirror the paper's platform (§VII-A): 82 SMs,
10,496 CUDA cores, 24 GB of global memory, 32-thread warps, and 128-byte
coalesced memory transactions (32 consecutive 4-byte words).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError

__all__ = ["DeviceSpec", "rtx_3090", "small_test_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated CUDA-like device."""

    name: str
    num_sms: int
    cores_per_sm: int
    warp_size: int = 32
    blocks_per_launch: int = 164  # resident blocks (2 per SM on the 3090)
    warps_per_block: int = 8
    shared_mem_per_block: int = 48 * 1024   # bytes
    global_mem_bytes: int = 24 * 1024**3
    transaction_bytes: int = 128            # one coalesced transaction
    global_latency_cycles: int = 400        # global memory round trip
    shared_latency_cycles: int = 30         # shared memory access
    cycles_per_op: float = 1.0              # ALU op / comparison
    atomic_latency_cycles: int = 600        # atomicCAS-style lock cost
    clock_hz: float = 1.695e9               # boost clock of the 3090
    pcie_bytes_per_second: float = 16e9     # host<->device transfer (PCIe 3 x16)

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.num_sms <= 0:
            raise DeviceError("warp size and SM count must be positive")
        if self.transaction_bytes % 4 != 0:
            raise DeviceError("transaction size must hold whole 4-byte words")

    @property
    def total_cores(self) -> int:
        """Total CUDA cores on the device."""
        return self.num_sms * self.cores_per_sm

    @property
    def threads_per_block(self) -> int:
        """Threads in one block (warps_per_block * warp_size)."""
        return self.warps_per_block * self.warp_size

    @property
    def words_per_transaction(self) -> int:
        """4-byte words moved by one coalesced global-memory transaction."""
        return self.transaction_bytes // 4

    def seconds(self, cycles: float) -> float:
        """Convert simulated cycles into simulated seconds."""
        return cycles / self.clock_hz


def rtx_3090() -> DeviceSpec:
    """The paper's evaluation GPU (NVIDIA GeForce RTX 3090)."""
    return DeviceSpec(name="RTX3090-sim", num_sms=82, cores_per_sm=128)


def small_test_device(warps_per_block: int = 2,
                      blocks: int = 4,
                      shared_mem: int = 2048) -> DeviceSpec:
    """A tiny device making batching/occupancy effects visible in tests."""
    return DeviceSpec(
        name="test-device",
        num_sms=2,
        cores_per_sm=64,
        blocks_per_launch=blocks,
        warps_per_block=warps_per_block,
        shared_mem_per_block=shared_mem,
        global_mem_bytes=64 * 1024 * 1024,
    )
