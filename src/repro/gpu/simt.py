"""SIMT scheduling arithmetic: warps, rounds, and slot utilisation.

The hybrid DFS-BFS analysis in §IV reasons entirely in terms of how many
32-thread "slots" a piece of work occupies versus how many lanes do useful
work.  :func:`slot_rounds` captures exactly the paper's formulas:

* without batching, ``m`` keys on ``k`` warps take ``ceil(m / (32 k))``
  rounds *per child*, so ``n`` children cost ``ceil(m / 32k) * n`` rounds;
* with local BFS over n children, the concatenated work of ``m * n`` keys
  takes ``ceil(m n / (32 k))`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec
from repro.gpu.metrics import KernelMetrics

__all__ = ["SlotRounds", "slot_rounds", "record_work", "warp_chunks"]


@dataclass(frozen=True)
class SlotRounds:
    """Result of scheduling ``active`` lanes of work onto warp slots."""

    rounds: int
    total_slots: int
    active_slots: int

    @property
    def utilization(self) -> float:
        return self.active_slots / self.total_slots if self.total_slots else 1.0


def slot_rounds(work_items: int, warps: int, warp_size: int = 32) -> SlotRounds:
    """Schedule ``work_items`` independent lanes onto ``warps`` warps."""
    if work_items <= 0:
        return SlotRounds(rounds=0, total_slots=0, active_slots=0)
    lanes = warps * warp_size
    rounds = -(-work_items // lanes)
    return SlotRounds(rounds=rounds,
                      total_slots=rounds * lanes,
                      active_slots=work_items)


def record_work(metrics: KernelMetrics, spec: DeviceSpec,
                work_items: int, warps: int) -> SlotRounds:
    """Schedule work and record slot occupancy into ``metrics``."""
    sr = slot_rounds(work_items, warps, spec.warp_size)
    metrics.record_slots(sr.active_slots, sr.total_slots)
    return sr


def warp_chunks(n: int, warp_size: int = 32):
    """Yield (start, stop) lane ranges, one warp-sized chunk at a time."""
    start = 0
    while start < n:
        stop = min(start + warp_size, n)
        yield start, stop
        start = stop
