"""Simulated SIMT GPU substrate: device model, memory coalescing,
intersection primitives, work stealing and the cycle cost model."""

from repro.gpu.costmodel import effective_cycles, kernel_cycles, kernel_seconds
from repro.gpu.device import DeviceSpec, rtx_3090, small_test_device
from repro.gpu.hashjoin import HashedList, build_hash_table, hash_intersect
from repro.gpu.intersect import (
    binary_search_intersect,
    membership_mask,
    merge_intersect,
)
from repro.gpu.memory import (
    charge_gather,
    charge_stream,
    transactions_for_gather,
    transactions_for_stream,
)
from repro.gpu.metrics import KernelMetrics
from repro.gpu.simt import SlotRounds, record_work, slot_rounds, warp_chunks
from repro.gpu.workqueue import StealingResult, simulate_blocks

__all__ = [
    "DeviceSpec", "rtx_3090", "small_test_device",
    "KernelMetrics",
    "binary_search_intersect", "merge_intersect", "membership_mask",
    "charge_gather", "charge_stream",
    "transactions_for_gather", "transactions_for_stream",
    "SlotRounds", "slot_rounds", "record_work", "warp_chunks",
    "StealingResult", "simulate_blocks",
    "kernel_cycles", "kernel_seconds", "effective_cycles",
    "HashedList", "build_hash_table", "hash_intersect",
]
