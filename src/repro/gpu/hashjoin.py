"""Hash-based device set intersection (the TRUST-style comparator).

Related work the paper positions against ([34] TRUST, [22] TriCore)
intersects adjacency lists on GPUs through *hashing*: the longer list is
organised into a bucketed hash table (one bucket per warp-accessible
slot group), and each key probes its bucket.  Compared with the binary
search baseline this trades O(log n) probe steps for O(1 + load-factor)
probes, at the cost of building/storing the table.

This module implements that strategy under the same transaction
accounting as :func:`repro.gpu.intersect.binary_search_intersect`, so
the three approaches (binary search / hash / HTB) can be compared on an
equal footing — the X-series ablation uses it as a second baseline.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.memory import charge_gather, charge_stream
from repro.gpu.metrics import KernelMetrics
from repro.gpu.simt import record_work

__all__ = ["HashedList", "build_hash_table", "hash_intersect"]


class HashedList:
    """A bucketed hash table over one sorted adjacency list.

    ``buckets`` is a dense array of slots (bucket-major); empty slots
    hold -1.  The bucket of value x is ``x % num_buckets`` — the modulo
    scheme GPU triangle counters use so a warp can scan a bucket with
    one coalesced read.
    """

    __slots__ = ("values", "num_buckets", "slots_per_bucket", "buckets")

    def __init__(self, values: np.ndarray, load_factor: float = 0.75):
        self.values = np.asarray(values, dtype=np.int64)
        n = max(len(self.values), 1)
        self.num_buckets = max(int(n / max(load_factor, 0.1) / 4), 1)
        counts = np.zeros(self.num_buckets, dtype=np.int64)
        if len(self.values):
            np.add.at(counts, self.values % self.num_buckets, 1)
        self.slots_per_bucket = max(int(counts.max()) if len(counts) else 1, 1)
        self.buckets = np.full(self.num_buckets * self.slots_per_bucket,
                               -1, dtype=np.int64)
        cursor = np.zeros(self.num_buckets, dtype=np.int64)
        for x in self.values:
            b = int(x) % self.num_buckets
            self.buckets[b * self.slots_per_bucket + cursor[b]] = int(x)
            cursor[b] += 1

    @property
    def table_words(self) -> int:
        return int(len(self.buckets))


def build_hash_table(values: np.ndarray, spec: DeviceSpec,
                     metrics: KernelMetrics | None = None,
                     load_factor: float = 0.75) -> HashedList:
    """Build the table, charging the build traffic when metrics given."""
    table = HashedList(values, load_factor)
    if metrics is not None:
        # read the list once, write the table once (both coalesced)
        charge_stream(metrics, spec, len(values))
        charge_stream(metrics, spec, table.table_words)
    return table


def hash_intersect(keys: np.ndarray, table: HashedList,
                   spec: DeviceSpec, metrics: KernelMetrics,
                   warps: int = 1,
                   base_word: int = 0,
                   record_slots: bool = True) -> np.ndarray:
    """Intersect sorted ``keys`` against a pre-built hash table.

    Each lane hashes its key and the warp gathers the key's bucket; one
    transaction is charged per distinct aligned segment the gathered
    bucket slots occupy, and one comparison per scanned slot.
    """
    metrics.intersection_calls += 1
    if len(keys) == 0 or len(table.values) == 0:
        return np.empty(0, dtype=np.int64)
    charge_stream(metrics, spec, len(keys))
    if record_slots:
        record_work(metrics, spec, len(keys), warps)
    spb = table.slots_per_bucket
    out_mask = np.zeros(len(keys), dtype=bool)
    for start in range(0, len(keys), spec.warp_size):
        chunk = keys[start:start + spec.warp_size]
        bucket_ids = chunk % table.num_buckets
        # gather every slot of each probed bucket
        slot_positions = (bucket_ids[:, None] * spb
                          + np.arange(spb)[None, :]).ravel()
        charge_gather(metrics, spec, slot_positions + base_word)
        slot_values = table.buckets[slot_positions].reshape(len(chunk), spb)
        metrics.comparisons += slot_values.size
        out_mask[start:start + len(chunk)] = \
            (slot_values == chunk[:, None]).any(axis=1)
    result = keys[out_mask]
    if len(result):
        charge_stream(metrics, spec, len(result))
        metrics.results_written += len(result)
    return result
