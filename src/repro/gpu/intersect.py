"""Simulated device set-intersection primitives.

Two families, matching §III-B and §V-A of the paper:

* :func:`binary_search_intersect` — the GPU baseline: lanes of a warp each
  take one key from the smaller (sorted) set and binary-search the larger
  one in lock step.  Every probe gathers from global memory, and the
  simulator charges one transaction per distinct 128-byte segment touched
  by each warp in that step (the Example 5 behaviour).

* :func:`merge_intersect` — the CPU linear merge used by BCL; no device
  accounting, but it reports comparison counts for the Fig. 1(b) breakdown.

The HTB bitmap intersection lives in :mod:`repro.htb.htb` and reuses the
same charging utilities so transaction counts are directly comparable.

All lanes of all warps advance together (vectorised over the whole key
array); transactions are still accounted per (warp, aligned segment) pair,
which is exactly what chunk-by-chunk simulation would produce.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.memory import charge_stream
from repro.gpu.metrics import KernelMetrics
from repro.gpu.simt import record_work

__all__ = ["binary_search_intersect", "merge_intersect", "membership_mask"]

# any value larger than every possible word index / warp count works as a
# mixing radix for (warp, segment) pair deduplication
_PAIR_RADIX = np.int64(1) << 40


def _lockstep_binary_search_small(keys: np.ndarray, lst: np.ndarray,
                                  spec: DeviceSpec, metrics: KernelMetrics,
                                  base_word: int) -> np.ndarray:
    """Pure-Python lock-step search for small inputs.

    Identical accounting to the vectorised path — per halving step, one
    transaction per distinct (warp, aligned segment) pair among active
    lanes — but with plain ints, which is several times faster below a
    few hundred key*step operations.
    """
    keys_l = keys.tolist()
    lst_l = lst.tolist()
    n = len(lst_l)
    warp_size = spec.warp_size
    words_per_txn = spec.words_per_transaction
    lo = [0] * len(keys_l)
    hi = [n] * len(keys_l)
    txns = 0
    words = 0
    comparisons = 0
    active = list(range(len(keys_l)))
    while active:
        segs: set[tuple[int, int]] = set()
        still = []
        for i in active:
            mid = (lo[i] + hi[i]) >> 1
            segs.add((i // warp_size, (mid + base_word) // words_per_txn))
            comparisons += 1
            if lst_l[mid] < keys_l[i]:
                lo[i] = mid + 1
            else:
                hi[i] = mid
            if lo[i] < hi[i]:
                still.append(i)
        txns += len(segs)
        words += len(active)
        active = still
    found = np.zeros(len(keys_l), dtype=bool)
    segs = set()
    for i in range(len(keys_l)):
        pos = lo[i]
        if pos < n:
            segs.add((i // warp_size, (pos + base_word) // words_per_txn))
            comparisons += 1
            words += 1
            found[i] = lst_l[pos] == keys_l[i]
    txns += len(segs)
    metrics.global_transactions += txns
    metrics.global_words += words
    metrics.comparisons += comparisons
    return found


def _lockstep_binary_search(keys: np.ndarray, lst: np.ndarray,
                            spec: DeviceSpec, metrics: KernelMetrics,
                            base_word: int) -> np.ndarray:
    """Lower-bound search of each key in ``lst`` with per-step gathers.

    Lane i belongs to warp i // warp_size; each halving step charges, per
    warp, one transaction per distinct aligned segment its active lanes
    probe.  Returns a boolean membership mask for ``keys``.
    """
    if len(keys) * max(len(lst).bit_length(), 1) < 2048:
        return _lockstep_binary_search_small(keys, lst, spec, metrics,
                                             base_word)
    return _lockstep_binary_search_vec(keys, lst, spec, metrics, base_word)


def _lockstep_binary_search_vec(keys: np.ndarray, lst: np.ndarray,
                                spec: DeviceSpec, metrics: KernelMetrics,
                                base_word: int) -> np.ndarray:
    """Vectorised lock-step search (same accounting as the small path)."""
    n_keys = len(keys)
    warp_of = np.arange(n_keys, dtype=np.int64) // spec.warp_size
    words_per_txn = spec.words_per_transaction
    lo = np.zeros(n_keys, dtype=np.int64)
    hi = np.full(n_keys, len(lst), dtype=np.int64)

    def charge(positions: np.ndarray, warps: np.ndarray) -> None:
        segments = (positions + base_word) // words_per_txn
        pairs = warps * _PAIR_RADIX + segments
        metrics.global_transactions += len(np.unique(pairs))
        metrics.global_words += len(positions)

    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) // 2
        probe = mid[active]
        charge(probe, warp_of[active])
        vals = lst[probe]
        metrics.comparisons += int(active.sum())
        less = np.zeros(n_keys, dtype=bool)
        less[active] = vals < keys[active]
        lo = np.where(active & less, mid + 1, lo)
        hi = np.where(active & ~less, mid, hi)
    found = np.zeros(n_keys, dtype=bool)
    in_range = lo < len(lst)
    if in_range.any():
        probe = lo[in_range]
        charge(probe, warp_of[in_range])
        metrics.comparisons += int(in_range.sum())
        found[in_range] = lst[probe] == keys[in_range]
    return found


def binary_search_intersect(keys: np.ndarray, lst: np.ndarray,
                            spec: DeviceSpec, metrics: KernelMetrics,
                            warps: int = 1,
                            base_word: int = 0,
                            record_slots: bool = True) -> np.ndarray:
    """Intersect sorted ``keys`` with sorted ``lst`` on the simulated device.

    ``keys`` plays the role of CL[l-1] (the smaller set, one key per lane)
    and ``lst`` the adjacency list N(u) / N2^q(u) in global memory starting
    at word offset ``base_word``.  Returns the sorted intersection and
    accumulates transactions, comparisons and slot occupancy in
    ``metrics``.
    """
    metrics.intersection_calls += 1
    if len(keys) == 0 or len(lst) == 0:
        return np.empty(0, dtype=np.int64)
    # the warp streams its keys in from global memory (coalesced)
    charge_stream(metrics, spec, len(keys))
    if record_slots:
        record_work(metrics, spec, len(keys), warps)
    mask = _lockstep_binary_search(keys, lst, spec, metrics, base_word)
    result = keys[mask]
    if len(result):
        charge_stream(metrics, spec, len(result))  # write-back of CL[l]
        metrics.results_written += len(result)
    return result


def merge_intersect(a: np.ndarray, b: np.ndarray,
                    comparisons: list[int] | None = None) -> np.ndarray:
    """Sorted-merge intersection (the CPU path used by Basic/BCL).

    When ``comparisons`` (a single-cell list) is given, the merge's
    element-comparison count is added to it — this feeds the Fig. 1(b)
    time-breakdown instrumentation.
    """
    if comparisons is not None:
        comparisons[0] += len(a) + len(b)
    if len(a) == 0 or len(b) == 0:
        return np.empty(0, dtype=np.int64)
    return np.intersect1d(a, b, assume_unique=True)


def membership_mask(keys: np.ndarray, lst: np.ndarray) -> np.ndarray:
    """Boolean mask of which sorted ``keys`` appear in sorted ``lst``
    (no device accounting; used by verification paths)."""
    if len(keys) == 0:
        return np.zeros(0, dtype=bool)
    pos = np.searchsorted(lst, keys)
    ok = pos < len(lst)
    out = np.zeros(len(keys), dtype=bool)
    out[ok] = lst[pos[ok]] == keys[ok]
    return out
