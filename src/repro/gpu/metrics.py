"""Kernel execution metrics collected by the SIMT simulator.

A :class:`KernelMetrics` instance is threaded through every simulated
device routine (intersections, candidate updates, work stealing) and
accumulates the quantities the paper's optimisations target:

* global-memory transactions (what HTB reduces, Example 5 vs Example 7),
* comparisons / ALU ops (entry-by-entry binary search vs bitwise AND),
* thread-slot utilisation (what hybrid DFS-BFS raises, Fig. 3),
* shared-memory peak (the batching constraint, §IV),
* atomics (the work-stealing lock traffic, Fig. 6).

The cost model in :mod:`repro.gpu.costmodel` converts these counts into
simulated cycles/seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelMetrics"]


@dataclass
class KernelMetrics:
    """Mutable accumulator of simulated device work."""

    global_transactions: int = 0
    global_words: int = 0          # 4-byte words actually consumed
    shared_accesses: int = 0
    shared_bytes_peak: int = 0
    comparisons: int = 0
    bitwise_ops: int = 0
    alu_ops: int = 0
    atomics: int = 0
    intersection_calls: int = 0
    thread_slots_total: int = 0
    thread_slots_active: int = 0
    divergent_branches: int = 0
    results_written: int = 0

    # ------------------------------------------------------------------
    def merge(self, other: "KernelMetrics") -> "KernelMetrics":
        """Accumulate ``other`` into self (peaks take the max) and return self."""
        self.global_transactions += other.global_transactions
        self.global_words += other.global_words
        self.shared_accesses += other.shared_accesses
        self.shared_bytes_peak = max(self.shared_bytes_peak,
                                     other.shared_bytes_peak)
        self.comparisons += other.comparisons
        self.bitwise_ops += other.bitwise_ops
        self.alu_ops += other.alu_ops
        self.atomics += other.atomics
        self.intersection_calls += other.intersection_calls
        self.thread_slots_total += other.thread_slots_total
        self.thread_slots_active += other.thread_slots_active
        self.divergent_branches += other.divergent_branches
        self.results_written += other.results_written
        return self

    def copy(self) -> "KernelMetrics":
        """A detached copy of the current counters."""
        out = KernelMetrics()
        out.merge(self)
        return out

    @property
    def utilization(self) -> float:
        """Fraction of scheduled thread slots that did useful work."""
        if self.thread_slots_total == 0:
            return 1.0
        return self.thread_slots_active / self.thread_slots_total

    def record_slots(self, active: int, total: int) -> None:
        """Record a scheduling round that occupied ``total`` slots with
        ``active`` useful lanes."""
        self.thread_slots_active += active
        self.thread_slots_total += total

    def note_shared_peak(self, bytes_used: int) -> None:
        """Track the largest shared-memory footprint seen."""
        if bytes_used > self.shared_bytes_peak:
            self.shared_bytes_peak = bytes_used

    def __add__(self, other: "KernelMetrics") -> "KernelMetrics":
        return self.copy().merge(other)
