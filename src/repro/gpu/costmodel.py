"""Cycle/latency cost model: metrics -> simulated cycles and seconds.

A deliberately simple linear model: each class of counted event carries a
per-event cycle cost from the :class:`DeviceSpec`.  The model does not try
to match RTX 3090 wall-clock (out of scope per the reproduction brief) —
what matters is that the *ratios* between algorithm variants track their
transaction/comparison/utilisation differences, which is how every figure
in §VII compares methods.
"""

from __future__ import annotations

from repro.gpu.device import DeviceSpec
from repro.gpu.metrics import KernelMetrics

__all__ = ["kernel_cycles", "kernel_seconds", "effective_cycles"]


def kernel_cycles(metrics: KernelMetrics, spec: DeviceSpec) -> float:
    """Total serial cycles implied by the collected metrics."""
    return (
        metrics.global_transactions * spec.global_latency_cycles
        + metrics.shared_accesses * spec.shared_latency_cycles
        + (metrics.comparisons + metrics.alu_ops + metrics.bitwise_ops)
        * spec.cycles_per_op
        + metrics.atomics * spec.atomic_latency_cycles
    )


def effective_cycles(metrics: KernelMetrics, spec: DeviceSpec) -> float:
    """Cycles corrected for thread under-utilisation.

    Idle lanes still occupy issue slots: a round that keeps only 25% of
    lanes busy takes as long as a full round.  We therefore inflate the
    compute component by 1/utilisation, leaving memory traffic (already
    counted per transaction) untouched.
    """
    util = max(metrics.utilization, 1e-9)
    mem = (metrics.global_transactions * spec.global_latency_cycles
           + metrics.shared_accesses * spec.shared_latency_cycles
           + metrics.atomics * spec.atomic_latency_cycles)
    compute = ((metrics.comparisons + metrics.alu_ops + metrics.bitwise_ops)
               * spec.cycles_per_op)
    return mem + compute / util


def kernel_seconds(metrics: KernelMetrics, spec: DeviceSpec,
                   parallel_blocks: int | None = None) -> float:
    """Simulated seconds assuming ``parallel_blocks`` blocks share the work
    evenly (an idealised bound; the balance simulator gives the real
    makespan)."""
    blocks = parallel_blocks or spec.blocks_per_launch
    return spec.seconds(effective_cycles(metrics, spec) / max(blocks, 1))
