"""Global-memory transaction accounting (coalescing model).

CUDA serves a warp's loads in 128-byte transactions covering 32 aligned
consecutive 4-byte words.  When the lanes of a warp touch words scattered
across several aligned segments, each distinct segment costs one
transaction — the effect Example 5 of the paper walks through.  The
functions here turn "which word indices did this warp touch" into a
transaction count, which is the quantity HTB is designed to shrink.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.metrics import KernelMetrics

__all__ = [
    "transactions_for_gather",
    "transactions_for_stream",
    "charge_gather",
    "charge_stream",
]


def transactions_for_gather(word_indices: np.ndarray,
                            words_per_transaction: int) -> int:
    """Transactions needed for one warp to gather the given word indices.

    ``word_indices`` are 4-byte-word offsets into a global array; distinct
    aligned segments of ``words_per_transaction`` words each cost one
    transaction.
    """
    if len(word_indices) == 0:
        return 0
    segments = np.unique(np.asarray(word_indices, dtype=np.int64)
                         // words_per_transaction)
    return int(len(segments))


def transactions_for_stream(num_words: int, words_per_transaction: int) -> int:
    """Transactions for a fully coalesced sequential read of num_words."""
    if num_words <= 0:
        return 0
    return -(-num_words // words_per_transaction)  # ceil div


def charge_gather(metrics: KernelMetrics, spec: DeviceSpec,
                  word_indices: np.ndarray) -> int:
    """Account a warp gather: transactions + words consumed.  Returns txns."""
    txns = transactions_for_gather(word_indices, spec.words_per_transaction)
    metrics.global_transactions += txns
    metrics.global_words += len(word_indices)
    return txns


def charge_stream(metrics: KernelMetrics, spec: DeviceSpec,
                  num_words: int) -> int:
    """Account a coalesced sequential read/write of ``num_words`` words."""
    txns = transactions_for_stream(num_words, spec.words_per_transaction)
    metrics.global_transactions += txns
    metrics.global_words += max(num_words, 0)
    return txns
