"""Structured logging for the ``repro`` package.

Everything logs through the ``logging.getLogger("repro")`` hierarchy —
``repro.service.scheduler``, ``repro.plan.planner``, ``repro.service
.pool`` and friends obtain children via :func:`get_logger`.  Importing
this module installs a :class:`logging.NullHandler` on the root
``repro`` logger, the library-friendly default: a program embedding the
package sees nothing unless it configures handlers itself.

The CLI's ``-v/--verbose`` flag calls :func:`configure_logging`, which
installs one stderr handler (idempotently — repeat calls reconfigure
the same handler rather than stacking duplicates): ``-v`` shows INFO
(evictions, rebuilds, expiries), ``-vv`` DEBUG.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure_logging", "get_logger"]

_ROOT = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Pass ``__name__`` (already ``repro.*`` for package modules); any
    other name is re-rooted under ``repro.`` so one hierarchy catches
    everything.
    """
    if name != _ROOT and not name.startswith(_ROOT + "."):
        name = f"{_ROOT}.{name}"
    return logging.getLogger(name)


def configure_logging(verbosity: int = 1, *, stream=None) -> logging.Logger:
    """Wire a stderr handler onto the ``repro`` logger.

    ``verbosity`` 0 removes the handler again (back to NullHandler
    silence), 1 shows INFO, 2+ DEBUG.  Returns the root ``repro``
    logger.  Idempotent: the single managed handler is replaced, never
    duplicated, so tests and repeated CLI invocations in one process
    stay clean.
    """
    root = logging.getLogger(_ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_managed", False):
            root.removeHandler(handler)
    if verbosity <= 0:
        root.setLevel(logging.NOTSET)
        return root
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_managed = True
    root.addHandler(handler)
    root.setLevel(logging.INFO if verbosity == 1 else logging.DEBUG)
    return root
