"""The measured-cost ledger: what executions actually took, per cell.

``BENCH_plan.json`` shows the static cost model lands within 2x of the
best method but misranks some cells — the model is analytic, fitted
once, and blind to the host it runs on.  The ledger closes that loop:

* every real execution through
  :func:`repro.plan.execute.execute_plan` (which is the repo's single
  dispatch site, so the Scheduler batch path, ``batch_count``, the CLI
  and the bench runner all flow through it) appends its measured
  headline seconds to the cell keyed by **(graph fingerprint, p, q,
  method, backend)**;
* cells smooth their history with an EWMA, and track the
  observed/predicted ratio for executions that carried an analytic
  prediction (``plan.predicted_seconds > 0``);
* a :class:`~repro.plan.planner.Planner` constructed with
  ``ledger=`` calibrates each candidate's ``predicted_seconds`` by its
  cell's ratio and re-ranks (``calibrated = predicted * ratio``).
  Counts never change — every exact method returns the same number —
  only the ordering among candidates may.

**Drift invalidates cells.**  Keys embed the graph fingerprint, so any
content change starts from scratch automatically; within one
fingerprint, a new observation whose ratio departs from the cell's
smoothed ratio by more than ``drift_band`` (in either direction —
e.g. another tenant saturating the host) resets the cell to the fresh
observation instead of slowly averaging two regimes.

The ledger is thread-safe (scheduler workers record concurrently) and
JSON-persistable via :meth:`CostLedger.save` / :meth:`CostLedger.load`,
so ``repro plan explain --ledger path.json --measure`` accumulates
across invocations.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

__all__ = ["CostLedger", "LedgerCell"]

#: persistence format version (bump on incompatible cell changes)
_FORMAT = 1


@dataclass
class LedgerCell:
    """Measured history of one (fingerprint, shape, method, backend)."""

    #: EWMA of measured headline seconds
    observed_seconds: float
    #: EWMA of observed/predicted — None until a predicted>0 execution
    ratio: float | None
    #: executions recorded into this cell (since the last drift reset)
    observations: int
    #: the most recent raw observation (unsmoothed)
    last_observed: float

    def as_dict(self) -> dict:
        return {"observed_seconds": self.observed_seconds,
                "ratio": self.ratio,
                "observations": self.observations,
                "last_observed": self.last_observed}

    @classmethod
    def from_dict(cls, data: dict) -> "LedgerCell":
        return cls(observed_seconds=float(data["observed_seconds"]),
                   ratio=(None if data.get("ratio") is None
                          else float(data["ratio"])),
                   observations=int(data["observations"]),
                   last_observed=float(data["last_observed"]))


def _key(fingerprint: str, p: int, q: int, method: str,
         backend: str) -> str:
    return f"{fingerprint}|{int(p)}x{int(q)}|{method}|{backend}"


class CostLedger:
    """EWMA-smoothed measured costs, keyed per executable cell.

    ``alpha`` is the EWMA weight of the newest observation;
    ``drift_band`` the multiplicative ratio shift (either direction)
    that resets a cell instead of averaging into it.
    """

    def __init__(self, *, alpha: float = 0.3,
                 drift_band: float = 4.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if drift_band <= 1.0:
            raise ValueError(f"drift_band must be > 1, got {drift_band}")
        self.alpha = float(alpha)
        self.drift_band = float(drift_band)
        self.drift_resets = 0
        self._lock = threading.Lock()
        self._cells: dict[str, LedgerCell] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)

    # -- recording -----------------------------------------------------
    def record(self, fingerprint: str, p: int, q: int, method: str,
               backend: str, observed_seconds: float,
               predicted_seconds: float | None = None) -> LedgerCell:
        """Fold one measured execution into its cell.

        ``predicted_seconds`` is the analytic prediction the run was
        planned with (omit it — or pass 0 — for explicit plans, which
        skip the probe); only predicted-carrying runs update the
        calibration ratio.
        """
        observed = float(observed_seconds)
        predicted = (None if not predicted_seconds
                     else float(predicted_seconds))
        new_ratio = (observed / predicted
                     if predicted and predicted > 0 else None)
        key = _key(fingerprint, p, q, method, backend)
        with self._lock:
            cell = self._cells.get(key)
            if cell is not None and new_ratio is not None \
                    and cell.ratio is not None \
                    and not (cell.ratio / self.drift_band
                             <= new_ratio
                             <= cell.ratio * self.drift_band):
                # regime change (host contention, thermal state, ...):
                # averaging two regimes would misrank both — restart
                # from the fresh observation
                self.drift_resets += 1
                cell = None
            if cell is None:
                cell = LedgerCell(observed_seconds=observed,
                                  ratio=new_ratio, observations=1,
                                  last_observed=observed)
                self._cells[key] = cell
                return cell
            a = self.alpha
            cell.observed_seconds += a * (observed - cell.observed_seconds)
            if new_ratio is not None:
                cell.ratio = new_ratio if cell.ratio is None else \
                    cell.ratio + a * (new_ratio - cell.ratio)
            cell.observations += 1
            cell.last_observed = observed
            return cell

    def merge_snapshot(self, snapshot: dict) -> int:
        """Fold another ledger's :meth:`snapshot` into this one.

        The cross-process calibration path: distributed serving workers
        each keep a private ledger (they cannot share the router's
        through a pipe), and the router folds their snapshots into the
        shared ledger at harvest/close.  Unknown cells copy over;
        known cells EWMA-fold the incoming cell's smoothed state as one
        observation and pool the observation counts.  Returns the
        number of cells folded.
        """
        merged = 0
        for key, data in (snapshot or {}).get("cells", {}).items():
            other = LedgerCell.from_dict(data)
            with self._lock:
                mine = self._cells.get(key)
                if mine is None:
                    self._cells[key] = other
                else:
                    a = self.alpha
                    mine.observed_seconds += a * (other.observed_seconds
                                                  - mine.observed_seconds)
                    if other.ratio is not None:
                        mine.ratio = other.ratio if mine.ratio is None \
                            else mine.ratio + a * (other.ratio - mine.ratio)
                    mine.observations += other.observations
                    mine.last_observed = other.last_observed
            merged += 1
        return merged

    # -- lookup --------------------------------------------------------
    def lookup(self, fingerprint: str, p: int, q: int, method: str,
               backend: str) -> LedgerCell | None:
        """The cell for one executable, or None without history."""
        with self._lock:
            return self._cells.get(_key(fingerprint, p, q, method,
                                        backend))

    def calibrated(self, fingerprint: str, p: int, q: int, method: str,
                   backend: str,
                   predicted_seconds: float) -> float | None:
        """``predicted * ratio`` for the cell, or None without a ratio."""
        cell = self.lookup(fingerprint, p, q, method, backend)
        if cell is None or cell.ratio is None:
            return None
        return float(predicted_seconds) * cell.ratio

    def forget(self, fingerprint: str) -> int:
        """Drop every cell of one graph fingerprint; returns how many."""
        prefix = f"{fingerprint}|"
        with self._lock:
            stale = [k for k in self._cells if k.startswith(prefix)]
            for k in stale:
                del self._cells[k]
            return len(stale)

    def snapshot(self) -> dict:
        """JSON-serialisable view of every cell (artifact/inspection)."""
        with self._lock:
            return {"version": _FORMAT, "alpha": self.alpha,
                    "drift_band": self.drift_band,
                    "drift_resets": self.drift_resets,
                    "cells": {k: c.as_dict()
                              for k, c in sorted(self._cells.items())}}

    # -- persistence ---------------------------------------------------
    def save(self, path) -> int:
        """Write the ledger as JSON; returns the cell count."""
        snap = self.snapshot()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=1, sort_keys=True)
            fh.write("\n")
        return len(snap["cells"])

    @classmethod
    def load(cls, path) -> "CostLedger":
        """Rebuild a ledger from :meth:`save` output."""
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        version = data.get("version")
        if version != _FORMAT:
            raise ValueError(f"unsupported ledger format {version!r} "
                             f"(this build reads version {_FORMAT})")
        ledger = cls(alpha=float(data.get("alpha", 0.3)),
                     drift_band=float(data.get("drift_band", 4.0)))
        ledger.drift_resets = int(data.get("drift_resets", 0))
        for key, cell in data.get("cells", {}).items():
            ledger._cells[key] = LedgerCell.from_dict(cell)
        return ledger

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CostLedger(cells={len(self)}, alpha={self.alpha}, "
                f"drift_band={self.drift_band})")
