"""The BENCH_* regression leaderboard.

Every benchmark suite writes a ``benchmarks/artifacts/BENCH_*.json``
artifact, and each PR's CI run uploads a fresh generation of them —
but nothing compared generations, so a per-cell regression (GBC slowing
down on one graph while the averages hold) sailed through.  This module
assembles every artifact into one ``BENCH_leaderboard.{json,md}``: a
per-(graph, shape, method) waterfall of headline metrics, each compared
against the value recorded in the **previous** leaderboard (the
generation written by the last run) and flagged::

    win         improved by >= 5%
    regression  worsened by >= 5%
    flat        within the 5% band
    new         no previous generation had this cell

The improvement factor is direction-aware — ``prev/new`` for
lower-is-better metrics (seconds, ratios), ``new/prev`` for
higher-is-better ones (speedups, throughput) — so > 1 always means
"better" and the flags read uniformly.  The CI ``leaderboard`` job
fails on a schema violation (:mod:`repro.obs.schema`), never on a
regression flag: the waterfall is for humans reviewing the PR.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.schema import validate_artifact

__all__ = ["LEADERBOARD_STEM", "build_leaderboard", "collect_artifacts",
           "extract_cells", "render_markdown", "write_leaderboard"]

LEADERBOARD_STEM = "BENCH_leaderboard"

#: flags flip outside a +/-5% band; inside it a cell is "flat"
WIN_BAND = 1.05


def collect_artifacts(artifacts_dir) -> list[tuple[str, dict]]:
    """Load every ``BENCH_*.json`` (validated), sorted by filename.

    The leaderboard's own output matches the glob and is excluded —
    it is the *comparison baseline*, not an input.
    """
    out = []
    for path in sorted(Path(artifacts_dir).glob("BENCH_*.json")):
        if path.stem == LEADERBOARD_STEM:
            continue
        with open(path, "r", encoding="utf-8") as fh:
            artifact = json.load(fh)
        validate_artifact(artifact, name=path.name)
        out.append((path.name, artifact))
    return out


def _cell(artifact: str, cell: str, metric: str, value,
          direction: str) -> dict:
    return {"artifact": artifact, "cell": cell, "metric": metric,
            "value": float(value), "direction": direction}


def extract_cells(name: str, artifact: dict) -> list[dict]:
    """Headline (cell, metric, value) triples for one artifact.

    ``direction`` is ``"lower"`` or ``"higher"`` (which way is better).
    Unknown kinds yield nothing rather than failing — the schema layer
    already rejected genuinely malformed files.
    """
    kind = artifact.get("kind")
    cells: list[dict] = []
    if kind == "plan_accuracy":
        for row in artifact["datasets"]:
            p, q = row["query"]
            key = f"{row['dataset']}|{p}x{q}"
            cells.append(_cell(name, key, "ratio_vs_best",
                               row["ratio_vs_best"], "lower"))
            cells.append(_cell(name, key, "auto_measured_seconds",
                               row["auto_measured_seconds"], "lower"))
    elif kind == "native_speedup":
        for row in artifact["datasets"]:
            p, q = row["query"]
            for method, stats in sorted(row["methods"].items()):
                key = f"{row['dataset']}|{p}x{q}|{method}"
                cells.append(_cell(name, key, "speedup",
                                   stats["speedup"], "higher"))
    elif kind == "mutate_bench":
        for row in artifact["graphs"]:
            key = row["graph"]
            cells.append(_cell(name, key, "incremental_edits_per_s",
                               row["incremental_edits_per_s"], "higher"))
            cells.append(_cell(name, key, "speedup_vs_rebuild",
                               row["speedup_vs_rebuild"], "higher"))
    elif kind == "approx_speedup":
        for row in artifact["graphs"]:
            for c in row["cells"]:
                p, q = c["query"]
                key = f"{row['graph']}|{p}x{q}"
                exact_s = c["exact"]["seconds"]
                approx_s = c["approx"]["mean_seconds"]
                if approx_s > 0:
                    cells.append(_cell(name, key, "speedup_vs_exact",
                                       exact_s / approx_s, "higher"))
                cells.append(_cell(name, key, "median_rel_error",
                                   c["approx"]["median_rel_error"],
                                   "lower"))
    elif kind == "serve_bench":
        cells.append(_cell(name, "serve", "throughput_qps",
                           artifact["served"]["throughput_qps"],
                           "higher"))
        cells.append(_cell(name, "serve", "speedup_vs_naive",
                           artifact["speedup_vs_naive"], "higher"))
    elif kind == "dist_bench":
        for size, by_topology in sorted(
                artifact["throughput_qps"].items()):
            for topology, qps in sorted(by_topology.items(),
                                        key=lambda kv: int(kv[0])):
                cells.append(_cell(name, f"{size}|{topology}w",
                                   "throughput_qps", qps, "higher"))
        for size, speedup in sorted(artifact["speedup_vs_1w"].items()):
            if speedup > 0:
                cells.append(_cell(name, size, "speedup_vs_1w",
                                   speedup, "higher"))
    return cells


def _flag(value: float, prev: float | None,
          direction: str) -> tuple[str, float | None]:
    """(flag, improvement factor) vs the previous generation."""
    if prev is None:
        return "new", None
    if prev <= 0 or value <= 0:
        return "flat", None
    improvement = prev / value if direction == "lower" else value / prev
    if improvement >= WIN_BAND:
        return "win", improvement
    if improvement <= 1.0 / WIN_BAND:
        return "regression", improvement
    return "flat", improvement


def _previous_values(previous: dict | None) -> dict[tuple, float]:
    if not previous:
        return {}
    return {(c["artifact"], c["cell"], c["metric"]): float(c["value"])
            for c in previous.get("cells", [])}


def build_leaderboard(artifacts_dir, *,
                      previous: dict | None = None) -> dict:
    """Assemble the leaderboard artifact from a directory of BENCH_*.

    ``previous`` is the prior leaderboard dict (or None on the first
    generation); when omitted, an existing ``BENCH_leaderboard.json``
    in the directory is read as the baseline before being replaced.
    """
    artifacts_dir = Path(artifacts_dir)
    if previous is None:
        prev_path = artifacts_dir / f"{LEADERBOARD_STEM}.json"
        if prev_path.exists():
            with open(prev_path, "r", encoding="utf-8") as fh:
                previous = json.load(fh)
    prev_values = _previous_values(previous)

    sources = collect_artifacts(artifacts_dir)
    cells: list[dict] = []
    for name, artifact in sources:
        cells.extend(extract_cells(name, artifact))
    for cell in cells:
        prev = prev_values.get((cell["artifact"], cell["cell"],
                                cell["metric"]))
        flag, improvement = _flag(cell["value"], prev, cell["direction"])
        cell["previous"] = prev
        cell["improvement"] = improvement
        cell["flag"] = flag

    flags = [c["flag"] for c in cells]
    return {
        "kind": "leaderboard",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "win_band": WIN_BAND,
        "artifacts": [name for name, _ in sources],
        "summary": {f: flags.count(f)
                    for f in ("win", "regression", "flat", "new")},
        "cells": cells,
    }


def render_markdown(board: dict) -> str:
    """The leaderboard as a markdown waterfall, grouped by artifact."""
    summary = board["summary"]
    lines = ["# BENCH leaderboard", "",
             f"Generated {board['generated']} from "
             f"{len(board['artifacts'])} artifacts: "
             + ", ".join(f"`{a}`" for a in board["artifacts"]), "",
             f"**{summary['win']} wins** · "
             f"**{summary['regression']} regressions** · "
             f"{summary['flat']} flat · {summary['new']} new "
             f"(band ±{(board['win_band'] - 1) * 100:.0f}%)", ""]
    marks = {"win": "✅ win", "regression": "❌ regression",
             "flat": "· flat", "new": "★ new"}
    by_artifact: dict[str, list[dict]] = {}
    for cell in board["cells"]:
        by_artifact.setdefault(cell["artifact"], []).append(cell)
    for name in board["artifacts"]:
        rows = by_artifact.get(name, [])
        if not rows:
            continue
        lines += [f"## {name}", "",
                  "| cell | metric | value | previous | change | flag |",
                  "|---|---|---:|---:|---:|---|"]
        for c in rows:
            prev = "—" if c["previous"] is None else f"{c['previous']:.4g}"
            change = ("—" if c["improvement"] is None
                      else f"{(c['improvement'] - 1) * 100:+.1f}%")
            # cell keys use "|" as a field separator; escape it so the
            # markdown table stays intact
            label = c["cell"].replace("|", "\\|")
            lines.append(f"| {label} | {c['metric']} "
                         f"| {c['value']:.4g} | {prev} | {change} "
                         f"| {marks[c['flag']]} |")
        lines.append("")
    return "\n".join(lines)


def write_leaderboard(artifacts_dir, *, out_json=None,
                      out_md=None) -> tuple[Path, Path, dict]:
    """Build and write both leaderboard outputs; returns their paths."""
    artifacts_dir = Path(artifacts_dir)
    board = build_leaderboard(artifacts_dir)
    json_path = Path(out_json) if out_json else \
        artifacts_dir / f"{LEADERBOARD_STEM}.json"
    md_path = Path(out_md) if out_md else \
        artifacts_dir / f"{LEADERBOARD_STEM}.md"
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(board, indent=1, sort_keys=True)
                         + "\n", encoding="utf-8")
    md_path.parent.mkdir(parents=True, exist_ok=True)
    md_path.write_text(render_markdown(board) + "\n", encoding="utf-8")
    return json_path, md_path, board
