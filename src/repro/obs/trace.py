"""Zero-dependency tracing spans with an ambient thread-local parent.

The span model is deliberately small:

* :func:`span` opens a timed span as a context manager.  Spans nest
  through a thread-local stack — whatever span is open on the current
  thread when a new one starts becomes its parent — so the scheduler's
  worker threads, the session's lazy builders and the kernel batch
  entry points all stitch into one tree without passing context
  objects through every call signature.
* :func:`event` records an instantaneous, zero-duration span (the
  scheduler's request-lifecycle markers: queued, expired, completed).
* :func:`tally_kernel` increments kernel-call counters on the nearest
  enclosing span — the kernel seam's batch entry points fire thousands
  of times per count, so they aggregate into their parent span instead
  of emitting one record each.

Tracing is **off by default**.  Disabled, :func:`span` returns a
module-level null singleton and :func:`event`/:func:`tally_kernel`
return after one module-attribute check, so the instrumented seams cost
nothing measurable (the <2% serve-bench overhead bar in
``benchmarks/test_serve_throughput.py``).  :func:`enable_tracing`
installs a :class:`TraceRecorder`; :meth:`TraceRecorder.dump` writes
one JSON object per line (JSONL), which ``repro trace summarize``
renders as a per-span total/self-time tree via :func:`summarize`.
"""

from __future__ import annotations

import itertools
import json
import threading
import time

__all__ = ["Span", "TraceRecorder", "current_span", "disable_tracing",
           "enable_tracing", "enabled", "event", "load_records",
           "render_summary", "span", "summarize", "tally_kernel",
           "tracing", "tracing_enabled"]

#: module-global fast flag — the ONLY thing a disabled hot path reads
enabled = False

_recorder: "TraceRecorder | None" = None
_ids = itertools.count(1)


class _Ambient(threading.local):
    """Per-thread stack of open spans (the ambient parent chain)."""

    def __init__(self) -> None:
        self.stack: list[Span] = []


_ambient = _Ambient()


class TraceRecorder:
    """Thread-safe collector of finished span/event records.

    Records are plain dicts (one JSON object per JSONL line)::

        {"name": "plan.execute", "kind": "span", "span_id": 7,
         "parent_id": 3, "thread": "repro-serve-0", "ts": 1754...,
         "dur_ms": 1.93, "attrs": {"method": "GBC", ...}}
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[dict] = []

    def record(self, rec: dict) -> None:
        with self._lock:
            self._records.append(rec)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def records(self) -> list[dict]:
        """A snapshot copy of everything recorded so far."""
        with self._lock:
            return list(self._records)

    def names(self) -> set[str]:
        """Distinct span/event names seen (seam-coverage checks)."""
        return {r["name"] for r in self.records}

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def dump(self, path) -> int:
        """Write every record as one JSONL line; returns the count."""
        records = self.records
        with open(path, "w", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(records)


def load_records(path) -> list[dict]:
    """Read a :meth:`TraceRecorder.dump` JSONL file back."""
    out = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


class Span:
    """One open, timed span.  Use through :func:`span`, not directly."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_t0", "_ts")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = next(_ids)
        self.parent_id: int | None = None
        self._t0 = 0.0
        self._ts = 0.0

    def annotate(self, **attrs) -> None:
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)

    def tally(self, key: str, n: int | float = 1) -> None:
        """Increment a numeric attribute (creating it at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + n

    def __enter__(self) -> "Span":
        stack = _ambient.stack
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_ms = (time.perf_counter() - self._t0) * 1e3
        stack = _ambient.stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:            # pragma: no cover - defensive
            stack.remove(self)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        rec = _recorder
        if rec is not None:
            rec.record({"name": self.name, "kind": "span",
                        "span_id": self.span_id,
                        "parent_id": self.parent_id,
                        "thread": threading.current_thread().name,
                        "ts": self._ts, "dur_ms": dur_ms,
                        "attrs": self.attrs})
        return False


class _NullSpan:
    """The disabled-path singleton: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass

    def tally(self, key: str, n: int | float = 1) -> None:
        pass


NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """A context manager timing one span (the null singleton when
    tracing is disabled, so the call costs one flag check)."""
    if not enabled:
        return NULL_SPAN
    return Span(name, attrs)


def event(name: str, **attrs) -> None:
    """Record an instantaneous marker (a zero-duration span)."""
    if not enabled:
        return
    rec = _recorder
    if rec is None:
        return
    stack = _ambient.stack
    rec.record({"name": name, "kind": "event",
                "span_id": next(_ids),
                "parent_id": stack[-1].span_id if stack else None,
                "thread": threading.current_thread().name,
                "ts": time.time(), "dur_ms": 0.0, "attrs": attrs})


def current_span():
    """The innermost open span on this thread (None when outside any,
    or when tracing is disabled)."""
    if not enabled:
        return None
    stack = _ambient.stack
    return stack[-1] if stack else None


def tally_kernel(kernel: str, calls: int = 1, items: int = 0,
                 bytes_touched: int = 0) -> None:
    """Aggregate one kernel batch call into the enclosing span.

    The :class:`~repro.engine.base.KernelBackend` batch entry points
    call this once per *batch* (one frontier, one recursion node) — far
    too hot for a record each, cheap enough for three counter bumps on
    whatever span is open (``kernel.batch`` during a counting run).
    """
    if not enabled:
        return
    stack = _ambient.stack
    if not stack:
        return
    sp = stack[-1]
    sp.tally("kernel_calls", calls)
    if items:
        sp.tally("kernel_items", items)
    if bytes_touched:
        sp.tally("kernel_bytes", bytes_touched)
    sp.tally(f"calls.{kernel}", calls)


def enable_tracing(recorder: TraceRecorder | None = None) -> TraceRecorder:
    """Turn tracing on globally; returns the active recorder."""
    global enabled, _recorder
    if recorder is None:
        recorder = TraceRecorder()
    _recorder = recorder
    enabled = True
    return recorder


def disable_tracing() -> TraceRecorder | None:
    """Turn tracing off; returns the recorder that was active."""
    global enabled, _recorder
    enabled = False
    rec, _recorder = _recorder, None
    return rec


def tracing_enabled() -> bool:
    return enabled


class tracing:
    """Scoped enable/disable: ``with tracing() as rec: ...``."""

    def __init__(self, recorder: TraceRecorder | None = None) -> None:
        self.recorder = recorder or TraceRecorder()

    def __enter__(self) -> TraceRecorder:
        enable_tracing(self.recorder)
        return self.recorder

    def __exit__(self, *exc) -> bool:
        disable_tracing()
        return False


# -- summarisation (the `repro trace summarize` view) -------------------

def summarize(records: list[dict]) -> list[dict]:
    """Aggregate span records into a per-path time tree.

    Spans with the same *name path* (their own name prefixed by every
    ancestor name) aggregate into one row with ``count``, ``total_ms``
    and ``self_ms`` (total minus the time inside child spans).  Events
    aggregate into count-only rows under their parent path.  Rows come
    back depth-first, siblings ordered by total time (events last), so
    printing them in order with ``depth``-based indentation renders the
    tree.
    """
    spans = [r for r in records if r.get("kind") != "event"]
    events = [r for r in records if r.get("kind") == "event"]
    by_id = {r["span_id"]: r for r in spans}
    child_ms: dict[int, float] = {}
    for r in spans:
        pid = r.get("parent_id")
        if pid in by_id:
            child_ms[pid] = child_ms.get(pid, 0.0) + float(r["dur_ms"])

    def path_of(r: dict) -> tuple[str, ...]:
        names: list[str] = []
        seen = set()
        cur: dict | None = r
        while cur is not None and cur["span_id"] not in seen:
            seen.add(cur["span_id"])
            names.append(cur["name"])
            cur = by_id.get(cur.get("parent_id"))
        return tuple(reversed(names))

    rows: dict[tuple, dict] = {}
    for r in spans:
        path = path_of(r)
        row = rows.setdefault(path, {
            "path": path, "name": path[-1], "depth": len(path) - 1,
            "kind": "span", "count": 0, "total_ms": 0.0, "self_ms": 0.0})
        row["count"] += 1
        row["total_ms"] += float(r["dur_ms"])
        row["self_ms"] += (float(r["dur_ms"])
                           - child_ms.get(r["span_id"], 0.0))
    for r in events:
        parent = by_id.get(r.get("parent_id"))
        path = (path_of(parent) if parent else ()) + (r["name"],)
        row = rows.setdefault(path, {
            "path": path, "name": path[-1], "depth": len(path) - 1,
            "kind": "event", "count": 0, "total_ms": 0.0, "self_ms": 0.0})
        row["count"] += 1

    # depth-first order: under each parent, spans by total time
    # (largest first), then events, both name-tiebroken
    def sort_key(row: dict):
        key = []
        for depth in range(len(row["path"])):
            prefix = row["path"][:depth + 1]
            anchor = rows.get(prefix)
            total = anchor["total_ms"] if anchor else 0.0
            is_event = anchor is not None and anchor["kind"] == "event"
            key.append((is_event, -total, prefix[-1]))
        return key

    return sorted(rows.values(), key=sort_key)


def render_summary(rows: list[dict]) -> str:
    """Format :func:`summarize` rows as an indented text tree."""
    if not rows:
        return "(no spans recorded)"
    name_w = max(len("  " * r["depth"] + r["name"]) for r in rows)
    name_w = max(name_w, len("span"))
    lines = [f"{'span':<{name_w}} {'count':>7} {'total ms':>10} "
             f"{'self ms':>10}"]
    for r in rows:
        label = "  " * r["depth"] + r["name"]
        if r["kind"] == "event":
            lines.append(f"{label:<{name_w}} {r['count']:>7} "
                         f"{'-':>10} {'-':>10}")
        else:
            lines.append(f"{label:<{name_w}} {r['count']:>7} "
                         f"{r['total_ms']:>10.2f} {r['self_ms']:>10.2f}")
    return "\n".join(lines)
