"""Observability: tracing spans, the measured-cost ledger, leaderboard.

The counting stack has nine functional seams (see
``docs/ARCHITECTURE.md``); this package is the observability seam —
the one that watches all the others.  Three pillars, all
zero-dependency:

* :mod:`repro.obs.trace` — spans.  ``obs.span("plan.execute", ...)``
  context managers with an ambient thread-local current span, recorded
  into a :class:`~repro.obs.trace.TraceRecorder` and exported as JSONL.
  Off by default; when disabled every entry point degrades to a single
  module-attribute check, so the hot paths pay nothing.
* :mod:`repro.obs.ledger` — the :class:`~repro.obs.ledger.CostLedger`.
  Every real execution through :func:`repro.plan.execute.execute_plan`
  appends its measured headline seconds under (graph fingerprint,
  shape, method, backend); a :class:`~repro.plan.planner.Planner`
  given the ledger calibrates its analytic predictions by the
  observed/predicted ratio and re-ranks.  Counts never change — only
  the ordering among exact candidates may.
* :mod:`repro.obs.leaderboard` — assembles every
  ``benchmarks/artifacts/BENCH_*.json`` perf artifact into one
  ``BENCH_leaderboard.{json,md}`` waterfall of per-cell speedups vs
  the previous generation, with win/regression flags
  (``repro leaderboard`` and the CI ``leaderboard`` job).

:mod:`repro.obs.log` supplies the ``logging.getLogger("repro")``
hierarchy (NullHandler by default; the CLI ``--verbose`` flag installs
a stderr handler).
"""

from repro.obs.ledger import CostLedger, LedgerCell
from repro.obs.log import configure_logging, get_logger
from repro.obs.trace import (TraceRecorder, current_span, disable_tracing,
                             enable_tracing, event, span, tally_kernel,
                             tracing, tracing_enabled)

__all__ = [
    "CostLedger",
    "LedgerCell",
    "TraceRecorder",
    "configure_logging",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "event",
    "get_logger",
    "span",
    "tally_kernel",
    "tracing",
    "tracing_enabled",
]
