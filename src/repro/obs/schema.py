"""Tiny structural validation for ``BENCH_*`` benchmark artifacts.

The benchmark suites write their artifacts with plain ``json.dump`` —
a refactor that renames a key or drops a section produces a file that
*looks* fine until the leaderboard (or a human) reads it weeks later.
The CI ``leaderboard`` job validates every artifact against the specs
here and fails on violations; perf regressions never fail the job,
malformed artifacts always do.

This is deliberately not JSON Schema — no dependency, four spec forms:

* a ``dict`` — the value must be a dict containing every listed key,
  each validated recursively (extra keys are allowed: artifacts may
  grow fields without breaking older validators);
* a one-element ``list`` — the value must be a list, every element
  validated against the single spec;
* a ``type`` or tuple of types — ``isinstance`` check;
* a ``str`` — the value must equal it exactly (the ``kind`` tags).
"""

from __future__ import annotations

__all__ = ["ARTIFACT_SCHEMAS", "SchemaError", "validate",
           "validate_artifact"]

#: accepts ints too (json numbers), rejects bools (a bool IS an int in
#: Python, so plain isinstance would wave ``true`` through as a count)
NUMBER = (int, float)


class SchemaError(ValueError):
    """An artifact does not match its structural spec."""


def _check(value, spec, path: str) -> None:
    where = path or "$"
    if isinstance(spec, str):
        if value != spec:
            raise SchemaError(f"{where}: expected {spec!r}, got {value!r}")
        return
    if isinstance(spec, dict):
        if not isinstance(value, dict):
            raise SchemaError(f"{where}: expected an object, got "
                              f"{type(value).__name__}")
        for key, sub in spec.items():
            if key not in value:
                raise SchemaError(f"{where}: missing key {key!r}")
            _check(value[key], sub, f"{where}.{key}")
        return
    if isinstance(spec, list):
        if len(spec) != 1:
            raise AssertionError("list specs hold exactly one element spec")
        if not isinstance(value, list):
            raise SchemaError(f"{where}: expected a list, got "
                              f"{type(value).__name__}")
        for i, item in enumerate(value):
            _check(item, spec[0], f"{where}[{i}]")
        return
    # type / tuple-of-types leaf
    if isinstance(value, bool) and bool not in (
            spec if isinstance(spec, tuple) else (spec,)):
        raise SchemaError(f"{where}: expected "
                          f"{_type_names(spec)}, got bool")
    if not isinstance(value, spec):
        raise SchemaError(f"{where}: expected {_type_names(spec)}, got "
                          f"{type(value).__name__}")


def _type_names(spec) -> str:
    types = spec if isinstance(spec, tuple) else (spec,)
    return "/".join(t.__name__ for t in types)


def validate(value, spec, *, name: str = "") -> None:
    """Raise :class:`SchemaError` unless ``value`` matches ``spec``."""
    _check(value, spec, name)


#: structural specs per artifact ``kind`` — required keys only; the
#: writers are free to add fields without touching these
ARTIFACT_SCHEMAS: dict[str, dict] = {
    "plan_accuracy": {
        "kind": "plan_accuracy",
        "generated": str,
        "datasets": [{
            "dataset": str,
            "query": [int],
            "backend": str,
            "auto_method": str,
            "auto_predicted_seconds": NUMBER,
            "auto_measured_seconds": NUMBER,
            "best_method": str,
            "best_measured_seconds": NUMBER,
            "ratio_vs_best": NUMBER,
            "predicted_seconds": dict,
            "measured_seconds": dict,
            "counts": dict,
        }],
    },
    "serve_bench": {
        "kind": "serve_bench",
        "spec": dict,
        "scheduler": dict,
        "served": {"completed": int, "throughput_qps": NUMBER},
        "telemetry": dict,
        "naive": {"throughput_qps": NUMBER},
        "speedup_vs_naive": NUMBER,
    },
    "native_speedup": {
        "kind": "native_speedup",
        "generated": str,
        "datasets": [{
            "dataset": str,
            "query": [int],
            "methods": dict,
        }],
    },
    "mutate_bench": {
        "kind": "mutate_bench",
        "method": str,
        "backend": str,
        "graphs": [{
            "graph": str,
            "incremental_edits_per_s": NUMBER,
            "rebuild_edits_per_s": NUMBER,
            "speedup_vs_rebuild": NUMBER,
            "mismatches": list,
        }],
    },
    "approx_speedup": {
        "kind": "approx_speedup",
        "generated": str,
        "graphs": [{
            "graph": str,
            "cells": [{
                "query": [int],
                "exact": {"method": str, "backend": str,
                          "count": int, "seconds": NUMBER},
                "approx": {"mean_seconds": NUMBER,
                           "median_rel_error": NUMBER,
                           "runs": list},
            }],
        }],
    },
    "dist_bench": {
        "kind": "dist_bench",
        "generated": str,
        "host": {"usable_cpus": int},
        "topologies": [int],
        "sizes": [str],
        "rows": [{
            "topology": int,
            "graph_size": str,
            "repetition": int,
            "completed": int,
            "throughput_qps": NUMBER,
            "p95_ms": NUMBER,
            "failure_rate": NUMBER,
            "mismatches": list,
        }],
        "throughput_qps": dict,
        "speedup_vs_1w": dict,
        "max_speedup": NUMBER,
        "partitioned": {"exact": bool},
    },
    "leaderboard": {
        "kind": "leaderboard",
        "generated": str,
        "cells": [{
            "artifact": str,
            "cell": str,
            "metric": str,
            "value": NUMBER,
            "flag": str,
        }],
    },
}


def validate_artifact(artifact: dict, *, name: str = "") -> str:
    """Validate one loaded artifact against the spec for its ``kind``.

    Returns the kind on success; raises :class:`SchemaError` on a
    missing/unknown kind or any structural mismatch.
    """
    where = name or "artifact"
    if not isinstance(artifact, dict):
        raise SchemaError(f"{where}: expected an object, got "
                          f"{type(artifact).__name__}")
    kind = artifact.get("kind")
    if kind is None:
        raise SchemaError(f"{where}: missing key 'kind'")
    spec = ARTIFACT_SCHEMAS.get(kind)
    if spec is None:
        known = ", ".join(sorted(ARTIFACT_SCHEMAS))
        raise SchemaError(f"{where}: unknown artifact kind {kind!r} "
                          f"(known: {known})")
    validate(artifact, spec, name=where)
    return kind
