"""Out-of-memory execution over partitions (the Fig. 10 experiment).

Each partition is loaded onto the simulated device and its roots'
search trees are enumerated there.  The enumeration is exact (the sum
over partitions equals the whole-graph count — tested), while the
accounting differs by partitioner:

* **BCPar** partitions are autonomous: one up-front PCIe transfer of the
  partition's closure, zero on-demand traffic afterwards.
* **METIS-like** parts hold only their members' data: whenever the search
  expands a vertex resident elsewhere, its adjacency (w(u) words) crosses
  PCIe on demand — and repeatedly, since nothing pins it (§VI's
  "a certain portion of data is transferred multiple times").

Bicliques are classified *intra* (every L-vertex owned by the same part)
or *inter* (L spans parts); Fig. 10(b) contrasts their throughputs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from math import comb

import numpy as np

from repro.core.counts import BicliqueQuery
from repro.engine.base import KernelBackend, resolve_backend
from repro.gpu.device import DeviceSpec
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.priority import priority_rank
from repro.graph.twohop import TwoHopIndex, build_two_hop_index
from repro.partition.bcpar import PartitionSet, bcpar_partition
from repro.partition.metislike import MetisLikeResult, metis_like_partition

__all__ = ["PartitionRunReport", "build_root_index", "count_roots",
           "run_partitioned_count", "run_bcpar", "run_metis_like",
           "recommended_budget_words"]


def recommended_budget_words(graph: BipartiteGraph, q: int,
                             fraction: float = 0.25) -> int:
    """A sane memory budget: ``fraction`` of the full resident footprint,
    floored at twice the largest single-root closure.

    A device that cannot hold one root's working set cannot run the
    algorithm at all — the paper's out-of-memory setting assumes per-root
    working sets fit while the *whole graph* does not.
    """
    index = build_two_hop_index(graph, LAYER_U, q)
    weights = graph.degrees(LAYER_U).astype(np.int64) + np.diff(index.offsets)
    total = int(graph.num_edges + index.total_entries())
    max_closure = 0
    for u in range(graph.num_u):
        closure = int(weights[u]) + int(weights[index.of(u)].sum())
        max_closure = max(max_closure, closure)
    return max(int(total * fraction), 2 * max_closure, 64)


@dataclass
class PartitionRunReport:
    """Aggregate outcome of a partitioned counting run."""

    method: str
    query: BicliqueQuery
    total_count: int = 0
    intra_count: int = 0
    inter_count: int = 0
    comparisons: int = 0
    initial_transfer_words: int = 0
    on_demand_transfer_words: int = 0
    num_partitions: int = 0
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    def compute_seconds(self, spec: DeviceSpec) -> float:
        return spec.seconds(float(self.comparisons))

    def transfer_seconds(self, spec: DeviceSpec) -> float:
        words = self.initial_transfer_words + self.on_demand_transfer_words
        return 4.0 * words / spec.pcie_bytes_per_second

    def total_seconds(self, spec: DeviceSpec) -> float:
        return self.compute_seconds(spec) + self.transfer_seconds(spec)

    def throughput(self, spec: DeviceSpec) -> float:
        """Bicliques per simulated second (Fig. 10(a) metric)."""
        secs = self.total_seconds(spec)
        return self.total_count / secs if secs > 0 else float("inf")

    def split_throughputs(self, spec: DeviceSpec) -> tuple[float, float]:
        """(intra, inter) throughputs for Fig. 10(b).

        Compute time and the up-front partition loads are split
        proportionally to counts (both kinds of biclique need them); all
        on-demand traffic is attributed to inter work, since only
        part-spanning expansions trigger it.
        """
        total = max(self.total_count, 1)
        base = self.compute_seconds(spec) \
            + 4.0 * self.initial_transfer_words / spec.pcie_bytes_per_second
        intra_secs = base * (self.intra_count / total)
        inter_secs = base * (self.inter_count / total) \
            + 4.0 * self.on_demand_transfer_words / spec.pcie_bytes_per_second
        intra_tp = (self.intra_count / intra_secs) if intra_secs > 0 else 0.0
        inter_tp = (self.inter_count / inter_secs) if inter_secs > 0 else 0.0
        return intra_tp, inter_tp


def _enumerate_root(graph: BipartiteGraph, index: TwoHopIndex, root: int,
                    p: int, q: int,
                    owner: np.ndarray,
                    resident: set[int] | None,
                    weights: np.ndarray,
                    report: PartitionRunReport,
                    engine: KernelBackend) -> None:
    """Exact per-root enumeration with residency + span tracking."""
    cmp_cell = [0]
    cr0 = graph.neighbors(LAYER_U, root)
    if len(cr0) < q:
        return
    if p == 1:
        report.total_count += comb(len(cr0), q)
        report.intra_count += comb(len(cr0), q)
        return
    cl0 = index.of(root)
    if len(cl0) < p - 1:
        return
    root_part = int(owner[root])

    def touch(u: int) -> None:
        if resident is not None and u not in resident:
            report.on_demand_transfer_words += int(weights[u])

    def rec(depth: int, cl: np.ndarray, cr: np.ndarray, spans: bool) -> None:
        for u in cl:
            u = int(u)
            touch(u)
            new_cr = engine.merge(cr, graph.neighbors(LAYER_U, u), cmp_cell)
            if len(new_cr) < q:
                continue
            child_spans = spans or int(owner[u]) != root_part
            if depth + 1 == p:
                found = comb(len(new_cr), q)
                report.total_count += found
                if child_spans:
                    report.inter_count += found
                else:
                    report.intra_count += found
                continue
            new_cl = engine.merge(cl, index.of(u), cmp_cell)
            if len(new_cl) < p - depth - 1:
                continue
            rec(depth + 1, new_cl, new_cr, child_spans)

    rec(1, cl0, cr0, False)
    report.comparisons += cmp_cell[0]


def run_partitioned_count(graph: BipartiteGraph, query: BicliqueQuery,
                          root_groups: list[list[int]],
                          owner: np.ndarray,
                          residency: list[set[int] | None],
                          initial_words: list[int],
                          weights: np.ndarray,
                          method: str,
                          backend: KernelBackend | str | None = None,
                          workers: int | None = None
                          ) -> PartitionRunReport:
    """Count over explicit root groups with explicit residency sets.

    The report's compute-time model is driven by the backend's comparison
    counts, so an uninstrumented backend (``"fast"``) leaves
    ``report.comparisons`` at zero and the derived compute/throughput
    figures reflect PCIe transfer time only — counts and transfer words
    stay exact either way.

    With the parallel engine (``backend="par"`` or ``workers=``) the
    (partition, root) pairs are sharded over worker processes — roots of
    different partitions may execute concurrently, and every count and
    transfer-word field merges by exact integer sum, so the report is
    identical for any worker count.
    """
    engine = resolve_backend(backend, workers=workers)
    t0 = time.perf_counter()
    rank = priority_rank(graph, LAYER_U, query.q)
    index = build_two_hop_index(graph, LAYER_U, query.q,
                                min_priority_rank=rank)
    report = PartitionRunReport(method=method, query=query,
                                num_partitions=len(root_groups))
    for gid in range(len(root_groups)):
        report.initial_transfer_words += int(initial_words[gid])
    tasks = [(gid, int(root))
             for gid, roots in enumerate(root_groups) for root in roots]

    def enumerate_chunk(idxs) -> PartitionRunReport:
        part = PartitionRunReport(method=method, query=query)
        for i in idxs:
            gid, root = tasks[i]
            _enumerate_root(graph, index, root, query.p, query.q,
                            owner, residency[gid], weights, part, engine)
        return part

    if engine.parallel and tasks:
        task_weights = np.asarray([float(weights[root])
                                   for _, root in tasks], dtype=np.float64)
        partials = [part for _, part in
                    engine.map_shards(enumerate_chunk, len(tasks),
                                      weights=task_weights)]
    else:
        partials = [enumerate_chunk(range(len(tasks)))]
    for part in partials:
        report.total_count += part.total_count
        report.intra_count += part.intra_count
        report.inter_count += part.inter_count
        report.comparisons += part.comparisons
        report.on_demand_transfer_words += part.on_demand_transfer_words
    report.wall_seconds = time.perf_counter() - t0
    return report


def build_root_index(graph: BipartiteGraph, q: int) -> TwoHopIndex:
    """The priority-filtered two-hop index per-root enumeration uses.

    Identical to what :func:`run_partitioned_count` builds internally;
    exposed so long-lived holders (distributed serving workers counting
    the same root shard for many queries) can build it once per ``q``.
    """
    rank = priority_rank(graph, LAYER_U, q)
    return build_two_hop_index(graph, LAYER_U, q, min_priority_rank=rank)


def count_roots(graph: BipartiteGraph, query: BicliqueQuery,
                roots, *, index: TwoHopIndex | None = None,
                backend: KernelBackend | str | None = None) -> int:
    """Exact biclique count anchored at ``roots`` only.

    The priority order charges every biclique to exactly one root, so
    summing :func:`count_roots` over any disjoint cover of the U layer
    reproduces the whole-graph count bit for bit — the merge rule the
    distributed partitioned-serving tier relies on.  ``index`` must be
    a :func:`build_root_index` product for the same ``(graph, q)``.
    """
    engine = resolve_backend(backend)
    if index is None:
        index = build_root_index(graph, query.q)
    owner = np.zeros(graph.num_u, dtype=np.int64)
    weights = np.zeros(graph.num_u, dtype=np.int64)
    report = PartitionRunReport(method="roots", query=query)
    for root in roots:
        _enumerate_root(graph, index, int(root), query.p, query.q,
                        owner, None, weights, report, engine)
    return int(report.total_count)


def _owner_from_groups(n: int, groups: list[list[int]]) -> np.ndarray:
    owner = np.full(n, -1, dtype=np.int64)
    for gid, members in enumerate(groups):
        for v in members:
            owner[int(v)] = gid
    return owner


def run_bcpar(graph: BipartiteGraph, query: BicliqueQuery,
              budget_words: int,
              spec: DeviceSpec | None = None,
              backend: KernelBackend | str | None = None,
              workers: int | None = None
              ) -> tuple[PartitionRunReport, PartitionSet]:
    """Partition with BCPar and count; returns (report, partition set).

    See :func:`run_partitioned_count` for the fast-backend caveat on the
    report's comparison-driven timing figures.
    """
    full_index = build_two_hop_index(graph, LAYER_U, query.q)
    pset = bcpar_partition(graph, full_index, budget_words)
    groups = [p.roots for p in pset.partitions]
    owner = _owner_from_groups(graph.num_u, groups)
    residency: list[set[int] | None] = [set(p.closure) for p in pset.partitions]
    initial = [p.cost_words for p in pset.partitions]
    report = run_partitioned_count(graph, query, groups, owner, residency,
                                   initial, pset.weights, method="BCPar",
                                   backend=backend, workers=workers)
    return report, pset


def run_metis_like(graph: BipartiteGraph, query: BicliqueQuery,
                   num_parts: int,
                   spec: DeviceSpec | None = None,
                   backend: KernelBackend | str | None = None,
                   workers: int | None = None
                   ) -> tuple[PartitionRunReport, MetisLikeResult]:
    """Partition with the METIS-like baseline and count."""
    full_index = build_two_hop_index(graph, LAYER_U, query.q)
    degrees = graph.degrees(LAYER_U).astype(np.int64)
    weights = degrees + np.diff(full_index.offsets)
    mres = metis_like_partition(full_index, num_parts)
    groups = mres.parts()
    owner = mres.assignment
    residency: list[set[int] | None] = [set(g) for g in groups]
    initial = [int(weights[g].sum()) if len(g) else 0 for g in groups]
    report = run_partitioned_count(graph, query, groups, owner, residency,
                                   initial, weights, method="METIS-like",
                                   backend=backend, workers=workers)
    return report, mres
