"""METIS-like baseline partitioner for the Fig. 10 comparison.

The paper feeds METIS an *auxiliary graph*: vertices are the selected
layer, with an edge between every pair of mutual 2-hop neighbours; METIS
then produces balanced parts minimising edge cut.  METIS itself is not
available offline, so we implement a multilevel-flavoured stand-in with
the same contract: balanced parts over the auxiliary graph, cut-oriented,
*biclique-oblivious*.  What Fig. 10 exercises is exactly that obliviousness
— bicliques whose L spans two parts force on-demand PCIe traffic — and
any edge-cut partitioner of reasonable quality exhibits it.

Algorithm: repeated BFS region growing over the auxiliary graph (seeded
at the highest-degree unassigned vertex) up to a per-part vertex budget,
followed by a boundary-refinement pass that moves vertices to the
neighbouring part holding most of their auxiliary edges when balance
permits (a one-shot Kernighan–Lin-style sweep).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graph.twohop import TwoHopIndex

__all__ = ["MetisLikeResult", "metis_like_partition", "edge_cut"]


@dataclass
class MetisLikeResult:
    """Root assignment produced by the METIS-like baseline."""

    assignment: np.ndarray   # vertex -> part id
    num_parts: int
    cut_edges: int
    build_seconds: float

    def parts(self) -> list[list[int]]:
        out: list[list[int]] = [[] for _ in range(self.num_parts)]
        for v, p in enumerate(self.assignment):
            out[int(p)].append(v)
        return out


def edge_cut(index: TwoHopIndex, assignment: np.ndarray) -> int:
    """Auxiliary-graph edges whose endpoints land in different parts."""
    cut = 0
    for u in range(index.num_vertices):
        pu = assignment[u]
        for v in index.of(u):
            v = int(v)
            if v > u and assignment[v] != pu:
                cut += 1
    return cut


def metis_like_partition(index: TwoHopIndex, num_parts: int,
                         refine_rounds: int = 2) -> MetisLikeResult:
    """Balanced cut-oriented partitioning of the auxiliary 2-hop graph."""
    t0 = time.perf_counter()
    n = index.num_vertices
    assignment = np.full(n, -1, dtype=np.int64)
    if n == 0 or num_parts <= 0:
        return MetisLikeResult(assignment, max(num_parts, 0), 0,
                               time.perf_counter() - t0)
    capacity = -(-n // num_parts)
    degrees = np.diff(index.offsets)
    order = np.argsort(-degrees, kind="stable")

    part = 0
    filled = np.zeros(num_parts, dtype=np.int64)
    for seed in order:
        seed = int(seed)
        if assignment[seed] != -1:
            continue
        while part < num_parts - 1 and filled[part] >= capacity:
            part += 1
        queue: deque[int] = deque([seed])
        while queue and filled[part] < capacity:
            u = queue.popleft()
            if assignment[u] != -1:
                continue
            assignment[u] = part
            filled[part] += 1
            for v in index.of(u):
                v = int(v)
                if assignment[v] == -1:
                    queue.append(v)
    # anything left (isolated or overflow) goes to the lightest part
    for v in range(n):
        if assignment[v] == -1:
            p = int(filled.argmin())
            assignment[v] = p
            filled[p] += 1

    # boundary refinement: move vertices toward their densest part
    for _ in range(refine_rounds):
        moved = 0
        for u in range(n):
            nbrs = index.of(u)
            if len(nbrs) == 0:
                continue
            counts = np.bincount(assignment[nbrs], minlength=num_parts)
            best = int(counts.argmax())
            cur = int(assignment[u])
            if best != cur and counts[best] > counts[cur] \
                    and filled[best] < capacity + 1:
                assignment[u] = best
                filled[cur] -= 1
                filled[best] += 1
                moved += 1
        if moved == 0:
            break

    return MetisLikeResult(
        assignment=assignment,
        num_parts=num_parts,
        cut_edges=edge_cut(index, assignment),
        build_seconds=time.perf_counter() - t0,
    )
