"""Graph partitioning for the out-of-memory setting (§VI): BCPar and the
METIS-like baseline, plus the partitioned-count runner."""

from repro.partition.bcpar import Partition, PartitionSet, bcpar_partition
from repro.partition.metislike import (
    MetisLikeResult,
    edge_cut,
    metis_like_partition,
)
from repro.partition.runner import (
    PartitionRunReport,
    recommended_budget_words,
    run_bcpar,
    run_metis_like,
    run_partitioned_count,
)

__all__ = [
    "Partition", "PartitionSet", "bcpar_partition",
    "MetisLikeResult", "metis_like_partition", "edge_cut",
    "PartitionRunReport", "run_partitioned_count", "run_bcpar",
    "run_metis_like", "recommended_budget_words",
]
