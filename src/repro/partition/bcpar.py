"""BCPar — biclique-aware, communication-free graph partitioning (Alg. 3).

The key structural fact (§VI): starting a search from root ``u``, every
vertex ever touched lies in ``{u} ∪ N2^q(u)`` (same layer) plus the 1-hop
neighbourhoods of those vertices.  So a partition that stores the full
closure of its roots can count all their bicliques without any further
transfer — partitions are *autonomous*.

BCPar assigns every root to exactly one partition greedily:

1. weight ``w(u) = |N(u)| + |N2^q(u)|`` (device words the vertex's data
   occupies) and average weight ``avgw(u)`` over its 2-hop neighbourhood;
2. a new partition is seeded with the unassigned vertex of maximal
   ``avgw`` (best chance its neighbourhood is shareable);
3. candidates are ranked in a max-heap by accumulated *gain* — the sum of
   weights of closure vertices they share with the partition (inserting
   them adds only their non-shared remainder);
4. vertices are added until the memory budget ``M`` would be exceeded.

Closure vertices may be replicated across partitions (that is the price
of communication-freedom); roots are never replicated.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitionError
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.twohop import TwoHopIndex

__all__ = ["Partition", "PartitionSet", "bcpar_partition"]


@dataclass
class Partition:
    """One autonomous partition: its roots and resident closure."""

    roots: list[int] = field(default_factory=list)
    closure: set[int] = field(default_factory=set)   # same-layer residency
    cost_words: int = 0                              # Σ w(u') over closure

    def __post_init__(self) -> None:
        self.closure = set(self.closure)


@dataclass
class PartitionSet:
    """The full partitioning result plus provenance for validation."""

    partitions: list[Partition]
    budget_words: int
    build_seconds: float
    weights: np.ndarray

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def replication_factor(self) -> float:
        """Mean number of partitions each closure vertex appears in."""
        resident: dict[int, int] = {}
        for part in self.partitions:
            for v in part.closure:
                resident[v] = resident.get(v, 0) + 1
        if not resident:
            return 1.0
        return sum(resident.values()) / len(resident)

    def validate(self, index: TwoHopIndex) -> None:
        """Check the communication-free invariant and root coverage."""
        seen_roots: set[int] = set()
        for pid, part in enumerate(self.partitions):
            for root in part.roots:
                if root in seen_roots:
                    raise PartitionError(f"root {root} assigned twice")
                seen_roots.add(root)
                if root not in part.closure:
                    raise PartitionError(
                        f"partition {pid}: root {root} missing from closure")
                for nb in index.of(root):
                    if int(nb) not in part.closure:
                        raise PartitionError(
                            f"partition {pid}: 2-hop neighbour {int(nb)} of "
                            f"root {root} not resident (not autonomous)")
        expected = set(range(index.num_vertices))
        if seen_roots != expected:
            missing = sorted(expected - seen_roots)[:5]
            raise PartitionError(f"roots not fully covered; missing {missing}")


def _vertex_weights(graph: BipartiteGraph, index: TwoHopIndex) -> np.ndarray:
    """w(u) = |N(u)| + |N2^q(u)| for every selected-layer vertex."""
    degrees = graph.degrees(LAYER_U).astype(np.int64)
    two_hop = np.diff(index.offsets)
    return degrees + two_hop


def bcpar_partition(graph: BipartiteGraph, index: TwoHopIndex,
                    budget_words: int) -> PartitionSet:
    """Partition the selected layer of ``graph`` under ``budget_words``.

    ``index`` must be the *unfiltered* N2^q index over the same layer —
    autonomy must hold for the full neighbourhood, not the rank-filtered
    half used during enumeration (a superset, so safe either way).
    """
    t0 = time.perf_counter()
    n = graph.layer_size(LAYER_U)
    weights = _vertex_weights(graph, index)
    avgw = np.zeros(n, dtype=np.float64)
    for u in range(n):
        nbrs = index.of(u)
        avgw[u] = float(weights[nbrs].mean()) if len(nbrs) else 0.0

    unassigned = set(range(n))
    # seed order: descending average weight, ids break ties
    seed_order = list(np.lexsort((np.arange(n), -avgw)))
    seed_ptr = 0
    partitions: list[Partition] = []

    while unassigned:
        while seed_ptr < n and seed_order[seed_ptr] not in unassigned:
            seed_ptr += 1
        seed = int(seed_order[seed_ptr]) if seed_ptr < n else next(iter(unassigned))
        part = Partition()
        gain: dict[int, int] = {}
        heap: list[tuple[int, int]] = []   # (-gain, vertex), lazily stale

        def add_root(u: int) -> None:
            """Insert u as a root; extend the closure and refresh gains."""
            part.roots.append(u)
            unassigned.discard(u)
            new_members = [u] + [int(x) for x in index.of(u)]
            for m in new_members:
                if m in part.closure:
                    continue
                part.closure.add(m)
                part.cost_words += int(weights[m])
                # every unassigned in-neighbour of m now shares m's data
                for v in index.of(m):
                    v = int(v)
                    if v in unassigned:
                        gain[v] = gain.get(v, 0) + int(weights[m])
                        heapq.heappush(heap, (-gain[v], v))

        add_root(seed)
        while True:
            candidate = None
            while heap:
                neg, v = heapq.heappop(heap)
                if v in unassigned and gain.get(v, 0) == -neg:
                    candidate = v
                    break
            if candidate is None:
                break
            added_cost = int(weights[candidate]) if candidate not in part.closure else 0
            for m in index.of(candidate):
                if int(m) not in part.closure:
                    added_cost += int(weights[int(m)])
            if part.cost_words + added_cost > budget_words:
                break
            add_root(candidate)
        partitions.append(part)

    result = PartitionSet(partitions=partitions,
                          budget_words=budget_words,
                          build_seconds=time.perf_counter() - t0,
                          weights=weights)
    return result
