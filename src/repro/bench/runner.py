"""Experiment runner utilities shared by the benchmark harness.

One uniform interface over the five algorithms: run a method by name,
extract its *headline time* (wall seconds for CPU methods, simulated
device seconds for GPU-model methods — the same convention the paper's
figures use when plotting CPU and GPU bars side by side), and tabulate
speedups.

Backend selection rides along: experiments that plot transactions or
simulated device time must force ``backend="sim"`` (the default), while
pure wall-clock or correctness sweeps can pass ``backend="fast"`` to skip
the instrumentation tax entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.basic import basic_count
from repro.core.bcl import bcl_count
from repro.core.bclp import bclp_count
from repro.core.counts import BicliqueQuery, CountResult, DeviceRunResult
from repro.core.gbc import GBCOptions, gbc_count, gbc_variant
from repro.core.gbl import gbl_count
from repro.engine.base import KernelBackend
from repro.gpu.device import DeviceSpec, rtx_3090
from repro.graph.bipartite import BipartiteGraph

__all__ = ["METHODS", "run_method", "headline_seconds", "MethodRun",
           "run_matrix", "speedup", "run_serve_bench"]

METHODS = ("Basic", "BCL", "BCLP", "GBL", "GBC",
           "GBC-NH", "GBC-NB", "GBC-NW")


@dataclass
class MethodRun:
    """One (method, dataset, query) cell of an experiment matrix."""

    method: str
    dataset: str
    query: BicliqueQuery
    result: CountResult
    measure_seconds: float

    @property
    def count(self) -> int:
        return self.result.count

    @property
    def seconds(self) -> float:
        return headline_seconds(self.result)


def headline_seconds(result: CountResult) -> float:
    """The figure-comparable runtime of a result.

    Device-model algorithms report simulated device time; CPU algorithms
    report (modelled, for BCLP) wall time.  A device run executed on an
    uninstrumented backend has no simulated time, so its host wall time
    is the only meaningful number.
    """
    if isinstance(result, DeviceRunResult) and result.backend_instrumented:
        return result.device_seconds
    return result.wall_seconds


def run_method(method: str, graph: BipartiteGraph, query: BicliqueQuery,
               spec: DeviceSpec | None = None,
               threads: int = 16,
               backend: KernelBackend | str | None = None,
               workers: int | None = None,
               session=None,
               layer: str | None = None,
               options=None) -> CountResult:
    """Dispatch one of the paper's methods by name.

    ``workers`` selects sharded multi-process execution (the ``"par"``
    backend) with that many processes; see
    :func:`repro.engine.base.resolve_backend`.  ``session`` (a
    :class:`repro.query.GraphSession` over ``graph``) lets consecutive
    runs share the priority order, two-hop index and HTB structures.
    ``layer`` pins the anchored layer (ignored by Basic, which always
    anchors on U); ``options`` are GBC feature toggles — for ``GBC-*``
    variant names they default to the named ablation.
    """
    spec = spec or rtx_3090()
    if method == "Basic":
        return basic_count(graph, query, backend=backend, workers=workers,
                           session=session)
    if method == "BCL":
        return bcl_count(graph, query, layer=layer, backend=backend,
                         workers=workers, session=session)
    if method == "BCLP":
        return bclp_count(graph, query, threads=threads, layer=layer,
                          backend=backend, workers=workers, session=session)
    if method == "GBL":
        return gbl_count(graph, query, spec=spec, layer=layer,
                         backend=backend, workers=workers, session=session)
    if method == "GBC":
        return gbc_count(graph, query, spec=spec, options=options,
                         layer=layer, backend=backend, workers=workers,
                         session=session)
    if method.startswith("GBC-"):
        return gbc_count(graph, query, spec=spec,
                         options=options or gbc_variant(
                             method.split("-", 1)[1]),
                         layer=layer, backend=backend, workers=workers,
                         session=session)
    raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")


def run_matrix(graphs: dict[str, BipartiteGraph],
               queries: list[BicliqueQuery],
               methods: list[str],
               spec: DeviceSpec | None = None,
               check_agreement: bool = True,
               backend: KernelBackend | str | None = None,
               workers: int | None = None,
               share_sessions: bool = False) -> list[MethodRun]:
    """Run every (dataset, query, method) cell; optionally cross-check
    that all methods agree on the count (they must — all are exact).

    With ``share_sessions=True`` each graph gets one
    :class:`repro.query.GraphSession`, so the reorder permutation,
    two-hop indexes and HTBs are built once per (layer, k) and reused
    across the whole (query, method) matrix of that graph.  It is
    opt-in because shared preparation deflates the *wall time* of
    whichever method runs after the structures are warm — fine for
    correctness sweeps, wrong for paper-timing experiments that compare
    per-method cost (counts are identical either way).
    """
    from repro.query import GraphSession

    spec = spec or rtx_3090()
    runs: list[MethodRun] = []
    for name, graph in graphs.items():
        session = GraphSession(graph, spec=spec) if share_sessions else None
        for query in queries:
            counts: set[int] = set()
            for method in methods:
                t0 = time.perf_counter()
                result = run_method(method, graph, query, spec=spec,
                                    backend=backend, workers=workers,
                                    session=session)
                elapsed = time.perf_counter() - t0
                runs.append(MethodRun(method=method, dataset=name,
                                      query=query, result=result,
                                      measure_seconds=elapsed))
                counts.add(result.count)
            if check_agreement and len(counts) > 1:
                raise AssertionError(
                    f"methods disagree on {name} {query}: {sorted(counts)}")
    return runs


def run_serve_bench(graphs: dict[str, BipartiteGraph], spec, **kwargs):
    """Benchmark-harness entry point for the serving subsystem.

    Thin delegation to :func:`repro.service.bench.serve_bench` (imported
    lazily — :mod:`repro.service` sits above this module and its naive
    baseline calls back into :func:`run_method`); here so benchmark
    drivers reach every harness through ``repro.bench.runner``.
    """
    from repro.service.bench import serve_bench

    return serve_bench(graphs, spec, **kwargs)


def speedup(baseline: MethodRun | CountResult,
            improved: MethodRun | CountResult) -> float:
    """baseline time / improved time, in headline seconds."""
    base = baseline.seconds if isinstance(baseline, MethodRun) \
        else headline_seconds(baseline)
    new = improved.seconds if isinstance(improved, MethodRun) \
        else headline_seconds(improved)
    return base / new if new > 0 else float("inf")
