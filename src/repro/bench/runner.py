"""Experiment runner utilities shared by the benchmark harness.

One uniform interface over the registered algorithms: run a method by
name, extract its *headline time* (wall seconds for CPU methods,
simulated device seconds for GPU-model methods — the same convention the
paper's figures use when plotting CPU and GPU bars side by side), and
tabulate speedups.

Method dispatch itself lives in :mod:`repro.plan`: ``METHODS`` is the
registry's listing and :func:`run_method` is a thin plan/execute
wrapper, so a newly registered counter shows up here (and in the CLI,
batch engine, and serving scheduler) without touching this module.
``method="auto"`` asks the cost-based planner to choose.

Backend selection rides along: experiments that plot transactions or
simulated device time must force ``backend="sim"`` (the default), while
pure wall-clock or correctness sweeps can pass ``backend="fast"`` to skip
the instrumentation tax entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.counts import BicliqueQuery, CountResult, DeviceRunResult
from repro.engine.base import KernelBackend
from repro.gpu.device import DeviceSpec, rtx_3090
from repro.graph.bipartite import BipartiteGraph
from repro.plan import execute_plan, method_names, plan_query, warm_session

__all__ = ["METHODS", "run_method", "headline_seconds", "MethodRun",
           "run_matrix", "speedup", "run_serve_bench"]

#: the registered method names, in registry listing order (``"auto"``
#: additionally asks the planner to choose among the non-ablations).
#: A tuple snapshot taken when this module is imported — kept for
#: backwards compatibility with every existing ``METHODS`` consumer;
#: code that must see counters registered *after* this import (e.g. a
#: third-party drop-in) should call
#: :func:`repro.plan.method_names` directly, as the CLI does.
METHODS = method_names()


@dataclass
class MethodRun:
    """One (method, dataset, query) cell of an experiment matrix."""

    method: str
    dataset: str
    query: BicliqueQuery
    result: CountResult
    measure_seconds: float
    #: per-graph shared-session preparation time (``run_matrix`` with
    #: ``share_sessions=True`` warms every plan's prepared state up
    #: front and charges it here, never to the first warm cell's
    #: ``measure_seconds``); 0.0 for unshared runs, and the same value
    #: on every cell of one graph
    prepare_seconds: float = 0.0

    @property
    def count(self) -> int:
        return self.result.count

    @property
    def seconds(self) -> float:
        return headline_seconds(self.result)


def headline_seconds(result: CountResult) -> float:
    """The figure-comparable runtime of a result.

    Device-model algorithms report simulated device time; CPU algorithms
    report (modelled, for BCLP) wall time.  A device run executed on an
    uninstrumented backend has no simulated time, so its host wall time
    is the only meaningful number.
    """
    if isinstance(result, DeviceRunResult) and result.backend_instrumented:
        return result.device_seconds
    return result.wall_seconds


def run_method(method: str, graph: BipartiteGraph, query: BicliqueQuery,
               spec: DeviceSpec | None = None,
               threads: int = 16,
               backend: KernelBackend | str | None = None,
               workers: int | None = None,
               session=None,
               layer: str | None = None,
               options=None, ledger=None) -> CountResult:
    """Run a registered method by name — a thin plan/execute wrapper.

    The name resolves through the :mod:`repro.plan` registry (an
    unregistered name raises
    :class:`~repro.errors.UnknownMethodError`, a :class:`ValueError`);
    ``method="auto"`` lets the cost-based
    :class:`~repro.plan.planner.Planner` choose the method — and, when
    no backend is named, the engine.  ``workers`` selects sharded
    multi-process execution (the ``"par"`` backend) with that many
    processes; see :func:`repro.engine.base.resolve_backend`.
    ``session`` (a :class:`repro.query.GraphSession` over ``graph``)
    lets consecutive runs share the priority order, two-hop index and
    HTB structures.  ``layer`` pins the anchored layer (ignored by
    Basic, which always anchors on U); ``options`` are GBC feature
    toggles — for ``GBC-*`` variant names they default to the named
    ablation.  ``ledger`` (a :class:`repro.obs.ledger.CostLedger`)
    records the run's measured headline seconds for Planner
    calibration.
    """
    spec = spec or rtx_3090()
    plan = plan_query(graph, query, method, backend=backend,
                      workers=workers, layer=layer, session=session,
                      spec=spec, threads=threads)
    return execute_plan(plan, graph, query, session=session, spec=spec,
                        backend=backend, options=options, threads=threads,
                        ledger=ledger)


def run_matrix(graphs: dict[str, BipartiteGraph],
               queries: list[BicliqueQuery],
               methods: list[str],
               spec: DeviceSpec | None = None,
               check_agreement: bool = True,
               backend: KernelBackend | str | None = None,
               workers: int | None = None,
               share_sessions: bool = False) -> list[MethodRun]:
    """Run every (dataset, query, method) cell; optionally cross-check
    that all methods agree on the count (they must — all are exact).

    With ``share_sessions=True`` each graph gets one
    :class:`repro.query.GraphSession`, so the reorder permutation,
    two-hop indexes and HTBs are built once per (layer, k) and reused
    across the whole (query, method) matrix of that graph.  The shared
    preparation is warmed *before* any cell runs — every plan's
    prepared state via :func:`repro.plan.warm_session` — and its wall
    time is reported per graph on :attr:`MethodRun.prepare_seconds`
    instead of being charged to whichever method happened to run first
    cold.  Per-cell ``measure_seconds`` therefore compare pure counting
    cost; unshared runs (the default) still pay preparation inside
    every cell, matching the paper's one-shot timing convention.
    """
    from repro.query import GraphSession

    spec = spec or rtx_3090()
    runs: list[MethodRun] = []
    for name, graph in graphs.items():
        session, prepare_seconds = None, 0.0
        if share_sessions:
            session = GraphSession(graph, spec=spec)
            prep0 = time.perf_counter()
            for query in queries:
                for method in methods:
                    warm_plan = plan_query(graph, query, method,
                                           backend=backend, workers=workers,
                                           session=session, spec=spec)
                    warm_session(session, warm_plan)
            prepare_seconds = time.perf_counter() - prep0
        for query in queries:
            counts: set[int] = set()
            for method in methods:
                t0 = time.perf_counter()
                result = run_method(method, graph, query, spec=spec,
                                    backend=backend, workers=workers,
                                    session=session)
                elapsed = time.perf_counter() - t0
                runs.append(MethodRun(method=method, dataset=name,
                                      query=query, result=result,
                                      measure_seconds=elapsed,
                                      prepare_seconds=prepare_seconds))
                counts.add(result.count)
            if check_agreement and len(counts) > 1:
                raise AssertionError(
                    f"methods disagree on {name} {query}: {sorted(counts)}")
    return runs


def run_serve_bench(graphs: dict[str, BipartiteGraph], spec, **kwargs):
    """Benchmark-harness entry point for the serving subsystem.

    Thin delegation to :func:`repro.service.bench.serve_bench` (imported
    lazily — :mod:`repro.service` sits above this module and its naive
    baseline calls back into :func:`run_method`); here so benchmark
    drivers reach every harness through ``repro.bench.runner``.
    """
    from repro.service.bench import serve_bench

    return serve_bench(graphs, spec, **kwargs)


def speedup(baseline: MethodRun | CountResult,
            improved: MethodRun | CountResult) -> float:
    """baseline time / improved time, in headline seconds."""
    base = baseline.seconds if isinstance(baseline, MethodRun) \
        else headline_seconds(baseline)
    new = improved.seconds if isinstance(improved, MethodRun) \
        else headline_seconds(improved)
    return base / new if new > 0 else float("inf")
