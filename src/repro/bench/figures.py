"""Text rendering of figure-shaped results (series per method).

The paper's figures are line/bar charts of runtime vs a swept parameter;
here each figure renders as one aligned column per sweep point and one
row per method, which keeps benchmark logs diff-able.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.bench.tables import format_seconds, render_table

__all__ = ["render_series", "render_breakdown_bars"]


def render_series(title: str,
                  x_label: str,
                  x_values: Sequence[object],
                  series: Mapping[str, Sequence[float]],
                  formatter=format_seconds) -> str:
    """Render {method -> [y per x]} as a table (one row per method)."""
    header = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        rows.append([name] + [formatter(v) for v in values])
    return render_table(title, header, rows)


def render_breakdown_bars(title: str,
                          labels: Sequence[str],
                          fractions: Mapping[str, Sequence[float]],
                          width: int = 40) -> str:
    """Stacked-percentage pseudo-bars (the Fig. 1(b) layout).

    ``fractions`` maps each component name to its per-label share in
    [0, 1]; shares are drawn as proportional character runs.
    """
    comps = list(fractions)
    glyphs = "#+.:*o"  # one glyph per component
    lines = [title, "=" * len(title)]
    for i, label in enumerate(labels):
        bar = ""
        pct = []
        for c_idx, comp in enumerate(comps):
            share = fractions[comp][i]
            bar += glyphs[c_idx % len(glyphs)] * max(int(round(share * width)), 0)
            pct.append(f"{comp}={share * 100:.1f}%")
        lines.append(f"{label:<10} |{bar:<{width}}| " + "  ".join(pct))
    return "\n".join(lines)
