"""One function per paper artifact (tables II-V, figures 1b and 7-11).

Each ``experiment_*`` function runs the relevant workload at a chosen
dataset scale and returns an :class:`ExperimentResult` holding both the
structured data (for assertions in tests/benchmarks) and a rendered text
artifact (printed by the benchmark harness and pasted into
EXPERIMENTS.md).

Scaling conventions (see DESIGN.md §4): dataset stand-ins are orders of
magnitude smaller than the paper's, so the query grid shrinks with them —
the paper's p+q = 16 default maps to p+q = 8 here, its (4,12)..(12,4)
asymmetry grid maps to (2,6)..(6,2), and the Fig. 8 sweep {8..24} maps to
{4..12}.  Counts are exact at any scale; the claims under test are the
*shapes* listed per experiment in DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.datasets import PAPER_STATS, load_dataset
from repro.bench.figures import render_breakdown_bars, render_series
from repro.bench.runner import MethodRun, run_matrix
from repro.bench.tables import format_ratio, format_seconds, render_table
from repro.core.bcl import bcl_count
from repro.core.counts import BicliqueQuery
from repro.core.gbc import GBCOptions, gbc_count, gbc_variant
from repro.core.pipeline import run_pipeline
from repro.gpu.device import DeviceSpec, rtx_3090
from repro.graph.stats import compute_stats
from repro.partition.runner import run_bcpar, run_metis_like

__all__ = [
    "ExperimentResult", "scaled_device",
    "experiment_fig1b", "experiment_table2", "experiment_fig7",
    "experiment_fig8", "experiment_fig9", "experiment_table3",
    "experiment_table4", "experiment_fig10", "experiment_table5",
    "experiment_fig11",
    "DEFAULT_QUERY", "FIG7_QUERIES", "FIG8_TOTALS",
]

DEFAULT_QUERY = BicliqueQuery(4, 4)          # paper default (8, 8), halved
# the paper sweeps (4,12)..(12,4): q never drops below (p+q)/4.  Halving
# to p+q = 8 gives (2,6)..(6,2), but (6,2) would push q below that bound
# (no paper analogue) and its barely-filtered N2^2 lists blow up, so the
# asymmetry sweep stops at (5,3).
FIG7_QUERIES = [BicliqueQuery(2, 6), BicliqueQuery(3, 5), BicliqueQuery(4, 4),
                BicliqueQuery(5, 3)]
FIG8_TOTALS = [4, 6, 8, 10, 12]              # paper: {8, 12, 16, 20, 24}


def scaled_device() -> DeviceSpec:
    """RTX-3090 cost constants with 24 resident blocks instead of 164.

    The stand-ins are ~100x smaller than the paper's graphs; keeping all
    164 resident blocks would leave roughly one root per block and no
    scheduling slack, hiding every load-balancing effect.  Scaling the
    resident-block count with the data restores the paper's regime
    (roots >> blocks) that §V-C operates in.
    """
    from dataclasses import replace
    return replace(rtx_3090(), name="RTX3090-sim/24blk",
                   blocks_per_launch=24)


@dataclass
class ExperimentResult:
    """Structured data plus a rendered text artifact."""

    name: str
    data: dict = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def _load_all(names, scale):
    return {name: load_dataset(name, scale) for name in names}


# ----------------------------------------------------------------------
# Fig. 1(b): BCL execution-time breakdown
# ----------------------------------------------------------------------
def experiment_fig1b(datasets=("S2", "YT", "GH", "SO", "YL", "ID"),
                     scale: str = "bench",
                     query: BicliqueQuery = DEFAULT_QUERY) -> ExperimentResult:
    """Fraction of BCL runtime spent in 1-/2-hop intersections."""
    labels, comp_s, comp_h, other = [], [], [], []
    for name in datasets:
        graph = load_dataset(name, scale)
        # breakdown plotting needs the instrumented engine
        result = bcl_count(graph, query, backend="sim")
        total = max(result.wall_seconds, 1e-12)
        labels.append(name)
        comp_s.append(result.breakdown["comp_s_seconds"] / total)
        comp_h.append(result.breakdown["comp_h_seconds"] / total)
        other.append(result.breakdown["other_seconds"] / total)
    fractions = {"Comp.S": comp_s, "Comp.H'": comp_h, "Others": other}
    intersect_share = [s + h for s, h in zip(comp_s, comp_h)]
    text = render_breakdown_bars(
        f"Fig.1(b) stand-in — BCL time breakdown, (p,q)={query}",
        labels, fractions)
    return ExperimentResult(
        name="fig1b",
        data={"labels": labels, "fractions": fractions,
              "intersection_share": dict(zip(labels, intersect_share))},
        text=text)


# ----------------------------------------------------------------------
# Table II: dataset statistics
# ----------------------------------------------------------------------
def experiment_table2(scale: str = "bench") -> ExperimentResult:
    """Stand-in dataset statistics next to the paper's originals."""
    rows = []
    stats = {}
    for key in PAPER_STATS:
        graph = load_dataset(key, scale)
        s = compute_stats(graph)
        stats[key] = s
        pu, pv, pe, pdu, pdv = PAPER_STATS[key]
        rows.append([key, s.num_u, s.num_v, s.num_edges,
                     f"{s.mean_degree_u:.2f}", f"{s.mean_degree_v:.2f}",
                     f"{pdu:.2f}", f"{pdv:.2f}"])
    text = render_table(
        f"Table II stand-ins ({scale} scale) vs paper mean degrees",
        ["Dataset", "|U|", "|V|", "|E|", "dU", "dV",
         "paper dU", "paper dV"], rows)
    return ExperimentResult(name="table2", data={"stats": stats}, text=text)


# ----------------------------------------------------------------------
# Fig. 7: overall performance
# ----------------------------------------------------------------------
def experiment_fig7(datasets=("YT", "BC", "GH", "YL", "S2"),
                    queries=None,
                    methods=("BCL", "BCLP", "GBL", "GBC"),
                    scale: str = "bench",
                    spec: DeviceSpec | None = None,
                    backend: str = "sim") -> ExperimentResult:
    """Runtime of every method across datasets and (p, q) mixes.

    ``backend="sim"`` (default) compares simulated device seconds as the
    paper does; ``"fast"`` turns this into a host wall-clock sweep.
    """
    queries = list(queries) if queries is not None else FIG7_QUERIES
    spec = spec or scaled_device()
    graphs = _load_all(datasets, scale)
    runs = run_matrix(graphs, queries, list(methods), spec=spec,
                      backend=backend)
    by_cell: dict[tuple[str, str], dict[str, MethodRun]] = {}
    for run in runs:
        by_cell.setdefault((run.dataset, str(run.query)), {})[run.method] = run
    sections = []
    speedups: dict[str, list[float]] = {m: [] for m in methods if m != "GBC"}
    for dataset in graphs:
        series = {m: [] for m in methods}
        for query in queries:
            cell = by_cell[(dataset, str(query))]
            for m in methods:
                series[m].append(cell[m].seconds)
            if "GBC" in cell:
                gbc_secs = cell["GBC"].seconds
                for m in speedups:
                    if m in cell and gbc_secs > 0:
                        speedups[m].append(cell[m].seconds / gbc_secs)
        sections.append(render_series(
            f"Fig.7 stand-in — {dataset}", "(p,q)",
            [str(q) for q in queries], series))
    summary_rows = [[m,
                     format_ratio(float(np.mean(v))) if v else "-",
                     format_ratio(float(np.max(v))) if v else "-"]
                    for m, v in speedups.items()]
    sections.append(render_table("GBC speedup summary",
                                 ["vs method", "mean", "max"], summary_rows))
    return ExperimentResult(
        name="fig7",
        data={"runs": runs, "speedups": speedups},
        text="\n\n".join(sections))


# ----------------------------------------------------------------------
# Fig. 8: scalability vs query size (p + q)
# ----------------------------------------------------------------------
def experiment_fig8(datasets=("YT", "BC", "GH", "SO", "S2"),
                    totals=None,
                    methods=("BCL", "BCLP", "GBL", "GBC"),
                    scale: str = "bench",
                    spec: DeviceSpec | None = None,
                    backend: str = "sim") -> ExperimentResult:
    """Runtime as p = q = (p+q)/2 grows."""
    totals = list(totals) if totals is not None else FIG8_TOTALS
    queries = [BicliqueQuery(t // 2, t // 2) for t in totals]
    spec = spec or scaled_device()
    graphs = _load_all(datasets, scale)
    runs = run_matrix(graphs, queries, list(methods), spec=spec,
                      backend=backend)
    by_cell: dict[tuple[str, str], dict[str, MethodRun]] = {}
    for run in runs:
        by_cell.setdefault((run.dataset, str(run.query)), {})[run.method] = run
    sections = []
    series_by_dataset = {}
    for dataset in graphs:
        series = {m: [] for m in methods}
        for query in queries:
            for m in methods:
                series[m].append(by_cell[(dataset, str(query))][m].seconds)
        series_by_dataset[dataset] = series
        sections.append(render_series(
            f"Fig.8 stand-in — {dataset}", "p+q",
            totals, series))
    return ExperimentResult(
        name="fig8",
        data={"runs": runs, "series": series_by_dataset, "totals": totals},
        text="\n\n".join(sections))


# ----------------------------------------------------------------------
# Fig. 9: ablation (NH / NB / NW)
# ----------------------------------------------------------------------
def experiment_fig9(datasets=("YT", "BC", "GH", "YL", "S1"),
                    queries=None,
                    scale: str = "bench",
                    spec: DeviceSpec | None = None) -> ExperimentResult:
    """Speedup of full GBC over each crippled variant (ratio > 1 = win)."""
    queries = list(queries) if queries is not None else FIG7_QUERIES
    spec = spec or scaled_device()
    variants = ("NH", "NB", "NW")
    ratios: dict[str, dict[str, list[float]]] = \
        {v: {d: [] for d in datasets} for v in variants}
    for dataset in datasets:
        graph = load_dataset(dataset, scale)
        for query in queries:
            # ablation ratios are transaction-driven: force the simulated
            # backend regardless of any session-wide default
            full = gbc_count(graph, query, spec=spec, backend="sim")
            for v in variants:
                crippled = gbc_count(graph, query, spec=spec,
                                     options=gbc_variant(v), backend="sim")
                if crippled.count != full.count:
                    raise AssertionError(
                        f"variant {v} miscounts on {dataset} {query}")
                ratios[v][dataset].append(
                    crippled.device_seconds / max(full.device_seconds, 1e-30))
    sections = []
    for dataset in datasets:
        rows = [[v] + [format_ratio(r) for r in ratios[v][dataset]]
                for v in variants]
        sections.append(render_table(
            f"Fig.9 stand-in — {dataset}: variant time / GBC time",
            ["variant"] + [str(q) for q in queries], rows))
    return ExperimentResult(
        name="fig9",
        data={"ratios": ratios, "queries": [str(q) for q in queries]},
        text="\n\n".join(sections))


# ----------------------------------------------------------------------
# Table III: reordering comparison
# ----------------------------------------------------------------------
def experiment_table3(datasets=("YT", "BC", "GH", "SO", "YL", "ID", "S1", "S2"),
                      query: BicliqueQuery = DEFAULT_QUERY,
                      scale: str = "bench",
                      spec: DeviceSpec | None = None,
                      border_iterations: int | None = None) -> ExperimentResult:
    """GBC counting time on unreordered / Gorder / Border graphs."""
    spec = spec or scaled_device()
    rows = []
    data = {}
    for dataset in datasets:
        graph = load_dataset(dataset, scale)
        cells = {}
        counts = set()
        for method in ("none", "gorder", "border"):
            pipe = run_pipeline(graph, query, reorder=method, spec=spec,
                                border_iterations=border_iterations,
                                backend="sim")
            cells[method] = pipe
            counts.add(pipe.result.count)
        if len(counts) != 1:
            raise AssertionError(f"reordering changed the count on {dataset}")
        data[dataset] = {m: cells[m].counting_seconds for m in cells}
        data[dataset]["count"] = counts.pop()
        rows.append([dataset,
                     format_seconds(cells["none"].counting_seconds),
                     format_seconds(cells["gorder"].counting_seconds),
                     format_seconds(cells["border"].counting_seconds)])
    text = render_table(
        f"Table III stand-in — GBC time by reordering, (p,q)={query}",
        ["Dataset", "No Reorder", "Gorder", "Border"], rows)
    return ExperimentResult(name="table3", data=data, text=text)


# ----------------------------------------------------------------------
# Table IV: load balancing strategies
# ----------------------------------------------------------------------
def experiment_table4(datasets=("SO", "S2", "BC", "LF", "FR"),
                      query: BicliqueQuery = DEFAULT_QUERY,
                      scale: str = "bench",
                      spec: DeviceSpec | None = None) -> ExperimentResult:
    """GBC device time under none / pre / runtime / joint balancing.

    The kernels are executed once per dataset; the four strategies then
    re-schedule the measured per-root cycle costs (placement + stealing
    are purely scheduling decisions, so this is exact and ~4x cheaper).
    """
    from repro.balance.strategies import evaluate_strategy

    spec = spec or scaled_device()
    strategies = ("none", "pre", "runtime", "joint")
    rows = []
    data = {}
    for dataset in datasets:
        graph = load_dataset(dataset, scale)
        base = gbc_count(graph, query, spec=spec, backend="sim")
        cell = {}
        for strategy in strategies:
            sched = evaluate_strategy(strategy,
                                      np.asarray(base.per_root_cycles),
                                      np.asarray(base.root_weights),
                                      spec.blocks_per_launch, spec)
            cell[strategy] = spec.seconds(sched.makespan_cycles)
        data[dataset] = cell
        rows.append([dataset] + [format_seconds(cell[s]) for s in strategies])
    text = render_table(
        f"Table IV stand-in — GBC time by balancing strategy, (p,q)={query}",
        ["Dataset", "No Balance", "Pre-runtime", "Runtime", "Joint"], rows)
    return ExperimentResult(name="table4", data=data, text=text)


# ----------------------------------------------------------------------
# Fig. 10: BCPar vs METIS-like partitioning throughput
# ----------------------------------------------------------------------
def experiment_fig10(dataset: str = "OR",
                     queries=None,
                     scale: str = "bench",
                     budget_fraction: float = 0.25,
                     spec: DeviceSpec | None = None) -> ExperimentResult:
    """Throughput (bicliques/s) on partitioned graphs, intra vs inter."""
    spec = spec or scaled_device()
    queries = list(queries) if queries is not None else \
        [BicliqueQuery(2, 2), BicliqueQuery(3, 3), BicliqueQuery(4, 4)]
    graph = load_dataset(dataset, scale)
    rows_overall, rows_split = [], []
    data = {}
    for query in queries:
        bc_report, pset = run_bcpar(graph, query,
                                    budget_words=_budget_words(graph, query,
                                                               budget_fraction))
        me_report, _ = run_metis_like(graph, query,
                                      num_parts=max(pset.num_partitions, 2))
        if bc_report.total_count != me_report.total_count:
            raise AssertionError("partitioned counts disagree")
        bc_tp = bc_report.throughput(spec)
        me_tp = me_report.throughput(spec)
        bc_intra, bc_inter = bc_report.split_throughputs(spec)
        me_intra, me_inter = me_report.split_throughputs(spec)
        data[str(query)] = {
            "bcpar": bc_report, "metis": me_report,
            "bcpar_throughput": bc_tp, "metis_throughput": me_tp,
            "bcpar_split": (bc_intra, bc_inter),
            "metis_split": (me_intra, me_inter),
            "partitions": pset.num_partitions,
        }
        rows_overall.append([str(query), f"{bc_tp:.3g}", f"{me_tp:.3g}",
                             format_ratio(bc_tp / me_tp if me_tp else float("inf"))])
        rows_split.append([str(query), f"{me_intra:.3g}", f"{me_inter:.3g}",
                           f"{bc_intra:.3g}", f"{bc_inter:.3g}"])
    text = "\n\n".join([
        render_table(f"Fig.10(a) stand-in — throughput on {dataset} (#bicliques/s)",
                     ["(p,q)", "BCPar", "METIS-like", "BCPar/METIS"],
                     rows_overall),
        render_table("Fig.10(b) stand-in — intra vs inter partition throughput",
                     ["(p,q)", "METIS intra", "METIS inter",
                      "BCPar intra", "BCPar inter"], rows_split),
    ])
    return ExperimentResult(name="fig10", data=data, text=text)


def _budget_words(graph, query, fraction: float) -> int:
    """Delegates to :func:`repro.partition.runner.recommended_budget_words`."""
    from repro.partition.runner import recommended_budget_words
    return recommended_budget_words(graph, query.q, fraction)


# ----------------------------------------------------------------------
# Table V: component breakdown
# ----------------------------------------------------------------------
def experiment_table5(datasets=("YT", "BC", "GH", "SO", "YL", "ID", "S1", "S2"),
                      query: BicliqueQuery = DEFAULT_QUERY,
                      scale: str = "bench",
                      spec: DeviceSpec | None = None,
                      border_iterations: int | None = None) -> ExperimentResult:
    """HTB transform / reorder / counting time per dataset."""
    spec = spec or scaled_device()
    rows = []
    data = {}
    for dataset in datasets:
        graph = load_dataset(dataset, scale)
        pipe = run_pipeline(graph, query, reorder="border", spec=spec,
                            border_iterations=border_iterations,
                            backend="sim")
        comp = {
            "htb_transform": pipe.htb_transform_seconds,
            "reorder": pipe.reorder_seconds,
            "counting": pipe.counting_seconds,
        }
        data[dataset] = comp
        rows.append([dataset,
                     format_seconds(comp["htb_transform"]),
                     format_seconds(comp["reorder"]),
                     format_seconds(comp["counting"])])
    text = render_table(
        f"Table V stand-in — GBC component costs, (p,q)={query} "
        "(reorder is host wall time; counting is simulated device time)",
        ["Dataset", "HTB transform", "Reorder", "Counting"], rows)
    return ExperimentResult(name="table5", data=data, text=text)


# ----------------------------------------------------------------------
# Fig. 11: DFS vs hybrid DFS-BFS
# ----------------------------------------------------------------------
def experiment_fig11(datasets=("YT", "BC", "GH", "SO", "YL"),
                     query: BicliqueQuery = DEFAULT_QUERY,
                     scale: str = "bench",
                     spec: DeviceSpec | None = None) -> ExperimentResult:
    """Memory and runtime of pure DFS vs hybrid DFS-BFS exploration."""
    spec = spec or scaled_device()
    rows = []
    data = {}
    for dataset in datasets:
        graph = load_dataset(dataset, scale)
        hybrid = gbc_count(graph, query, spec=spec, backend="sim")
        dfs = gbc_count(graph, query, spec=spec,
                        options=GBCOptions(hybrid=False), backend="sim")
        if hybrid.count != dfs.count:
            raise AssertionError(f"hybrid changed the count on {dataset}")
        mem_ratio = (hybrid.peak_working_set_bytes
                     / max(dfs.peak_working_set_bytes, 1))
        time_ratio = dfs.device_seconds / max(hybrid.device_seconds, 1e-30)
        data[dataset] = {
            "hybrid_bytes": hybrid.peak_working_set_bytes,
            "dfs_bytes": dfs.peak_working_set_bytes,
            "memory_ratio": mem_ratio,
            "speedup": time_ratio,
            "hybrid_seconds": hybrid.device_seconds,
            "dfs_seconds": dfs.device_seconds,
        }
        rows.append([dataset,
                     f"{dfs.peak_working_set_bytes}B",
                     f"{hybrid.peak_working_set_bytes}B",
                     format_ratio(mem_ratio),
                     format_seconds(dfs.device_seconds),
                     format_seconds(hybrid.device_seconds),
                     format_ratio(time_ratio)])
    text = render_table(
        f"Fig.11 stand-in — DFS vs hybrid DFS-BFS, (p,q)={query}",
        ["Dataset", "DFS mem", "Hybrid mem", "mem x",
         "DFS time", "Hybrid time", "speedup"], rows)
    return ExperimentResult(name="fig11", data=data, text=text)
