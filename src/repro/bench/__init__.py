"""Benchmark harness: dataset stand-ins and paper experiments."""

from repro.bench.datasets import (
    PAPER_STATS,
    REGISTRY,
    SCALES,
    DatasetSpec,
    list_datasets,
    load_dataset,
)
from repro.bench.experiments import (
    DEFAULT_QUERY,
    FIG7_QUERIES,
    FIG8_TOTALS,
    ExperimentResult,
    experiment_fig1b,
    experiment_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
)
from repro.bench.figures import render_breakdown_bars, render_series
from repro.bench.runner import (
    METHODS,
    MethodRun,
    headline_seconds,
    run_matrix,
    run_method,
    speedup,
)
from repro.bench.tables import format_ratio, format_seconds, render_table

__all__ = [
    "DatasetSpec", "REGISTRY", "PAPER_STATS", "SCALES",
    "load_dataset", "list_datasets",
    "METHODS", "run_method", "run_matrix", "headline_seconds", "speedup",
    "MethodRun",
    "render_table", "render_series", "render_breakdown_bars",
    "format_seconds", "format_ratio",
    "ExperimentResult", "DEFAULT_QUERY", "FIG7_QUERIES", "FIG8_TOTALS",
    "experiment_fig1b", "experiment_table2", "experiment_fig7",
    "experiment_fig8", "experiment_fig9", "experiment_table3",
    "experiment_table4", "experiment_fig10", "experiment_table5",
    "experiment_fig11",
]
