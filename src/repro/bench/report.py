"""EXPERIMENTS.md generator: paper-vs-measured for every artifact.

Reads the text artifacts written by ``pytest benchmarks/`` from
``benchmarks/artifacts/`` and stitches them together with the paper's
reported numbers and our shape verdicts.  Run as::

    python -m repro.bench.report [artifact_dir] [output_md]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["build_experiments_md", "EXPERIMENT_NOTES", "main"]


@dataclass(frozen=True)
class ExperimentNote:
    """Provenance for one paper artifact."""

    artifact: str            # file stem under benchmarks/artifacts/
    title: str
    paper_says: str
    what_we_check: str
    divergences: str = ""


EXPERIMENT_NOTES: list[ExperimentNote] = [
    ExperimentNote(
        "fig1b", "Fig. 1(b) — BCL execution-time breakdown",
        "Searching shared 1-hop (Comp. H') and 2-hop (Comp. S) neighbours "
        "takes up to >99% of BCL's runtime, averaging ~97% over six "
        "datasets — the motivation for optimising set intersection.",
        "Instrumented BCL on the six stand-ins: intersection share >60% "
        "on every dataset and >75% on average (Python overhead inflates "
        "'Others' relative to a C++ build, so the ceiling is lower)."),
    ExperimentNote(
        "table2", "Table II — datasets",
        "Nine real KONECT graphs (294K to 327M edges) plus two synthetic "
        "graphs built by the power-law 2-hop recipe.",
        "Deterministic stand-ins at 10^2-10^4x reduction preserving layer "
        "ratios, mean-degree contrast, and skew; the table prints ours "
        "next to the paper's mean degrees.",
        "OR is regenerated with the locality-window recipe so that 2-hop "
        "closures overlap (the sharing regime BCPar exploits on the "
        "paper's dense 327M-edge original)."),
    ExperimentNote(
        "fig7", "Fig. 7 — overall performance",
        "GBC is fastest everywhere: avg 505.3x over BCL, 146.7x over "
        "BCLP, 15.7x over GBL; max 836.7x (GH) / 1217.6x (S2) over BCLP "
        "at p=q=8.",
        "GBC fastest in every (dataset, query) cell; speedup ordering "
        "BCL > BCLP > 1 and GBL > 1.5x.  Absolute factors differ: CPU "
        "baselines run in Python and the device is a cost model, so the "
        "paper's hardware constants (10,496 CUDA cores vs 16 CPU "
        "threads) are not reproduced, only the ordering and trends.",
        "Queries are the halved grid (2,6)..(5,3); the (6,2) endpoint "
        "has no paper analogue (q would fall below the paper's minimum "
        "q/(p+q) = 1/4) and its barely-filtered N2^2 explodes, so the "
        "sweep stops at (5,3).  SO is swapped for YL in this figure: "
        "SO's anchor flip makes the deep/low-k corner intractable at "
        "stand-in scale (it stays in Fig. 8 and Table IV)."),
    ExperimentNote(
        "fig8", "Fig. 8 — scalability vs (p + q)",
        "GBC wins at every size (2.4x-6298.1x); CPU runtimes rise then "
        "fall as p+q grows, GPU stays flat or falls.",
        "Same shapes on totals {4,...,12} (paper: {8,...,24}): GBC <= "
        "every baseline per size; BCL's peak lies strictly inside the "
        "sweep on at least one dataset."),
    ExperimentNote(
        "fig9", "Fig. 9 — ablation (NH / NB / NW)",
        "Disabling hybrid exploration (NH) costs 3.7x on average, HTB+"
        "Border (NB) and workload balancing (NW) about 2.2x each.",
        "All variant/GBC ratios > 0.9 with means > 1.1; NB's ratio is "
        "largest on dense stand-ins (YL), NH's on sparse ones — matching "
        "the paper's observation that hybrid exploration matters most at "
        "low degree."),
    ExperimentNote(
        "table3", "Table III — vertex reordering",
        "Versus no reorder: Gorder 2.4x, Border 3.1x average speedup; "
        "Border beats Gorder on all datasets (37% average).",
        "Border beats no-reorder on every stand-in (mean >1.2x) and wins "
        "on several outright.",
        "Our Gorder comparator is a bipartite-aware transcription "
        "(per-layer windows); the paper used the original unipartite "
        "Gorder, which reorders both layers jointly and performs worse. "
        "Against the stronger comparator Border no longer wins "
        "universally — the Border-vs-none column is the faithful part."),
    ExperimentNote(
        "table4", "Table IV — load balancing",
        "Both single strategies beat No Balance; Pre-runtime beats "
        "Runtime-only; Joint is best under heavy workloads (e.g. LF "
        "9072s -> 7753s).",
        "Same ordering on the stand-ins, evaluated by re-scheduling the "
        "measured per-root cycle costs under each strategy on the "
        "scaled device (24 resident blocks — see EXPERIMENTS notes)."),
    ExperimentNote(
        "fig10", "Fig. 10 — BCPar vs METIS partitioning",
        "BCPar's throughput consistently exceeds METIS's; METIS's "
        "inter-partition throughput is markedly inferior to intra and is "
        "its bottleneck.",
        "BCPar > METIS-like throughput for every query; BCPar has zero "
        "on-demand transfer (autonomy validated structurally); METIS's "
        "inter < intra.",
        "METIS binary is unavailable offline; the baseline is a "
        "multilevel-flavoured BFS-growing + refinement partitioner over "
        "the same auxiliary 2-hop graph the paper feeds METIS."),
    ExperimentNote(
        "table5", "Table V — component breakdown",
        "HTB transformation costs tens-to-hundreds of ms (< 1% of "
        "counting, down to 1/10000); Border costs 0.18s-62.17s and "
        "amortises across (p, q) queries.",
        "HTB transform > 0 and < 50% of the pipeline on every dataset "
        "(counting is simulated device time while transform/reorder are "
        "host wall time, so the paper's extreme ratios compress)."),
    ExperimentNote(
        "fig11", "Fig. 11 — DFS vs hybrid DFS-BFS",
        "Hybrid uses ~1.3x more memory (hundreds of MB vs 24 GB "
        "capacity) but runs ~2.2x faster on average.",
        "Peak working set ratio >= 1x and bounded; mean device-time "
        "speedup > 1.1x with no dataset regressing past 0.9x."),
    ExperimentNote(
        "ablation_shared_memory", "Extension — shared-memory buffer sweep",
        "(design-choice ablation; not in the paper)",
        "Bigger batching buffers never reduce warp utilisation; counts "
        "invariant."),
    ExperimentNote(
        "ablation_word_bits", "Extension — HTB word width sweep",
        "(design-choice ablation; not in the paper)",
        "Total HTB words are monotone non-increasing in word width; "
        "32-bit is the transaction-aligned sweet spot the paper picked."),
    ExperimentNote(
        "ablation_warp_width", "Extension — warp width sweep",
        "(design-choice ablation; not in the paper)",
        "Wider warps never improve lane occupancy on sparse data."),
    ExperimentNote(
        "ablation_intersection", "Extension — intersection strategy shoot-out",
        "(comparator study; binary search is the GBL baseline [21], "
        "hashing is the TRUST-style alternative [34])",
        "HTB uses the fewest memory transactions and comparisons of the "
        "three strategies under identical accounting — the measured form "
        "of the paper's Fig. 4 argument."),
    ExperimentNote(
        "ablation_core_pruning", "Extension — (q,p)-core pruning",
        "(future-work-style extension; cores cited as [28])",
        "Count-preserving peel removes a measurable share of edges and "
        "never hurts device time materially."),
]

HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (§VII + appendix),
regenerated by `pytest benchmarks/ --benchmark-only` on the synthetic
dataset stand-ins (see DESIGN.md §4) and the simulated SIMT device
(`repro.gpu`).  Conventions:

* **counts are exact** — every method is cross-validated against a
  brute-force counter; experiments additionally assert that all methods
  agree cell by cell;
* **times**: CPU methods report wall seconds of this Python
  implementation (BCLP: modelled 16-thread makespan); device methods
  report simulated seconds from the cycle cost model; comparisons are
  therefore about *shape* (ordering, ratios, trends), not absolute
  magnitudes — the reproduction brief's contract;
* **scale mapping**: stand-ins are ~10^2-10^4x smaller than the paper's
  graphs, so the paper's default (p,q) = (8,8) maps to (4,4), the
  asymmetry grid (4,12)..(12,4) to (2,6)..(5,3), and the Fig. 8 sweep
  {8..24} to {4..12};
* **device scaling**: experiments run the RTX-3090 cost constants with
  24 resident blocks instead of 164 so that the roots-per-block ratio
  matches the paper's regime (with 164 blocks and a few hundred roots,
  every balancing strategy trivially ties).

Regenerate with:

```bash
pytest benchmarks/ --benchmark-only          # writes benchmarks/artifacts/
python -m repro.bench.report                 # rebuilds this file
```
"""


def build_experiments_md(artifact_dir: str | Path) -> str:
    """Assemble EXPERIMENTS.md from saved artifacts and the notes table."""
    artifact_dir = Path(artifact_dir)
    parts = [HEADER]
    for note in EXPERIMENT_NOTES:
        parts.append(f"\n## {note.title}\n")
        parts.append(f"**Paper says:** {note.paper_says}\n")
        parts.append(f"**What we check:** {note.what_we_check}\n")
        if note.divergences:
            parts.append(f"**Divergences:** {note.divergences}\n")
        path = artifact_dir / f"{note.artifact}.txt"
        if path.exists():
            parts.append("**Measured:**\n")
            parts.append("```")
            parts.append(path.read_text(encoding="utf-8").rstrip())
            parts.append("```")
        else:
            parts.append(f"*(artifact {note.artifact}.txt not generated "
                         "yet — run the benchmarks)*")
    return "\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI entry: rebuild EXPERIMENTS.md from artifacts."""
    argv = list(sys.argv[1:] if argv is None else argv)
    artifact_dir = Path(argv[0]) if argv else \
        Path(__file__).resolve().parents[3] / "benchmarks" / "artifacts"
    out = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    out.write_text(build_experiments_md(artifact_dir), encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
