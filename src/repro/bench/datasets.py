"""Dataset stand-ins for the paper's Table II corpus.

The paper evaluates on nine KONECT datasets plus two synthetics.  Those
files are not available offline, so each dataset is replaced by a
deterministic synthetic stand-in that preserves what the experiments
exercise: the |U|/|V| ratio, the mean-degree contrast between layers, and
the degree skew (power-law head).  Three scales are provided:

* ``tiny``  — a few hundred edges; used by the test suite (brute-force
  verifiable).
* ``bench`` — a few thousand edges; used by the benchmark harness so the
  full paper matrix runs in minutes.
* ``full``  — tens of thousands of edges; closest to the DESIGN.md table,
  for users who want longer runs.

Scaling note: graphs are ~10^2-10^4x smaller than the paper's, so the
default biclique scale shrinks accordingly — the harness default is
(p, q) = (4, 4) (paper default (8, 8)), and the scalability sweep uses
p + q in {4, 6, 8, 10, 12} (paper: {8, ..., 24}).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import paper_synthetic, power_law_bipartite

__all__ = ["DatasetSpec", "REGISTRY", "load_dataset", "list_datasets",
           "SCALES", "PAPER_STATS"]

SCALES = ("tiny", "bench", "full")

# the paper's Table II: |U|, |V|, |E|, mean dU, mean dV
PAPER_STATS: dict[str, tuple[int, int, int, float, float]] = {
    "YT": (94_238, 30_087, 293_360, 3.11, 9.75),
    "BC": (77_802, 185_955, 433_652, 5.57, 2.33),
    "GH": (56_519, 120_867, 440_237, 7.79, 3.64),
    "SO": (545_196, 96_680, 1_301_942, 2.39, 13.47),
    "YL": (31_668, 38_048, 1_561_406, 49.31, 41.04),
    "ID": (303_617, 896_302, 3_782_463, 12.46, 4.22),
    "LF": (359_349, 160_168, 17_559_162, 48.86, 109.63),
    "FR": (16_874, 3_416_271, 23_443_737, 1389.34, 6.86),
    "OR": (2_783_196, 8_730_857, 327_037_487, 117.50, 37.45),
    "S1": (6_720, 5_300, 207_146, 30.83, 39.08),
    "S2": (12_720, 11_100, 220_651, 17.35, 19.88),
}


@dataclass(frozen=True)
class DatasetSpec:
    """One stand-in dataset: its provenance and per-scale builder."""

    key: str
    description: str
    builders: dict[str, Callable[[], BipartiteGraph]]

    def build(self, scale: str) -> BipartiteGraph:
        if scale not in self.builders:
            raise KeyError(f"dataset {self.key} has no scale {scale!r}; "
                           f"available: {sorted(self.builders)}")
        graph = self.builders[scale]()
        return BipartiteGraph(graph.num_u, graph.num_v, graph.u_offsets,
                              graph.u_neighbors, graph.v_offsets,
                              graph.v_neighbors,
                              name=f"{self.key}-{scale}")


def _pl(nu: int, nv: int, ne: int, gamma: float, seed: int):
    return lambda: power_law_bipartite(nu, nv, ne, gamma=gamma, seed=seed)


def _syn(nu: int, nv: int, mean: float, loc: int, seed: int):
    return lambda: paper_synthetic(nu, nv, mean_degree=mean,
                                   locality=loc, seed=seed)


REGISTRY: dict[str, DatasetSpec] = {
    "YT": DatasetSpec(
        "YT", "Youtube: sparse U, moderate V skew (dU~3.1, dV~9.8)",
        {"tiny": _pl(90, 30, 260, 2.0, 11),
         "bench": _pl(460, 155, 1500, 2.0, 11),
         "full": _pl(3100, 1000, 10000, 2.0, 11)}),
    "BC": DatasetSpec(
        "BC", "Bookcrossing: wide V layer (dU~5.6, dV~2.3)",
        {"tiny": _pl(70, 170, 380, 2.1, 12),
         "bench": _pl(390, 930, 2150, 2.1, 12),
         "full": _pl(2600, 6200, 14500, 2.1, 12)}),
    "GH": DatasetSpec(
        "GH", "Github: mid-degree U (dU~7.8)",
        {"tiny": _pl(56, 120, 420, 2.0, 13),
         "bench": _pl(380, 810, 2960, 2.0, 13),
         "full": _pl(1900, 4000, 14800, 2.0, 13)}),
    "SO": DatasetSpec(
        "SO", "StackOverflow: very sparse U, skewed V (dU~2.4)",
        {"tiny": _pl(160, 28, 380, 2.2, 14),
         "bench": _pl(820, 150, 1950, 2.2, 14),
         "full": _pl(5500, 1000, 13100, 2.2, 14)}),
    "YL": DatasetSpec(
        "YL", "Yelp: dense both layers (dU~49 scaled down)",
        {"tiny": _pl(36, 44, 330, 1.7, 15),
         "bench": _pl(170, 205, 1850, 1.7, 15),
         "full": _pl(1000, 1200, 14000, 1.7, 15)}),
    "ID": DatasetSpec(
        "ID", "IMDB: large sparse V layer (dU~12.5 scaled)",
        {"tiny": _pl(68, 200, 420, 2.0, 16),
         "bench": _pl(620, 1830, 3880, 2.0, 16),
         "full": _pl(3000, 9000, 19000, 2.0, 16)}),
    "LF": DatasetSpec(
        "LF", "Lastfm: very dense (dU~49, dV~110 scaled down)",
        {"tiny": _pl(36, 16, 300, 1.7, 17),
         "bench": _pl(210, 90, 1750, 1.7, 17),
         "full": _pl(1200, 500, 12000, 1.7, 17)}),
    "FR": DatasetSpec(
        "FR", "Edit-fr: extreme U-degree skew (dU~1389 scaled to ~28)",
        {"tiny": _pl(12, 220, 330, 1.5, 18),
         "bench": _pl(90, 1800, 2560, 1.5, 18),
         "full": _pl(500, 10000, 14000, 1.5, 18)}),
    "OR": DatasetSpec(
        "OR", "Orkut: the out-of-memory scalability dataset.  Generated "
              "with the locality-window recipe so 2-hop closures overlap "
              "within neighbourhoods (the regime where the paper's 327M-"
              "edge original makes closure sharing profitable) while any "
              "balanced cut must slice through the overlapping chains",
        {"tiny": _syn(200, 400, 6.0, 40, 19),
         "bench": _syn(1200, 2400, 7.0, 64, 19),
         "full": _syn(5000, 10000, 9.0, 100, 19)}),
    "S1": DatasetSpec(
        "S1", "Synthetic 1 (paper recipe): dense 2-hop neighbourhoods",
        {"tiny": _syn(52, 42, 12.0, 24, 20),
         "bench": _syn(260, 220, 16.0, 48, 20),
         "full": _syn(1340, 1060, 30.0, 96, 20)}),
    "S2": DatasetSpec(
        "S2", "Synthetic 2 (paper recipe): larger, slightly sparser",
        {"tiny": _syn(100, 88, 7.0, 32, 21),
         "bench": _syn(500, 440, 9.0, 64, 21),
         "full": _syn(2540, 2220, 17.0, 128, 21)}),
}


def load_dataset(key: str, scale: str = "bench") -> BipartiteGraph:
    """Build the stand-in for paper dataset ``key`` at the given scale."""
    if key not in REGISTRY:
        raise KeyError(f"unknown dataset {key!r}; "
                       f"available: {sorted(REGISTRY)}")
    return REGISTRY[key].build(scale)


def list_datasets() -> list[str]:
    """All dataset keys, in the paper's Table II order."""
    return list(REGISTRY)
