"""Plain-text table rendering for experiment outputs.

Every experiment prints its paper artifact as a monospace table so the
benchmark logs read like the paper's tables; renderers are intentionally
dependency-free.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_seconds", "format_ratio"]


def format_seconds(value: float) -> str:
    """Human-scaled seconds (the paper mixes ms-scale and hour-scale)."""
    if value == float("inf"):
        return "INF"
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    if value >= 1e-6:
        return f"{value * 1e6:.2f}us"
    return f"{value * 1e9:.1f}ns"


def format_ratio(value: float) -> str:
    """Render a speedup ratio as e.g. '2.00x'."""
    if value == float("inf"):
        return "inf"
    return f"{value:.2f}x"


def render_table(title: str,
                 header: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 min_width: int = 8) -> str:
    """Render an aligned text table with a title rule."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(min_width, len(h)) for h in header]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in cells:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)
