"""Mutate-while-serving: incremental (p, q) maintenance with versioned
epoch-pinned snapshots.

The ROADMAP's top open item — and the gap the paper's streaming lineage
([37] FLEET, [40] sGrapp) points at — is that production graphs are
never frozen, while every prepared structure in this repo (priority
orders, two-hop indexes, HTBs, native packs, result caches) keys on an
immutable graph fingerprint.  One edge edit used to mean: rebuild the
graph, rebuild the session, recount everything.

This module closes that gap with two cooperating objects:

* :class:`DynamicGraphSession` — a mutable bipartite graph that accepts
  an edge-mutation stream (:meth:`insert` / :meth:`delete` /
  :meth:`toggle` / :meth:`apply_batch`) and maintains **exact** counts
  for a set of *tracked* (p, q) shapes through the generalised delta
  rule of :mod:`repro.core.delta`: the bicliques through edge (u, v)
  are the (p-1, q-1)-bicliques of the subgraph induced on
  N(v)\\{u} x N(u)\\{v}, so insertion adds that quantity and deletion
  subtracts it.  When an edit lands on a hub pair whose delta would
  cost more than a scoped rebuild — priced deterministically through
  the existing :class:`~repro.plan.Planner` cost hooks at
  :meth:`track` time — the shape is marked *dirty* instead and lazily
  recounted from a pinned snapshot on the next read (the cost
  cutover).  Either way every read is bit-identical to a fresh
  recount.
* :class:`SnapshotSession` — an immutable epoch-pinned read view.
  Adjacency rows are copy-on-write (an edit replaces the two affected
  row objects, never mutates them), so pinning is an O(num_u + num_v)
  shallow copy of row references and a snapshot can lazily materialise
  its CSR pack and :class:`~repro.query.GraphSession` *after* later
  writes have advanced the epoch, without locks and without torn
  reads.  Tracked clean shapes are answered straight from the pinned
  count table (method-invariant, zero work); everything else delegates
  to the materialised inner session.

The serving layer (:mod:`repro.service`) registers
``DynamicGraphSession`` entries in its :class:`SessionPool`; a
scheduler batch calls ``pool.session(name)`` once, so the whole batch
executes against one consistent epoch while writers race ahead.

>>> from repro import BicliqueQuery
>>> from repro.graph.generators import random_bipartite
>>> g = random_bipartite(num_u=12, num_v=10, num_edges=40, seed=3)
>>> dyn = DynamicGraphSession.from_graph(g, track=[(2, 2), (2, 3)])
>>> base = dyn.count(2, 2)
>>> created = dyn.toggle(0, 5)          # insert or delete, whichever applies
>>> dyn.count(2, 2) == dyn.recount(2, 2)
True
>>> view = dyn.pinned()                 # epoch-pinned, immutable
>>> _ = dyn.toggle(1, 5)                # writer advances past the pin
>>> view.epoch < dyn.epoch
True
>>> view.count(BicliqueQuery(2, 2)).count == dyn.count(2, 2)  # doctest: +SKIP
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable

from repro.core.counts import BicliqueQuery, CountResult
from repro.core.delta import bicliques_containing_edge, delta_work_estimate
from repro.errors import GraphValidationError, QueryError
from repro.graph.bipartite import (BipartiteGraph, LAYER_U, LAYER_V,
                                   _csr_from_adjacency, _transpose_csr)
from repro.query import GraphSession

__all__ = ["EdgeMutation", "DynamicGraphSession", "SnapshotSession",
           "DynamicStats"]

#: deterministic work-unit -> seconds scale for the cutover price of one
#: delta evaluation (see :func:`repro.core.delta.delta_work_estimate`).
#: The *ratio* against the planner's predicted rebuild seconds is what
#: matters; this constant just puts both sides in the same unit.
SECONDS_PER_WORK_UNIT = 2e-7


@dataclass(frozen=True)
class EdgeMutation:
    """One edit of the mutation stream: ``op`` in {insert, delete,
    toggle} applied to edge (u, v)."""

    op: str
    u: int
    v: int

    def __post_init__(self) -> None:
        if self.op not in ("insert", "delete", "toggle"):
            raise GraphValidationError(
                f"unknown mutation op {self.op!r}; "
                f"expected 'insert', 'delete' or 'toggle'")

    @classmethod
    def insert(cls, u: int, v: int) -> "EdgeMutation":
        return cls("insert", u, v)

    @classmethod
    def delete(cls, u: int, v: int) -> "EdgeMutation":
        return cls("delete", u, v)

    @classmethod
    def toggle(cls, u: int, v: int) -> "EdgeMutation":
        return cls("toggle", u, v)

    def as_dict(self) -> dict:
        return {"op": self.op, "u": self.u, "v": self.v}

    @classmethod
    def from_dict(cls, data: dict) -> "EdgeMutation":
        return cls(str(data["op"]), int(data["u"]), int(data["v"]))


@dataclass
class DynamicStats:
    """Observability counters of one :class:`DynamicGraphSession`."""

    inserts: int = 0
    deletes: int = 0
    #: per-(edit, tracked shape) delta evaluations applied
    delta_updates: int = 0
    #: per-(edit, tracked shape) deltas skipped by the cost cutover
    cutover_deferrals: int = 0
    #: full recounts of a tracked shape (dirty repair or first track)
    recounts: int = 0
    #: epoch snapshots materialised into a GraphSession
    snapshots: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class SnapshotSession:
    """An immutable read view of a :class:`DynamicGraphSession` pinned
    at one epoch.

    Carries its own reference-copy of the copy-on-write adjacency rows
    and of the clean tracked-count table, so it stays exact no matter
    how far the writer advances afterwards.  The CSR
    :class:`~repro.graph.bipartite.BipartiteGraph` and the inner
    :class:`~repro.query.GraphSession` are materialised lazily, only
    when a read actually needs prepared state — a read of a tracked
    shape is served straight from the pinned count table.

    Every :class:`~repro.core.counts.CountResult` it returns carries
    ``extras["epoch"]``, so callers (and the mutate-while-serving
    stress tests) can verify which version answered.
    """

    def __init__(self, *, name: str, epoch: int, num_u: int, num_v: int,
                 num_edges: int, rows_u: list, rows_v: list,
                 counts: dict, spec=None, max_cached_results: int = 256,
                 stats: DynamicStats | None = None) -> None:
        self.name = name
        self.epoch = int(epoch)
        self.num_u = int(num_u)
        self.num_v = int(num_v)
        self.num_edges = int(num_edges)
        self.spec = spec
        self._rows_u = rows_u          # row objects are never mutated
        self._rows_v = rows_v
        self._counts = dict(counts)    # tracked clean shapes at this epoch
        self._max_cached_results = max_cached_results
        self._origin_stats = stats
        self._lock = threading.RLock()
        self._graph: BipartiteGraph | None = None
        self._session: GraphSession | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SnapshotSession({self.name!r}, epoch={self.epoch}, "
                f"edges={self.num_edges}, tracked={sorted(self._counts)})")

    @property
    def counts(self) -> dict[tuple[int, int], int]:
        """The pinned tracked-shape count table (copy)."""
        return dict(self._counts)

    @property
    def graph(self) -> BipartiteGraph:
        """The CSR graph at this epoch, materialised on first use."""
        with self._lock:
            if self._graph is None:
                u_off, u_nbr = _csr_from_adjacency(self._rows_u, self.num_v)
                v_off, v_nbr = _transpose_csr(u_off, u_nbr, self.num_v)
                self._graph = BipartiteGraph(
                    num_u=self.num_u, num_v=self.num_v,
                    u_offsets=u_off, u_neighbors=u_nbr,
                    v_offsets=v_off, v_neighbors=v_nbr,
                    name=f"{self.name}@{self.epoch}")
            return self._graph

    @property
    def session(self) -> GraphSession:
        """A prepared :class:`~repro.query.GraphSession` over
        :attr:`graph`, built on first use and stamped with this epoch."""
        with self._lock:
            if self._session is None:
                self._session = GraphSession(
                    self.graph, spec=self.spec,
                    max_cached_results=self._max_cached_results)
                self._session.epoch = self.epoch
                if self._origin_stats is not None:
                    self._origin_stats.snapshots += 1
            return self._session

    @property
    def fingerprint(self) -> str:
        return self.session.fingerprint

    def as_graph_session(self) -> GraphSession:
        """The materialised inner session (for :func:`repro.batch_count`
        and any other ``GraphSession`` consumer)."""
        return self.session

    def count(self, query: BicliqueQuery | tuple, method: str = "GBC", *,
              backend=None, workers: int | None = None,
              layer: str | None = None, options=None, threads: int = 16,
              use_cache: bool = True, accuracy: str = "exact",
              deadline: float | None = None) -> CountResult:
        """Count one query at this pinned epoch.

        Mirrors :meth:`repro.query.GraphSession.count` (the scheduler
        calls both interchangeably).  A tracked shape with no layer or
        options override is answered from the pinned count table as a
        synthesised zero-work result with ``algorithm="delta"`` —
        counts are method-invariant, so the requested method only
        matters for *how* an untracked shape is recomputed.  A tracked
        shape is exact at zero cost, so it satisfies every accuracy
        tier and any deadline; untracked shapes forward
        ``accuracy``/``deadline`` to the inner session.
        """
        if not isinstance(query, BicliqueQuery):
            query = BicliqueQuery(int(query[0]), int(query[1]))
        pinned = self._counts.get((query.p, query.q))
        if pinned is not None and layer is None and options is None:
            if isinstance(backend, str) or backend is None:
                backend_name = backend or "fast"
            else:
                backend_name = getattr(backend, "name", "fast")
            return CountResult(
                algorithm="delta", query=query, count=pinned,
                wall_seconds=0.0, anchored_layer=LAYER_U,
                backend=backend_name, backend_instrumented=False,
                extras={"epoch": float(self.epoch)})
        result = self.session.count(query, method, backend=backend,
                                    workers=workers, layer=layer,
                                    options=options, threads=threads,
                                    use_cache=use_cache, accuracy=accuracy,
                                    deadline=deadline)
        # cached CountResult objects are shared across hits; setdefault
        # keeps the stamp idempotent and thread-safe
        result.extras.setdefault("epoch", float(self.epoch))
        return result

    def plan(self, query: BicliqueQuery, **kwargs):
        return self.session.plan(query, **kwargs)


class DynamicGraphSession:
    """A mutable bipartite graph with exact tracked (p, q) counts and
    epoch-versioned snapshots.

    Adjacency lives as two lists of **copy-on-write** sorted rows
    (``rows_u[u]`` = ascending V-neighbours of u, ``rows_v[v]`` =
    ascending U-neighbours of v): an edit builds two replacement row
    objects and swaps the references, so any
    :class:`SnapshotSession` pinned earlier keeps the old rows intact.
    Each structural edit advances :attr:`epoch` by one.

    Shapes registered via :meth:`track` are maintained exactly:

    * *delta path* — :func:`repro.core.delta.bicliques_containing_edge`
      evaluated per edit (the generalised wedge-closure rule), added on
      insert / subtracted on delete;
    * *cutover* — when :func:`~repro.core.delta.delta_work_estimate`
      times :data:`SECONDS_PER_WORK_UNIT` exceeds ``cutover_ratio`` x
      the planner-predicted rebuild seconds (priced once per shape at
      :meth:`track` time through the session's
      :meth:`~repro.query.GraphSession.plan` cost hooks), the shape is
      marked dirty and the delta skipped; the next :meth:`count` of a
      dirty shape recounts it from a pinned snapshot and re-cleans it.

    Both paths are exact, so reads are bit-identical to
    :meth:`recount` at every prefix of any mutation stream — the
    property/golden suites in ``tests/property`` and ``tests/golden``
    pin exactly that.

    All methods are thread-safe: one writer lock serialises mutation
    and count-table access; readers only take it long enough to pin a
    snapshot.
    """

    def __init__(self, num_u: int, num_v: int, *, name: str = "dynamic",
                 spec=None, backend="fast", method: str = "GBC",
                 cutover_ratio: float = 1.0,
                 seconds_per_work_unit: float = SECONDS_PER_WORK_UNIT,
                 max_cached_results: int = 256) -> None:
        if num_u < 1 or num_v < 1:
            raise GraphValidationError(
                f"layer sizes must be >= 1, got ({num_u}, {num_v})")
        self.name = name
        self.num_u = int(num_u)
        self.num_v = int(num_v)
        self.spec = spec
        self.backend = backend
        self.method = method
        self.cutover_ratio = float(cutover_ratio)
        self.seconds_per_work_unit = float(seconds_per_work_unit)
        self.max_cached_results = int(max_cached_results)
        self.stats = DynamicStats()
        self._lock = threading.RLock()
        self._rows_u: list[list[int]] = [[] for _ in range(self.num_u)]
        self._rows_v: list[list[int]] = [[] for _ in range(self.num_v)]
        self._num_edges = 0
        self._epoch = 0
        self._counts: dict[tuple[int, int], int] = {}
        self._dirty: set[tuple[int, int]] = set()
        #: planner-predicted full-recount seconds per tracked shape
        #: (None = never cut over, always apply the delta)
        self._rebuild_seconds: dict[tuple[int, int], float | None] = {}
        self._pinned: SnapshotSession | None = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_graph(cls, graph: BipartiteGraph,
                   track: Iterable[tuple[int, int]] = (),
                   **kwargs) -> "DynamicGraphSession":
        """Wrap a static graph; optionally :meth:`track` shapes."""
        kwargs.setdefault("name", graph.name)
        dyn = cls(graph.num_u, graph.num_v, **kwargs)
        dyn._rows_u = [graph.neighbors(LAYER_U, u).tolist()
                       for u in range(graph.num_u)]
        dyn._rows_v = [graph.neighbors(LAYER_V, v).tolist()
                       for v in range(graph.num_v)]
        dyn._num_edges = graph.num_edges
        for p, q in track:
            dyn.track(p, q)
        return dyn

    @classmethod
    def empty(cls, num_u: int, num_v: int, **kwargs) -> "DynamicGraphSession":
        return cls(num_u, num_v, **kwargs)

    # -- introspection --------------------------------------------------
    @property
    def epoch(self) -> int:
        """Version counter: +1 per structural edit."""
        with self._lock:
            return self._epoch

    @property
    def num_edges(self) -> int:
        with self._lock:
            return self._num_edges

    @property
    def tracked_shapes(self) -> list[tuple[int, int]]:
        with self._lock:
            return sorted(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (f"DynamicGraphSession({self.name!r}, "
                    f"{self.num_u}x{self.num_v}, edges={self._num_edges}, "
                    f"epoch={self._epoch}, tracked={sorted(self._counts)})")

    def has_edge(self, u: int, v: int) -> bool:
        with self._lock:
            row = self._rows_u[u]
            i = bisect_left(row, v)
            return i < len(row) and row[i] == v

    def resident_bytes(self) -> int:
        """Rough memory footprint for pool budget accounting."""
        with self._lock:
            return (56 * (self.num_u + self.num_v)
                    + 2 * 28 * self._num_edges)

    # -- tracking -------------------------------------------------------
    def track(self, p: int, q: int) -> int:
        """Maintain shape (p, q) incrementally from now on.

        Performs one exact baseline count and prices the full-rebuild
        alternative through the planner's cost hooks (the deterministic
        denominator of the delta-vs-rebuild cutover).  Returns the
        current count.  Tracking an already-tracked shape is a no-op
        read.
        """
        query = BicliqueQuery(p, q)
        shape = (query.p, query.q)
        with self._lock:
            if shape in self._counts and shape not in self._dirty:
                return self._counts[shape]
            if shape not in self._counts:
                self._counts[shape] = 0
                self._dirty.add(shape)
        value = self.count(p, q)
        with self._lock:
            if shape not in self._rebuild_seconds:
                self._rebuild_seconds[shape] = None
                price_needed = self._num_edges > 0
            else:
                price_needed = False
        if price_needed:
            plan = self.pinned().session.plan(query, backend=self.backend)
            with self._lock:
                self._rebuild_seconds[shape] = max(
                    float(plan.predicted_seconds), 1e-9)
        return value

    def untrack(self, p: int, q: int) -> None:
        shape = (int(p), int(q))
        with self._lock:
            self._counts.pop(shape, None)
            self._dirty.discard(shape)
            self._rebuild_seconds.pop(shape, None)

    # -- mutation -------------------------------------------------------
    def insert(self, u: int, v: int) -> int:
        """Insert edge (u, v); returns the new epoch."""
        return self._edit(u, v, True)

    def delete(self, u: int, v: int) -> int:
        """Delete edge (u, v); returns the new epoch."""
        return self._edit(u, v, False)

    def toggle(self, u: int, v: int) -> int:
        """Insert (u, v) if absent, delete it if present."""
        with self._lock:
            return self._edit(u, v, not self.has_edge(u, v))

    def apply(self, mutation: EdgeMutation) -> int:
        """Apply one :class:`EdgeMutation`; returns the new epoch."""
        if mutation.op == "insert":
            return self.insert(mutation.u, mutation.v)
        if mutation.op == "delete":
            return self.delete(mutation.u, mutation.v)
        return self.toggle(mutation.u, mutation.v)

    def apply_batch(self, mutations: Iterable[EdgeMutation]) -> int:
        """Apply a mutation stream in order; returns the final epoch.

        Edits are applied one by one under the writer lock; a
        validation error (out-of-range vertex, duplicate insert,
        missing delete) aborts the batch at the offending edit, with
        every preceding edit already applied and visible.
        """
        with self._lock:
            for m in mutations:
                self.apply(m)
            return self._epoch

    def _edit(self, u: int, v: int, inserting: bool) -> int:
        u, v = int(u), int(v)
        if not (0 <= u < self.num_u and 0 <= v < self.num_v):
            raise GraphValidationError(f"edge ({u},{v}) out of range for "
                                       f"{self.num_u}x{self.num_v}")
        with self._lock:
            row_u = self._rows_u[u]
            i = bisect_left(row_u, v)
            present = i < len(row_u) and row_u[i] == v
            if inserting and present:
                raise GraphValidationError(f"edge ({u},{v}) already present")
            if not inserting and not present:
                raise GraphValidationError(f"edge ({u},{v}) not present")

            # maintain tracked shapes before touching the structure: the
            # delta rule is invariant to whether (u, v) is in place, and
            # pre-update degrees price the edit identically both ways
            sign = 1 if inserting else -1
            work = delta_work_estimate(self._rows_u, self._rows_v, u, v)
            delta_price = work * self.seconds_per_work_unit
            for shape in sorted(self._counts):
                if shape in self._dirty:
                    continue
                budget = self._rebuild_seconds.get(shape)
                if (budget is not None
                        and delta_price > self.cutover_ratio * budget):
                    self._dirty.add(shape)
                    self.stats.cutover_deferrals += 1
                    continue
                delta = bicliques_containing_edge(
                    self._rows_u, self._rows_v, u, v, shape[0], shape[1])
                self._counts[shape] += sign * delta
                self.stats.delta_updates += 1

            # copy-on-write structural update: replace, never mutate,
            # the two affected rows — pinned snapshots keep the originals
            if inserting:
                self._rows_u[u] = row_u[:i] + [v] + row_u[i:]
                row_v = self._rows_v[v]
                j = bisect_left(row_v, u)
                self._rows_v[v] = row_v[:j] + [u] + row_v[j:]
                self._num_edges += 1
                self.stats.inserts += 1
            else:
                self._rows_u[u] = row_u[:i] + row_u[i + 1:]
                row_v = self._rows_v[v]
                j = bisect_left(row_v, u)
                self._rows_v[v] = row_v[:j] + row_v[j + 1:]
                self._num_edges -= 1
                self.stats.deletes += 1
            self._epoch += 1
            self._pinned = None
            return self._epoch

    # -- reading --------------------------------------------------------
    def count(self, p: int | BicliqueQuery, q: int | None = None, *,
              method: str | None = None, backend=None) -> int:
        """The exact (p, q)-biclique count at the current epoch.

        A tracked clean shape is the maintained integer (O(1)); a dirty
        or untracked shape is recounted against an epoch-pinned
        snapshot (and, if tracked, re-cleaned when no writer advanced
        the epoch meanwhile).
        """
        if isinstance(p, BicliqueQuery):
            query = p
        elif q is None:
            raise QueryError("count() needs both p and q")
        else:
            query = BicliqueQuery(int(p), int(q))
        shape = (query.p, query.q)
        with self._lock:
            if shape in self._counts and shape not in self._dirty:
                return self._counts[shape]
            view = self._pin_locked()
        result = view.session.count(query, method or self.method,
                                    backend=backend or self.backend)
        value = int(result.count)
        with self._lock:
            if shape in self._counts and view.epoch == self._epoch:
                self._counts[shape] = value
                self._dirty.discard(shape)
                self.stats.recounts += 1
                # the cached pin predates the re-clean; rebuild it so
                # the next snapshot's count table includes this shape
                self._pinned = None
        return value

    def pinned(self) -> SnapshotSession:
        """An immutable :class:`SnapshotSession` at the current epoch.

        Cached per epoch: consecutive pins between writes share one
        snapshot (and therefore one materialised inner session).
        """
        with self._lock:
            return self._pin_locked()

    def _pin_locked(self) -> SnapshotSession:
        if self._pinned is None or self._pinned.epoch != self._epoch:
            clean = {s: c for s, c in self._counts.items()
                     if s not in self._dirty}
            self._pinned = SnapshotSession(
                name=self.name, epoch=self._epoch,
                num_u=self.num_u, num_v=self.num_v,
                num_edges=self._num_edges,
                rows_u=list(self._rows_u), rows_v=list(self._rows_v),
                counts=clean, spec=self.spec,
                max_cached_results=self.max_cached_results,
                stats=self.stats)
        return self._pinned

    def snapshot(self) -> BipartiteGraph:
        """The current adjacency as an immutable CSR graph."""
        return self.pinned().graph

    def as_graph_session(self) -> GraphSession:
        """A prepared session at the current epoch (duck-typing hook
        for :func:`repro.batch_count`)."""
        return self.pinned().session

    def recount(self, p: int, q: int, method: str | None = None,
                backend=None) -> int:
        """Independent from-scratch oracle: count (p, q) on a freshly
        materialised graph with no shared caches."""
        fresh = GraphSession(self.snapshot(), spec=self.spec)
        return int(fresh.count(BicliqueQuery(p, q), method or self.method,
                               backend=backend or self.backend,
                               use_cache=False).count)

    def drop_caches(self) -> bool:
        """Release the cached snapshot/prepared state (pool eviction).

        Counts, tracking, and the epoch survive — the next read pins a
        fresh snapshot and rebuilds prepared state on demand.  Returns
        True when a snapshot was actually resident.
        """
        with self._lock:
            had = self._pinned is not None
            self._pinned = None
            return had
