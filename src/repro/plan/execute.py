"""Plan execution: the ONE place a method name becomes a counter call.

Every dispatcher in the repo — :func:`repro.bench.runner.run_method`,
the CLI, :meth:`repro.query.GraphSession.count` (hence ``batch_count``),
and the serving :class:`~repro.service.scheduler.Scheduler` — resolves
to :func:`execute_plan`.  There is deliberately no other site that maps
``"GBC"`` to :func:`repro.core.gbc.gbc_count`: registering a
:class:`~repro.plan.registry.MethodSpec` is sufficient for a new
counter to be reachable from every layer.
"""

from __future__ import annotations

import time

from repro.engine.base import KernelBackend, resolve_backend
from repro.errors import PlanError, QueryError
from repro.graph.stats import graph_fingerprint
from repro.obs import trace as _trace
from repro.plan.ir import CountPlan
from repro.plan.planner import Planner, prepared_keys
from repro.plan.registry import AUTO, get_method

__all__ = ["execute_plan", "explicit_plan", "plan_query", "warm_session"]

#: plan_query's (samples, seed, threads) defaults — requests matching
#: them are served from a session's per-shape plan cache when one is
#: supplied, which keys plans by shape only
_DEFAULT_PROBE = (8, 0, 16)


def explicit_plan(graph, query, method: str, *,
                  backend=None, workers: int | None = None,
                  layer: str | None = None,
                  samples: int | None = None,
                  seed: int | None = None) -> CountPlan:
    """A plan for an explicitly named method — no probe, no ranking.

    ``backend=None`` keeps the historical default of every entry point
    (the instrumented simulated engine); ``workers=`` implies the
    parallel engine exactly as :func:`repro.engine.base.resolve_backend`
    does.  ``samples``/``seed`` pin the approx tier's estimator budget
    and stream on the plan (exact methods ignore them).  Raises
    :class:`~repro.errors.UnknownMethodError` for names not in the
    registry.
    """
    mspec = get_method(method)
    if isinstance(backend, KernelBackend):
        backend_name = backend.name
    elif backend is None:
        backend_name = None
    else:
        backend_name = str(backend)
    # mirror resolve_backend: workers= upgrades the serial engines to
    # "par", so the plan records the engine that will actually run
    if workers is not None and backend_name in (None, "fast", "par"):
        backend_name = "par"
    elif backend_name is None:
        backend_name = "sim"
    return CountPlan(
        method=method, p=query.p, q=query.q,
        backend=backend_name, workers=workers, layer=layer,
        prepared=prepared_keys(mspec, graph, query, layer,
                               backend=backend_name),
        source="explicit",
        reason=f"explicitly requested {method}",
        samples=None if samples is None else int(samples),
        seed=None if seed is None else int(seed),
    )


def plan_query(graph, query, method: str = "GBC", *,
               backend=None, workers: int | None = None,
               layer: str | None = None, session=None, spec=None,
               samples: int = 8, seed: int = 0,
               threads: int = 16,
               accuracy: str = "exact",
               deadline: float | None = None) -> CountPlan:
    """Turn a (possibly ``"auto"``) method request into a
    :class:`~repro.plan.ir.CountPlan`.

    Explicit names plan trivially; ``method="auto"`` runs the
    cost-based :class:`~repro.plan.planner.Planner`.  With a
    ``session`` and default probe settings the decision comes from
    :meth:`repro.query.GraphSession.plan` — the session's per-shape
    plan cache — so repeated auto calls over one graph probe each
    (p, q) shape exactly once; custom probe settings fall back to a
    fresh planner that still probes through the session's warm
    prepared state.  ``accuracy``/``deadline`` select the service tier
    for planned (``"auto"``) requests exactly as
    :meth:`~repro.plan.planner.Planner.rank` documents; ``samples``
    here sizes the cost *probe* — the estimator's own budget lives on
    the returned plan.
    """
    if method == AUTO or accuracy != "exact":
        if method != AUTO and method != "approx":
            raise QueryError(
                f"accuracy={accuracy!r} plans the method itself; pass "
                f"method='auto' (got explicit method {method!r})")
        if session is not None \
                and (samples, seed, threads) == _DEFAULT_PROBE:
            return session.plan(query, backend=backend, workers=workers,
                                layer=layer, accuracy=accuracy,
                                deadline=deadline)
        planner = Planner(graph, spec=spec, session=session,
                          samples=samples, seed=seed, threads=threads)
        return planner.plan(query, backend=backend, workers=workers,
                            layer=layer, accuracy=accuracy,
                            deadline=deadline)
    return explicit_plan(graph, query, method, backend=backend,
                         workers=workers, layer=layer)


def warm_session(session, plan: CountPlan) -> None:
    """Build exactly the prepared state ``plan`` requires on ``session``.

    Each ``kind:layer[:k]`` key maps to one lazy builder of
    :class:`repro.query.GraphSession`; builders are memoised, so
    warming is idempotent and a batch that shares one session pays each
    structure at most once regardless of how many plans require it.
    """
    for key in plan.prepared:
        parts = key.split(":")
        kind, layer = parts[0], parts[1]
        if kind == "wedges":
            session.wedges(layer)
            continue
        k = int(parts[2])
        if kind == "order":
            session.priority_order(layer, k)
            session.priority_rank(layer, k)
        elif kind == "two_hop":
            session.two_hop_index(layer, k)
        elif kind == "two_hop_id":
            session.id_order_index(k)
        elif kind == "htb":
            session.htb_pair(layer, k)
        elif kind == "native":
            session.native_pack(layer, k)
        else:
            raise PlanError(f"unknown prepared-state kind in plan "
                            f"requirement {key!r}")


def _headline(result, elapsed: float) -> float:
    """The headline seconds of one run, for the cost ledger.

    Mirrors the headline convention of :class:`repro.bench.runner
    .MethodRun`: instrumented engines report simulated device seconds,
    everything else wall clock (with our own measurement as the
    fallback for results that carry neither).
    """
    if getattr(result, "backend_instrumented", False):
        device = getattr(result, "device_seconds", None)
        if device is not None:
            return float(device)
    wall = getattr(result, "wall_seconds", None)
    return float(wall) if wall is not None else elapsed


def execute_plan(plan: CountPlan, graph, query=None, *,
                 session=None, spec=None, backend=None,
                 options=None, threads: int = 16, ledger=None):
    """Execute ``plan`` against ``graph`` and return the
    :class:`~repro.core.counts.CountResult`.

    ``query`` may be omitted (rebuilt from the plan) but must match the
    plan's (p, q) when given.  ``backend=`` accepts a ready
    :class:`~repro.engine.base.KernelBackend` *instance* to preserve a
    caller's configured engine (a session-bound simulated device, a
    tuned :class:`~repro.engine.parallel.ParallelBackend`); otherwise
    the plan's backend/workers resolve through
    :func:`~repro.engine.base.resolve_backend`.  ``options`` overrides
    the method's registered defaults (the GBC ablation variants carry
    theirs in the registry).

    ``ledger=`` (defaulting to the session's, when it carries one)
    receives the run's measured headline seconds — this is the single
    site where every dispatcher's real executions feed the
    :class:`repro.obs.ledger.CostLedger`, because every dispatcher
    already resolves here.
    """
    # deferred: the counter modules import repro.plan.registry at their
    # own import time, so repro.plan must not import repro.core eagerly
    from repro.core.counts import BicliqueQuery

    mspec = get_method(plan.method)
    if query is None:
        query = BicliqueQuery(plan.p, plan.q)
    elif not plan.matches(query):
        raise PlanError(f"plan was made for ({plan.p}, {plan.q}) but "
                        f"asked to execute ({query.p}, {query.q})")
    if ledger is None:
        ledger = getattr(session, "ledger", None)
    engine = resolve_backend(backend if backend is not None
                             else plan.backend,
                             spec, workers=plan.workers)
    if options is None and mspec.default_options is not None:
        options = mspec.default_options()
    with _trace.span("plan.execute", method=plan.method,
                     backend=engine.name, p=plan.p, q=plan.q,
                     source=plan.source) as sp:
        if session is not None and mspec.supports_sessions:
            warm_session(session, plan)
        available = {
            "backend": engine,
            "session": session if mspec.supports_sessions else None,
            "layer": plan.layer,
            "spec": spec,
            "options": options,
            "threads": threads,
            "samples": plan.samples,
            "seed": plan.seed,
        }
        kwargs = {name: value for name, value in available.items()
                  if name in mspec.accepts}
        t0 = time.perf_counter()
        with _trace.span("kernel.batch", method=plan.method,
                         backend=engine.name):
            result = mspec.runner(graph, query, **kwargs)
        elapsed = time.perf_counter() - t0
        if ledger is not None:
            fingerprint = session.fingerprint if session is not None \
                else graph_fingerprint(graph)
            ledger.record(fingerprint, plan.p, plan.q, plan.method,
                          engine.name, _headline(result, elapsed),
                          predicted_seconds=plan.predicted_seconds)
        sp.annotate(seconds=elapsed, count=getattr(result, "count", None))
    return result
