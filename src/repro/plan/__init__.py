"""repro.plan — the cost-based query planner and method registry.

One plan/execute layer behind every dispatcher.  The paper evaluates
five algorithms because no single one wins on every graph and (p, q)
shape; this package makes that selection mechanical instead of manual:

* :mod:`repro.plan.registry` — every counter in :mod:`repro.core`
  self-registers a :class:`MethodSpec` (entry point, capabilities, cost
  hook), so the CLI, bench runner, batch engine, and serving scheduler
  share one source of truth for what ``method=`` may name.
* :class:`CountPlan` (:mod:`repro.plan.ir`) — the frozen, serialisable
  decision: method, backend, workers, anchored layer, the prepared
  state the run requires, and the predicted headline cost.
* :class:`Planner` (:mod:`repro.plan.planner`) — prices every
  registered method from cheap graph statistics, Definition-2
  degeneracy signals, a seeded root-sampling probe, and the SIMT cost
  model, then ranks the candidates.  Deterministic for a fixed seed.
* :func:`execute_plan` (:mod:`repro.plan.execute`) — the ONLY place a
  method name turns into a counter call.

>>> from repro import BicliqueQuery, random_bipartite
>>> from repro.plan import plan_query, execute_plan
>>> g = random_bipartite(num_u=30, num_v=20, num_edges=200, seed=7)
>>> plan = plan_query(g, BicliqueQuery(2, 3), method="auto")
>>> plan.source, plan.backend
('auto', 'fast')
>>> execute_plan(plan, g).count     # bit-identical to every explicit method
528

Explicit methods plan trivially (no probe) and execute through the same
single dispatch site:

>>> explicit = plan_query(g, BicliqueQuery(2, 3), method="BCL",
...                       backend="fast")
>>> execute_plan(explicit, g).count
528
"""

from repro.plan.execute import (execute_plan, explicit_plan, plan_query,
                                warm_session)
from repro.plan.ir import CountPlan
from repro.plan.planner import Planner, prepared_keys
from repro.plan.registry import (ACCURACIES, AUTO, CostSignals, MethodSpec,
                                 approx_candidates, auto_candidates,
                                 ensure_accuracy, ensure_known, get_method,
                                 method_names, register_method)

__all__ = [
    "ACCURACIES",
    "AUTO",
    "CostSignals",
    "CountPlan",
    "MethodSpec",
    "Planner",
    "approx_candidates",
    "auto_candidates",
    "ensure_accuracy",
    "ensure_known",
    "execute_plan",
    "explicit_plan",
    "get_method",
    "method_names",
    "plan_query",
    "prepared_keys",
    "register_method",
    "warm_session",
]
