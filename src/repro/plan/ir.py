"""The plan IR: one :class:`CountPlan` fully describes a counting run.

A plan is what sits between "a (p, q) query arrived" and "a counter
ran": the chosen method, the execution engine (backend name + worker
count), the anchored-layer/reorder choice, the prepared state the run
requires from a :class:`repro.query.GraphSession`, and the planner's
predicted headline cost.  Plans are frozen and JSON-round-trippable
(:meth:`CountPlan.as_dict` / :meth:`CountPlan.from_dict`) so ``repro
plan explain`` output, benchmark artifacts, and tests can all pin them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import PlanError

__all__ = ["CountPlan"]


@dataclass(frozen=True)
class CountPlan:
    """An executable counting decision for one (graph, p, q) query."""

    #: resolved method name — never "auto"; the planner resolves that
    method: str
    p: int
    q: int
    #: kernel engine registry name ("sim" / "fast" / "par")
    backend: str = "sim"
    #: worker processes for the "par" engine (None = engine default)
    workers: int | None = None
    #: pinned anchored layer, or None for the method's degree heuristic
    layer: str | None = None
    #: prepared state the run needs, as ``kind:layer[:k]`` keys — e.g.
    #: ``("wedges:v", "order:v:3", "two_hop:v:3", "htb:v:3")``; a
    #: GraphSession warms exactly these before the batch runs
    prepared: tuple[str, ...] = ()
    #: predicted headline seconds (0.0 for explicit plans, which skip
    #: the probe entirely)
    predicted_seconds: float = 0.0
    #: EWMA-measured seconds from the planner's CostLedger cell, when
    #: one had history for this (fingerprint, shape, method, backend)
    observed_seconds: float | None = None
    #: ledger-calibrated prediction (predicted * observed/predicted
    #: ratio); when set, ranking used this instead of predicted_seconds
    calibrated_seconds: float | None = None
    #: how the plan was made: "explicit" or "auto"
    source: str = "explicit"
    #: one-line human rationale for ``repro plan explain``
    reason: str = ""
    #: serialisable probe summary (population, comparisons, est_count,
    #: ...) for explain output and artifacts; empty for explicit plans
    signals: dict = field(default_factory=dict)
    #: approx-tier sample budget (None = the estimator's default; the
    #: planner sizes this from the cost model under a deadline)
    samples: int | None = None
    #: approx-tier estimator seed — pinned on the plan so a served
    #: estimate is bit-reproducible from its plan alone
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.method == "auto":
            raise PlanError("a CountPlan must carry a resolved method; "
                            "'auto' is a planner directive")
        if self.p < 1 or self.q < 1:
            raise PlanError(f"plan query sides must be >= 1, "
                            f"got ({self.p}, {self.q})")

    def matches(self, query) -> bool:
        """Whether ``query`` is the (p, q) shape this plan was made for."""
        return (self.p, self.q) == (query.p, query.q)

    def with_backend(self, backend: str,
                     workers: int | None = None) -> "CountPlan":
        """The same decision re-targeted at another engine."""
        return replace(self, backend=backend, workers=workers)

    # -- serialisation --------------------------------------------------
    def as_dict(self) -> dict:
        """A JSON-shaped dict that :meth:`from_dict` restores exactly."""
        return {
            "method": self.method,
            "p": self.p,
            "q": self.q,
            "backend": self.backend,
            "workers": self.workers,
            "layer": self.layer,
            "prepared": list(self.prepared),
            "predicted_seconds": self.predicted_seconds,
            "observed_seconds": self.observed_seconds,
            "calibrated_seconds": self.calibrated_seconds,
            "source": self.source,
            "reason": self.reason,
            "signals": dict(self.signals),
            "samples": self.samples,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CountPlan":
        """Rebuild a plan from :meth:`as_dict` output (round-trip safe)."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise PlanError(f"unknown CountPlan keys: {sorted(unknown)}")
        data = dict(data)
        if "prepared" in data:
            data["prepared"] = tuple(data["prepared"])
        return cls(**data)
