"""The method registry: every counter self-registers its capabilities.

Each counting module in :mod:`repro.core` registers a
:class:`MethodSpec` at import time — its entry point, which optional
keyword arguments it understands, what it can do (sessions? sharded
``par`` execution? instrumented device metrics?), and a *cost hook*
that predicts its headline seconds from :class:`CostSignals`.  The
registry is the single source of truth every dispatcher resolves
through: :func:`repro.plan.execute_plan` looks a method up here,
:func:`repro.bench.runner.run_method` exposes :func:`method_names` as
its ``METHODS`` tuple, the CLI builds its ``--method`` choices from it,
and :meth:`repro.service.scheduler.Scheduler.submit` validates request
methods against it at admission time.

Adding a counter is therefore one file: implement it, register a
``MethodSpec`` with a cost hook at the bottom of the module, and the
CLI, batch engine, bench matrix, serving scheduler, and ``method=auto``
planner all pick it up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import UnknownMethodError

__all__ = [
    "ACCURACIES",
    "AUTO",
    "BackendCostModel",
    "CostSignals",
    "MethodSpec",
    "approx_candidates",
    "auto_backends",
    "auto_candidates",
    "backend_cost",
    "ensure_accuracy",
    "ensure_known",
    "get_method",
    "method_names",
    "register_backend_cost",
    "register_method",
]

#: the reserved method name that asks the planner to choose
AUTO = "auto"

#: the accuracy tiers every ``accuracy=`` seam accepts: ``"exact"``
#: (only exact counters; a deadline the planner cannot meet raises),
#: ``"approx"`` (the sampling tier answers, with error bars), and
#: ``"auto"`` (exact when it fits the deadline, approx otherwise)
ACCURACIES = ("exact", "approx", "auto")


def ensure_accuracy(accuracy: str) -> str:
    """Validate an ``accuracy=`` argument at an API boundary.

    Raises :class:`~repro.errors.QueryError` (via the import below) for
    anything outside :data:`ACCURACIES`; returns the value unchanged so
    boundaries can validate inline.
    """
    if accuracy not in ACCURACIES:
        from repro.errors import QueryError

        raise QueryError(f"accuracy must be one of {ACCURACIES}, "
                         f"got {accuracy!r}")
    return accuracy

# ---------------------------------------------------------------------------
# calibration constants for the cost hooks
#
# The probe (repro.core.estimate.sample_root_profile) measures *counted
# work* — merge invocations, merge comparisons, promising-root
# populations — which is deterministic for a fixed seed.  These
# constants convert counted work into predicted headline seconds; they
# were least-squares fitted against measured preparation and
# enumeration times on the Table II tiny stand-ins (fast backend), and
# ``benchmarks/test_plan_accuracy.py`` re-checks the resulting *choices*
# end to end on every stand-in.  Absolute accuracy is secondary to
# ranking accuracy, the same way the paper's SIMT cost model only needs
# method ratios to track reality.
# ---------------------------------------------------------------------------

#: per-merge-invocation kernel overhead (array setup dominates short
#: candidate lists, so calls — not comparisons — carry most of the cost)
SECONDS_PER_MERGE_CALL = 3.7e-6
#: marginal cost per merge comparison
SECONDS_PER_COMPARISON = 2.0e-8
#: priority prepare: per-edge / per-wedge / per-vertex coefficients and
#: intercept of the fitted linear model (wedge pass + reorder + index)
PRIORITY_PREP_EDGE = 2.5e-6
PRIORITY_PREP_WEDGE = 7.0e-7
PRIORITY_PREP_VERTEX = 1.3e-5
PRIORITY_PREP_BASE = -2.1e-3
#: id-order prepare (Basic): no wedge-mass reorder, one pass per root
ID_PREP_BASE = 3.0e-4
ID_PREP_VERTEX = 2.7e-5
ID_PREP_WEDGE = 1.0e-7
#: floor below which prepare predictions are meaningless noise
PREP_FLOOR = 1.0e-4
#: per-root loop overhead of BCLP's per-root measurement pass
SECONDS_PER_ROOT_PROFILED = 2.0e-6
#: instrumented (sim) kernels cost this much more per operation
SIM_INSTRUMENT_FACTOR = 30.0
#: flat cost of forking the par worker pool
FORK_SECONDS = 0.08


@dataclass(frozen=True)
class BackendCostModel:
    """Per-engine calibration of the enumeration cost model.

    An execution engine whose kernels amortise per-call dispatch (the
    batch-kernel ``native`` backend) registers one of these so the cost
    hooks price counted work with *its* constants instead of the
    ``fast`` defaults above.  ``auto=True`` additionally nominates the
    engine as a candidate when the planner is free to choose the
    backend (``backend=None``): the planner then ranks every method
    under every nominated engine and picks the overall winner.
    """

    #: engine registry name ("native", ...)
    name: str
    seconds_per_merge_call: float = SECONDS_PER_MERGE_CALL
    seconds_per_comparison: float = SECONDS_PER_COMPARISON
    #: eligible for planner backend selection when none is pinned
    auto: bool = False


_BACKEND_COSTS: dict[str, BackendCostModel] = {}


def register_backend_cost(model: BackendCostModel,
                          replace: bool = False) -> BackendCostModel:
    """Register an engine's cost model under its name (idempotent for
    identical models, like :func:`register_method`)."""
    if not replace and model.name in _BACKEND_COSTS \
            and _BACKEND_COSTS[model.name] != model:
        raise ValueError(f"backend cost model {model.name!r} is already "
                         f"registered; pass replace=True to override")
    _BACKEND_COSTS[model.name] = model
    return model


def backend_cost(name: str) -> BackendCostModel | None:
    """The cost model registered for engine ``name`` (None = defaults)."""
    return _BACKEND_COSTS.get(name)


def auto_backends() -> tuple[str, ...]:
    """Engines the planner may choose between when no backend is pinned:
    the ``fast`` default plus every registered ``auto`` cost model."""
    _ensure_registered()
    return ("fast",) + tuple(sorted(
        name for name, model in _BACKEND_COSTS.items() if model.auto))


@dataclass(frozen=True)
class CostSignals:
    """Everything a cost hook may consult, all deterministically derived.

    Combines cheap graph statistics (:mod:`repro.graph.stats`), the
    Definition-2 degeneracy signals (promising-root populations and
    two-hop index sizes under the priority order *and* Basic's id
    order), the root-sampling probe
    (:func:`repro.core.estimate.sample_root_profile` — counted merge
    calls/comparisons, Horvitz-Thompson extrapolated), and the device
    spec the SIMT cost model (:mod:`repro.gpu.costmodel`) prices
    device-side predictions with.  No wall-clock measurements enter, so
    a fixed probe seed gives bit-identical predictions run to run.
    """

    p: int
    q: int
    backend: str                 #: engine the plan will run on
    workers: int | None          #: par worker processes (None = default)
    threads: int                 #: BCLP's modelled CPU thread count
    anchored_layer: str          #: layer the degree heuristic anchors on
    num_u: int                   #: original-orientation |U| (Basic's roots)
    num_v: int
    num_edges: int
    anchored_num_u: int          #: |U| of the anchored view
    anchored_num_v: int
    degree_skew: float           #: anchored-layer max/mean degree
    wedge_ops: float             #: wedge mass the anchored prepare pays
    wedge_ops_id: float          #: wedge mass Basic's id-index build pays
    population: int              #: promising roots (priority order)
    basic_population: int        #: promising roots (Basic's id order)
    comparisons: float           #: est. total merge comparisons (priority)
    basic_comparisons: float     #: est. total merge comparisons (id order)
    merge_calls: float           #: est. total merge invocations (priority)
    basic_merge_calls: float     #: est. total merge invocations (id order)
    max_root_comparisons: float  #: heaviest sampled root (skew signal)
    max_root_merge_calls: float
    mean_index_size: float       #: mean N2^q size over promising roots
    est_count: float             #: estimated (p, q)-biclique count
    device: Any = None           #: DeviceSpec for simulated-device pricing

    # -- building blocks shared by the cost hooks -----------------------
    def priority_prepare_seconds(self) -> float:
        """Predicted wedge pass + Definition-2 reorder + filtered index
        on the anchored view (what BCL/BCLP/GBL/GBC all pay)."""
        return max(PREP_FLOOR,
                   PRIORITY_PREP_BASE
                   + self.num_edges * PRIORITY_PREP_EDGE
                   + self.wedge_ops * PRIORITY_PREP_WEDGE
                   + (self.anchored_num_u + self.anchored_num_v)
                   * PRIORITY_PREP_VERTEX)

    def id_prepare_seconds(self) -> float:
        """Predicted id-ordered two-hop index build — Basic's whole
        preparation: no wedge-mass ranking, always the original U."""
        return max(PREP_FLOOR,
                   ID_PREP_BASE
                   + self.num_u * ID_PREP_VERTEX
                   + self.wedge_ops_id * ID_PREP_WEDGE)

    def enum_seconds(self, merge_calls: float, comparisons: float) -> float:
        """Predicted serial enumeration cost for counted work.

        Priced with the engine's registered
        :class:`BackendCostModel` when one exists (the batch-kernel
        ``native`` engine amortises per-call dispatch, so its per-call
        constant is far below the ``fast`` default); unregistered
        engines use the fitted ``fast`` constants.
        """
        model = backend_cost(self.backend)
        call_s = model.seconds_per_merge_call if model is not None \
            else SECONDS_PER_MERGE_CALL
        cmp_s = model.seconds_per_comparison if model is not None \
            else SECONDS_PER_COMPARISON
        seconds = merge_calls * call_s + comparisons * cmp_s
        if self.backend == "sim":
            seconds *= SIM_INSTRUMENT_FACTOR
        return seconds

    def max_root_seconds(self) -> float:
        """Predicted cost of the heaviest sampled root's search tree —
        the lower bound skew puts on any per-root parallel schedule."""
        return self.enum_seconds(self.max_root_merge_calls,
                                 self.max_root_comparisons)

    def sharded(self, enum: float) -> float:
        """Apply the par backend's fork overhead and worker split."""
        if self.backend != "par":
            return enum
        workers = self.workers if self.workers else 4
        return (max(enum / max(workers, 1), self.max_root_seconds())
                + FORK_SECONDS)


@dataclass(frozen=True)
class MethodSpec:
    """One registered counting method and its capabilities."""

    #: registry name ("Basic", "BCL", ..., "GBC-NH")
    name: str
    #: the entry point: ``runner(graph, query, **kwargs)``
    runner: Callable[..., Any]
    #: keyword arguments beyond (graph, query) the runner understands;
    #: execute_plan drops everything else instead of exploding
    accepts: tuple[str, ...] = ("backend", "workers", "session")
    #: can pull prepared state from a repro.query.GraphSession
    supports_sessions: bool = True
    #: can shard roots over the "par" backend's worker processes
    supports_partitioned: bool = True
    #: reports simulated device metrics / device_seconds on "sim"
    instrumented_metrics: bool = False
    #: headline time is simulated device seconds (DeviceRunResult)
    device_model: bool = False
    #: honours layer= to pin the anchored layer
    supports_layer: bool = True
    #: prepared-state kinds the method consumes from a GraphSession
    #: ("wedges", "order", "two_hop", "two_hop_id", "htb"); the planner
    #: expands these into a plan's concrete ``prepared`` keys
    prepared_kinds: tuple[str, ...] = ("wedges", "order", "two_hop")
    #: a paper-ablation variant, excluded from method="auto" candidates
    ablation: bool = False
    #: a sampling-based estimator: excluded from the exact ``auto``
    #: ranking, ranked instead by the planner's approx tier
    #: (``accuracy="approx"`` / a deadline no exact plan can meet);
    #: results carry ``extras["ci95"]``-style error reporting
    approximate: bool = False
    #: predicted headline seconds from probe signals (None = never
    #: chosen automatically)
    cost: Callable[[CostSignals], float] | None = None
    #: factory for the method's default options (GBC-* variants)
    default_options: Callable[[], Any] | None = None
    #: one-line description shown by ``repro plan explain``
    summary: str = ""
    #: listing position (``method_names`` sorts on it, then on name) —
    #: keeps METHODS order stable whatever the import order
    order: int = 100


_REGISTRY: dict[str, MethodSpec] = {}
_CORE_MODULES = ("repro.core.basic", "repro.core.bcl", "repro.core.bclp",
                 "repro.core.gbl", "repro.core.gbc",
                 # the sampling estimator registers the "approx" tier
                 "repro.core.estimate",
                 # the native engine registers its BackendCostModel (and
                 # thereby its planner eligibility) at import time, the
                 # same self-registration pattern the counters use
                 "repro.engine.native")


def register_method(spec: MethodSpec, replace: bool = False) -> MethodSpec:
    """Register ``spec`` under its name; idempotent for identical specs."""
    if not replace and spec.name in _REGISTRY \
            and _REGISTRY[spec.name] is not spec:
        raise ValueError(f"method {spec.name!r} is already registered; "
                         f"pass replace=True to override")
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_registered() -> None:
    """Import the counter modules so their registrations have run."""
    import importlib

    for module in _CORE_MODULES:
        importlib.import_module(module)


def _ordered() -> list[MethodSpec]:
    _ensure_registered()
    return sorted(_REGISTRY.values(), key=lambda s: (s.order, s.name))


def method_names() -> tuple[str, ...]:
    """Every registered method name, in listing order."""
    return tuple(spec.name for spec in _ordered())


def get_method(name: str) -> MethodSpec:
    """The :class:`MethodSpec` registered under ``name``.

    Raises :class:`~repro.errors.UnknownMethodError` for unregistered
    names.  ``"auto"`` is deliberately *not* resolvable here — it is a
    planner directive, not a method; resolve it with
    :func:`repro.plan.plan_query` first.
    """
    _ensure_registered()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownMethodError(
            f"unknown method {name!r}; expected one of {method_names()}"
            + (f" or {AUTO!r}" if name != AUTO else
               " (resolve method='auto' through the planner first)"))
    return spec


def ensure_known(name: str, allow_auto: bool = False) -> str:
    """Validate a method name at an API boundary; returns it unchanged.

    With ``allow_auto=True`` the planner directive ``"auto"`` passes —
    the boundary that accepts it resolves it later.  Everything else
    must be registered, or :class:`~repro.errors.UnknownMethodError`
    names the offender and the valid choices.
    """
    if allow_auto and name == AUTO:
        return name
    get_method(name)
    return name


def auto_candidates() -> tuple[MethodSpec, ...]:
    """The methods ``method="auto"`` chooses between: every registered
    spec with a cost hook that is neither an ablation variant nor an
    approximate estimator (sampling never silently replaces an exact
    answer — the approx tier is opt-in via ``accuracy=`` or a deadline
    the exact candidates cannot meet)."""
    return tuple(spec for spec in _ordered()
                 if spec.cost is not None and not spec.ablation
                 and not spec.approximate)


def approx_candidates() -> tuple[MethodSpec, ...]:
    """The sampling tier's candidates: registered approximate specs
    with a cost hook, in listing order."""
    return tuple(spec for spec in _ordered()
                 if spec.cost is not None and spec.approximate)
