"""The cost-based planner behind ``method="auto"``.

The paper's headline experiments (Fig. 7/8, Tables III-V) exist because
no single counting strategy wins everywhere: the right method depends
on the graph and the (p, q) shape.  :class:`Planner` makes that choice
mechanical, the way the sampling-based selection in the
butterfly-estimation and near-clique-sampling lines does — probe a few
root search trees, extrapolate, price every registered method, pick the
cheapest:

1. **cheap graph statistics** (:func:`repro.graph.stats.compute_stats`,
   :func:`repro.graph.priority.wedge_mass`) bound the preparation cost;
2. **Definition-2 degeneracy signals** — the promising-root population
   and two-hop index sizes under the priority order — scope the search;
3. **root-sampling probes** (:func:`repro.core.estimate
   .sample_root_profile`) count merge comparisons on a seeded sample of
   roots and Horvitz-Thompson extrapolate total enumeration work, under
   both the priority order and Basic's id order;
4. each registered method's **cost hook** turns those
   :class:`~repro.plan.registry.CostSignals` into predicted headline
   seconds — device methods price theirs through the SIMT cost model
   (:mod:`repro.gpu.costmodel`).

Because the probe counts *work* (comparisons, populations), never
wall-clock, planner output is bit-identical for a fixed seed: the same
ranked plans, the same chosen plan, run after run.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.engine.base import BACKEND_NAMES, KernelBackend
from repro.errors import DeadlineExceededError, PlanError, QueryError
from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.priority import select_layer, wedge_mass
from repro.graph.stats import cached_stats, graph_fingerprint
from repro.obs import trace as _trace
from repro.obs.log import get_logger
from repro.plan.ir import CountPlan
from repro.plan.registry import (
    CostSignals,
    MethodSpec,
    approx_candidates,
    auto_backends,
    auto_candidates,
    ensure_accuracy,
    get_method,
)

__all__ = ["Planner", "prepared_keys"]

log = get_logger(__name__)

#: smallest sample budget the planner will size under a deadline — below
#: this the std_error is too noisy to mean anything
MIN_APPROX_SAMPLES = 8
#: fraction of a deadline the sized budget may spend: headroom for
#: queueing, prediction error, and the answer's delivery
DEADLINE_SAFETY = 0.5


def prepared_keys(mspec: MethodSpec, graph, query,
                  layer: str | None = None,
                  backend: str | None = None) -> tuple[str, ...]:
    """The session-state keys a method needs for one query.

    Keys are ``kind:layer[:k]`` strings a
    :class:`repro.query.GraphSession` can warm directly (see
    :func:`repro.plan.execute.warm_session`): the anchored layer and the
    effective two-hop depth ``k`` are resolved exactly as the counter
    will resolve them, so warming a plan's requirements is equivalent to
    letting the counter build lazily — just observable and timeable.
    Device-model methods running on the ``native`` engine additionally
    require that engine's repacked CSR arrays (``native:<layer>:<k>``).
    """
    if not mspec.supports_layer:        # Basic: always anchored on U
        anchored, k = LAYER_U, query.q
    else:
        anchored = layer or select_layer(graph, query.p, query.q)
        k = query.q if anchored == LAYER_U else query.p
    keys = []
    for kind in mspec.prepared_kinds:
        if kind == "wedges":
            keys.append(f"wedges:{anchored}")
        else:
            keys.append(f"{kind}:{anchored}:{k}")
    if backend == "native" and mspec.device_model:
        keys.append(f"native:{anchored}:{k}")
    return tuple(keys)


#: fingerprint-keyed caches of per-graph planning signals, so repeated
#: sessionless ``plan()`` calls over one graph pay the wedge-mass scan
#: and the root-sampling probe once (sessions get the same effect from
#: their per-shape plan cache, and their probes double as state warmers,
#: so they bypass the probe cache on purpose)
_WEDGE_MASS_CACHE: OrderedDict[tuple, float] = OrderedDict()
_PROBE_CACHE: OrderedDict[tuple, object] = OrderedDict()
_SIGNAL_CACHE_SIZE = 128


def _cache_get(cache: OrderedDict, key: tuple, build):
    got = cache.get(key)
    if got is None:
        got = build()
        cache[key] = got
        while len(cache) > _SIGNAL_CACHE_SIZE:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return got


def _backend_name(backend, workers: int | None) -> str | None:
    """Normalise a backend argument to a registry name (or None).

    Mirrors :func:`repro.engine.base.resolve_backend`: ``workers=``
    upgrades ``None``/``"fast"``/``"par"`` (and their engine instances)
    to the sharded parallel engine, so plans are priced and labelled as
    what will actually run.  ``sim`` + workers passes through so the
    caller's serial-accounting error fires.
    """
    if isinstance(backend, KernelBackend):
        name = backend.name
    elif backend is None:
        name = None
    elif backend in BACKEND_NAMES:
        name = backend
    else:
        raise QueryError(f"backend must be a KernelBackend, a name in "
                         f"{BACKEND_NAMES}, or None; got {backend!r}")
    if workers is not None and name in (None, "fast", "par"):
        return "par"
    return name


class Planner:
    """Ranks every registered counting method for queries on one graph.

    ``session`` (a :class:`repro.query.GraphSession`) lets probes reuse
    the graph's prepared state; ``samples`` and ``seed`` control the
    root-sampling probe (signals are cached per (p, q, layer), so a
    batch of same-shape queries probes once).  ``spec`` is the device
    the SIMT cost model prices simulated-device candidates with.

    ``ledger`` (a :class:`repro.obs.ledger.CostLedger`) blends measured
    history into the exact-tier ranking: candidates whose (fingerprint,
    shape, method, backend) cell carries an observed/predicted ratio
    are re-priced as ``calibrated = predicted * ratio`` and ranked on
    that.  Candidate *counts* are unaffected — every exact method
    returns the same number — only the ordering may change.
    """

    def __init__(self, graph, spec=None, session=None, *,
                 samples: int = 8, seed: int = 0,
                 threads: int = 16, ledger=None) -> None:
        if session is not None:
            session.check_owns(graph)
            if spec is None:
                spec = session.spec
        self.graph = graph
        self.spec = spec
        self.session = session
        self.samples = int(samples)
        self.seed = int(seed)
        self.threads = int(threads)
        self.ledger = ledger
        self._stats = None
        self._fp: str | None = None
        self._probes: dict[tuple, object] = {}

    # -- signal gathering ----------------------------------------------
    def _fingerprint(self) -> str:
        if self._fp is None:
            self._fp = self.session.fingerprint if self.session is not None \
                else graph_fingerprint(self.graph)
        return self._fp

    def _sync(self) -> None:
        """Drop memoised signals if the graph content changed under us.

        A planner reused across an in-place mutation of its graph's
        arrays (or across a ``session.refresh()``) would otherwise keep
        serving the old fingerprint, stats and probe results — the
        module-level signal caches are fingerprint-keyed and safe, but
        the instance memos are not.  Called on every public entry
        point; costs one content hash when nothing changed.
        """
        fp = self.session.fingerprint if self.session is not None \
            else graph_fingerprint(self.graph)
        if fp != self._fp:
            self._fp = fp
            self._stats = None
            self._probes.clear()

    def _graph_stats(self):
        if self._stats is None:
            self._stats = cached_stats(self.graph)
        return self._stats

    def _wedge_mass(self, layer: str) -> float:
        return _cache_get(_WEDGE_MASS_CACHE, (self._fingerprint(), layer),
                          lambda: float(wedge_mass(self.graph, layer)))

    def _probe(self, query, layer: str | None):
        from repro.core.estimate import sample_root_profile

        key = (query.p, query.q, layer)
        got = self._probes.get(key)
        if got is None:
            def build():
                return sample_root_profile(
                    self.graph, query, samples=self.samples,
                    seed=self.seed, layer=layer, session=self.session)
            if self.session is None:
                # probe results depend only on graph content + shape +
                # probe settings, so sessionless planners share them
                got = _cache_get(
                    _PROBE_CACHE,
                    (self._fingerprint(), query.p, query.q, layer,
                     self.samples, self.seed),
                    build)
            else:
                # session probes intentionally run: they warm the
                # session's prepared state as a side effect
                got = build()
            self._probes[key] = got
        return got

    def signals(self, query, backend: str = "fast",
                workers: int | None = None,
                layer: str | None = None) -> CostSignals:
        """The :class:`~repro.plan.registry.CostSignals` for one query
        under one execution engine — deterministic for a fixed seed."""
        from repro.gpu.device import rtx_3090

        self._sync()
        stats = self._graph_stats()
        probe = self._probe(query, layer)
        anchored = probe.anchored_layer
        skew = stats.degree_skew_u if anchored == LAYER_U \
            else stats.degree_skew_v
        if anchored == LAYER_U:
            anchored_nu, anchored_nv = stats.num_u, stats.num_v
            opposite = LAYER_V
        else:
            anchored_nu, anchored_nv = stats.num_v, stats.num_u
            opposite = LAYER_U
        return CostSignals(
            p=query.p, q=query.q,
            backend=backend, workers=workers, threads=self.threads,
            anchored_layer=anchored,
            num_u=stats.num_u, num_v=stats.num_v,
            num_edges=stats.num_edges,
            anchored_num_u=anchored_nu, anchored_num_v=anchored_nv,
            degree_skew=skew,
            # the anchored prepare enumerates wedges through the layer
            # opposite the anchor; Basic's id build always walks the
            # original orientation's V side
            wedge_ops=self._wedge_mass(opposite),
            wedge_ops_id=self._wedge_mass(LAYER_V),
            population=probe.population,
            basic_population=probe.basic_population,
            comparisons=probe.comparisons,
            basic_comparisons=probe.basic_comparisons,
            merge_calls=probe.merge_calls,
            basic_merge_calls=probe.basic_merge_calls,
            max_root_comparisons=probe.max_root_comparisons,
            max_root_merge_calls=probe.max_root_merge_calls,
            mean_index_size=probe.mean_index_size,
            est_count=probe.est_count,
            device=self.spec or rtx_3090(),
        )

    # -- planning -------------------------------------------------------
    def rank(self, query, backend=None, workers: int | None = None,
             layer: str | None = None, *,
             accuracy: str = "exact",
             deadline: float | None = None) -> list[CountPlan]:
        """Every eligible candidate plan, cheapest predicted first.

        ``backend=None`` leaves the engine to the planner: it prices
        every method on the uninstrumented ``fast`` engine *and* on
        each auto-registered engine (the ``native`` batch-kernel
        backend registers a :class:`~repro.plan.registry
        .BackendCostModel` with ``auto=True``), so ``auto`` means
        "fastest", whichever engine that takes — instrumentation is
        something a caller asks for explicitly.  Naming a backend ranks
        the methods *under* that engine, which changes the winners —
        on ``sim`` the headline is simulated device seconds, so the
        device methods dominate.

        ``accuracy`` selects the tier: ``"exact"`` (default) ranks the
        exact counters and — when a ``deadline`` is given — raises
        :class:`~repro.errors.DeadlineExceededError` if even the best
        exact candidate's prediction blows it; ``"approx"`` ranks the
        sampling tier, its per-plan sample budget sized from the cost
        model so the predicted run fits the deadline; ``"auto"`` serves
        exact when it fits and falls back to the approx tier otherwise
        — the paper's per-request deadlines as a planning constraint
        instead of a failure mode.
        """
        ensure_accuracy(accuracy)
        if deadline is not None and deadline <= 0:
            raise PlanError(f"deadline must be > 0 seconds, got {deadline}")
        pinned = _backend_name(backend, workers)
        if pinned == "sim" and workers is not None:
            raise QueryError("workers= requires the parallel engine; the "
                             "simulated engine's accounting is serial")
        engine_names = auto_backends() if pinned is None else (pinned,)
        with _trace.span("plan.rank", p=query.p, q=query.q,
                         accuracy=accuracy) as sp:
            if accuracy == "approx":
                plans = self._approx_rank(query, engine_names, workers,
                                          layer, deadline)
                sp.annotate(candidates=len(plans), chosen=plans[0].method)
                return plans
            plans = self._exact_rank(query, engine_names, workers, layer)
            best_cost = plans[0].calibrated_seconds \
                if plans[0].calibrated_seconds is not None \
                else plans[0].predicted_seconds
            if deadline is not None and best_cost > deadline:
                if accuracy == "auto":
                    plans = self._approx_rank(query, engine_names, workers,
                                              layer, deadline)
                    sp.annotate(candidates=len(plans),
                                chosen=plans[0].method, tier="approx")
                    return plans
                log.warning(
                    "deadline infeasible: best exact plan %s on %s "
                    "predicts %.3gs against a %.3gs deadline (%dx%d)",
                    plans[0].method, plans[0].backend, best_cost,
                    deadline, query.p, query.q)
                raise DeadlineExceededError(
                    f"best exact plan ({plans[0].method} on "
                    f"{plans[0].backend}) predicts "
                    f"{best_cost:.3g}s against a "
                    f"{deadline:.3g}s deadline; retry with "
                    f"accuracy='approx' or 'auto' to trade precision "
                    f"for latency")
            sp.annotate(candidates=len(plans), chosen=plans[0].method)
            return plans

    def _exact_rank(self, query, engine_names, workers: int | None,
                    layer: str | None) -> list[CountPlan]:
        plans: list[tuple] = []
        for eng_pos, engine_name in enumerate(engine_names):
            signals = self.signals(query, backend=engine_name,
                                   workers=workers, layer=layer)
            for position, mspec in enumerate(auto_candidates()):
                if engine_name == "par" and not mspec.supports_partitioned:
                    continue
                if engine_name == "native" and not mspec.device_model:
                    # only the frontier-batched device counters run
                    # their hot loops through the batch kernels; the
                    # host baselines would be priced with a speedup
                    # they cannot realise
                    continue
                if layer is not None and not mspec.supports_layer:
                    continue
                predicted = float(mspec.cost(signals))
                observed = calibrated = None
                if self.ledger is not None:
                    cell = self.ledger.lookup(
                        self._fingerprint(), query.p, query.q,
                        mspec.name, engine_name)
                    if cell is not None:
                        observed = cell.observed_seconds
                        if cell.ratio is not None:
                            calibrated = predicted * cell.ratio
                rank_cost = calibrated if calibrated is not None \
                    else predicted
                reason = (f"predicted {predicted:.3g}s on {engine_name} "
                          f"from a {self.samples}-root probe "
                          f"(seed {self.seed})")
                if calibrated is not None:
                    reason += (f"; ledger-calibrated to "
                               f"{calibrated:.3g}s from "
                               f"{cell.observations} measured run(s)")
                plans.append((rank_cost, eng_pos, position, CountPlan(
                    method=mspec.name, p=query.p, q=query.q,
                    backend=engine_name, workers=workers, layer=layer,
                    prepared=prepared_keys(mspec, self.graph, query,
                                           layer, backend=engine_name),
                    predicted_seconds=predicted,
                    observed_seconds=observed,
                    calibrated_seconds=calibrated,
                    source="auto",
                    reason=reason,
                    signals={
                        "population": signals.population,
                        "basic_population": signals.basic_population,
                        "comparisons": signals.comparisons,
                        "basic_comparisons": signals.basic_comparisons,
                        "mean_index_size": signals.mean_index_size,
                        "est_count": signals.est_count,
                        "wedge_ops": signals.wedge_ops,
                        "degree_skew": signals.degree_skew,
                        "anchored_layer": signals.anchored_layer,
                    },
                )))
        if not plans:
            raise PlanError(f"no registered method can run on backend "
                            f"{engine_names[0]!r}")
        # ties break on engine position (fast first), then registration
        # order, keeping the ranking total and deterministic
        plans.sort(key=lambda item: (item[0], item[1], item[2]))
        return [plan for _, _, _, plan in plans]

    def _approx_rank(self, query, engine_names, workers: int | None,
                     layer: str | None,
                     deadline: float | None) -> list[CountPlan]:
        from repro.core.estimate import approx_cost

        candidates = approx_candidates()
        plans: list[tuple] = []
        for eng_pos, engine_name in enumerate(engine_names):
            if engine_name == "par":
                # the estimator's root loop is serial; pricing it with
                # the sharded engine's speedup would be a lie
                continue
            signals = self.signals(query, backend=engine_name,
                                   workers=workers, layer=layer)
            for position, mspec in enumerate(candidates):
                if layer is not None and not mspec.supports_layer:
                    continue
                samples = self._approx_budget(signals, deadline)
                predicted = float(approx_cost(signals, samples))
                population = max(signals.population, 1)
                rel_error = (1.0 / samples ** 0.5
                             if samples < population else 0.0)
                reason = (f"{samples}-sample HT estimate (seed "
                          f"{self.seed}), predicted {predicted:.3g}s on "
                          f"{engine_name}")
                if deadline is not None:
                    # the MIN_APPROX_SAMPLES floor can overshoot a
                    # deadline no budget fits; say which happened
                    reason += (
                        f" within the {deadline:.3g}s deadline"
                        if predicted <= deadline else
                        f" (best effort: the {MIN_APPROX_SAMPLES}-sample "
                        f"floor overruns the {deadline:.3g}s deadline)")
                plans.append((predicted, eng_pos, position, CountPlan(
                    method=mspec.name, p=query.p, q=query.q,
                    backend=engine_name, workers=None, layer=layer,
                    prepared=prepared_keys(mspec, self.graph, query,
                                           layer, backend=engine_name),
                    predicted_seconds=predicted,
                    source="auto",
                    reason=reason,
                    signals={
                        "population": signals.population,
                        "basic_population": signals.basic_population,
                        "comparisons": signals.comparisons,
                        "basic_comparisons": signals.basic_comparisons,
                        "mean_index_size": signals.mean_index_size,
                        "est_count": signals.est_count,
                        "wedge_ops": signals.wedge_ops,
                        "degree_skew": signals.degree_skew,
                        "anchored_layer": signals.anchored_layer,
                        "samples": samples,
                        "predicted_rel_error": rel_error,
                    },
                    samples=samples,
                    seed=self.seed,
                )))
        if not plans:
            raise PlanError(f"no approximate method can run on backend "
                            f"{engine_names[0]!r}; the approx tier is "
                            f"serial (fast/sim/native)")
        plans.sort(key=lambda item: (item[0], item[1], item[2]))
        return [plan for _, _, _, plan in plans]

    def _approx_budget(self, signals: CostSignals,
                       deadline: float | None) -> int:
        """Sample budget sized so the predicted estimate fits the
        deadline (the estimator's default budget when there is none)."""
        from repro.core.estimate import DEFAULT_SAMPLES

        population = max(signals.population, 1)
        if deadline is None:
            return DEFAULT_SAMPLES
        per_root = signals.enum_seconds(signals.merge_calls,
                                        signals.comparisons) / population
        budget = deadline * DEADLINE_SAFETY \
            - signals.priority_prepare_seconds()
        if per_root <= 0.0:
            samples = population
        elif budget <= 0.0:
            samples = MIN_APPROX_SAMPLES
        else:
            samples = int(budget / per_root)
        return max(MIN_APPROX_SAMPLES, min(samples, population))

    def plan(self, query, backend=None, workers: int | None = None,
             layer: str | None = None, *,
             accuracy: str = "exact",
             deadline: float | None = None) -> CountPlan:
        """The cheapest candidate of :meth:`rank` — what ``method="auto"``
        executes."""
        return self.rank(query, backend=backend, workers=workers,
                         layer=layer, accuracy=accuracy,
                         deadline=deadline)[0]

    def predict(self, query, method: str, backend=None,
                workers: int | None = None,
                layer: str | None = None) -> float:
        """Predicted headline seconds for one explicitly named method.

        What the scheduler's deadline admission uses for requests that
        pin a method instead of planning: methods without a cost hook
        (the ablation variants) predict 0.0, i.e. are always admitted.
        """
        mspec = get_method(method)
        if mspec.cost is None:
            return 0.0
        engine_name = _backend_name(backend, workers) or "fast"
        signals = self.signals(query, backend=engine_name,
                               workers=workers, layer=layer)
        predicted = float(mspec.cost(signals))
        if self.ledger is not None:
            calibrated = self.ledger.calibrated(
                self._fingerprint(), query.p, query.q, method,
                engine_name, predicted)
            if calibrated is not None:
                return calibrated
        return predicted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Planner({self.graph!r}, samples={self.samples}, "
                f"seed={self.seed})")
