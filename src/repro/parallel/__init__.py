"""Shard orchestration: multi-process execution of per-root work.

:mod:`repro.parallel.sharding` plans shards with the Table IV pre-runtime
splitters and executes them over a forked worker pool;
:class:`repro.engine.parallel.ParallelBackend` packages that machinery as
the ``"par"`` kernel backend every counting entry point accepts.
"""

from repro.parallel.sharding import (
    DISPATCH_MODES,
    PLACEMENTS,
    ShardPlan,
    default_workers,
    plan_shards,
    run_sharded,
)

__all__ = ["ShardPlan", "plan_shards", "run_sharded", "default_workers",
           "PLACEMENTS", "DISPATCH_MODES"]
