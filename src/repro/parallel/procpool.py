"""Persistent fork-pool: long-lived workers fed over pipes.

:func:`repro.parallel.sharding.run_sharded` historically forked a fresh
``multiprocessing.Pool`` per call, which let chunk closures ride into
the children for free (fork inherits everything) but paid full pool
spin-up on *every* sharded count — the dominant cost of small
partitioned calls, and a per-batch tax on every ``backend="par"``
request a scheduler serves.  This module keeps one set of forked
workers alive per worker-count and re-feeds them across calls.

Because the workers outlive any single closure, chunk functions can no
longer be inherited — they are **shipped by value**:

* the function's ``__code__`` crosses the pipe via :mod:`marshal` and
  is rebuilt with :class:`types.FunctionType`, with its globals bound
  to the worker's own import of ``fn.__module__`` (forked workers
  share ``sys.modules``, so this is almost always a dict lookup);
* closure cells (and defaults) are encoded individually: scalars
  inline, nested functions recursively, and everything else — graphs,
  indexes, HTB tables — as a **state token**.  Token values are
  pickled once and cached worker-side in an LRU that the parent
  mirrors exactly, so the second call closing over the same graph
  ships a few bytes instead of megabytes.  Functions defined in
  ``__main__`` also ship the globals their body references — a
  pre-forked worker's ``__main__`` is frozen at fork time and cannot
  be re-imported, unlike any other module;
* the pool self-schedules: each idle worker pulls the next pending
  shard, which subsumes both the static and dynamic dispatch modes of
  :func:`~repro.parallel.sharding.plan_shards` (shard *contents* stay
  deterministic; only which process runs a shard varies).

Anything unshippable (unmarshalable code, unpicklable state, a dead
worker) raises :class:`ShipError` and the caller falls back to the
legacy fork-per-call pool — correctness never depends on this cache.
Set ``REPRO_PERSISTENT_POOL=0`` to disable the persistent tier
entirely.
"""

from __future__ import annotations

import importlib
import itertools
import marshal
import multiprocessing as mp
import os
import pickle
import sys
import threading
import types
import weakref
from collections import OrderedDict, deque
from multiprocessing.connection import wait as _conn_wait

__all__ = ["PersistentPool", "ShipError", "get_pool", "pool_enabled",
           "shutdown_pools"]

#: tokens (shipped state values) each worker keeps resident; the parent
#: mirrors the same LRU so both sides agree on what needs resending
CACHE_CAP = 64

#: distinct pool sizes kept alive at once (counts typically use one)
_MAX_POOLS = 3

#: values at most this many pickled-ish bytes are inlined, not tokenised
_SMALL_BYTES = 2048


class ShipError(RuntimeError):
    """A function or its state cannot ride to a persistent worker."""


def fork_available() -> bool:
    """Same contract as the sharding module's check: POSIX fork, and
    not inside a daemonic child (which may not spawn children)."""
    if "fork" not in mp.get_all_start_methods():
        return False  # pragma: no cover - non-POSIX platforms
    return not mp.current_process().daemon


def pool_enabled() -> bool:
    """Persistent pools are on unless ``REPRO_PERSISTENT_POOL=0``."""
    return os.environ.get("REPRO_PERSISTENT_POOL", "1") != "0"


# ---------------------------------------------------------------------------
# value encoding — parent side


def _is_small(value, depth: int = 0) -> bool:
    if value is None or isinstance(value, (bool, int, float, complex)):
        return True
    if isinstance(value, (str, bytes)):
        return len(value) <= _SMALL_BYTES
    if depth < 3 and isinstance(value, (tuple, frozenset)):
        return len(value) <= 32 and all(_is_small(v, depth + 1)
                                        for v in value)
    return False


class _TokenRegistry:
    """Stable tokens for parent-side objects shipped as worker state.

    A token must name the same object for as long as the parent holds
    it — ``id()`` alone cannot do that (ids recycle after collection),
    so every token carries a guard: a weakref where the type supports
    one, else a strong reference in a bounded LRU.  A stale id hit
    (guard no longer the object) simply mints a fresh token; workers
    evict the orphaned entry through the mirrored LRU.
    """

    def __init__(self, strong_cap: int = CACHE_CAP) -> None:
        self._lock = threading.Lock()
        self._next = itertools.count()
        self._by_id: dict[int, int] = {}
        self._guards: dict[int, object] = {}
        self._strong: OrderedDict[int, object] = OrderedDict()
        self._strong_cap = int(strong_cap)

    def token(self, obj) -> int:
        with self._lock:
            oid = id(obj)
            tok = self._by_id.get(oid)
            if tok is not None:
                guard = self._guards.get(tok)
                live = guard() if isinstance(guard, weakref.ref) else guard
                if live is obj:
                    if tok in self._strong:
                        self._strong.move_to_end(tok)
                    return tok
                self._drop(oid, tok)
            tok = next(self._next)
            self._by_id[oid] = tok
            try:
                self._guards[tok] = weakref.ref(obj)
            except TypeError:
                # lists/dicts/ndarlike without weakref support: pin the
                # object so its id cannot recycle while the token lives
                self._guards[tok] = obj
                self._strong[tok] = obj
                while len(self._strong) > self._strong_cap:
                    old, kept = self._strong.popitem(last=False)
                    self._drop(id(kept), old)
            return tok

    def _drop(self, oid: int, tok: int) -> None:
        self._by_id.pop(oid, None)
        self._guards.pop(tok, None)
        self._strong.pop(tok, None)


def _is_module_global(fn: types.FunctionType) -> bool:
    mod = sys.modules.get(fn.__module__ or "")
    if mod is None:
        return False
    obj = mod
    for part in fn.__qualname__.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


def _encode(value, registry: _TokenRegistry,
            refs: "OrderedDict[int, object]", depth: int):
    if isinstance(value, types.FunctionType):
        # __main__ may have grown since the workers forked, so its
        # functions cannot be resolved by name worker-side
        if _is_module_global(value) and value.__module__ != "__main__":
            return ("g", value.__module__, value.__qualname__)
        return ("f", _freeze(value, registry, refs, depth + 1))
    if isinstance(value, types.ModuleType):
        return ("g", value.__name__, "")
    if _is_small(value):
        return ("v", pickle.dumps(value, pickle.HIGHEST_PROTOCOL))
    tok = registry.token(value)
    refs.setdefault(tok, value)
    return ("r", tok)


def _referenced_globals(code) -> set:
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _referenced_globals(const)
    return names


def _freeze(fn, registry: _TokenRegistry,
            refs: "OrderedDict[int, object]", depth: int = 0):
    """Encode ``fn`` by value; collects token-shipped state in ``refs``."""
    if depth > 8:
        raise ShipError("closure nesting too deep to ship")
    if not isinstance(fn, types.FunctionType):
        raise ShipError(f"cannot ship a {type(fn).__name__}, "
                        f"only plain functions")
    try:
        code = marshal.dumps(fn.__code__)
    except ValueError as exc:  # pragma: no cover - exotic code consts
        raise ShipError(f"unmarshalable code object: {exc}") from exc
    cells = tuple(_encode(c.cell_contents, registry, refs, depth)
                  for c in (fn.__closure__ or ()))
    defaults = None if fn.__defaults__ is None else tuple(
        _encode(v, registry, refs, depth) for v in fn.__defaults__)
    kwdefaults = None if not fn.__kwdefaults__ else {
        k: _encode(v, registry, refs, depth)
        for k, v in fn.__kwdefaults__.items()}
    globalrefs = None
    if (fn.__module__ or "__main__") == "__main__":
        # a forked worker's __main__ is frozen at fork time and cannot
        # be re-imported, so globals the body touches ride along too
        g = fn.__globals__
        globalrefs = {n: _encode(g[n], registry, refs, depth)
                      for n in sorted(_referenced_globals(fn.__code__))
                      if n in g} or None
    return ("fn", fn.__module__ or "builtins", fn.__name__,
            fn.__qualname__, code, defaults, kwdefaults, cells,
            globalrefs)


# ---------------------------------------------------------------------------
# value decoding — worker side


def _resolve_global(module: str, qualname: str):
    mod = sys.modules.get(module)
    if mod is None:
        mod = importlib.import_module(module)
    obj = mod
    for part in qualname.split("."):
        if part:  # empty qualname names the module itself
            obj = getattr(obj, part)
    return obj


def _decode(enc, cache: "OrderedDict[int, object]"):
    tag = enc[0]
    if tag == "v":
        return pickle.loads(enc[1])
    if tag == "r":
        if enc[1] not in cache:
            raise ShipError(f"state token {enc[1]} missing from worker "
                            f"cache")
        return cache[enc[1]]
    if tag == "f":
        return _thaw(enc[1], cache)
    return _resolve_global(enc[1], enc[2])


def _thaw(payload, cache: "OrderedDict[int, object]"):
    (_, module, name, qualname, code_b, defaults, kwdefaults, cells,
     globalrefs) = payload
    code = marshal.loads(code_b)
    mod = sys.modules.get(module)
    if mod is None:
        mod = importlib.import_module(module)
    fn_globals = mod.__dict__
    if globalrefs:
        fn_globals = dict(mod.__dict__)
        fn_globals.update({k: _decode(v, cache)
                           for k, v in globalrefs.items()})
    closure = tuple(types.CellType(_decode(c, cache)) for c in cells)
    fn = types.FunctionType(
        code, fn_globals, name,
        None if defaults is None else tuple(_decode(d, cache)
                                            for d in defaults),
        closure)
    if kwdefaults:
        fn.__kwdefaults__ = {k: _decode(v, cache)
                             for k, v in kwdefaults.items()}
    fn.__qualname__ = qualname
    return fn


def _touch_lru(lru: OrderedDict, tokens, cap: int) -> list:
    """Mark ``tokens`` most-recently-used, evict past ``cap``.

    Applied with identical token streams to the parent's per-worker
    mirror and the worker's value cache, so both sides always agree on
    which tokens are resident.
    """
    for tok in tokens:
        if tok in lru:
            lru.move_to_end(tok)
        else:
            lru[tok] = True
    evicted = []
    while len(lru) > cap:
        old, _ = lru.popitem(last=False)
        evicted.append(old)
    return evicted


# ---------------------------------------------------------------------------
# worker process


def _worker_main(conn) -> None:  # pragma: no cover - runs in fork child
    cache: OrderedDict[int, object] = OrderedDict()
    fn = None
    active = -1
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        tag = msg[0]
        if tag == "exit":
            return
        if tag == "call":
            _, call_id, payload, values, order, cap = msg
            try:
                for tok, blob in values.items():
                    cache[tok] = pickle.loads(blob)
                _touch_lru(cache, order, cap)
                fn = _thaw(payload, cache)
                active = call_id
            except Exception as exc:
                fn, active = None, call_id
                conn.send(("err", call_id, None, None,
                           f"thaw failed: {exc!r}"))
            continue
        # ("do", call_id, shard_id, shard)
        _, call_id, shard_id, shard = msg
        if call_id != active or fn is None:
            conn.send(("err", call_id, shard_id, None,
                       "no live function for this call"))
            continue
        try:
            result = fn(shard)
        except Exception as exc:
            try:
                blob = pickle.dumps(exc, pickle.HIGHEST_PROTOCOL)
            except Exception:
                blob = None
            conn.send(("err", call_id, shard_id, blob, repr(exc)))
        else:
            try:
                conn.send(("ok", call_id, shard_id, result))
            except Exception as exc:
                conn.send(("err", call_id, shard_id, None,
                           f"unpicklable result: {exc!r}"))


# ---------------------------------------------------------------------------
# parent-side pool


class PersistentPool:
    """A fixed set of long-lived forked workers, reused across calls.

    One sharded call runs at a time (:meth:`run` holds the pool lock);
    concurrent callers serialise rather than oversubscribing the same
    CPUs with overlapping pools.  Any transport failure marks the pool
    broken — the registry replaces broken pools on next use.
    """

    def __init__(self, workers: int) -> None:
        ctx = mp.get_context("fork")
        self.workers = int(workers)
        self._lock = threading.Lock()
        self._registry = _TokenRegistry()
        self._calls = itertools.count()
        self._delivered = [OrderedDict() for _ in range(self.workers)]
        self.broken = False
        self._conns = []
        self._procs = []
        for i in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn,),
                               name=f"repro-pool-{i}", daemon=True)
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    @property
    def worker_pids(self) -> list[int]:
        return [p.pid for p in self._procs]

    def alive(self) -> bool:
        return not self.broken and all(p.is_alive() for p in self._procs)

    def run(self, fn, shards) -> list:
        """Run ``fn(shard)`` for every shard; results in shard order.

        Raises :class:`ShipError` when the function/state cannot ship
        or the transport breaks (callers fall back to the per-call
        pool); exceptions raised *by* ``fn`` propagate as themselves.
        """
        with self._lock:
            if self.broken:
                raise ShipError("persistent pool is broken")
            payload_refs: OrderedDict[int, object] = OrderedDict()
            payload = _freeze(fn, self._registry, payload_refs)
            try:
                return self._run_locked(payload, payload_refs,
                                        list(shards))
            except ShipError:
                raise
            except (OSError, EOFError, BrokenPipeError) as exc:
                self.broken = True
                self._terminate()
                raise ShipError(f"pool transport failed: {exc!r}") from exc

    def _run_locked(self, payload, refs, shards) -> list:
        call_id = next(self._calls)
        order = list(refs)
        blobs: dict[int, bytes] = {}
        pending = deque(range(len(shards)))
        inflight: dict[int, int] = {}
        called: set[int] = set()
        results: dict[int, object] = {}
        conn_index = {id(c): w for w, c in enumerate(self._conns)}

        def feed(w: int) -> None:
            if w not in called:
                missing = [t for t in order
                           if t not in self._delivered[w]]
                values = {}
                for tok in missing:
                    blob = blobs.get(tok)
                    if blob is None:
                        try:
                            blob = pickle.dumps(refs[tok],
                                                pickle.HIGHEST_PROTOCOL)
                        except Exception as exc:
                            raise ShipError(
                                f"unpicklable shipped state "
                                f"({type(refs[tok]).__name__}): "
                                f"{exc!r}") from exc
                        blobs[tok] = blob
                    values[tok] = blob
                _touch_lru(self._delivered[w], order, CACHE_CAP)
                self._conns[w].send(("call", call_id, payload, values,
                                     order, CACHE_CAP))
                called.add(w)
            sid = pending.popleft()
            self._conns[w].send(("do", call_id, sid, shards[sid]))
            inflight[w] = sid

        for w in range(self.workers):
            if not pending:
                break
            feed(w)
        while len(results) < len(shards):
            busy = [self._conns[w] for w in inflight]
            if not busy:  # pragma: no cover - defensive
                raise ShipError("pool stalled with shards outstanding")
            for conn in _conn_wait(busy):
                msg = conn.recv()
                w = conn_index[id(conn)]
                tag, cid = msg[0], msg[1]
                if cid != call_id:
                    continue        # stale reply from an aborted call
                if tag == "err":
                    _, _, sid, blob, text = msg
                    if sid is None:
                        raise ShipError(text)
                    exc = None
                    if blob is not None:
                        try:
                            exc = pickle.loads(blob)
                        except Exception:  # pragma: no cover
                            exc = None
                    if isinstance(exc, BaseException):
                        raise exc       # fn's own exception, verbatim
                    raise RuntimeError(f"persistent worker failed: "
                                       f"{text}")
                _, _, sid, result = msg
                results[sid] = result
                inflight.pop(w, None)
                if pending:
                    feed(w)
        return [results[sid] for sid in range(len(shards))]

    def _terminate(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=1.0)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        with self._lock:
            if not self.broken:
                for conn in self._conns:
                    try:
                        conn.send(("exit",))
                    except (OSError, BrokenPipeError):
                        pass
            self.broken = True
            self._terminate()


# ---------------------------------------------------------------------------
# registry — one pool per worker count, replaced when broken

_pools: dict[int, PersistentPool] = {}
_pools_lock = threading.Lock()


def get_pool(workers: int) -> PersistentPool | None:
    """The shared persistent pool for ``workers``, or None when the
    persistent tier is disabled/unavailable here."""
    if workers < 2 or not pool_enabled() or not fork_available():
        return None
    with _pools_lock:
        pool = _pools.get(workers)
        if pool is not None and pool.alive():
            return pool
        if pool is not None:
            pool.close()
            del _pools[workers]
        while len(_pools) >= _MAX_POOLS:
            size, old = next(iter(_pools.items()))
            old.close()
            del _pools[size]
        pool = PersistentPool(workers)
        _pools[workers] = pool
        return pool


def shutdown_pools() -> None:
    """Close every registered pool (tests; process teardown is free —
    workers are daemonic)."""
    with _pools_lock:
        for pool in _pools.values():
            pool.close()
        _pools.clear()
