"""Shard planning and multi-process execution of per-root work.

The unit of parallel work in every counter is one root vertex's search
tree (the same unit the simulated device assigns to a thread block and
BCPar assigns to a partition).  This module turns a list of such units
into *shards* and runs a caller-supplied chunk function over them in
worker processes:

* **static** dispatch — one shard per worker, placed with the Table IV
  pre-runtime splitters (:func:`contiguous_split` for the naive split,
  :func:`weighted_greedy_split` for the paper's edge-oriented LPT
  policy).
* **dynamic** dispatch — the root list is cut into many small chunks
  which idle workers pull from a shared queue, heaviest chunks first:
  the process-pool analogue of the GCL work-stealing loop in
  :mod:`repro.gpu.workqueue` (an idle block takes the next unprocessed
  root of the most loaded victim).

Execution prefers the **persistent pool** (:mod:`repro.parallel.procpool`):
workers forked once per process and re-fed over pipes, so repeated
sharded calls within a session skip pool spin-up; closures are shipped
by value with a both-sides LRU cache for their heavy state.  Chunk
functions the pool cannot ship fall back to a legacy fork-per-call
``multiprocessing.Pool`` whose children inherit the parent's
graph/index/HTB structures through the fork.  Where ``fork`` is
unavailable (or inside a daemonic worker) execution falls back to
in-process loops — same results, no speedup.

Determinism contract: shard contents depend only on ``(num_items,
workers, placement, weights, dispatch, chunk_size)``, never on
scheduling order, and :func:`run_sharded` returns results keyed by the
original item indices — so any merge that is per-item (scatter by index)
or commutative-associative over exact values (integer sums, maxima)
reproduces the serial result bit for bit.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.balance.preruntime import contiguous_split, weighted_greedy_split
from repro.errors import QueryError
from repro.parallel import procpool

__all__ = ["ShardPlan", "plan_shards", "run_sharded", "default_workers",
           "PLACEMENTS", "DISPATCH_MODES"]

PLACEMENTS = ("contiguous", "weighted")
DISPATCH_MODES = ("static", "dynamic")

#: chunks per worker in dynamic mode — small enough to amortise task
#: overhead, large enough that stragglers can be back-filled (mirrors the
#: stealing granularity of one GCL entry per block)
_DYNAMIC_CHUNKS_PER_WORKER = 4


def default_workers() -> int:
    """Worker count when the caller does not pin one: usable CPUs."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of item indices to dispatch units."""

    shards: tuple[tuple[int, ...], ...]
    placement: str
    dispatch: str
    workers: int

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def covered(self) -> list[int]:
        """All item indices in the plan, sorted (must be a permutation)."""
        return sorted(i for shard in self.shards for i in shard)


def _validate(workers: int, placement: str, dispatch: str) -> None:
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    if placement not in PLACEMENTS:
        raise QueryError(f"placement must be one of {PLACEMENTS}, "
                         f"got {placement!r}")
    if dispatch not in DISPATCH_MODES:
        raise QueryError(f"dispatch must be one of {DISPATCH_MODES}, "
                         f"got {dispatch!r}")


def plan_shards(num_items: int, workers: int, *,
                placement: str = "weighted",
                weights: np.ndarray | None = None,
                dispatch: str = "static",
                chunk_size: int | None = None) -> ShardPlan:
    """Cut ``num_items`` work units into dispatchable shards.

    Static mode produces at most ``workers`` shards via the pre-runtime
    splitters (``weighted`` degrades to ``contiguous`` when no weights
    are supplied).  Dynamic mode produces contiguous chunks of
    ``chunk_size`` items (default: enough for a few chunks per worker),
    ordered heaviest-first when weights are known so the pool starts the
    long poles early — LPT at chunk granularity.
    """
    _validate(workers, placement, dispatch)
    if num_items <= 0:
        return ShardPlan((), placement, dispatch, workers)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != num_items:
            raise QueryError(f"got {len(weights)} weights for "
                             f"{num_items} items")

    if dispatch == "static":
        if placement == "weighted" and weights is not None:
            groups = weighted_greedy_split(weights, workers)
        else:
            groups = contiguous_split(num_items, workers)
    else:
        if chunk_size is None:
            chunk_size = -(-num_items // (workers * _DYNAMIC_CHUNKS_PER_WORKER))
        chunk_size = max(1, int(chunk_size))
        groups = [list(range(lo, min(lo + chunk_size, num_items)))
                  for lo in range(0, num_items, chunk_size)]
        if weights is not None:
            # stable heaviest-first dispatch order; ties keep chunk order
            totals = [-float(weights[g].sum()) for g in
                      (np.asarray(g, dtype=np.int64) for g in groups)]
            groups = [g for _, g in
                      sorted(zip(totals, groups), key=lambda t: (t[0],
                                                                 t[1][0]))]
    shards = tuple(tuple(int(i) for i in g) for g in groups if g)
    return ShardPlan(shards, placement, dispatch, workers)


# ---------------------------------------------------------------------------
# fork-based execution
#
# ``Pool.map`` pickles its callable, which rules out the closures the
# algorithms naturally build over their graph/index structures.  Instead
# the (fn, shards) pair rides into each worker as the pool initializer's
# argument — under the fork start method initargs are inherited through
# the fork, never pickled — so the only task payload on the wire is a
# shard id, and concurrent pools never see each other's state.
_FORK_STATE: tuple[Callable[[Sequence[int]], Any],
                   tuple[tuple[int, ...], ...]] | None = None


def _init_worker(state) -> None:
    global _FORK_STATE
    _FORK_STATE = state


def _run_shard(shard_id: int) -> tuple[int, Any]:
    fn, shards = _FORK_STATE
    return shard_id, fn(shards[shard_id])


def _fork_available() -> bool:
    if "fork" not in mp.get_all_start_methods():
        return False  # pragma: no cover - non-POSIX platforms
    # daemonic pool workers may not spawn their own children
    return not mp.current_process().daemon


def run_sharded(fn: Callable[[Sequence[int]], Any],
                num_items: int, *,
                workers: int | None = None,
                placement: str = "weighted",
                weights: np.ndarray | None = None,
                dispatch: str = "static",
                chunk_size: int | None = None
                ) -> list[tuple[tuple[int, ...], Any]]:
    """Run ``fn(item_indices)`` over shards, in worker processes.

    Returns ``[(item_indices, result), ...]`` in shard-id order — a
    deterministic order independent of which worker finished first.
    ``fn`` may be any callable (closures included); it executes in a
    forked child and its return value must be picklable.  With one
    worker, a single shard, or no ``fork`` support, everything runs in
    the calling process.
    """
    workers = default_workers() if workers is None else int(workers)
    plan = plan_shards(num_items, workers, placement=placement,
                       weights=weights, dispatch=dispatch,
                       chunk_size=chunk_size)
    shards = plan.shards
    if not shards:
        return []
    if workers <= 1 or len(shards) == 1 or not _fork_available():
        return [(shard, fn(shard)) for shard in shards]

    # first choice: the persistent pool — workers forked once per
    # process and re-fed across calls, so repeated sharded counts skip
    # pool spin-up.  Anything it cannot ship falls back to the legacy
    # fork-per-call pool below; results are identical either way.
    pool = procpool.get_pool(min(workers, len(shards)))
    if pool is not None:
        try:
            flat = pool.run(fn, shards)
        except procpool.ShipError:
            pass
        else:
            return [(shards[sid], res) for sid, res in enumerate(flat)]

    ctx = mp.get_context("fork")
    with ctx.Pool(processes=min(workers, len(shards)),
                  initializer=_init_worker,
                  initargs=((fn, shards),)) as pool:
        if dispatch == "dynamic":
            # imap_unordered is the self-scheduling queue: each idle
            # worker pulls the next pending chunk, like an idle block
            # advancing a victim's GCL entry
            results = list(pool.imap_unordered(_run_shard,
                                               range(len(shards))))
        else:
            results = pool.map(_run_shard, range(len(shards)),
                               chunksize=1)
    results.sort(key=lambda pair: pair[0])
    return [(shards[sid], res) for sid, res in results]
