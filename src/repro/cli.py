"""Command-line interface: count, plan, enumerate, estimate, reproduce.

Examples::

    python -m repro count --dataset YT --scale tiny -p 3 -q 3
    python -m repro count --graph my_edges.txt -p 2 -q 2 --method BCL
    python -m repro count --dataset YT --scale bench -p 3 -q 3 --method auto
    python -m repro plan explain --dataset YT --scale tiny -p 3 -q 3
    python -m repro batch --dataset YT --scale tiny --queries 3x3,3x4,4x4
    python -m repro serve-bench --graphs YT,S1 --scale tiny --duration 2
    python -m repro enumerate --dataset S1 --scale tiny -p 3 -q 2 --limit 5
    python -m repro estimate --dataset YT --scale bench -p 4 -q 4 --samples 32
    python -m repro datasets
    python -m repro experiment fig9 --scale tiny
    python -m repro count --dataset YT --scale tiny -p 3 -q 3 --trace t.jsonl
    python -m repro trace summarize t.jsonl
    python -m repro plan explain --dataset YT --scale tiny -p 3 -q 3 \\
        --ledger costs.json --measure
    python -m repro leaderboard
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import experiments as exp_mod
from repro.bench.datasets import PAPER_STATS, list_datasets, load_dataset
from repro.bench.runner import headline_seconds, run_method
from repro.bench.tables import format_seconds, render_table
from repro.core.counts import BicliqueQuery, DeviceRunResult
from repro.core.enumerate import enumerate_bicliques
from repro.engine import BACKEND_NAMES
from repro.errors import DeadlineExceededError, PlanError, QueryError
from repro.graph.io import read_edge_list
from repro.graph.stats import compute_stats
from repro.plan import (ACCURACIES, AUTO, Planner, execute_plan,
                        explicit_plan, method_names)
from repro.query import GraphSession, batch_count, parse_queries

__all__ = ["main", "build_parser"]


def _method_choices() -> list[str]:
    """Every --method choice: the live registry listing plus the
    planner directive — read at parser-build time, so a counter
    registered before :func:`build_parser` runs is offered."""
    return list(method_names()) + [AUTO]


EXPERIMENTS = {
    "fig1b": exp_mod.experiment_fig1b,
    "table2": exp_mod.experiment_table2,
    "fig7": exp_mod.experiment_fig7,
    "fig8": exp_mod.experiment_fig8,
    "fig9": exp_mod.experiment_fig9,
    "table3": exp_mod.experiment_table3,
    "table4": exp_mod.experiment_table4,
    "fig10": exp_mod.experiment_fig10,
    "table5": exp_mod.experiment_table5,
    "fig11": exp_mod.experiment_fig11,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="(p,q)-biclique counting — GBC reproduction (ICDE'24)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log the serving/planning internals to "
                             "stderr (-v info, -vv debug); goes before "
                             "the subcommand")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_arg(p):
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="record cross-layer spans (planner, prepared-"
                            "state builds, kernel batches, scheduler "
                            "lifecycle) to a JSONL file; inspect with "
                            "'repro trace summarize PATH'")

    def add_graph_args(p):
        src = p.add_mutually_exclusive_group(required=True)
        src.add_argument("--graph", help="edge-list file (plain or KONECT)")
        src.add_argument("--dataset", choices=list_datasets(),
                         help="a Table II stand-in")
        p.add_argument("--scale", default="tiny",
                       choices=("tiny", "bench", "full"),
                       help="stand-in scale (default tiny)")

    c = sub.add_parser("count", help="count (p,q)-bicliques")
    add_graph_args(c)
    c.add_argument("-p", type=int, required=True)
    c.add_argument("-q", type=int, required=True)
    c.add_argument("--method", default=None, choices=_method_choices(),
                   help="counting algorithm; 'auto' lets the cost-based "
                        "planner choose (default GBC, or auto when "
                        "--accuracy is not exact)")
    c.add_argument("--backend", default=None, choices=list(BACKEND_NAMES),
                   help="kernel execution engine: 'sim' reports simulated "
                        "device metrics, 'fast' skips instrumentation, "
                        "'par' shards roots over worker processes "
                        "(default: sim, or par when --workers is given)")
    c.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker processes for the parallel engine; "
                        "implies --backend par (default: all usable CPUs "
                        "when --backend par is chosen explicitly)")
    c.add_argument("--accuracy", default="exact", choices=list(ACCURACIES),
                   help="service tier: exact counts, the sampling tier "
                        "(reports a 95%% CI), or auto (exact when it "
                        "fits the deadline; default exact)")
    c.add_argument("--deadline", type=float, default=None, metavar="SECS",
                   help="latency budget the plan must fit; with "
                        "--accuracy exact a predicted overrun is an "
                        "error, with auto it downgrades to sampling")
    add_trace_arg(c)

    b = sub.add_parser("batch",
                       help="run many (p,q) queries with shared "
                            "precomputation and a result cache")
    add_graph_args(b)
    b.add_argument("--queries", required=True, metavar="PxQ[,PxQ...]",
                   help="comma-separated query list, e.g. 3x3,3x4,4x4")
    b.add_argument("--method", default=None, choices=_method_choices(),
                   help="counting algorithm; 'auto' plans once per "
                        "query shape and shares prepared state "
                        "(default GBC, or auto when --accuracy is "
                        "not exact)")
    b.add_argument("--backend", default=None, choices=list(BACKEND_NAMES),
                   help="kernel execution engine shared by the whole batch "
                        "(default: sim, or par when --workers is given)")
    b.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker processes for the parallel engine; "
                        "implies --backend par")
    b.add_argument("--accuracy", default="exact", choices=list(ACCURACIES),
                   help="service tier for every query in the batch "
                        "(default exact)")
    b.add_argument("--deadline", type=float, default=None, metavar="SECS",
                   help="per-query latency budget (see count --deadline)")
    add_trace_arg(b)

    sb = sub.add_parser(
        "serve-bench",
        help="benchmark the concurrent serving subsystem against a "
             "naive one-query-at-a-time loop and write a JSON artifact")
    sb.add_argument("--graphs", default="YT,S1", metavar="KEY[,KEY...]",
                    help="comma-separated Table II stand-in keys served "
                         "by the pool, hottest first (default YT,S1)")
    sb.add_argument("--scale", default="tiny",
                    choices=("tiny", "bench", "full"),
                    help="stand-in scale (default tiny)")
    sb.add_argument("--queries", type=int, default=200, metavar="N",
                    help="total requests in the workload (default 200)")
    sb.add_argument("--duration", type=float, default=None, metavar="SECS",
                    help="run for wall time instead of a request count")
    sb.add_argument("--mode", default="closed", choices=("closed", "open"),
                    help="closed loop (clients wait) or open loop "
                         "(fixed-rate pacer; default closed)")
    sb.add_argument("--clients", type=int, default=8,
                    help="closed-loop client threads (default 8)")
    sb.add_argument("--rate", type=float, default=200.0,
                    help="open-loop submission rate in qps (default 200)")
    sb.add_argument("--shapes", default="2x2,2x3,3x3", metavar="PxQ[,...]",
                    help="query-shape mix (default 2x2,2x3,3x3)")
    sb.add_argument("--zipf", type=float, default=1.1,
                    help="graph-popularity skew exponent (default 1.1)")
    sb.add_argument("--method", default=None, choices=_method_choices(),
                    help="counting algorithm; 'auto' adapts per "
                         "(graph, shape) through the pooled sessions "
                         "(default GBC, or auto when --accuracy is "
                         "not exact)")
    sb.add_argument("--backend", default="fast",
                    choices=list(BACKEND_NAMES),
                    help="kernel engine batches execute on (default fast)")
    sb.add_argument("--window-ms", type=float, default=2.0,
                    help="micro-batching window in ms (default 2)")
    sb.add_argument("--max-batch", type=int, default=64,
                    help="per-batch request cap (default 64)")
    sb.add_argument("--max-pending", type=int, default=1024,
                    help="admission bound before backpressure "
                         "(default 1024)")
    sb.add_argument("--sched-workers", type=int, default=2, metavar="N",
                    help="scheduler worker threads (default 2)")
    sb.add_argument("--max-sessions", type=int, default=None, metavar="N",
                    help="session-pool entry budget "
                         "(default: one per graph)")
    sb.add_argument("--deadline", type=float, default=None, metavar="SECS",
                    help="per-request deadline")
    sb.add_argument("--accuracy", default="exact",
                    choices=list(ACCURACIES),
                    help="service tier of every request: exact, the "
                         "sampling tier, or auto — exact when it fits "
                         "the deadline, sampling otherwise "
                         "(default exact)")
    sb.add_argument("--seed", type=int, default=0)
    sb.add_argument("--naive-limit", type=int, default=100, metavar="N",
                    help="request cap for the naive baseline (default 100)")
    sb.add_argument("--no-verify", action="store_true",
                    help="skip the direct-recount correctness oracle")
    sb.add_argument("--output", default="benchmarks/artifacts/"
                                        "BENCH_serve.json",
                    help="artifact path (default benchmarks/artifacts/"
                         "BENCH_serve.json)")
    add_trace_arg(sb)

    db = sub.add_parser(
        "serve-dist-bench",
        help="benchmark the multi-process serving tier over a "
             "topology x graph-size grid; writes BENCH_dist.json")
    db.add_argument("--topologies", default="1,2,4", metavar="N[,N...]",
                    help="worker counts of the grid; 1 is the "
                         "in-process baseline (default 1,2,4)")
    db.add_argument("--sizes", default="small,medium",
                    metavar="SIZE[,SIZE...]",
                    help="graph-size tiers of the grid "
                         "(small, medium; default both)")
    db.add_argument("--repetitions", type=int, default=2, metavar="N",
                    help="workload repetitions per grid point "
                         "(default 2)")
    db.add_argument("--queries", type=int, default=160, metavar="N",
                    help="requests per workload run (default 160)")
    db.add_argument("--clients", type=int, default=8,
                    help="closed-loop client threads (default 8)")
    db.add_argument("--zipf", type=float, default=1.1,
                    help="graph-popularity skew exponent (default 1.1)")
    db.add_argument("--replication", type=int, default=2, metavar="R",
                    help="replicas for the zipf-hot graph (default 2)")
    db.add_argument("--method", default="GBC",
                    choices=_method_choices(),
                    help="counting algorithm (default GBC)")
    db.add_argument("--backend", default="fast",
                    choices=list(BACKEND_NAMES),
                    help="kernel engine inside workers (default fast)")
    db.add_argument("--seed", type=int, default=17)
    db.add_argument("--no-verify", action="store_true",
                    help="skip the direct-recount correctness oracle")
    db.add_argument("--output", default="benchmarks/artifacts/"
                                        "BENCH_dist.json",
                    help="artifact path (default benchmarks/artifacts/"
                         "BENCH_dist.json)")

    mb = sub.add_parser(
        "serve-mutate-bench",
        help="benchmark incremental (p,q) maintenance against "
             "rebuild-per-edit and drive a mixed read/write workload; "
             "writes BENCH_mutate.json")
    mb.add_argument("--graphs", default="YT,S1", metavar="KEY[,KEY...]",
                    help="comma-separated Table II stand-in keys "
                         "(default YT,S1)")
    mb.add_argument("--scale", default="tiny",
                    choices=("tiny", "bench", "full"),
                    help="stand-in scale (default tiny)")
    mb.add_argument("--shapes", default="2x2,2x3,3x3", metavar="PxQ[,...]",
                    help="tracked query shapes (default 2x2,2x3,3x3)")
    mb.add_argument("--edits", type=int, default=200, metavar="N",
                    help="toggle-stream length per graph (default 200)")
    mb.add_argument("--rebuild-limit", type=int, default=16, metavar="N",
                    help="edit cap for the rebuild-per-edit baseline "
                         "(a rate needs few edits; default 16)")
    mb.add_argument("--method", default="GBC", choices=_method_choices(),
                    help="counting algorithm for recounts/rebuilds")
    mb.add_argument("--backend", default="fast",
                    choices=list(BACKEND_NAMES),
                    help="kernel engine (default fast)")
    mb.add_argument("--seed", type=int, default=0)
    mb.add_argument("--queries", type=int, default=120, metavar="N",
                    help="mixed read/write serving drive: total draws "
                         "(0 disables the serving phase; default 120)")
    mb.add_argument("--clients", type=int, default=8,
                    help="serving-drive client threads (default 8)")
    mb.add_argument("--mutate-fraction", type=float, default=0.15,
                    help="fraction of serving draws that become edge "
                         "toggles (default 0.15)")
    mb.add_argument("--window-ms", type=float, default=2.0,
                    help="micro-batching window in ms (default 2)")
    mb.add_argument("--output", default="benchmarks/artifacts/"
                                        "BENCH_mutate.json",
                    help="artifact path (default benchmarks/artifacts/"
                         "BENCH_mutate.json)")

    pl = sub.add_parser("plan",
                        help="inspect the cost-based query planner")
    plsub = pl.add_subparsers(dest="plan_command", required=True)
    pe = plsub.add_parser(
        "explain",
        help="rank every candidate plan for one query, with predicted "
             "(and optionally measured) cost")
    add_graph_args(pe)
    pe.add_argument("-p", type=int, required=True)
    pe.add_argument("-q", type=int, required=True)
    pe.add_argument("--backend", default=None, choices=list(BACKEND_NAMES),
                    help="rank candidates under this engine "
                         "(default: the planner's free choice, fast)")
    pe.add_argument("--workers", type=int, default=None, metavar="N",
                    help="worker processes; implies --backend par")
    pe.add_argument("--samples", type=int, default=8,
                    help="roots per sampling probe (default 8)")
    pe.add_argument("--seed", type=int, default=0,
                    help="probe seed (plans are deterministic per seed)")
    pe.add_argument("--measure", action="store_true",
                    help="also execute every candidate and report its "
                         "measured headline seconds")
    pe.add_argument("--accuracy", default="exact",
                    choices=list(ACCURACIES),
                    help="rank this service tier's candidates "
                         "(default exact; the approx alternative is "
                         "always shown)")
    pe.add_argument("--deadline", type=float, default=None, metavar="SECS",
                    help="latency budget the ranked plans must fit")
    pe.add_argument("--ledger", default=None, metavar="PATH",
                    help="cost-ledger JSON: measured runs recorded there "
                         "calibrate the ranking and add observed/"
                         "calibrated columns; with --measure this run's "
                         "measurements are recorded back into it")

    t = sub.add_parser("trace",
                       help="inspect cross-layer trace files")
    tsub = t.add_subparsers(dest="trace_command", required=True)
    ts = tsub.add_parser(
        "summarize",
        help="aggregate a --trace JSONL file into a per-span "
             "time / self-time tree")
    ts.add_argument("path", help="JSONL file written by --trace")

    lb = sub.add_parser(
        "leaderboard",
        help="assemble BENCH_*.json artifacts into the regression "
             "leaderboard (BENCH_leaderboard.json + .md)")
    lb.add_argument("--artifacts", default="benchmarks/artifacts",
                    metavar="DIR",
                    help="artifact directory scanned for BENCH_*.json "
                         "(default benchmarks/artifacts)")
    lb.add_argument("--json-out", default=None, metavar="PATH",
                    help="leaderboard JSON path (default "
                         "DIR/BENCH_leaderboard.json)")
    lb.add_argument("--md-out", default=None, metavar="PATH",
                    help="leaderboard markdown path (default "
                         "DIR/BENCH_leaderboard.md)")

    e = sub.add_parser("enumerate", help="list (p,q)-bicliques")
    add_graph_args(e)
    e.add_argument("-p", type=int, required=True)
    e.add_argument("-q", type=int, required=True)
    e.add_argument("--limit", type=int, default=20)
    e.add_argument("--backend", default="fast", choices=list(BACKEND_NAMES),
                   help="kernel execution engine (enumeration needs no "
                        "metrics, so the default is fast)")

    s = sub.add_parser("estimate", help="sampled approximate count")
    add_graph_args(s)
    s.add_argument("-p", type=int, required=True)
    s.add_argument("-q", type=int, required=True)
    s.add_argument("--samples", type=int, default=64)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--backend", default="fast", choices=list(BACKEND_NAMES),
                   help="kernel engine the estimator's subtree "
                        "enumeration runs on (default fast)")

    sub.add_parser("datasets", help="list the Table II stand-ins")

    x = sub.add_parser("experiment",
                       help="regenerate one paper table/figure")
    x.add_argument("name", choices=sorted(EXPERIMENTS))
    x.add_argument("--scale", default="bench",
                   choices=("tiny", "bench", "full"))
    return parser


def _load(args) -> object:
    if args.graph:
        return read_edge_list(args.graph)
    return load_dataset(args.dataset, args.scale)


def _sim_with_workers(args) -> bool:
    """The one invalid flag combination shared by count/batch: the
    simulated engine's accounting is defined serially."""
    if args.workers is not None and args.backend == "sim":
        print("error: --workers needs the parallel engine; drop "
              "--backend sim or use --backend par", file=sys.stderr)
        return True
    return False


def _resolve_method(args) -> str | None:
    """The effective --method: the historical GBC default, or ``auto``
    when a non-exact tier was asked for without naming a method.  None
    (an argument error) when an explicitly named exact method
    contradicts the requested tier."""
    if args.method is None:
        return AUTO if args.accuracy != "exact" else "GBC"
    if args.accuracy != "exact" and args.method not in (AUTO, "approx"):
        print(f"error: --accuracy {args.accuracy} lets the planner choose "
              f"the method; drop --method {args.method} or use "
              f"--method auto", file=sys.stderr)
        return None
    return args.method


def _print_approx(result) -> None:
    ex = result.extras
    print(f"estimate: {ex['estimate']:.1f} +- {ex['ci95']:.1f} (95% CI, "
          f"s.e. {ex['std_error']:.1f}); sampled {int(ex['samples'])} of "
          f"{int(ex['population'])} root trees, seed {int(ex['seed'])}")


def _cmd_count(args) -> int:
    if _sim_with_workers(args):
        return 2
    method = _resolve_method(args)
    if method is None:
        return 2
    graph = _load(args)
    query = BicliqueQuery(args.p, args.q)
    if method == AUTO or args.accuracy != "exact":
        try:
            plan = Planner(graph).plan(query, backend=args.backend,
                                       workers=args.workers,
                                       accuracy=args.accuracy,
                                       deadline=args.deadline)
        except DeadlineExceededError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        result = execute_plan(plan, graph, query)
        print(f"plan: auto -> {plan.method} on {plan.backend} "
              f"({plan.reason})")
    else:
        if args.deadline is not None:
            predicted = Planner(graph).predict(query, method,
                                               backend=args.backend,
                                               workers=args.workers)
            if predicted > args.deadline:
                print(f"error: {method} predicts {predicted:.3g}s "
                      f"against a {args.deadline:.3g}s deadline; retry "
                      f"with --accuracy auto", file=sys.stderr)
                return 1
        result = run_method(method, graph, query, backend=args.backend,
                            workers=args.workers)
    simulated = isinstance(result, DeviceRunResult) \
        and result.backend_instrumented
    print(f"graph: {graph}")
    print(f"({args.p},{args.q})-bicliques: {result.count}")
    if result.algorithm == "approx":
        _print_approx(result)
    print(f"method: {result.algorithm}, anchored layer: "
          f"{result.anchored_layer}, backend: {result.backend}")
    print(f"time: {format_seconds(headline_seconds(result))} "
          f"({'simulated device' if simulated else 'wall'})")
    if simulated:
        print(f"memory transactions: {result.metrics.global_transactions}; "
              f"utilisation: {result.metrics.utilization * 100:.1f}%; "
              f"steals: {result.steals}")
    return 0


def _cmd_batch(args) -> int:
    if _sim_with_workers(args):
        return 2
    method = _resolve_method(args)
    if method is None:
        return 2
    graph = _load(args)
    try:
        batch = batch_count(graph, args.queries, method=method,
                            backend=args.backend, workers=args.workers,
                            accuracy=args.accuracy, deadline=args.deadline)
    except DeadlineExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = [[str(q),
             f"{r.count} (+-{r.extras['ci95']:.0f})"
             if r.algorithm == "approx" else r.count,
             format_seconds(headline_seconds(r))]
            for q, r in zip(batch.queries, batch.results)]
    print(f"graph: {graph}")
    print(render_table(f"{method} batch "
                       f"(backend: {batch.results[0].backend})",
                       ["query", "count", "time"], rows))
    s = batch.stats
    print(f"shared precomputation: {s.wedge_builds} wedge pass(es), "
          f"{s.order_builds} reorder permutation(s), "
          f"{s.index_builds} two-hop index(es), "
          f"{s.htb_adj_builds + s.htb_two_hop_builds} HTB build(s)")
    print(f"result cache: {batch.cache_hits} hit(s), "
          f"{batch.cache_misses} miss(es)")
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.service import SchedulerConfig, WorkloadSpec, serve_bench
    from repro.service.bench import write_artifact

    method = _resolve_method(args)
    if method is None:
        return 2
    names = [n.strip() for n in args.graphs.split(",") if n.strip()]
    known = list_datasets()
    for name in names:
        if name not in known:
            print(f"error: unknown dataset {name!r}; pick from {known}",
                  file=sys.stderr)
            return 2
    graphs = {name: load_dataset(name, args.scale) for name in names}
    spec = WorkloadSpec(
        graphs=tuple(names),
        shapes=tuple((bq.p, bq.q) for bq in parse_queries(args.shapes)),
        num_queries=args.queries,
        duration_seconds=args.duration,
        mode=args.mode,
        clients=args.clients,
        rate_qps=args.rate,
        zipf_s=args.zipf,
        method=method,
        deadline=args.deadline,
        accuracy=args.accuracy,
        seed=args.seed)
    config = SchedulerConfig(
        batch_window=args.window_ms / 1e3,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        workers=args.sched_workers,
        backend=args.backend,
        method=method,
        accuracy=args.accuracy)
    artifact = serve_bench(graphs, spec, config=config,
                           max_sessions=args.max_sessions,
                           naive_limit=args.naive_limit,
                           verify=not args.no_verify)
    path = write_artifact(artifact, args.output)

    served, naive, tel = (artifact["served"], artifact["naive"],
                          artifact["telemetry"])
    rows = [
        ["served", served["completed"],
         f"{served['throughput_qps']:.1f}",
         f"{tel['latency_ms']['p50']:.1f}",
         f"{tel['latency_ms']['p99']:.1f}"],
        ["naive", naive["requests"],
         f"{naive['throughput_qps']:.1f}", "-", "-"],
    ]
    print(render_table(
        f"serve-bench — {args.mode} loop over {', '.join(names)} "
        f"({args.scale}), backend {args.backend}",
        ["path", "requests", "qps", "p50 [ms]", "p99 [ms]"], rows))
    print(f"speedup vs naive loop: {artifact['speedup_vs_naive']:.2f}x; "
          f"mean batch {tel['batches']['mean_size']:.1f} "
          f"(max {tel['batches']['max_size']}); "
          f"rejected {served['rejected']}, expired {served['expired']}, "
          f"failed {served['failed']}, approx {served['approx_served']}")
    print(f"artifact: {path}")
    if artifact["verified"]:
        mismatches = artifact["mismatches"]
        if mismatches:
            print(f"error: {len(mismatches)} served count(s) differ from "
                  f"direct runs: {mismatches}", file=sys.stderr)
            return 1
        if served["approx_served"]:
            print(f"verified: every exact served count is bit-identical "
                  f"to a direct {method} run; every sampling-tier "
                  f"answer is within its reported 95% CI of the exact "
                  f"count")
        else:
            print(f"verified: every served (graph, p, q) count is "
                  f"bit-identical to a direct {method} run")
    if served["completed"] == 0:
        print("error: workload completed zero requests", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_dist_bench(args) -> int:
    from repro.dist.bench import GRID_SIZES, dist_bench
    from repro.service.bench import write_artifact

    try:
        topologies = tuple(int(t) for t in args.topologies.split(",")
                           if t.strip())
    except ValueError:
        print(f"error: bad --topologies {args.topologies!r}",
              file=sys.stderr)
        return 2
    sizes = tuple(s.strip() for s in args.sizes.split(",") if s.strip())
    for size in sizes:
        if size not in GRID_SIZES:
            print(f"error: unknown size {size!r}; pick from "
                  f"{sorted(GRID_SIZES)}", file=sys.stderr)
            return 2
    artifact = dist_bench(topologies=topologies, sizes=sizes,
                          repetitions=args.repetitions,
                          num_queries=args.queries,
                          clients=args.clients, zipf_s=args.zipf,
                          backend=args.backend, method=args.method,
                          replication=args.replication, seed=args.seed,
                          verify=not args.no_verify)
    path = write_artifact(artifact, args.output)

    rows = [[r["graph_size"], f"{r['topology']}w", r["repetition"],
             r["completed"], f"{r['throughput_qps']:.1f}",
             f"{r['p95_ms']:.1f}", f"{r['failure_rate']:.3f}",
             len(r["mismatches"])]
            for r in artifact["rows"]]
    print(render_table(
        f"serve-dist-bench — {artifact['host']['usable_cpus']} usable "
        f"CPUs, backend {args.backend}",
        ["size", "topology", "rep", "served", "qps", "p95 [ms]",
         "fail rate", "mismatch"], rows))
    speedups = ", ".join(f"{size}: {s:.2f}x"
                         for size, s in
                         sorted(artifact["speedup_vs_1w"].items()))
    print(f"speedup vs 1 worker at {artifact['topologies'][-1]} "
          f"workers: {speedups}")
    print(f"partitioned fan-out exact: "
          f"{artifact['partitioned']['exact']}")
    print(f"artifact: {path}")
    mismatches = sum(len(r["mismatches"]) for r in artifact["rows"])
    if mismatches or not artifact["partitioned"]["exact"]:
        print(f"error: {mismatches} served counts diverged from the "
              f"direct oracle", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_mutate_bench(args) -> int:
    from repro.service import SchedulerConfig, WorkloadSpec, mutate_bench
    from repro.service.bench import write_artifact

    names = [n.strip() for n in args.graphs.split(",") if n.strip()]
    known = list_datasets()
    for name in names:
        if name not in known:
            print(f"error: unknown dataset {name!r}; pick from {known}",
                  file=sys.stderr)
            return 2
    graphs = {name: load_dataset(name, args.scale) for name in names}
    shapes = tuple((bq.p, bq.q) for bq in parse_queries(args.shapes))
    serve_spec = None
    if args.queries > 0:
        serve_spec = WorkloadSpec(
            graphs=tuple(names), shapes=shapes,
            num_queries=args.queries, clients=args.clients,
            method=args.method, seed=args.seed,
            mutate_fraction=args.mutate_fraction)
    config = SchedulerConfig(batch_window=args.window_ms / 1e3,
                             backend=args.backend, method=args.method)
    artifact = mutate_bench(graphs, shapes=shapes, edits=args.edits,
                            rebuild_limit=args.rebuild_limit,
                            method=args.method, backend=args.backend,
                            seed=args.seed, serve_spec=serve_spec,
                            config=config)
    path = write_artifact(artifact, args.output)

    rows = [[g["graph"], g["edits"],
             f"{g['incremental_edits_per_s']:.1f}",
             f"{g['rebuild_edits_per_s']:.1f}",
             f"{g['speedup_vs_rebuild']:.1f}",
             g["dynamic_stats"]["cutover_deferrals"],
             len(g["mismatches"])]
            for g in artifact["graphs"]]
    print(render_table(
        f"serve-mutate-bench — {args.edits} toggles over "
        f"{', '.join(names)} ({args.scale}), shapes {args.shapes}, "
        f"backend {args.backend}",
        ["graph", "edits", "incr edits/s", "rebuild edits/s",
         "speedup", "cutovers", "mismatches"], rows))
    if serve_spec is not None:
        served = artifact["serve"]["served"]
        print(f"mixed serving drive: {served['completed']} reads, "
              f"{served['mutations']} mutations, "
              f"{served['failed']} failed, "
              f"{served['throughput_qps']:.1f} qps; final epochs "
              f"{artifact['serve']['pool']['dynamic_epochs']}")
    print(f"min speedup vs rebuild-per-edit: "
          f"{artifact['min_speedup_vs_rebuild']:.1f}x")
    print(f"artifact: {path}")
    if artifact["mismatches"]:
        print(f"error: {artifact['mismatches']} incremental count(s) "
              f"differ from rebuild/recount", file=sys.stderr)
        return 1
    if serve_spec is not None and artifact["serve"]["served"]["failed"]:
        print("error: mixed serving drive recorded failures",
              file=sys.stderr)
        return 1
    return 0


def _cmd_plan(args) -> int:
    if args.plan_command != "explain":   # pragma: no cover - argparse
        return 2
    if _sim_with_workers(args):
        return 2
    graph = _load(args)
    query = BicliqueQuery(args.p, args.q)
    ledger = None
    if args.ledger:
        import os

        from repro.obs import CostLedger
        ledger = CostLedger.load(args.ledger) \
            if os.path.exists(args.ledger) else CostLedger()
    planner = Planner(graph, samples=args.samples, seed=args.seed,
                      ledger=ledger)
    try:
        ranked = planner.rank(query, backend=args.backend,
                              workers=args.workers,
                              accuracy=args.accuracy,
                              deadline=args.deadline)
    except DeadlineExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    headers = ["rank", "method", "backend", "predicted"]
    if ledger is not None:
        headers += ["observed", "calibrated"]
    headers.append("error")
    if args.measure:
        headers.append("measured")
    rows = []
    for position, plan in enumerate(ranked, start=1):
        marker = " <- chosen" if position == 1 else ""
        rel = plan.signals.get("predicted_rel_error")
        row = [f"{position}{marker}", plan.method, plan.backend,
               format_seconds(plan.predicted_seconds)]
        if ledger is not None:
            row.append("-" if plan.observed_seconds is None
                       else format_seconds(plan.observed_seconds))
            row.append("-" if plan.calibrated_seconds is None
                       else format_seconds(plan.calibrated_seconds))
        row.append("exact" if rel is None else f"~{rel * 100:.0f}%")
        if args.measure:
            row.append(format_seconds(headline_seconds(
                execute_plan(plan, graph, query, ledger=ledger))))
        rows.append(row)
    print(f"graph: {graph}")
    print(render_table(
        f"plan explain ({args.p},{args.q}) — "
        f"{len(ranked)} candidate plan(s), cheapest first", headers, rows))
    if ledger is not None and args.measure:
        cells = ledger.save(args.ledger)
        print(f"ledger: {cells} cell(s) now in {args.ledger} "
              f"(re-run to see the calibrated ranking)")
    chosen = ranked[0]
    signals = chosen.signals
    print(f"chosen: {chosen.method} on {chosen.backend} — {chosen.reason}")
    print(f"probe: {signals['population']} promising roots "
          f"(Basic sees {signals['basic_population']}), "
          f"~{signals['comparisons']:.0f} comparisons "
          f"(id order ~{signals['basic_comparisons']:.0f}), "
          f"est. count {signals['est_count']:.0f}, "
          f"anchored layer {signals['anchored_layer']}")
    print(f"prepared state: {', '.join(chosen.prepared)}")
    if args.accuracy == "exact":
        # always show what the sampling tier would buy, so the
        # exact-vs-approx trade is visible without re-running
        try:
            alt = planner.rank(query, backend=args.backend,
                               workers=args.workers,
                               accuracy="approx")[0]
        except (PlanError, QueryError):
            return 0       # e.g. a pinned engine the approx tier lacks
        rel = alt.signals["predicted_rel_error"]
        print(f"approx tier: {alt.samples}-sample estimate predicted "
              f"{format_seconds(alt.predicted_seconds)} "
              f"(~{rel * 100:.0f}% rel. error) on {alt.backend}")
    return 0


def _cmd_trace(args) -> int:
    if args.trace_command != "summarize":   # pragma: no cover - argparse
        return 2
    from repro.obs.trace import load_records, render_summary, summarize
    try:
        records = load_records(args.path)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_summary(summarize(records)))
    return 0


def _cmd_leaderboard(args) -> int:
    from repro.obs.leaderboard import write_leaderboard
    from repro.obs.schema import SchemaError
    try:
        json_path, md_path, board = write_leaderboard(
            args.artifacts, out_json=args.json_out, out_md=args.md_out)
    except SchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    summary = board["summary"]
    print(f"leaderboard: {len(board['cells'])} cell(s) from "
          f"{len(board['artifacts'])} artifact(s) — "
          f"{summary['win']} win(s), {summary['regression']} "
          f"regression(s), {summary['flat']} flat, {summary['new']} new")
    print(f"wrote {json_path}")
    print(f"wrote {md_path}")
    return 0


def _cmd_enumerate(args) -> int:
    graph = _load(args)
    query = BicliqueQuery(args.p, args.q)
    shown = 0
    for left, right in enumerate_bicliques(graph, query, limit=args.limit,
                                           backend=args.backend):
        print(f"L={list(left)} R={list(right)}")
        shown += 1
    if shown == 0:
        print("(no bicliques)")
    elif shown == args.limit:
        print(f"... (stopped at --limit {args.limit})")
    return 0


def _cmd_estimate(args) -> int:
    graph = _load(args)
    query = BicliqueQuery(args.p, args.q)
    # route through the plan layer like every other entry point: the
    # estimator is the registered "approx" method, the session reuses
    # prepared state exactly as a served request would
    session = GraphSession(graph)
    plan = explicit_plan(graph, query, "approx", backend=args.backend,
                         samples=args.samples, seed=args.seed)
    result = execute_plan(plan, graph, query, session=session)
    ex = result.extras
    print(f"estimate: {ex['estimate']:.1f} (+- {ex['std_error']:.1f} s.e., "
          f"95% CI +- {ex['ci95']:.1f})")
    print(f"count: {result.count} (rounded), backend: {result.backend}")
    print(f"sampled {int(ex['samples'])} of {int(ex['population'])} "
          f"root trees in {format_seconds(result.wall_seconds)}")
    return 0


def _cmd_datasets(_args) -> int:
    rows = []
    for key in list_datasets():
        g = load_dataset(key, "tiny")
        s = compute_stats(g)
        pu, pv, pe, _, _ = PAPER_STATS[key]
        rows.append([key, s.num_u, s.num_v, s.num_edges,
                     f"{pu}/{pv}/{pe}"])
    print(render_table("Table II stand-ins (tiny scale)",
                       ["key", "|U|", "|V|", "|E|", "paper |U|/|V|/|E|"],
                       rows))
    return 0


def _cmd_experiment(args) -> int:
    result = EXPERIMENTS[args.name](scale=args.scale)
    print(result.text)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatch; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "count": _cmd_count,
        "plan": _cmd_plan,
        "batch": _cmd_batch,
        "serve-bench": _cmd_serve_bench,
        "serve-dist-bench": _cmd_serve_dist_bench,
        "serve-mutate-bench": _cmd_serve_mutate_bench,
        "trace": _cmd_trace,
        "leaderboard": _cmd_leaderboard,
        "enumerate": _cmd_enumerate,
        "estimate": _cmd_estimate,
        "datasets": _cmd_datasets,
        "experiment": _cmd_experiment,
    }
    if args.verbose:
        from repro.obs import configure_logging
        configure_logging(args.verbose)
    recorder = None
    if getattr(args, "trace", None):
        from repro.obs import TraceRecorder, enable_tracing
        recorder = enable_tracing(TraceRecorder())
    try:
        return handlers[args.command](args)
    finally:
        if recorder is not None:
            from repro.obs import disable_tracing
            disable_tracing()
            n = recorder.dump(args.trace)
            print(f"trace: {n} record(s) -> {args.trace}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
