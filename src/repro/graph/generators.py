"""Synthetic bipartite-graph generators.

Includes the paper's own synthetic recipe (§VII-A: power-law 2-hop richness,
then random neighbour selection), plus generic families used for testing
and the dataset stand-ins (power-law, uniform random, planted bicliques,
stars).  All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = [
    "random_bipartite",
    "power_law_bipartite",
    "paper_synthetic",
    "planted_bicliques",
    "star_bipartite",
]


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_bipartite(num_u: int, num_v: int, num_edges: int,
                     seed: int | None = 0,
                     name: str = "random") -> BipartiteGraph:
    """Erdos-Renyi-style bipartite graph with ~``num_edges`` distinct edges."""
    if num_edges > num_u * num_v:
        raise GraphValidationError("more edges requested than pairs exist")
    rng = _rng(seed)
    # oversample then dedup; cheap for the sparse regimes we use
    want = num_edges
    seen: set[tuple[int, int]] = set()
    while len(seen) < want:
        k = int((want - len(seen)) * 1.3) + 8
        us = rng.integers(0, num_u, size=k)
        vs = rng.integers(0, num_v, size=k)
        for u, v in zip(us, vs):
            if len(seen) >= want:
                break
            seen.add((int(u), int(v)))
    return from_edges(num_u, num_v, seen, name=name)


def _power_law_degrees(n: int, mean_degree: float, gamma: float,
                       max_degree: int, rng: np.random.Generator) -> np.ndarray:
    """Draw n integer degrees with a zipf-like tail, scaled to mean_degree."""
    raw = rng.zipf(gamma, size=n).astype(np.float64)
    raw = np.minimum(raw, max_degree)
    raw *= mean_degree / max(raw.mean(), 1e-9)
    deg = np.maximum(1, np.round(raw)).astype(np.int64)
    return np.minimum(deg, max_degree)


def power_law_bipartite(num_u: int, num_v: int, num_edges: int,
                        gamma: float = 2.0,
                        seed: int | None = 0,
                        name: str = "power-law") -> BipartiteGraph:
    """Power-law bipartite graph: skewed U degrees, zipf-weighted V targets.

    U-side degrees follow a truncated zipf scaled so the edge total is close
    to ``num_edges``; each u's neighbours are drawn without replacement from
    V with zipf-ranked weights, giving V a skewed degree sequence as well —
    matching the head-heavy shape of the paper's real datasets.
    """
    rng = _rng(seed)
    mean_deg = num_edges / max(num_u, 1)
    degrees = _power_law_degrees(num_u, mean_deg, gamma,
                                 max_degree=num_v, rng=rng)
    weights = 1.0 / np.arange(1, num_v + 1, dtype=np.float64)
    weights /= weights.sum()
    v_ids = rng.permutation(num_v)  # decouple weight rank from vertex id
    edges: list[tuple[int, int]] = []
    for u in range(num_u):
        d = int(degrees[u])
        picks = rng.choice(num_v, size=min(d, num_v), replace=False, p=weights)
        for v in picks:
            edges.append((u, int(v_ids[v])))
    return from_edges(num_u, num_v, edges, name=name)


def paper_synthetic(num_u: int, num_v: int,
                    mean_degree: float = 18.0,
                    gamma: float = 1.8,
                    locality: int = 64,
                    seed: int | None = 0,
                    name: str = "paper-synthetic") -> BipartiteGraph:
    """The paper's synthetic recipe (§VII-A), adapted to explicit parameters.

    The paper generates S1/S2 by (1) fixing |U| and |V|, (2) drawing the
    number of 2-hop neighbours of each u from a power law, adjusted to be
    *larger* than in the real datasets, and (3) randomly selecting
    neighbours accordingly.  2-hop richness grows when vertices share
    neighbours, so we draw a per-u degree from the power law and bias each
    u's neighbour picks into a window of V of width ``locality`` — small
    windows force overlap (many 2-hop neighbours and heavy intersections,
    the uneven-workload regime S1/S2 were designed to stress).
    """
    rng = _rng(seed)
    degrees = _power_law_degrees(num_u, mean_degree, gamma,
                                 max_degree=num_v, rng=rng)
    edges: list[tuple[int, int]] = []
    for u in range(num_u):
        d = int(degrees[u])
        center = int(rng.integers(0, num_v))
        width = max(locality, d + 1)
        lo = max(0, min(center - width // 2, num_v - width))
        window = np.arange(lo, min(lo + width, num_v))
        picks = rng.choice(window, size=min(d, len(window)), replace=False)
        for v in picks:
            edges.append((u, int(v)))
    return from_edges(num_u, num_v, edges, name=name)


def planted_bicliques(num_u: int, num_v: int,
                      plant_sizes: list[tuple[int, int]],
                      noise_edges: int = 0,
                      seed: int | None = 0,
                      name: str = "planted") -> BipartiteGraph:
    """Random noise plus disjoint planted complete (a, b)-bicliques.

    With disjoint plants and no noise, the number of (p, q)-bicliques is
    the sum over plants of C(a, p) * C(b, q) — a second closed-form family
    for correctness tests.
    """
    rng = _rng(seed)
    edges: set[tuple[int, int]] = set()
    next_u, next_v = 0, 0
    for a, b in plant_sizes:
        if next_u + a > num_u or next_v + b > num_v:
            raise GraphValidationError("plants do not fit in the layer sizes")
        for u in range(next_u, next_u + a):
            for v in range(next_v, next_v + b):
                edges.add((u, v))
        next_u += a
        next_v += b
    while len(edges) < len(edges) + noise_edges:  # pragma: no cover - guard
        break
    added = 0
    while added < noise_edges:
        u = int(rng.integers(0, num_u))
        v = int(rng.integers(0, num_v))
        if (u, v) not in edges:
            edges.add((u, v))
            added += 1
    return from_edges(num_u, num_v, edges, name=name)


def star_bipartite(num_leaves: int, center_on_u: bool = True,
                   name: str = "star") -> BipartiteGraph:
    """One hub connected to every vertex of the other layer.

    Ground truth: only (1, q) (or (p, 1)) bicliques exist.
    """
    if center_on_u:
        return from_edges(1, num_leaves, ((0, v) for v in range(num_leaves)),
                          name=name)
    return from_edges(num_leaves, 1, ((u, 0) for u in range(num_leaves)),
                      name=name)
