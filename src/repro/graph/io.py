"""Reading and writing bipartite graphs as edge-list text files.

Two dialects are supported:

* **plain** — one ``u v`` pair per line; layer sizes inferred (or given).
* **konect** — the KONECT bipartite convention used by the paper's
  datasets: a ``% bip`` header, optional ``% |E| |U| |V|`` size line,
  1-based ids, ``%``-prefixed comment lines.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.errors import GraphFormatError
from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.builders import from_edges

__all__ = ["read_edge_list", "write_edge_list", "loads", "dumps"]


def _parse(stream: TextIO, name: str) -> BipartiteGraph:
    edges: list[tuple[int, int]] = []
    declared: tuple[int, int] | None = None
    one_based = False
    first_comment_seen = False
    for line_no, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("%") or line.startswith("#"):
            body = line.lstrip("%# ").lower()
            if not first_comment_seen and "bip" in body:
                one_based = True
            elif declared is None:
                parts = body.split()
                if len(parts) >= 3 and all(p.isdigit() for p in parts[:3]):
                    # KONECT size line: |E| |U| |V|
                    declared = (int(parts[1]), int(parts[2]))
            first_comment_seen = True
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {line_no}: expected 'u v', got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(f"line {line_no}: non-integer ids") from exc
        if one_based:
            u, v = u - 1, v - 1
        if u < 0 or v < 0:
            raise GraphFormatError(f"line {line_no}: negative vertex id")
        edges.append((u, v))
    if declared is not None:
        num_u, num_v = declared
    else:
        num_u = 1 + max((u for u, _ in edges), default=-1)
        num_v = 1 + max((v for _, v in edges), default=-1)
    return from_edges(num_u, num_v, edges, name=name)


def read_edge_list(path: str | Path) -> BipartiteGraph:
    """Load a bipartite graph from an edge-list file (plain or KONECT)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        return _parse(fh, name=path.stem)


def loads(text: str, name: str = "from-string") -> BipartiteGraph:
    """Parse an edge list from a string (same dialects as the file reader)."""
    return _parse(io.StringIO(text), name=name)


def write_edge_list(graph: BipartiteGraph, path: str | Path,
                    konect: bool = False) -> None:
    """Write ``graph`` as an edge list; KONECT dialect is 1-based with header."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(dumps(graph, konect=konect))


def dumps(graph: BipartiteGraph, konect: bool = False) -> str:
    """Serialise ``graph`` as edge-list text."""
    out: list[str] = []
    if konect:
        out.append("% bip")
        out.append(f"% {graph.num_edges} {graph.num_u} {graph.num_v}")
        base = 1
    else:
        out.append(f"# {graph.num_edges} {graph.num_u} {graph.num_v}")
        base = 0
    for u in range(graph.num_u):
        for v in graph.neighbors(LAYER_U, u):
            out.append(f"{u + base} {int(v) + base}")
    return "\n".join(out) + "\n"
