"""Vertex priority (Definition 2) and layer selection.

The paper assigns each vertex of the anchored layer a unique priority so
that every biclique is enumerated exactly once (search proceeds from high
priority to low priority) and so that work is spread away from the
power-law head: a vertex with a *smaller* ``|N2^q|`` gets a *higher*
priority, ties broken by smaller id.

Layer selection follows BCL's degree heuristic: anchoring on layer U makes
the search trees branch over U's 2-hop neighbourhoods, whose total size is
the wedge count through V, i.e. sum over v of d(v)^2 terms.  We anchor on
the layer with the cheaper wedge mass.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V
from repro.graph.twohop import two_hop_multiset

__all__ = ["priority_order", "priority_order_from_sizes", "priority_rank",
           "rank_from_order", "select_layer", "wedge_mass"]


def _n2k_sizes(graph: BipartiteGraph, layer: str, k: int) -> np.ndarray:
    n = graph.layer_size(layer)
    sizes = np.zeros(n, dtype=np.int64)
    for u in range(n):
        _, counts = two_hop_multiset(graph, layer, u)
        sizes[u] = int(np.count_nonzero(counts >= k))
    return sizes


def priority_order(graph: BipartiteGraph, layer: str, k: int) -> np.ndarray:
    """Vertices of ``layer`` sorted from highest to lowest priority.

    Position 0 holds the highest-priority vertex: the one with the fewest
    qualified 2-hop neighbours (|N2^k|), ties broken by smaller id
    (Definition 2).
    """
    return priority_order_from_sizes(_n2k_sizes(graph, layer, k))


def priority_order_from_sizes(sizes: np.ndarray) -> np.ndarray:
    """The Definition-2 order given precomputed |N2^k| sizes.

    Shared by :func:`priority_order` (which enumerates wedges itself)
    and :class:`repro.query.GraphSession` (which reuses one
    :class:`~repro.graph.twohop.WedgeIndex` across k values) so both
    paths sort identically: ascending |N2^k|, ties to the smaller id.
    """
    ids = np.arange(len(sizes), dtype=np.int64)
    return ids[np.lexsort((ids, sizes))]


def rank_from_order(order: np.ndarray) -> np.ndarray:
    """Invert a priority order into rank[vertex] = position (0 = highest).

    Callers that need both the order and the rank should compute the
    order once and invert it here — recomputing the order means a second
    full wedge-enumeration pass over the graph.
    """
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order), dtype=np.int64)
    return rank


def priority_rank(graph: BipartiteGraph, layer: str, k: int) -> np.ndarray:
    """rank[vertex] = position of ``vertex`` in the priority order.

    rank 0 is the highest priority; the counting kernels only extend a
    partial result with strictly larger-rank candidates, which is what
    makes the enumeration duplicate-free.
    """
    return rank_from_order(priority_order(graph, layer, k))


def wedge_mass(graph: BipartiteGraph, through_layer: str) -> int:
    """Sum over vertices w of ``through_layer`` of d(w) * (d(w) - 1).

    This is (twice) the number of wedges centred on that layer — the work
    of collecting 2-hop neighbourhoods for the *opposite* layer.
    """
    d = graph.degrees(through_layer).astype(np.int64)
    return int(np.sum(d * (d - 1)))


def select_layer(graph: BipartiteGraph, p: int, q: int) -> str:
    """Choose the anchored layer as in BCL's degree-based heuristic.

    Anchoring on U costs wedges through V and builds search trees of depth
    p; anchoring on V costs wedges through U with depth q.  We pick the
    smaller wedge mass, breaking ties toward the layer with the smaller
    clique-side parameter (shallower trees).
    """
    cost_u = wedge_mass(graph, LAYER_V)
    cost_v = wedge_mass(graph, LAYER_U)
    if cost_u != cost_v:
        return LAYER_U if cost_u < cost_v else LAYER_V
    return LAYER_U if p <= q else LAYER_V
