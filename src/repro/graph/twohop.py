"""2-hop neighbourhood computation (N2 and N2^k of the paper, §II).

For a vertex ``u`` on the anchored layer, ``N2(u)`` is the set of same-layer
vertices reachable through one intermediate vertex, and ``N2^k(u)`` keeps
only those sharing at least ``k`` common 1-hop neighbours with ``u``
(``k = q`` when anchoring on U).  Biclique counting repeatedly intersects
candidate sets with these lists, so we expose both a per-vertex routine and
a CSR-like precomputed index used by the counting kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.csr import gather_rows

__all__ = ["two_hop_multiset", "n2k", "TwoHopIndex", "build_two_hop_index",
           "WedgeIndex", "build_wedge_index"]


def _layer_csr(graph: BipartiteGraph, layer: str):
    """(own offsets, own neighbors, opposite offsets, opposite neighbors)."""
    from repro.graph.bipartite import LAYER_U
    if layer == LAYER_U:
        return (graph.u_offsets, graph.u_neighbors,
                graph.v_offsets, graph.v_neighbors)
    return (graph.v_offsets, graph.v_neighbors,
            graph.u_offsets, graph.u_neighbors)


def two_hop_multiset(graph: BipartiteGraph, layer: str, vertex: int):
    """Return (vertices, counts): each 2-hop neighbour of ``vertex`` and the
    number of shared 1-hop neighbours.  ``vertex`` itself is excluded.

    Vectorised as one gather over the opposite layer's CSR arrays plus a
    ``unique`` with counts — the wedge enumeration is the hottest part of
    host-side preprocessing for every algorithm.
    """
    mids = graph.neighbors(layer, vertex)
    if len(mids) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    _, _, offs, nbrs = _layer_csr(graph, layer)
    hops, _ = gather_rows(nbrs, offs, mids)
    verts, vals = np.unique(hops, return_counts=True)
    pos = int(np.searchsorted(verts, vertex))
    if pos < len(verts) and verts[pos] == vertex:
        verts = np.delete(verts, pos)
        vals = np.delete(vals, pos)
    return verts, vals.astype(np.int64, copy=False)


def n2k(graph: BipartiteGraph, layer: str, vertex: int, k: int) -> np.ndarray:
    """Sorted array of 2-hop neighbours sharing >= k common neighbours."""
    verts, counts = two_hop_multiset(graph, layer, vertex)
    return verts[counts >= k]


@dataclass(frozen=True)
class TwoHopIndex:
    """Precomputed N2^k lists for one layer in CSR form.

    ``neighbors[offsets[u]:offsets[u+1]]`` is the sorted N2^k(u) list. This
    mirrors what GBC materialises on the host before kernel launch
    (Algorithm 1, line 2).
    """

    layer: str
    k: int
    offsets: np.ndarray
    neighbors: np.ndarray

    def of(self, vertex: int) -> np.ndarray:
        """Sorted N2^k list of ``vertex`` (a view into the index)."""
        return self.neighbors[self.offsets[vertex]:self.offsets[vertex + 1]]

    def size(self, vertex: int) -> int:
        """|N2^k(vertex)|."""
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    def total_entries(self) -> int:
        """Total stored 2-hop entries (memory proxy for BCPar weights)."""
        return int(len(self.neighbors))


@dataclass(frozen=True)
class WedgeIndex:
    """The *full* two-hop multiset of one layer, in CSR form.

    ``neighbors[offsets[u]:offsets[u+1]]`` are the sorted 2-hop
    neighbours of ``u`` and ``counts[...]`` their shared-neighbour
    multiplicities — the raw output of one wedge-enumeration pass,
    before any threshold ``k`` is applied.  Every k-dependent structure
    (|N2^k| sizes for the Definition-2 priority, the rank-filtered
    N2^k index) is a cheap filter over these arrays, which is what lets
    a :class:`repro.query.GraphSession` answer queries with different
    ``q`` values from a single wedge enumeration.
    """

    layer: str
    offsets: np.ndarray
    neighbors: np.ndarray
    counts: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    def _row_ids(self) -> np.ndarray:
        """row_ids[i] = owning vertex of entry i (memoised; the frozen
        dataclass only blocks ``__setattr__``, not ``__dict__`` writes)."""
        cached = self.__dict__.get("_rows")
        if cached is None:
            self.__dict__["_rows"] = cached = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64),
                np.diff(self.offsets))
        return cached

    def n2k_sizes(self, k: int) -> np.ndarray:
        """|N2^k(u)| for every vertex u — the Definition-2 sort key."""
        keep = self.counts >= k
        return np.bincount(self._row_ids()[keep],
                           minlength=self.num_vertices).astype(np.int64)

    def two_hop_index(self, k: int,
                      min_priority_rank: np.ndarray | None = None
                      ) -> TwoHopIndex:
        """Materialise the N2^k index by filtering the stored multiset.

        Produces arrays identical to :func:`build_two_hop_index` on the
        same graph/layer/k/rank, without re-enumerating any wedges.
        """
        keep = self.counts >= k
        rows = self._row_ids()
        if min_priority_rank is not None and len(self.neighbors):
            rank = np.asarray(min_priority_rank, dtype=np.int64)
            keep = keep & (rank[self.neighbors] > rank[rows])
        per_row = np.bincount(rows[keep], minlength=self.num_vertices)
        offsets = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(per_row, out=offsets[1:])
        return TwoHopIndex(layer=self.layer, k=k, offsets=offsets,
                           neighbors=self.neighbors[keep])


#: wedge budget per vectorised batch of build_wedge_index — bounds the
#: transient (hop, root) key arrays to a few hundred MB at int64 width
_WEDGE_CHUNK = 1 << 22


def build_wedge_index(graph: BipartiteGraph, layer: str) -> WedgeIndex:
    """One wedge-enumeration pass over ``layer``: the full 2-hop multiset.

    This is the expensive part of host-side preprocessing; everything
    downstream (priority order, N2^k for any k) filters its output.
    Whole batches of roots are processed per numpy pass: one gather of
    every root's 2-hop endpoints, then a single ``unique`` over combined
    ``root * n + hop`` keys, whose sort order (root-major, hop-minor)
    directly yields the per-root sorted multiset rows.  Batches are cut
    so the transient wedge arrays stay within ``_WEDGE_CHUNK`` entries.
    """
    n = graph.layer_size(layer)
    own_off, mids, opp_off, opp_nbrs = _layer_csr(graph, layer)
    own_off = np.asarray(own_off, dtype=np.int64)
    hop_deg = (opp_off[mids + 1] - opp_off[mids]).astype(np.int64,
                                                         copy=False)
    csum = np.zeros(len(mids) + 1, dtype=np.int64)
    np.cumsum(hop_deg, out=csum[1:])
    wedges_per_root = csum[own_off[1:]] - csum[own_off[:-1]]

    starts = [0]
    acc = 0
    for u, w in enumerate(wedges_per_root.tolist()):
        if acc and acc + w > _WEDGE_CHUNK:
            starts.append(u)
            acc = 0
        acc += w
    starts.append(n)

    vert_parts: list[np.ndarray] = []
    count_parts: list[np.ndarray] = []
    per_root = np.zeros(n, dtype=np.int64)
    for a, b in zip(starts[:-1], starts[1:]):
        e0, e1 = int(own_off[a]), int(own_off[b])
        if e0 == e1:
            continue
        edge_roots = np.repeat(np.arange(a, b, dtype=np.int64),
                               np.diff(own_off[a:b + 1]))
        hops, _ = gather_rows(opp_nbrs, opp_off, mids[e0:e1])
        if len(hops) == 0:
            continue
        hop_roots = np.repeat(edge_roots, hop_deg[e0:e1])
        uniq, cnts = np.unique(hop_roots * n + hops, return_counts=True)
        roots_of = uniq // n
        verts = uniq - roots_of * n
        keep = verts != roots_of          # a root is not its own 2-hop
        roots_of, verts = roots_of[keep], verts[keep]
        vert_parts.append(verts)
        count_parts.append(cnts[keep].astype(np.int64, copy=False))
        per_root += np.bincount(roots_of, minlength=n)

    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(per_root, out=offsets[1:])
    if offsets[-1]:
        neighbors = np.concatenate(vert_parts)
        counts = np.concatenate(count_parts)
    else:
        neighbors = np.empty(0, dtype=np.int64)
        counts = np.empty(0, dtype=np.int64)
    return WedgeIndex(layer=layer, offsets=offsets,
                      neighbors=neighbors, counts=counts)


def build_two_hop_index(graph: BipartiteGraph, layer: str, k: int,
                        min_priority_rank: np.ndarray | None = None) -> TwoHopIndex:
    """Materialise N2^k for every vertex of ``layer``.

    When ``min_priority_rank`` is given (rank[vertex] = position in the
    priority order, 0 = highest priority), only 2-hop neighbours with a
    *lower* priority (larger rank) are stored.  This is the paper's trick
    for avoiding duplicate bicliques and halving index memory (§III-B:
    "neighbors with lower priority are not stored").

    One vectorised wedge pass plus the threshold/rank filter — the same
    arrays a :class:`WedgeIndex` produces, built the same way.
    """
    return build_wedge_index(graph, layer).two_hop_index(
        k, min_priority_rank=min_priority_rank)
