"""Vectorised multi-row gathers over CSR arrays.

Every flat structure in the repo — bipartite adjacency, two-hop
indexes, wedge multisets, HTB word arrays — is CSR-shaped: an
``offsets`` array delimiting per-vertex rows inside one flat ``values``
array.  The batch kernels (:meth:`repro.engine.base.KernelBackend
.intersect_many` and friends) and the wedge enumeration pass all need
the same primitive: *concatenate many rows without a Python-level loop*.

:func:`row_positions` builds the flat source index of that
concatenation with three vectorised ops (the classic repeat/arange
trick), so a whole frontier of adjacency rows gathers as one numpy
fancy-index instead of ``len(rows)`` slice-and-concatenate calls.
"""

from __future__ import annotations

import numpy as np

__all__ = ["row_lengths", "row_positions", "gather_rows"]


def row_lengths(offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """``len(row)`` for every selected row, as int64."""
    rows = np.asarray(rows, dtype=np.int64)
    return (offsets[rows + 1] - offsets[rows]).astype(np.int64, copy=False)


def row_positions(offsets: np.ndarray,
                  rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat indices that concatenate the selected rows, plus row lengths.

    ``values[pos]`` equals ``np.concatenate([values[offsets[r]:
    offsets[r+1]] for r in rows])`` — with empty rows contributing
    nothing — but costs one ``repeat`` and one ``arange`` however many
    rows are selected.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = offsets[rows].astype(np.int64, copy=False)
    lens = (offsets[rows + 1] - starts).astype(np.int64, copy=False)
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lens
    ends = np.cumsum(lens)
    pos = np.arange(total, dtype=np.int64)
    # shift each row's span from output coordinates to source coordinates
    pos += np.repeat(starts - (ends - lens), lens)
    return pos, lens


def gather_rows(values: np.ndarray, offsets: np.ndarray,
                rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The selected rows concatenated flat, plus per-row lengths."""
    pos, lens = row_positions(offsets, rows)
    return values[pos], lens
