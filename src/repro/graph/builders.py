"""Constructors that turn edge lists / adjacency mappings into graphs.

These are the supported ways to create a :class:`BipartiteGraph`; they
deduplicate edges, sort neighbour lists and build both CSR directions.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.bipartite import BipartiteGraph, _csr_from_adjacency, _transpose_csr

__all__ = ["from_edges", "from_adjacency", "empty_graph", "complete_bipartite"]


def from_edges(num_u: int, num_v: int,
               edges: Iterable[tuple[int, int]],
               name: str = "bipartite",
               dedup: bool = True) -> BipartiteGraph:
    """Build a graph from (u, v) pairs with u in [0, num_u), v in [0, num_v).

    Duplicate edges are collapsed when ``dedup`` is True (the default);
    with ``dedup=False`` a duplicate raises :class:`GraphValidationError`.
    """
    edge_list = list(edges)
    if edge_list:
        arr = np.asarray(edge_list, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphValidationError("edges must be (u, v) pairs")
        if arr[:, 0].min() < 0 or arr[:, 0].max() >= num_u:
            raise GraphValidationError("u id out of range")
        if arr[:, 1].min() < 0 or arr[:, 1].max() >= num_v:
            raise GraphValidationError("v id out of range")
        order = np.lexsort((arr[:, 1], arr[:, 0]))
        arr = arr[order]
        if len(arr) > 1:
            same = np.all(arr[1:] == arr[:-1], axis=1)
            if same.any():
                if not dedup:
                    raise GraphValidationError("duplicate edge in input")
                arr = np.concatenate([arr[:1], arr[1:][~same]])
    else:
        arr = np.empty((0, 2), dtype=np.int64)

    u_offsets = np.zeros(num_u + 1, dtype=np.int64)
    np.cumsum(np.bincount(arr[:, 0], minlength=num_u), out=u_offsets[1:])
    u_neighbors = arr[:, 1].copy()
    v_offsets, v_neighbors = _transpose_csr(u_offsets, u_neighbors, num_v)
    g = BipartiteGraph(num_u, num_v, u_offsets, u_neighbors,
                       v_offsets, v_neighbors, name=name)
    return g


def from_adjacency(adjacency: Mapping[int, Sequence[int]] | Sequence[Sequence[int]],
                   num_u: int | None = None,
                   num_v: int | None = None,
                   name: str = "bipartite") -> BipartiteGraph:
    """Build a graph from a U -> neighbours-in-V mapping (or list of lists)."""
    if isinstance(adjacency, Mapping):
        max_u = max(adjacency.keys(), default=-1)
        num_u = num_u if num_u is not None else max_u + 1
        rows = [np.asarray(sorted(set(adjacency.get(u, ()))), dtype=np.int64)
                for u in range(num_u)]
    else:
        num_u = num_u if num_u is not None else len(adjacency)
        if len(adjacency) > num_u:
            raise GraphValidationError("more rows than num_u")
        rows = [np.asarray(sorted(set(adjacency[u])), dtype=np.int64)
                if u < len(adjacency) else np.empty(0, dtype=np.int64)
                for u in range(num_u)]
    max_v = max((int(r[-1]) for r in rows if len(r)), default=-1)
    num_v = num_v if num_v is not None else max_v + 1
    u_offsets, u_neighbors = _csr_from_adjacency(rows, num_v)
    v_offsets, v_neighbors = _transpose_csr(u_offsets, u_neighbors, num_v)
    return BipartiteGraph(num_u, num_v, u_offsets, u_neighbors,
                          v_offsets, v_neighbors, name=name)


def empty_graph(num_u: int, num_v: int, name: str = "empty") -> BipartiteGraph:
    """A graph with the given layer sizes and no edges."""
    return from_edges(num_u, num_v, [], name=name)


def complete_bipartite(num_u: int, num_v: int,
                       name: str | None = None) -> BipartiteGraph:
    """K_{num_u, num_v}: every (u, v) pair is an edge.

    Closed-form ground truth for tests: the number of (p, q)-bicliques is
    C(num_u, p) * C(num_v, q).
    """
    edges = ((u, v) for u in range(num_u) for v in range(num_v))
    return from_edges(num_u, num_v, edges,
                      name=name or f"K_{num_u}_{num_v}")
