"""Dataset statistics, in the shape of the paper's Table II."""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V

__all__ = ["GraphStats", "compute_stats", "cached_stats",
           "graph_fingerprint", "format_table2_row", "TABLE2_HEADER"]

TABLE2_HEADER = f"{'Dataset':<14}{'|U|':>10}{'|V|':>10}{'|E|':>12}{'dU':>9}{'dV':>9}"


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a bipartite graph (Table II columns + extras)."""

    name: str
    num_u: int
    num_v: int
    num_edges: int
    mean_degree_u: float
    mean_degree_v: float
    max_degree_u: int
    max_degree_v: int
    degree_skew_u: float  # max / mean, a cheap skew proxy for load imbalance
    degree_skew_v: float


def compute_stats(graph: BipartiteGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    du = graph.degrees(LAYER_U)
    dv = graph.degrees(LAYER_V)
    mean_u = float(du.mean()) if len(du) else 0.0
    mean_v = float(dv.mean()) if len(dv) else 0.0
    max_u = int(du.max()) if len(du) else 0
    max_v = int(dv.max()) if len(dv) else 0
    return GraphStats(
        name=graph.name,
        num_u=graph.num_u,
        num_v=graph.num_v,
        num_edges=graph.num_edges,
        mean_degree_u=mean_u,
        mean_degree_v=mean_v,
        max_degree_u=max_u,
        max_degree_v=max_v,
        degree_skew_u=(max_u / mean_u) if mean_u else 0.0,
        degree_skew_v=(max_v / mean_v) if mean_v else 0.0,
    )


def graph_fingerprint(graph: BipartiteGraph) -> str:
    """A content hash of the graph's CSR arrays (layer sizes + edges).

    Two structurally identical graphs fingerprint identically whatever
    their ``name``; any edge difference — including in-place mutation
    of the underlying arrays — changes the digest.  This is the cache
    key component that ties cached counts (and the planner's cached
    signals) to graph *content*.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray([graph.num_u, graph.num_v], dtype=np.int64).tobytes())
    for arr in (graph.u_offsets, graph.u_neighbors,
                graph.v_offsets, graph.v_neighbors):
        h.update(np.ascontiguousarray(arr, dtype=np.int64).tobytes())
    return h.hexdigest()


_STATS_CACHE: OrderedDict[tuple[str, str], GraphStats] = OrderedDict()
_STATS_CACHE_SIZE = 64


def cached_stats(graph: BipartiteGraph) -> GraphStats:
    """:func:`compute_stats` memoised by graph content.

    Keyed by ``(fingerprint, name)`` so repeated planning over the same
    graph — or a structurally identical copy — reuses one computation;
    the fingerprint keeps an in-place edge mutation from serving stale
    numbers.  A small LRU bound keeps the cache from growing with every
    graph ever planned.
    """
    key = (graph_fingerprint(graph), graph.name)
    got = _STATS_CACHE.get(key)
    if got is None:
        got = compute_stats(graph)
        _STATS_CACHE[key] = got
        while len(_STATS_CACHE) > _STATS_CACHE_SIZE:
            _STATS_CACHE.popitem(last=False)
    else:
        _STATS_CACHE.move_to_end(key)
    return got


def format_table2_row(stats: GraphStats) -> str:
    """Render one Table II row: name, |U|, |V|, |E|, mean degrees."""
    return (f"{stats.name:<14}{stats.num_u:>10}{stats.num_v:>10}"
            f"{stats.num_edges:>12}{stats.mean_degree_u:>9.2f}"
            f"{stats.mean_degree_v:>9.2f}")
