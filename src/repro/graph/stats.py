"""Dataset statistics, in the shape of the paper's Table II."""

from __future__ import annotations

from dataclasses import dataclass


from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V

__all__ = ["GraphStats", "compute_stats", "format_table2_row", "TABLE2_HEADER"]

TABLE2_HEADER = f"{'Dataset':<14}{'|U|':>10}{'|V|':>10}{'|E|':>12}{'dU':>9}{'dV':>9}"


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a bipartite graph (Table II columns + extras)."""

    name: str
    num_u: int
    num_v: int
    num_edges: int
    mean_degree_u: float
    mean_degree_v: float
    max_degree_u: int
    max_degree_v: int
    degree_skew_u: float  # max / mean, a cheap skew proxy for load imbalance
    degree_skew_v: float


def compute_stats(graph: BipartiteGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    du = graph.degrees(LAYER_U)
    dv = graph.degrees(LAYER_V)
    mean_u = float(du.mean()) if len(du) else 0.0
    mean_v = float(dv.mean()) if len(dv) else 0.0
    max_u = int(du.max()) if len(du) else 0
    max_v = int(dv.max()) if len(dv) else 0
    return GraphStats(
        name=graph.name,
        num_u=graph.num_u,
        num_v=graph.num_v,
        num_edges=graph.num_edges,
        mean_degree_u=mean_u,
        mean_degree_v=mean_v,
        max_degree_u=max_u,
        max_degree_v=max_v,
        degree_skew_u=(max_u / mean_u) if mean_u else 0.0,
        degree_skew_v=(max_v / mean_v) if mean_v else 0.0,
    )


def format_table2_row(stats: GraphStats) -> str:
    """Render one Table II row: name, |U|, |V|, |E|, mean degrees."""
    return (f"{stats.name:<14}{stats.num_u:>10}{stats.num_v:>10}"
            f"{stats.num_edges:>12}{stats.mean_degree_u:>9.2f}"
            f"{stats.mean_degree_v:>9.2f}")
