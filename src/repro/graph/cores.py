"""(α, β)-core decomposition and biclique-aware pruning.

The (α, β)-core of a bipartite graph (Liu et al. [28], cited by the
paper) is the maximal subgraph in which every U-vertex keeps degree >= α
and every V-vertex keeps degree >= β.  Every (p, q)-biclique lives inside
the (q, p)-core — each of its U-vertices has q neighbours *within the
biclique* and each V-vertex has p — so peeling to that core before
counting is a sound (count-preserving) graph reduction, often removing
the long power-law tail outright.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V

__all__ = ["CoreResult", "alpha_beta_core", "prune_for_query"]


@dataclass(frozen=True)
class CoreResult:
    """The vertices surviving an (α, β)-core peel, plus the subgraph."""

    alpha: int
    beta: int
    keep_u: np.ndarray
    keep_v: np.ndarray
    subgraph: BipartiteGraph

    def reduction(self, original: BipartiteGraph) -> float:
        """Fraction of edges removed by the peel."""
        if original.num_edges == 0:
            return 0.0
        return 1.0 - self.subgraph.num_edges / original.num_edges


def alpha_beta_core(graph: BipartiteGraph, alpha: int, beta: int) -> CoreResult:
    """Peel ``graph`` to its (α, β)-core.

    Classic peeling: repeatedly delete any U-vertex with degree < α or
    V-vertex with degree < β; the fixpoint is unique regardless of order.
    """
    deg_u = graph.degrees(LAYER_U).astype(np.int64).copy()
    deg_v = graph.degrees(LAYER_V).astype(np.int64).copy()
    alive_u = np.ones(graph.num_u, dtype=bool)
    alive_v = np.ones(graph.num_v, dtype=bool)
    queue: deque[tuple[str, int]] = deque()
    for u in range(graph.num_u):
        if deg_u[u] < alpha:
            queue.append((LAYER_U, u))
            alive_u[u] = False
    for v in range(graph.num_v):
        if deg_v[v] < beta:
            queue.append((LAYER_V, v))
            alive_v[v] = False
    while queue:
        layer, x = queue.popleft()
        if layer == LAYER_U:
            for v in graph.neighbors(LAYER_U, x):
                v = int(v)
                if alive_v[v]:
                    deg_v[v] -= 1
                    if deg_v[v] < beta:
                        alive_v[v] = False
                        queue.append((LAYER_V, v))
        else:
            for u in graph.neighbors(LAYER_V, x):
                u = int(u)
                if alive_u[u]:
                    deg_u[u] -= 1
                    if deg_u[u] < alpha:
                        alive_u[u] = False
                        queue.append((LAYER_U, u))
    keep_u = np.flatnonzero(alive_u)
    keep_v = np.flatnonzero(alive_v)
    sub = graph.induced_subgraph(keep_u, keep_v,
                                 name=f"{graph.name}/core({alpha},{beta})")
    return CoreResult(alpha=alpha, beta=beta, keep_u=keep_u, keep_v=keep_v,
                      subgraph=sub)


def prune_for_query(graph: BipartiteGraph, p: int, q: int) -> CoreResult:
    """Count-preserving reduction for a (p, q) query: the (q, p)-core.

    The returned subgraph contains every (p, q)-biclique of ``graph``
    (vertex ids are renumbered; use ``keep_u``/``keep_v`` to map back).
    """
    return alpha_beta_core(graph, alpha=q, beta=p)
