"""Core bipartite-graph data structure.

The whole reproduction works over :class:`BipartiteGraph`, an immutable
CSR (compressed sparse row) representation storing *both* directions of the
bipartite adjacency:

* ``U -> V``: ``u_offsets`` / ``u_neighbors``
* ``V -> U``: ``v_offsets`` / ``v_neighbors``

Neighbour lists are always sorted ascending, which every intersection
routine in the package relies on.  Vertices of each layer are dense integer
ids ``0 .. n-1``; the two layers have independent id spaces (as in the
paper, where reordering must also act on each layer independently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphValidationError

__all__ = ["BipartiteGraph", "LAYER_U", "LAYER_V", "other_layer"]

LAYER_U = "U"
LAYER_V = "V"


def other_layer(layer: str) -> str:
    """Return the opposite layer name (``"U"`` <-> ``"V"``)."""
    if layer == LAYER_U:
        return LAYER_V
    if layer == LAYER_V:
        return LAYER_U
    raise ValueError(f"unknown layer {layer!r}; expected 'U' or 'V'")


def _csr_from_adjacency(adj: Sequence[np.ndarray], num_cols: int):
    """Build (offsets, neighbors) CSR arrays from per-vertex sorted lists."""
    offsets = np.zeros(len(adj) + 1, dtype=np.int64)
    for i, row in enumerate(adj):
        offsets[i + 1] = offsets[i] + len(row)
    neighbors = np.empty(int(offsets[-1]), dtype=np.int64)
    for i, row in enumerate(adj):
        neighbors[offsets[i]:offsets[i + 1]] = row
    if len(neighbors) and (neighbors.min() < 0 or neighbors.max() >= num_cols):
        raise GraphValidationError("neighbor id out of range")
    return offsets, neighbors


@dataclass(frozen=True)
class BipartiteGraph:
    """An unweighted, undirected bipartite graph G = (U, V, E) in dual CSR.

    Instances should be built through :mod:`repro.graph.builders` or the
    generators, not by hand; the constructor trusts its arrays (use
    :meth:`validate` when in doubt).
    """

    num_u: int
    num_v: int
    u_offsets: np.ndarray
    u_neighbors: np.ndarray
    v_offsets: np.ndarray
    v_neighbors: np.ndarray
    name: str = field(default="bipartite", compare=False)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of edges |E|."""
        return int(len(self.u_neighbors))

    def layer_size(self, layer: str) -> int:
        """Number of vertices on ``layer``."""
        return self.num_u if layer == LAYER_U else self.num_v

    def neighbors(self, layer: str, vertex: int) -> np.ndarray:
        """Sorted 1-hop neighbours of ``vertex`` on ``layer`` (a view)."""
        if layer == LAYER_U:
            return self.u_neighbors[self.u_offsets[vertex]:self.u_offsets[vertex + 1]]
        return self.v_neighbors[self.v_offsets[vertex]:self.v_offsets[vertex + 1]]

    def degree(self, layer: str, vertex: int) -> int:
        """Degree d(vertex) on ``layer``."""
        if layer == LAYER_U:
            return int(self.u_offsets[vertex + 1] - self.u_offsets[vertex])
        return int(self.v_offsets[vertex + 1] - self.v_offsets[vertex])

    def degrees(self, layer: str) -> np.ndarray:
        """Array of all degrees for ``layer``."""
        if layer == LAYER_U:
            return np.diff(self.u_offsets)
        return np.diff(self.v_offsets)

    def has_edge(self, u: int, v: int) -> bool:
        """True when (u, v) with u in U and v in V is an edge."""
        row = self.neighbors(LAYER_U, u)
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)

    def edges(self) -> Iterable[tuple[int, int]]:
        """Yield every edge as (u, v) with u in U, v in V."""
        for u in range(self.num_u):
            for v in self.neighbors(LAYER_U, u):
                yield u, int(v)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def swapped(self) -> "BipartiteGraph":
        """The same graph with the two layers exchanged (U' = V, V' = U)."""
        return BipartiteGraph(
            num_u=self.num_v,
            num_v=self.num_u,
            u_offsets=self.v_offsets,
            u_neighbors=self.v_neighbors,
            v_offsets=self.u_offsets,
            v_neighbors=self.u_neighbors,
            name=self.name + "/swapped",
        )

    def relabeled(self, perm_u: np.ndarray | None = None,
                  perm_v: np.ndarray | None = None) -> "BipartiteGraph":
        """Apply layer-local permutations; ``perm[old_id] = new_id``.

        Either permutation may be None (identity).  The result is a new
        graph isomorphic to this one, with sorted neighbour lists rebuilt
        under the new ids.  This is how reorderings (Border, Gorder, degree)
        are materialised.
        """
        perm_u = np.arange(self.num_u, dtype=np.int64) if perm_u is None \
            else np.asarray(perm_u, dtype=np.int64)
        perm_v = np.arange(self.num_v, dtype=np.int64) if perm_v is None \
            else np.asarray(perm_v, dtype=np.int64)
        _check_permutation(perm_u, self.num_u, "U")
        _check_permutation(perm_v, self.num_v, "V")

        inv_u = np.empty_like(perm_u)
        inv_u[perm_u] = np.arange(self.num_u, dtype=np.int64)
        new_adj: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * self.num_u
        for old_u in range(self.num_u):
            row = perm_v[self.neighbors(LAYER_U, old_u)]
            row.sort()
            new_adj[int(perm_u[old_u])] = row
        u_off, u_nbr = _csr_from_adjacency(new_adj, self.num_v)
        v_off, v_nbr = _transpose_csr(u_off, u_nbr, self.num_v)
        return BipartiteGraph(self.num_u, self.num_v, u_off, u_nbr,
                              v_off, v_nbr, name=self.name + "/relabeled")

    def induced_subgraph(self, keep_u: np.ndarray, keep_v: np.ndarray,
                         name: str | None = None) -> "BipartiteGraph":
        """Subgraph induced by the given (old-id) vertex subsets.

        Vertices are renumbered densely in the order given.  Used by the
        partition runner to materialise each partition as an autonomous
        graph, mirroring the paper's communication-free design (§VI).
        """
        keep_u = np.asarray(keep_u, dtype=np.int64)
        keep_v = np.asarray(keep_v, dtype=np.int64)
        map_v = {int(v): i for i, v in enumerate(keep_v)}
        adj: list[np.ndarray] = []
        for u in keep_u:
            row = [map_v[int(v)] for v in self.neighbors(LAYER_U, int(u))
                   if int(v) in map_v]
            arr = np.asarray(sorted(row), dtype=np.int64)
            adj.append(arr)
        u_off, u_nbr = _csr_from_adjacency(adj, len(keep_v))
        v_off, v_nbr = _transpose_csr(u_off, u_nbr, len(keep_v))
        return BipartiteGraph(len(keep_u), len(keep_v), u_off, u_nbr,
                              v_off, v_nbr,
                              name=name or (self.name + "/sub"))

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural invariant; raise GraphValidationError."""
        if self.num_u < 0 or self.num_v < 0:
            raise GraphValidationError("negative layer size")
        for side, off, nbr, n_rows, n_cols in (
            ("U", self.u_offsets, self.u_neighbors, self.num_u, self.num_v),
            ("V", self.v_offsets, self.v_neighbors, self.num_v, self.num_u),
        ):
            if len(off) != n_rows + 1:
                raise GraphValidationError(f"{side}: offsets length mismatch")
            if off[0] != 0 or off[-1] != len(nbr):
                raise GraphValidationError(f"{side}: offsets endpoints wrong")
            if np.any(np.diff(off) < 0):
                raise GraphValidationError(f"{side}: offsets not monotone")
            if len(nbr) and (nbr.min() < 0 or nbr.max() >= n_cols):
                raise GraphValidationError(f"{side}: neighbor out of range")
            for row_id in range(n_rows):
                row = nbr[off[row_id]:off[row_id + 1]]
                if len(row) > 1 and np.any(np.diff(row) <= 0):
                    raise GraphValidationError(
                        f"{side}: row {row_id} not strictly sorted")
        if len(self.u_neighbors) != len(self.v_neighbors):
            raise GraphValidationError("edge count differs between directions")
        # spot-check the transpose relation on a few rows
        for u in range(min(self.num_u, 16)):
            for v in self.neighbors(LAYER_U, u):
                back = self.neighbors(LAYER_V, int(v))
                pos = np.searchsorted(back, u)
                if pos >= len(back) or back[pos] != u:
                    raise GraphValidationError(
                        f"edge ({u},{int(v)}) missing from V->U direction")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BipartiteGraph(name={self.name!r}, |U|={self.num_u}, "
                f"|V|={self.num_v}, |E|={self.num_edges})")


def _check_permutation(perm: np.ndarray, n: int, side: str) -> None:
    if len(perm) != n or not np.array_equal(np.sort(perm), np.arange(n)):
        from repro.errors import ReorderError
        raise ReorderError(f"invalid permutation for layer {side}")


def _transpose_csr(offsets: np.ndarray, neighbors: np.ndarray, num_cols: int):
    """Transpose a CSR adjacency (rows -> cols) with sorted output rows."""
    counts = np.bincount(neighbors, minlength=num_cols) if len(neighbors) \
        else np.zeros(num_cols, dtype=np.int64)
    t_offsets = np.zeros(num_cols + 1, dtype=np.int64)
    np.cumsum(counts, out=t_offsets[1:])
    t_neighbors = np.empty(len(neighbors), dtype=np.int64)
    cursor = t_offsets[:-1].copy()
    num_rows = len(offsets) - 1
    for row in range(num_rows):
        for col in neighbors[offsets[row]:offsets[row + 1]]:
            t_neighbors[cursor[col]] = row
            cursor[col] += 1
    # rows were visited in ascending order, so each output row is sorted
    return t_offsets, t_neighbors
