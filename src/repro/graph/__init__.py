"""Bipartite graph substrate: structure, builders, IO, generators, 2-hop."""

from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V, other_layer
from repro.graph.builders import (
    complete_bipartite,
    empty_graph,
    from_adjacency,
    from_edges,
)
from repro.graph.cores import CoreResult, alpha_beta_core, prune_for_query
from repro.graph.generators import (
    paper_synthetic,
    planted_bicliques,
    power_law_bipartite,
    random_bipartite,
    star_bipartite,
)
from repro.graph.io import dumps, loads, read_edge_list, write_edge_list
from repro.graph.priority import priority_order, priority_rank, select_layer, wedge_mass
from repro.graph.stats import GraphStats, compute_stats, format_table2_row
from repro.graph.twohop import TwoHopIndex, build_two_hop_index, n2k, two_hop_multiset

__all__ = [
    "BipartiteGraph", "LAYER_U", "LAYER_V", "other_layer",
    "from_edges", "from_adjacency", "empty_graph", "complete_bipartite",
    "random_bipartite", "power_law_bipartite", "paper_synthetic",
    "planted_bicliques", "star_bipartite",
    "read_edge_list", "write_edge_list", "loads", "dumps",
    "priority_order", "priority_rank", "select_layer", "wedge_mass",
    "GraphStats", "compute_stats", "format_table2_row",
    "TwoHopIndex", "build_two_hop_index", "n2k", "two_hop_multiset",
    "CoreResult", "alpha_beta_core", "prune_for_query",
]
