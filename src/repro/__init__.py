"""repro — reproduction of "Accelerating Biclique Counting on GPU" (ICDE'24).

Public API quickstart:

>>> from repro import BicliqueQuery, gbc_count, random_bipartite
>>> g = random_bipartite(num_u=30, num_v=20, num_edges=200, seed=7)
>>> result = gbc_count(g, BicliqueQuery(2, 3))
>>> result.count
528

Every counting entry point accepts ``backend=`` to pick the execution
engine: ``"sim"`` (default) runs the fully instrumented simulated device,
``"fast"`` runs pure vectorised NumPy with the instrumentation compiled
out, and ``"par"`` shards the root set over forked worker processes —
identical counts in every case:

>>> gbc_count(g, BicliqueQuery(2, 3), backend="fast").count
528
>>> gbc_count(g, BicliqueQuery(2, 3), workers=2).count  # implies "par"
528

Many queries over one graph should share their precomputation (priority
reorder, two-hop index, HTB) through the batch engine in
:mod:`repro.query`:

>>> from repro import batch_count
>>> batch_count(g, "2x2,2x3,3x3", backend="fast").counts
[908, 528, 118]

Packages:

* :mod:`repro.engine` — the kernel-backend layer (pluggable execution
  engines behind every intersection).
* :mod:`repro.graph` — bipartite CSR graphs, IO, generators, 2-hop index.
* :mod:`repro.gpu` — the simulated SIMT device (warps, transactions,
  cost model) standing in for the paper's RTX 3090.
* :mod:`repro.htb` — Hierarchical Truncated Bitmap.
* :mod:`repro.reorder` — Border / Gorder / degree reorderings.
* :mod:`repro.balance` — pre-runtime + work-stealing load balancing.
* :mod:`repro.parallel` — shard orchestration for multi-process counting.
* :mod:`repro.partition` — BCPar and the METIS-like baseline.
* :mod:`repro.core` — the counting algorithms (Basic, BCL, BCLP, GBL, GBC).
* :mod:`repro.plan` — the cost-based query planner: a method registry
  every counter self-registers into, a CountPlan IR, and the single
  ``execute_plan`` dispatch site behind ``method="auto"``.
* :mod:`repro.query` — the batched multi-query engine (GraphSession,
  batch_count, LRU result cache).
* :mod:`repro.dynamic` — streaming graphs: exact incremental (p, q)
  maintenance under edge mutations, with epoch-pinned snapshots.
* :mod:`repro.service` — the concurrent serving subsystem (bounded
  session pool, micro-batching scheduler with futures/deadlines/
  backpressure, telemetry, workload generator, serve-bench harness).
* :mod:`repro.obs` — cross-layer observability: zero-overhead-when-off
  span tracing, the measured-cost ledger that calibrates the Planner,
  structured logging and the BENCH_* regression leaderboard.
* :mod:`repro.bench` — dataset stand-ins and paper experiment harness.

See ``docs/ARCHITECTURE.md`` for the layer diagram and
``docs/PAPER_MAP.md`` for the paper-to-code map.
"""

from repro.core import (
    BicliqueQuery,
    CountResult,
    DeviceRunResult,
    EstimateResult,
    GBCOptions,
    approx_count,
    basic_count,
    bcl_count,
    bclp_count,
    brute_force_count,
    butterfly_count,
    estimate_count,
    gbc_count,
    gbc_variant,
    gbl_count,
    run_pipeline,
)
from repro.engine import (
    BACKEND_NAMES,
    FastBackend,
    KernelBackend,
    ParallelBackend,
    SimulatedDeviceBackend,
    get_backend,
    resolve_backend,
)
from repro.graph import (
    BipartiteGraph,
    complete_bipartite,
    from_adjacency,
    from_edges,
    paper_synthetic,
    planted_bicliques,
    power_law_bipartite,
    random_bipartite,
    read_edge_list,
    star_bipartite,
    write_edge_list,
)
from repro.gpu import DeviceSpec, rtx_3090, small_test_device
from repro.plan import (
    CountPlan,
    MethodSpec,
    Planner,
    execute_plan,
    method_names,
    plan_query,
    register_method,
)
from repro.query import (
    BatchResult,
    GraphSession,
    ResultCache,
    batch_count,
    graph_fingerprint,
    parse_queries,
)
from repro.dynamic import (
    DynamicGraphSession,
    EdgeMutation,
    SnapshotSession,
)
from repro.obs import (
    CostLedger,
    TraceRecorder,
    disable_tracing,
    enable_tracing,
    tracing,
)
from repro.service import (
    Scheduler,
    SchedulerConfig,
    SessionPool,
    Telemetry,
    WorkloadSpec,
    mutate_bench,
    run_workload,
    serve_bench,
)

__version__ = "1.1.0"


def __getattr__(name: str):
    # mirror repro.engine's lazy export: importing the native engine
    # eagerly here would load its cost-model registration mid-way
    # through this package's own import chain
    if name == "NativeBackend":
        from repro.engine import NativeBackend

        return NativeBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "__version__",
    "BicliqueQuery", "CountResult", "DeviceRunResult", "GBCOptions",
    "basic_count", "bcl_count", "bclp_count", "gbl_count", "gbc_count",
    "gbc_variant", "butterfly_count", "brute_force_count", "run_pipeline",
    "EstimateResult", "estimate_count", "approx_count",
    "BipartiteGraph", "from_edges", "from_adjacency", "complete_bipartite",
    "random_bipartite", "power_law_bipartite", "paper_synthetic",
    "planted_bicliques", "star_bipartite", "read_edge_list", "write_edge_list",
    "DeviceSpec", "rtx_3090", "small_test_device",
    "KernelBackend", "SimulatedDeviceBackend", "FastBackend",
    "ParallelBackend", "NativeBackend", "BACKEND_NAMES", "get_backend",
    "resolve_backend",
    "CountPlan", "MethodSpec", "Planner", "execute_plan", "method_names",
    "plan_query", "register_method",
    "GraphSession", "BatchResult", "ResultCache", "batch_count",
    "parse_queries", "graph_fingerprint",
    "DynamicGraphSession", "SnapshotSession", "EdgeMutation",
    "SessionPool", "Scheduler", "SchedulerConfig", "Telemetry",
    "WorkloadSpec", "run_workload", "serve_bench", "mutate_bench",
    "CostLedger", "TraceRecorder", "enable_tracing", "disable_tracing",
    "tracing",
]
