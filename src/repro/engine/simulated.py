"""The instrumented execution engine: today's simulated RTX 3090.

Wraps the accounting-heavy primitives that every figure of the paper is
measured with — :func:`repro.gpu.intersect.binary_search_intersect`,
:func:`repro.gpu.intersect.merge_intersect` and the HTB
:func:`repro.htb.htb.intersect_device` — behind the
:class:`~repro.engine.base.KernelBackend` protocol.  The wrapping is
pass-through: transaction, comparison and slot counts are bit-for-bit
identical to calling the primitives directly, which the backend
equivalence tests pin down.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import KernelBackend
from repro.gpu.device import DeviceSpec, rtx_3090
from repro.gpu.intersect import (
    binary_search_intersect,
    membership_mask,
    merge_intersect,
)
from repro.gpu.memory import charge_stream
from repro.gpu.metrics import KernelMetrics
from repro.gpu.simt import record_work
from repro.htb.htb import intersect_device

__all__ = ["SimulatedDeviceBackend"]


class SimulatedDeviceBackend(KernelBackend):
    """Fully instrumented kernels on the simulated CUDA-like device."""

    name = "sim"
    instrumented = True

    def __init__(self, spec: DeviceSpec | None = None) -> None:
        self.spec = spec or rtx_3090()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulatedDeviceBackend(spec={self.spec.name!r})"

    # -- kernel primitives ---------------------------------------------
    def merge(self, a: np.ndarray, b: np.ndarray,
              comparisons: list[int] | None = None) -> np.ndarray:
        return merge_intersect(a, b, comparisons)

    def intersect(self, keys: np.ndarray, lst: np.ndarray,
                  metrics: KernelMetrics, *,
                  warps: int = 1, base_word: int = 0,
                  record_slots: bool = True) -> np.ndarray:
        return binary_search_intersect(keys, lst, self.spec, metrics,
                                       warps=warps, base_word=base_word,
                                       record_slots=record_slots)

    def membership(self, keys: np.ndarray, lst: np.ndarray) -> np.ndarray:
        return membership_mask(keys, lst)

    def bitmap_intersect(self, keys, lst, metrics: KernelMetrics, *,
                         warps: int = 1, base_word: int = 0,
                         keys_in_shared: bool = True,
                         record_slots: bool = True):
        return intersect_device(keys, lst, self.spec, metrics,
                                warps=warps, base_word=base_word,
                                keys_in_shared=keys_in_shared,
                                record_slots=record_slots)

    # -- instrumentation sink ------------------------------------------
    def charge_stream(self, metrics: KernelMetrics, num_words: int) -> None:
        charge_stream(metrics, self.spec, num_words)

    def record_work(self, metrics: KernelMetrics, work_items: int,
                    warps: int) -> None:
        record_work(metrics, self.spec, work_items, warps)

    def note_shared_peak(self, metrics: KernelMetrics, nbytes: int) -> None:
        metrics.note_shared_peak(nbytes)
