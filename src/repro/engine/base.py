"""The kernel-backend protocol: one intersection API, many engines.

Every algorithm in :mod:`repro.core` (and the HTB path in
:mod:`repro.htb`) expresses its work in terms of four kernel primitives —
CPU sorted-merge, device lock-step binary search, membership probing, and
truncated-bitmap intersection — plus a handful of accounting hooks
(coalesced streams, gathers, warp-slot occupancy, shared-memory peaks).
A :class:`KernelBackend` supplies all of them, so the *definition* of a
search (which sets intersect, in which order) is separated from its
*execution* (instrumented simulation vs raw speed):

* :class:`repro.engine.simulated.SimulatedDeviceBackend` — the paper's
  measurement engine.  Bit-for-bit identical transaction/comparison/slot
  accounting to the original hard-wired call sites; powers every figure
  and table that plots device metrics.
* :class:`repro.engine.fast.FastBackend` — pure vectorised NumPy with all
  timing, comparison counting and transaction charging compiled out; the
  speed path for large graphs.
* :class:`repro.engine.parallel.ParallelBackend` — the fast kernels
  sharded over forked worker processes; counts stay bit-identical to a
  serial fast run while the root set executes in parallel.
* :class:`repro.engine.native.NativeBackend` — the batch-kernel engine:
  whole frontiers of intersections execute as single vectorised (or
  numba-JIT-compiled) kernels over the flat CSR/HTB arrays.

Beyond the four scalar primitives the protocol carries *batch* entry
points (``merge_many``, ``intersect_many``/``intersect_sizes``,
``membership_many``, ``bitmap_intersect_many``/
``bitmap_intersect_counts``).  Their default implementations loop the
scalar kernels with exactly the per-call arguments the counters used to
pass, so ``sim``/``fast``/``par`` behave bit-identically to the
pre-batch call sites; a backend that can amortise per-call dispatch
(``native``) overrides them.

Algorithms accept ``backend=`` as an instance, a registry name (``"sim"``
/ ``"fast"`` / ``"par"`` / ``"native"``), or ``None`` (default:
simulated, preserving the historical behaviour of every entry point).
Passing ``workers=`` to :func:`resolve_backend` selects the parallel
engine with that many processes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import QueryError
from repro.gpu.metrics import KernelMetrics
from repro.obs import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpu.device import DeviceSpec
    from repro.htb.htb import BitmapSet

__all__ = ["KernelBackend", "BACKEND_NAMES", "get_backend", "resolve_backend"]

BACKEND_NAMES = ("sim", "fast", "par", "native")


class KernelBackend(ABC):
    """Pluggable execution engine behind every set intersection.

    The four abstract methods are the kernel primitives; the concrete
    hooks below them are the instrumentation sink, which the fast backend
    leaves as no-ops so uninstrumented runs pay nothing for accounting.
    """

    #: registry name of the backend ("sim", "fast", ...)
    name: str = "abstract"
    #: whether timers and device metrics collected through this backend
    #: are live (False means every sink hook is a no-op)
    instrumented: bool = False
    #: whether this backend shards per-root work over worker processes —
    #: the counting drivers route their root loop through ``map_shards``
    #: when set (see :class:`repro.engine.parallel.ParallelBackend`)
    parallel: bool = False

    # -- kernel primitives ---------------------------------------------
    @abstractmethod
    def merge(self, a: np.ndarray, b: np.ndarray,
              comparisons: list[int] | None = None) -> np.ndarray:
        """Sorted-merge intersection (the CPU path of Basic/BCL).

        ``comparisons`` is a single-cell list accumulating the merge's
        element-comparison count for the Fig. 1(b) breakdown; backends
        without instrumentation ignore it.
        """

    @abstractmethod
    def intersect(self, keys: np.ndarray, lst: np.ndarray,
                  metrics: KernelMetrics, *,
                  warps: int = 1, base_word: int = 0,
                  record_slots: bool = True) -> np.ndarray:
        """Intersect sorted ``keys`` with sorted ``lst`` (device CSR path).

        Returns the sorted intersection.  The simulated engine charges
        transactions/comparisons/slots into ``metrics``; fast engines
        leave ``metrics`` untouched.
        """

    @abstractmethod
    def membership(self, keys: np.ndarray, lst: np.ndarray) -> np.ndarray:
        """Boolean mask of which sorted ``keys`` appear in sorted ``lst``."""

    @abstractmethod
    def bitmap_intersect(self, keys: "BitmapSet", lst: "BitmapSet",
                         metrics: KernelMetrics, *,
                         warps: int = 1, base_word: int = 0,
                         keys_in_shared: bool = True,
                         record_slots: bool = True) -> "BitmapSet":
        """Intersect two truncated bitmaps (the HTB path, Example 7)."""

    # -- batch entry points --------------------------------------------
    # One call per *frontier* instead of one call per candidate.  The
    # defaults below loop the scalar primitives with exactly the
    # arguments the historical per-candidate call sites passed (same
    # base_word, same flag plumbing, same call count), so the simulated
    # engine's accounting is bit-identical whether a counter batches or
    # not.  Engines that can amortise per-call dispatch override them.

    def merge_many(self, a: np.ndarray, lists: "list[np.ndarray]",
                   comparisons: list[int] | None = None
                   ) -> list[np.ndarray]:
        """:meth:`merge` of ``a`` against every list in ``lists``."""
        if _trace.enabled:
            _trace.tally_kernel("merge_many", items=len(lists))
        return [self.merge(a, b, comparisons) for b in lists]

    def membership_many(self, keys: np.ndarray,
                        lists: "list[np.ndarray]") -> list[np.ndarray]:
        """:meth:`membership` of ``keys`` against every list."""
        if _trace.enabled:
            _trace.tally_kernel("membership_many", items=len(lists))
        return [self.membership(keys, lst) for lst in lists]

    def intersect_many(self, keys: np.ndarray, offsets: np.ndarray,
                       values: np.ndarray, rows: np.ndarray,
                       metrics: KernelMetrics, *,
                       warps: int = 1,
                       record_slots: bool = True) -> list[np.ndarray]:
        """:meth:`intersect` of ``keys`` against many CSR rows.

        ``values[offsets[r]:offsets[r+1]]`` is row ``r``'s sorted list;
        each row's ``base_word`` is its flat offset, matching what the
        per-candidate call sites always passed.
        """
        if _trace.enabled:
            _trace.tally_kernel("intersect_many", items=len(rows))
        out = []
        for r in rows:
            r = int(r)
            lo = int(offsets[r])
            out.append(self.intersect(
                keys, values[lo:int(offsets[r + 1])], metrics,
                warps=warps, base_word=lo, record_slots=record_slots))
        return out

    def intersect_sizes(self, keys: np.ndarray, offsets: np.ndarray,
                        values: np.ndarray, rows: np.ndarray,
                        metrics: KernelMetrics, *,
                        warps: int = 1,
                        record_slots: bool = True) -> np.ndarray:
        """``len(intersect(keys, row))`` per row — the search-leaf kernel,
        where only intersection *sizes* feed the binomial sum."""
        return np.asarray(
            [len(got) for got in self.intersect_many(
                keys, offsets, values, rows, metrics,
                warps=warps, record_slots=record_slots)],
            dtype=np.int64)

    def bitmap_intersect_many(self, keys: "BitmapSet", htb, rows,
                              metrics: KernelMetrics, *,
                              warps: int = 1,
                              keys_in_shared: bool = True,
                              record_slots: bool = True
                              ) -> "list[BitmapSet]":
        """:meth:`bitmap_intersect` of ``keys`` against many HTB rows
        (``htb`` is a :class:`repro.htb.htb.HTB`)."""
        if _trace.enabled:
            _trace.tally_kernel("bitmap_intersect_many", items=len(rows))
        out = []
        for r in rows:
            r = int(r)
            out.append(self.bitmap_intersect(
                keys, htb.view(r), metrics, warps=warps,
                base_word=htb.base_word(r),
                keys_in_shared=keys_in_shared, record_slots=record_slots))
        return out

    def bitmap_intersect_counts(self, keys: "BitmapSet", htb, rows,
                                metrics: KernelMetrics, *,
                                warps: int = 1,
                                keys_in_shared: bool = True,
                                record_slots: bool = True) -> np.ndarray:
        """Popcount of ``keys & htb[r]`` per row (the HTB leaf kernel)."""
        return np.asarray(
            [got.count() for got in self.bitmap_intersect_many(
                keys, htb, rows, metrics, warps=warps,
                keys_in_shared=keys_in_shared, record_slots=record_slots)],
            dtype=np.int64)

    # -- pairwise batch entry points -----------------------------------
    # One call per *search level*: every pair couples one ragged key row
    # (a live task's CL/CR set, delimited by ``a_off``) with one CSR or
    # HTB row.  The frontier traversal (:mod:`repro.core.frontier`)
    # drives engines that set ``frontier = True`` through these; the
    # defaults loop the scalar primitives so any engine answers them.

    #: whether the counting drivers should run the level-synchronous
    #: frontier traversal on this engine instead of the per-root
    #: recursion (counts are identical either way)
    frontier: bool = False

    def intersect_pairs(self, a_off: np.ndarray, a_val: np.ndarray,
                        a_ids: np.ndarray, offsets: np.ndarray,
                        values: np.ndarray, rows: np.ndarray,
                        metrics: KernelMetrics, *,
                        warps: int = 1, record_slots: bool = True
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Pair ``i``: intersect ragged row ``a_ids[i]`` of ``(a_off,
        a_val)`` with CSR row ``rows[i]``.  Returns the results as one
        ragged ``(out_off, out_val)`` pair."""
        if _trace.enabled:
            _trace.tally_kernel("intersect_pairs", items=len(rows))
        outs = []
        for a_id, r in zip(a_ids, rows):
            lo = int(offsets[int(r)])
            outs.append(self.intersect(
                a_val[int(a_off[int(a_id)]):int(a_off[int(a_id) + 1])],
                values[lo:int(offsets[int(r) + 1])], metrics,
                warps=warps, base_word=lo, record_slots=record_slots))
        lens = np.asarray([len(got) for got in outs], dtype=np.int64)
        off = np.zeros(len(outs) + 1, dtype=np.int64)
        np.cumsum(lens, out=off[1:])
        flat = (np.concatenate(outs) if outs and int(off[-1])
                else np.empty(0, dtype=np.int64))
        return off, flat

    def intersect_pairs_sizes(self, a_off: np.ndarray, a_val: np.ndarray,
                              a_ids: np.ndarray, offsets: np.ndarray,
                              values: np.ndarray, rows: np.ndarray,
                              metrics: KernelMetrics, *,
                              warps: int = 1,
                              record_slots: bool = True) -> np.ndarray:
        """Size of each pair's intersection — the frontier leaf kernel."""
        off, _ = self.intersect_pairs(a_off, a_val, a_ids, offsets,
                                      values, rows, metrics, warps=warps,
                                      record_slots=record_slots)
        return np.diff(off)

    def bitmap_pairs(self, a_off: np.ndarray, a_idx: np.ndarray,
                     a_val: np.ndarray, a_ids: np.ndarray, htb,
                     rows: np.ndarray, metrics: KernelMetrics, *,
                     warps: int = 1, keys_in_shared: bool = True,
                     record_slots: bool = True):
        """Pair ``i``: AND ragged truncated bitmap ``a_ids[i]`` of
        ``(a_off, a_idx, a_val)`` with HTB row ``rows[i]``.  Returns
        ``(out_off, out_idx, out_val, counts)`` — the result bitmaps as
        one ragged word array plus each pair's popcount."""
        from repro.htb.htb import BitmapSet

        if _trace.enabled:
            _trace.tally_kernel("bitmap_pairs", items=len(rows))

        idx_parts, val_parts, lens, counts = [], [], [], []
        for a_id, r in zip(a_ids, rows):
            lo, hi = int(a_off[int(a_id)]), int(a_off[int(a_id) + 1])
            got = self.bitmap_intersect(
                BitmapSet(a_idx[lo:hi], a_val[lo:hi]),
                htb.view(int(r)), metrics, warps=warps,
                base_word=htb.base_word(int(r)),
                keys_in_shared=keys_in_shared, record_slots=record_slots)
            idx_parts.append(got.idx)
            val_parts.append(got.val)
            lens.append(len(got.idx))
            counts.append(got.count())
        off = np.zeros(len(lens) + 1, dtype=np.int64)
        np.cumsum(np.asarray(lens, dtype=np.int64), out=off[1:])
        if idx_parts and int(off[-1]):
            flat_idx = np.concatenate(idx_parts)
            flat_val = np.concatenate(val_parts)
        else:
            flat_idx = np.empty(0, dtype=np.int64)
            flat_val = np.empty(0, dtype=np.uint64)
        return off, flat_idx, flat_val, np.asarray(counts, dtype=np.int64)

    def bitmap_pairs_counts(self, a_off: np.ndarray, a_idx: np.ndarray,
                            a_val: np.ndarray, a_ids: np.ndarray, htb,
                            rows: np.ndarray, metrics: KernelMetrics, *,
                            warps: int = 1, keys_in_shared: bool = True,
                            record_slots: bool = True) -> np.ndarray:
        """Popcount of each pair's AND — the frontier HTB leaf kernel."""
        return self.bitmap_pairs(a_off, a_idx, a_val, a_ids, htb, rows,
                                 metrics, warps=warps,
                                 keys_in_shared=keys_in_shared,
                                 record_slots=record_slots)[3]

    # -- instrumentation sink ------------------------------------------
    def new_metrics(self) -> KernelMetrics:
        """A fresh per-kernel metrics accumulator."""
        return KernelMetrics()

    def charge_stream(self, metrics: KernelMetrics, num_words: int) -> None:
        """Account a coalesced sequential read/write of ``num_words``."""

    def record_work(self, metrics: KernelMetrics, work_items: int,
                    warps: int) -> None:
        """Account warp-slot occupancy for ``work_items`` lanes of work."""

    def note_shared_peak(self, metrics: KernelMetrics,
                         nbytes: int) -> None:
        """Track the largest shared-memory footprint seen."""


def get_backend(name: str, spec: "DeviceSpec | None" = None,
                workers: int | None = None) -> KernelBackend:
    """Construct a backend by registry name
    (``"sim"``/``"fast"``/``"par"``/``"native"``).

    ``workers`` applies to the parallel engine only (``None`` lets it
    default to the usable CPU count).
    """
    from repro.engine.fast import FastBackend
    from repro.engine.parallel import ParallelBackend
    from repro.engine.simulated import SimulatedDeviceBackend

    if name == "sim":
        return SimulatedDeviceBackend(spec)
    if name == "fast":
        return FastBackend()
    if name == "par":
        return ParallelBackend(workers)
    if name == "native":
        from repro.engine.native import NativeBackend

        return NativeBackend()
    raise QueryError(f"unknown kernel backend {name!r}; "
                     f"expected one of {BACKEND_NAMES}")


def resolve_backend(backend: "KernelBackend | str | None",
                    spec: "DeviceSpec | None" = None,
                    workers: int | None = None) -> KernelBackend:
    """Normalise ``backend=``/``workers=`` arguments to a :class:`KernelBackend`.

    ``None`` resolves to the simulated engine (the historical default of
    every algorithm), a string goes through :func:`get_backend`, and an
    instance is returned as-is — its own device spec wins over ``spec``.

    A non-``None`` ``workers`` requests sharded multi-process execution:
    it upgrades ``None``, ``"fast"``, ``"par"`` (or instances of their
    engines) to a :class:`~repro.engine.parallel.ParallelBackend` with
    that worker count.  The simulated engine's accounting is inherently
    serial, so combining it with ``workers`` is an error.
    """
    if workers is not None:
        from repro.engine.fast import FastBackend
        from repro.engine.parallel import ParallelBackend

        if isinstance(backend, ParallelBackend):
            return backend if backend.workers == int(workers) \
                else backend.with_workers(int(workers))
        if backend is None or backend in ("fast", "par") \
                or isinstance(backend, FastBackend):
            return ParallelBackend(workers)
        raise QueryError(
            f"workers={workers!r} requires the parallel engine "
            f"(backend=None, 'fast' or 'par'); got {backend!r}")
    if backend is None:
        backend = "sim"
    if isinstance(backend, str):
        return get_backend(backend, spec)
    if isinstance(backend, KernelBackend):
        return backend
    raise QueryError(f"backend must be a KernelBackend, a name in "
                     f"{BACKEND_NAMES}, or None; got {backend!r}")
