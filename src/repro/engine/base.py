"""The kernel-backend protocol: one intersection API, many engines.

Every algorithm in :mod:`repro.core` (and the HTB path in
:mod:`repro.htb`) expresses its work in terms of four kernel primitives —
CPU sorted-merge, device lock-step binary search, membership probing, and
truncated-bitmap intersection — plus a handful of accounting hooks
(coalesced streams, gathers, warp-slot occupancy, shared-memory peaks).
A :class:`KernelBackend` supplies all of them, so the *definition* of a
search (which sets intersect, in which order) is separated from its
*execution* (instrumented simulation vs raw speed):

* :class:`repro.engine.simulated.SimulatedDeviceBackend` — the paper's
  measurement engine.  Bit-for-bit identical transaction/comparison/slot
  accounting to the original hard-wired call sites; powers every figure
  and table that plots device metrics.
* :class:`repro.engine.fast.FastBackend` — pure vectorised NumPy with all
  timing, comparison counting and transaction charging compiled out; the
  speed path for large graphs.
* :class:`repro.engine.parallel.ParallelBackend` — the fast kernels
  sharded over forked worker processes; counts stay bit-identical to a
  serial fast run while the root set executes in parallel.

Algorithms accept ``backend=`` as an instance, a registry name (``"sim"``
/ ``"fast"`` / ``"par"``), or ``None`` (default: simulated, preserving
the historical behaviour of every entry point).  Passing ``workers=``
to :func:`resolve_backend` selects the parallel engine with that many
processes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import QueryError
from repro.gpu.metrics import KernelMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpu.device import DeviceSpec
    from repro.htb.htb import BitmapSet

__all__ = ["KernelBackend", "BACKEND_NAMES", "get_backend", "resolve_backend"]

BACKEND_NAMES = ("sim", "fast", "par")


class KernelBackend(ABC):
    """Pluggable execution engine behind every set intersection.

    The four abstract methods are the kernel primitives; the concrete
    hooks below them are the instrumentation sink, which the fast backend
    leaves as no-ops so uninstrumented runs pay nothing for accounting.
    """

    #: registry name of the backend ("sim", "fast", ...)
    name: str = "abstract"
    #: whether timers and device metrics collected through this backend
    #: are live (False means every sink hook is a no-op)
    instrumented: bool = False
    #: whether this backend shards per-root work over worker processes —
    #: the counting drivers route their root loop through ``map_shards``
    #: when set (see :class:`repro.engine.parallel.ParallelBackend`)
    parallel: bool = False

    # -- kernel primitives ---------------------------------------------
    @abstractmethod
    def merge(self, a: np.ndarray, b: np.ndarray,
              comparisons: list[int] | None = None) -> np.ndarray:
        """Sorted-merge intersection (the CPU path of Basic/BCL).

        ``comparisons`` is a single-cell list accumulating the merge's
        element-comparison count for the Fig. 1(b) breakdown; backends
        without instrumentation ignore it.
        """

    @abstractmethod
    def intersect(self, keys: np.ndarray, lst: np.ndarray,
                  metrics: KernelMetrics, *,
                  warps: int = 1, base_word: int = 0,
                  record_slots: bool = True) -> np.ndarray:
        """Intersect sorted ``keys`` with sorted ``lst`` (device CSR path).

        Returns the sorted intersection.  The simulated engine charges
        transactions/comparisons/slots into ``metrics``; fast engines
        leave ``metrics`` untouched.
        """

    @abstractmethod
    def membership(self, keys: np.ndarray, lst: np.ndarray) -> np.ndarray:
        """Boolean mask of which sorted ``keys`` appear in sorted ``lst``."""

    @abstractmethod
    def bitmap_intersect(self, keys: "BitmapSet", lst: "BitmapSet",
                         metrics: KernelMetrics, *,
                         warps: int = 1, base_word: int = 0,
                         keys_in_shared: bool = True,
                         record_slots: bool = True) -> "BitmapSet":
        """Intersect two truncated bitmaps (the HTB path, Example 7)."""

    # -- instrumentation sink ------------------------------------------
    def new_metrics(self) -> KernelMetrics:
        """A fresh per-kernel metrics accumulator."""
        return KernelMetrics()

    def charge_stream(self, metrics: KernelMetrics, num_words: int) -> None:
        """Account a coalesced sequential read/write of ``num_words``."""

    def record_work(self, metrics: KernelMetrics, work_items: int,
                    warps: int) -> None:
        """Account warp-slot occupancy for ``work_items`` lanes of work."""

    def note_shared_peak(self, metrics: KernelMetrics,
                         nbytes: int) -> None:
        """Track the largest shared-memory footprint seen."""


def get_backend(name: str, spec: "DeviceSpec | None" = None,
                workers: int | None = None) -> KernelBackend:
    """Construct a backend by registry name (``"sim"``/``"fast"``/``"par"``).

    ``workers`` applies to the parallel engine only (``None`` lets it
    default to the usable CPU count).
    """
    from repro.engine.fast import FastBackend
    from repro.engine.parallel import ParallelBackend
    from repro.engine.simulated import SimulatedDeviceBackend

    if name == "sim":
        return SimulatedDeviceBackend(spec)
    if name == "fast":
        return FastBackend()
    if name == "par":
        return ParallelBackend(workers)
    raise QueryError(f"unknown kernel backend {name!r}; "
                     f"expected one of {BACKEND_NAMES}")


def resolve_backend(backend: "KernelBackend | str | None",
                    spec: "DeviceSpec | None" = None,
                    workers: int | None = None) -> KernelBackend:
    """Normalise ``backend=``/``workers=`` arguments to a :class:`KernelBackend`.

    ``None`` resolves to the simulated engine (the historical default of
    every algorithm), a string goes through :func:`get_backend`, and an
    instance is returned as-is — its own device spec wins over ``spec``.

    A non-``None`` ``workers`` requests sharded multi-process execution:
    it upgrades ``None``, ``"fast"``, ``"par"`` (or instances of their
    engines) to a :class:`~repro.engine.parallel.ParallelBackend` with
    that worker count.  The simulated engine's accounting is inherently
    serial, so combining it with ``workers`` is an error.
    """
    if workers is not None:
        from repro.engine.fast import FastBackend
        from repro.engine.parallel import ParallelBackend

        if isinstance(backend, ParallelBackend):
            return backend if backend.workers == int(workers) \
                else backend.with_workers(int(workers))
        if backend is None or backend in ("fast", "par") \
                or isinstance(backend, FastBackend):
            return ParallelBackend(workers)
        raise QueryError(
            f"workers={workers!r} requires the parallel engine "
            f"(backend=None, 'fast' or 'par'); got {backend!r}")
    if backend is None:
        backend = "sim"
    if isinstance(backend, str):
        return get_backend(backend, spec)
    if isinstance(backend, KernelBackend):
        return backend
    raise QueryError(f"backend must be a KernelBackend, a name in "
                     f"{BACKEND_NAMES}, or None; got {backend!r}")
