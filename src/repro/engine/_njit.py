"""numba ``@njit`` kernels for the native backend's JIT tier.

Importing this module requires numba (install the ``[native]`` extra);
:mod:`repro.engine.native` imports it inside a guard and falls back to
its pure-numpy kernels when the import fails or ``REPRO_NATIVE_JIT``
disables the tier.  Each kernel is the compiled twin of one numpy batch
routine: a two-pointer sorted merge over every CSR/HTB row of a
frontier, returning flat packed results plus per-row lengths so the
Python side can split without re-deriving anything.

The kernels deliberately stick to plain loops, int64/uint64 locals and
preallocated output buffers — the subset of numpy-in-nopython that has
been stable across numba releases.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["intersect_rows", "intersect_row_sizes",
           "intersect_pair_rows", "intersect_pair_sizes",
           "bitmap_rows", "bitmap_row_counts"]

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


@njit(cache=True)
def _popcount64(x):
    """SWAR popcount of one uint64 word (no bit_count in nopython)."""
    x = x - ((x >> np.uint64(1)) & _M1)
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    return np.int64((x * _H01) >> np.uint64(56))


@njit(cache=True)
def intersect_rows(keys, offsets, values, rows):
    """``keys ∩ row`` for every CSR row, packed flat.

    Returns ``(flat, lens)``: concatenated per-row intersections and
    the per-row result lengths.
    """
    n = rows.shape[0]
    nk = keys.shape[0]
    lens = np.zeros(n, dtype=np.int64)
    cap = np.int64(0)
    for i in range(n):
        r = rows[i]
        width = offsets[r + 1] - offsets[r]
        cap += width if width < nk else nk
    flat = np.empty(cap, dtype=np.int64)
    w = np.int64(0)
    for i in range(n):
        r = rows[i]
        a = np.int64(0)
        b = offsets[r]
        hi = offsets[r + 1]
        start = w
        while a < nk and b < hi:
            ka = keys[a]
            vb = values[b]
            if ka == vb:
                flat[w] = ka
                w += 1
                a += 1
                b += 1
            elif ka < vb:
                a += 1
            else:
                b += 1
        lens[i] = w - start
    return flat[:w], lens


@njit(cache=True)
def intersect_row_sizes(keys, offsets, values, rows):
    """``|keys ∩ row|`` per CSR row — the leaf kernel, no results."""
    n = rows.shape[0]
    nk = keys.shape[0]
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        r = rows[i]
        a = np.int64(0)
        b = offsets[r]
        hi = offsets[r + 1]
        cnt = np.int64(0)
        while a < nk and b < hi:
            ka = keys[a]
            vb = values[b]
            if ka == vb:
                cnt += 1
                a += 1
                b += 1
            elif ka < vb:
                a += 1
            else:
                b += 1
        out[i] = cnt
    return out


@njit(cache=True)
def intersect_pair_rows(a_off, a_val, a_ids, offsets, values, rows):
    """``A-row(a_ids[i]) ∩ CSR-row(rows[i])`` per pair, packed flat.

    The pairwise twin of :func:`intersect_rows`: the left operand is a
    ragged frontier row instead of one shared key set.  Returns
    ``(flat, lens)``.
    """
    n = rows.shape[0]
    cap = np.int64(0)
    for i in range(n):
        t = a_ids[i]
        wa = a_off[t + 1] - a_off[t]
        r = rows[i]
        wb = offsets[r + 1] - offsets[r]
        cap += wa if wa < wb else wb
    flat = np.empty(cap, dtype=np.int64)
    lens = np.zeros(n, dtype=np.int64)
    w = np.int64(0)
    for i in range(n):
        t = a_ids[i]
        a = a_off[t]
        ahi = a_off[t + 1]
        r = rows[i]
        b = offsets[r]
        bhi = offsets[r + 1]
        start = w
        while a < ahi and b < bhi:
            ka = a_val[a]
            vb = values[b]
            if ka == vb:
                flat[w] = ka
                w += 1
                a += 1
                b += 1
            elif ka < vb:
                a += 1
            else:
                b += 1
        lens[i] = w - start
    return flat[:w], lens


@njit(cache=True)
def intersect_pair_sizes(a_off, a_val, a_ids, offsets, values, rows):
    """``|A-row(a_ids[i]) ∩ CSR-row(rows[i])|`` per pair."""
    n = rows.shape[0]
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        t = a_ids[i]
        a = a_off[t]
        ahi = a_off[t + 1]
        r = rows[i]
        b = offsets[r]
        bhi = offsets[r + 1]
        cnt = np.int64(0)
        while a < ahi and b < bhi:
            ka = a_val[a]
            vb = values[b]
            if ka == vb:
                cnt += 1
                a += 1
                b += 1
            elif ka < vb:
                a += 1
            else:
                b += 1
        out[i] = cnt
    return out


@njit(cache=True)
def bitmap_rows(keys_idx, keys_val, off, idx, val, rows):
    """Two-phase HTB intersection of one bitmap against many rows.

    Returns ``(flat_idx, flat_val, words, pops)``: packed non-zero
    result words per row, per-row word counts, and per-row popcount
    sums (so the caller can pin each result's cardinality for free).
    """
    n = rows.shape[0]
    nk = keys_idx.shape[0]
    cap = np.int64(0)
    for i in range(n):
        r = rows[i]
        width = off[r + 1] - off[r]
        cap += width if width < nk else nk
    flat_idx = np.empty(cap, dtype=np.int64)
    flat_val = np.empty(cap, dtype=np.uint64)
    words = np.zeros(n, dtype=np.int64)
    pops = np.zeros(n, dtype=np.int64)
    w = np.int64(0)
    for i in range(n):
        r = rows[i]
        a = np.int64(0)
        b = off[r]
        hi = off[r + 1]
        start = w
        pc = np.int64(0)
        while a < nk and b < hi:
            ia = keys_idx[a]
            ib = idx[b]
            if ia == ib:
                mask = keys_val[a] & val[b]
                if mask != np.uint64(0):
                    flat_idx[w] = ia
                    flat_val[w] = mask
                    w += 1
                    pc += _popcount64(mask)
                a += 1
                b += 1
            elif ia < ib:
                a += 1
            else:
                b += 1
        words[i] = w - start
        pops[i] = pc
    return flat_idx[:w], flat_val[:w], words, pops


@njit(cache=True)
def bitmap_row_counts(keys_idx, keys_val, off, idx, val, rows):
    """Popcount of ``keys & row`` per HTB row — the HTB leaf kernel."""
    n = rows.shape[0]
    nk = keys_idx.shape[0]
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        r = rows[i]
        a = np.int64(0)
        b = off[r]
        hi = off[r + 1]
        pc = np.int64(0)
        while a < nk and b < hi:
            ia = keys_idx[a]
            ib = idx[b]
            if ia == ib:
                mask = keys_val[a] & val[b]
                if mask != np.uint64(0):
                    pc += _popcount64(mask)
                a += 1
                b += 1
            elif ia < ib:
                a += 1
            else:
                b += 1
        out[i] = pc
    return out
