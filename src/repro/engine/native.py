"""The native batch-kernel engine: whole frontiers per kernel call.

The paper's GPU kernels win because one launch processes an entire
frontier of (candidate, adjacency-row) pairs; the Python reproduction
lost that shape by issuing one ``backend.intersect`` per candidate, so
interpreter and numpy *dispatch* — not the intersections themselves —
dominate even :class:`~repro.engine.fast.FastBackend` wall time.
:class:`NativeBackend` restores the batch shape on the host at two
granularities.  The batch entry points (``intersect_many`` and
friends) vectorise one recursion node's frontier; on top of those the
engine declares ``frontier = True``, which routes the device counters
through :mod:`repro.core.frontier` — a level-synchronous traversal
that submits **every (candidate, row) pair of a search level across
all roots of a chunk in one call**.  Each pairwise kernel keys the
concatenated sorted rows by their pair id (``value + pair * span``) so
a single ``searchsorted`` resolves thousands of independent
intersections, probing whichever side of the level holds fewer
elements; the alternative is one numpy dispatch per recursion node,
which a sparse graph's 2–4-row frontiers can never amortise.

Two tiers implement the kernels:

* **pure numpy** — always available, the default, and the tier the
  local test matrix exercises;
* **numba JIT** (:mod:`repro.engine._njit`) — two-pointer compiled
  loops over the same flat arrays, auto-detected at import and
  controlled by ``REPRO_NATIVE_JIT`` (``1``/``true`` forces it on when
  numba is importable, ``0``/``false`` forces pure numpy, unset means
  "use it if available").  Install with ``pip install -e .[native]``.

Counts are bit-identical to ``fast`` in every tier — the golden
harness and the equivalence tests in ``tests/engine/test_native.py``
assert this across all five algorithms.  Scalar primitives inherit
from :class:`~repro.engine.fast.FastBackend`, so call sites that
intersect one pair at a time (enumeration, probes) keep working.

The engine also registers a :class:`~repro.plan.registry
.BackendCostModel` with ``auto=True``: the cost hooks price counted
work with native's amortised per-call constants and ``method="auto"``
(with no pinned backend) picks the engine whenever it wins.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.engine.fast import FastBackend
from repro.graph.csr import row_positions
from repro.gpu.metrics import KernelMetrics
from repro.htb.bitmap import popcount
from repro.htb.htb import BitmapSet
from repro.obs import trace as _trace
from repro.plan.registry import BackendCostModel, register_backend_cost

__all__ = ["NativeBackend", "NativePack", "build_native_pack",
           "jit_available"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=np.uint64)
_EMPTY_SET = BitmapSet(_EMPTY_I64, _EMPTY_U64)
_EMPTY_BOOL = np.zeros(0, dtype=bool)

try:  # the JIT tier is optional; pure numpy is the tested fallback
    from repro.engine import _njit as _jit
    _JIT_AVAILABLE = True
except ImportError:  # pragma: no cover - depends on numba presence
    _jit = None
    _JIT_AVAILABLE = False

#: environment switch for the JIT tier (checked per backend instance)
JIT_ENV = "REPRO_NATIVE_JIT"


def jit_available() -> bool:
    """Whether the numba tier imported successfully."""
    return _JIT_AVAILABLE


def _resolve_jit(jit: bool | None) -> bool:
    """Effective JIT setting from an explicit flag or ``REPRO_NATIVE_JIT``.

    Requesting the tier without numba installed degrades to pure numpy
    (the fallback must always work) instead of raising.
    """
    if jit is None:
        raw = os.environ.get(JIT_ENV, "").strip().lower()
        if raw in ("0", "false", "off", "no"):
            return False
        if raw in ("1", "true", "on", "yes"):
            return _JIT_AVAILABLE
        return _JIT_AVAILABLE
    return bool(jit) and _JIT_AVAILABLE


@dataclass(frozen=True)
class NativePack:
    """CSR arrays of one (layer, k) packed for the batch kernels.

    The prepared-state kind behind plan keys ``native:<layer>:<k>``:
    the anchored adjacency and the rank-filtered two-hop index as
    C-contiguous int64 arrays, built once per
    :class:`repro.query.GraphSession` and handed to the counters so
    every batch kernel (and the numba tier in particular) runs over
    stable, cache-friendly buffers.
    """

    layer: str
    k: int
    adj_offsets: np.ndarray
    adj_values: np.ndarray
    idx_offsets: np.ndarray
    idx_values: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.adj_offsets.nbytes + self.adj_values.nbytes
                   + self.idx_offsets.nbytes + self.idx_values.nbytes)


def build_native_pack(graph, index, layer: str, k: int) -> NativePack:
    """Pack an anchored graph + two-hop index for the batch kernels.

    ``ascontiguousarray`` is a no-op view when the arrays already
    qualify (they do when freshly built), so packing an existing
    session costs four dtype checks.
    """
    return NativePack(
        layer=layer, k=int(k),
        adj_offsets=np.ascontiguousarray(graph.u_offsets, dtype=np.int64),
        adj_values=np.ascontiguousarray(graph.u_neighbors, dtype=np.int64),
        idx_offsets=np.ascontiguousarray(index.offsets, dtype=np.int64),
        idx_values=np.ascontiguousarray(index.neighbors, dtype=np.int64),
    )


def _probe_mask(keys: np.ndarray, flat: np.ndarray) -> np.ndarray:
    """hit[i] = flat[i] ∈ keys, via one searchsorted over the batch."""
    pos = keys.searchsorted(flat)
    pos[pos == len(keys)] = 0  # out-of-range probes can never match
    return pos, keys[pos] == flat


def _per_row_sums(flags: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Sum boolean/int ``flags`` over each row of a flat batch."""
    csum = np.empty(len(flags) + 1, dtype=np.int64)
    csum[0] = 0
    np.cumsum(flags, dtype=np.int64, out=csum[1:])
    ends = np.cumsum(lens)
    return csum[ends] - csum[ends - lens]


class NativeBackend(FastBackend):
    """Batch kernels over flat CSR/HTB arrays (numpy or numba tier)."""

    name = "native"
    instrumented = False
    #: the counters fetch a :class:`NativePack` prepared state for this
    #: engine (contiguous arrays for the batch kernels)
    wants_pack = True
    #: the counting drivers run the level-synchronous frontier traversal
    #: (:mod:`repro.core.frontier`) on this engine: one pairwise kernel
    #: call per search level across every live root
    frontier = True

    def __init__(self, jit: bool | None = None) -> None:
        self.jit_enabled = _resolve_jit(jit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NativeBackend(jit={self.jit_enabled})"

    # -- CSR batch kernels ---------------------------------------------
    def merge_many(self, a: np.ndarray, lists, comparisons=None):
        n = len(lists)
        if n == 0:
            return []
        if len(a) == 0:
            return [_EMPTY_I64] * n
        lens = np.asarray([len(b) for b in lists], dtype=np.int64)
        if _trace.enabled:
            _trace.tally_kernel("merge_many", items=n,
                                bytes_touched=8 * (len(a) * n
                                                   + int(lens.sum())))
        if not int(lens.sum()):
            return [_EMPTY_I64] * n
        flat = np.concatenate(lists)
        _, hit = _probe_mask(a, flat)
        return np.split(flat[hit],
                        np.cumsum(_per_row_sums(hit, lens))[:-1])

    def membership_many(self, keys: np.ndarray, lists):
        # keys are sorted unique ids (as everywhere in the repo); the
        # inverse probe marks, for each row, which key position matched
        n = len(lists)
        if n == 0:
            return []
        nk = len(keys)
        if nk == 0:
            return [_EMPTY_BOOL] * n
        lens = np.asarray([len(b) for b in lists], dtype=np.int64)
        if _trace.enabled:
            _trace.tally_kernel("membership_many", items=n,
                                bytes_touched=8 * (nk * n
                                                   + int(lens.sum())))
        out = np.zeros((n, nk), dtype=bool)
        if int(lens.sum()):
            flat = np.concatenate(lists)
            pos, hit = _probe_mask(keys, flat)
            row_ids = np.repeat(np.arange(n, dtype=np.int64), lens)
            out[row_ids[hit], pos[hit]] = True
        return list(out)

    def intersect_many(self, keys: np.ndarray, offsets: np.ndarray,
                       values: np.ndarray, rows, metrics: KernelMetrics, *,
                       warps: int = 1, record_slots: bool = True):
        rows = np.asarray(rows, dtype=np.int64)
        n = len(rows)
        if n == 0:
            return []
        if len(keys) == 0:
            return [_EMPTY_I64] * n
        if _trace.enabled:
            row_elems = int((offsets[rows + 1] - offsets[rows]).sum())
            _trace.tally_kernel("intersect_many", items=n,
                                bytes_touched=8 * (len(keys) + row_elems))
        if self.jit_enabled:
            flat, out_lens = _jit.intersect_rows(keys, offsets, values,
                                                 rows)
            return np.split(flat, np.cumsum(out_lens)[:-1])
        pos, lens = row_positions(offsets, rows)
        flat = values[pos]
        _, hit = _probe_mask(keys, flat)
        return np.split(flat[hit],
                        np.cumsum(_per_row_sums(hit, lens))[:-1])

    def intersect_sizes(self, keys: np.ndarray, offsets: np.ndarray,
                        values: np.ndarray, rows, metrics: KernelMetrics, *,
                        warps: int = 1,
                        record_slots: bool = True) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        n = len(rows)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if len(keys) == 0:
            return np.zeros(n, dtype=np.int64)
        if _trace.enabled:
            row_elems = int((offsets[rows + 1] - offsets[rows]).sum())
            _trace.tally_kernel("intersect_sizes", items=n,
                                bytes_touched=8 * (len(keys) + row_elems))
        if self.jit_enabled:
            return _jit.intersect_row_sizes(keys, offsets, values, rows)
        pos, lens = row_positions(offsets, rows)
        _, hit = _probe_mask(keys, values[pos])
        return _per_row_sums(hit, lens)

    # -- pairwise batch kernels (one call per search level) ------------
    @staticmethod
    def _pair_hits(a_off, a_val, a_ids, b_flat, b_lens):
        """``hit[i] = b_flat[i] ∈ A[its pair's key row]`` in one probe.

        Keying every element by its ragged row id turns the
        concatenated key rows into one globally sorted haystack (rows
        are sorted and row blocks ascend), so a single ``searchsorted``
        resolves every pair of the level — needles carry their target
        row's key and can only match inside it.
        """
        span = int(max(int(a_val.max()), int(b_flat.max()))) + 1
        a_rows = np.repeat(np.arange(len(a_off) - 1, dtype=np.int64),
                           np.diff(a_off))
        haystack = a_val + a_rows * span
        needles = b_flat + np.repeat(a_ids, b_lens) * span
        pos = haystack.searchsorted(needles)
        pos[pos == len(haystack)] = 0
        return pos, haystack[pos] == needles

    def _pair_select(self, a_off, a_val, a_ids, offsets, values, rows,
                     want_values: bool):
        """Core of the pairwise CSR kernels: per-pair hit flags.

        Probes the *smaller* side of the level into the other — binary
        search count is what the whole level costs, so the direction
        with fewer needles wins (the GPU kernels make the same choice
        per warp).  Returns ``(hit, lens, flat)`` where ``flat[hit]``
        is the ragged result and ``lens`` its per-pair input lengths.
        """
        b_pos, b_lens = row_positions(offsets, rows)
        if len(a_val) == 0 or len(b_pos) == 0:
            return None
        a_lens = (a_off[a_ids + 1] - a_off[a_ids]).astype(np.int64,
                                                          copy=False)
        b_flat = values[b_pos]
        if int(a_lens.sum()) <= len(b_flat):
            # expand each pair's key row and probe it into the gathered
            # CSR rows (keyed per pair, globally sorted by construction)
            a_pos, _ = row_positions(a_off, a_ids)
            a_flat = a_val[a_pos]
            if len(a_flat) == 0:
                return None
            span = int(max(int(a_flat.max()), int(b_flat.max()))) + 1
            pair_ids = np.arange(len(rows), dtype=np.int64)
            haystack = b_flat + np.repeat(pair_ids, b_lens) * span
            needles = a_flat + np.repeat(pair_ids, a_lens) * span
            pos = haystack.searchsorted(needles)
            pos[pos == len(haystack)] = 0
            return haystack[pos] == needles, a_lens, a_flat
        _, hit = self._pair_hits(a_off, a_val, a_ids, b_flat, b_lens)
        return hit, b_lens, b_flat

    def intersect_pairs(self, a_off, a_val, a_ids, offsets, values, rows,
                        metrics: KernelMetrics, *,
                        warps: int = 1, record_slots: bool = True):
        rows = np.asarray(rows, dtype=np.int64)
        n = len(rows)
        off = np.zeros(n + 1, dtype=np.int64)
        if n == 0:
            return off, _EMPTY_I64
        a_ids = np.asarray(a_ids, dtype=np.int64)
        if _trace.enabled:
            _trace.tally_kernel(
                "intersect_pairs", items=n,
                bytes_touched=8 * (int((a_off[a_ids + 1]
                                        - a_off[a_ids]).sum())
                                   + int((offsets[rows + 1]
                                          - offsets[rows]).sum())))
        if self.jit_enabled:
            flat, out_lens = _jit.intersect_pair_rows(
                a_off, a_val, a_ids, offsets, values, rows)
            np.cumsum(out_lens, out=off[1:])
            return off, flat
        got = self._pair_select(a_off, a_val, a_ids, offsets, values,
                                rows, want_values=True)
        if got is None:
            return off, _EMPTY_I64
        hit, lens, flat = got
        np.cumsum(_per_row_sums(hit, lens), out=off[1:])
        return off, flat[hit]

    def intersect_pairs_sizes(self, a_off, a_val, a_ids, offsets, values,
                              rows, metrics: KernelMetrics, *,
                              warps: int = 1, record_slots: bool = True):
        rows = np.asarray(rows, dtype=np.int64)
        n = len(rows)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        a_ids = np.asarray(a_ids, dtype=np.int64)
        if _trace.enabled:
            _trace.tally_kernel(
                "intersect_pairs_sizes", items=n,
                bytes_touched=8 * (int((a_off[a_ids + 1]
                                        - a_off[a_ids]).sum())
                                   + int((offsets[rows + 1]
                                          - offsets[rows]).sum())))
        if self.jit_enabled:
            return _jit.intersect_pair_sizes(a_off, a_val, a_ids,
                                             offsets, values, rows)
        got = self._pair_select(a_off, a_val, a_ids, offsets, values,
                                rows, want_values=False)
        if got is None:
            return np.zeros(n, dtype=np.int64)
        hit, lens, _ = got
        return _per_row_sums(hit, lens)

    def bitmap_pairs(self, a_off, a_idx, a_val, a_ids, htb, rows,
                     metrics: KernelMetrics, *,
                     warps: int = 1, keys_in_shared: bool = True,
                     record_slots: bool = True):
        rows = np.asarray(rows, dtype=np.int64)
        n = len(rows)
        off = np.zeros(n + 1, dtype=np.int64)
        if n == 0:
            return off, _EMPTY_I64, _EMPTY_U64, np.zeros(0, dtype=np.int64)
        b_pos, b_lens = row_positions(htb.off, rows)
        if len(a_idx) == 0 or len(b_pos) == 0:
            return off, _EMPTY_I64, _EMPTY_U64, np.zeros(n, dtype=np.int64)
        if _trace.enabled:
            aids = np.asarray(a_ids, dtype=np.int64)
            _trace.tally_kernel(
                "bitmap_pairs", items=n,
                bytes_touched=16 * (int((a_off[aids + 1]
                                         - a_off[aids]).sum())
                                    + int(b_lens.sum())))
        b_idx = htb.idx[b_pos]
        pos, hit = self._pair_hits(a_off, a_idx,
                                   np.asarray(a_ids, dtype=np.int64),
                                   b_idx, b_lens)
        masks = a_val[pos[hit]] & htb.val[b_pos[hit]]
        nz = masks != 0
        keep = hit.copy()
        keep[hit] = nz
        out_val = masks[nz]
        np.cumsum(_per_row_sums(keep, b_lens), out=off[1:])
        weights = np.zeros(len(keep), dtype=np.int64)
        weights[keep] = popcount(out_val).astype(np.int64, copy=False)
        return off, b_idx[keep], out_val, _per_row_sums(weights, b_lens)

    def bitmap_pairs_counts(self, a_off, a_idx, a_val, a_ids, htb, rows,
                            metrics: KernelMetrics, *,
                            warps: int = 1, keys_in_shared: bool = True,
                            record_slots: bool = True):
        rows = np.asarray(rows, dtype=np.int64)
        n = len(rows)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        b_pos, b_lens = row_positions(htb.off, rows)
        if len(a_idx) == 0 or len(b_pos) == 0:
            return np.zeros(n, dtype=np.int64)
        if _trace.enabled:
            aids = np.asarray(a_ids, dtype=np.int64)
            _trace.tally_kernel(
                "bitmap_pairs_counts", items=n,
                bytes_touched=16 * (int((a_off[aids + 1]
                                         - a_off[aids]).sum())
                                    + int(b_lens.sum())))
        pos, hit = self._pair_hits(a_off, a_idx,
                                   np.asarray(a_ids, dtype=np.int64),
                                   htb.idx[b_pos], b_lens)
        masks = a_val[pos[hit]] & htb.val[b_pos[hit]]
        weights = np.zeros(len(hit), dtype=np.int64)
        weights[hit] = popcount(masks).astype(np.int64, copy=False)
        return _per_row_sums(weights, b_lens)

    # -- HTB batch kernels ---------------------------------------------
    def _bitmap_flat(self, keys: BitmapSet, htb, rows):
        """Shared two-phase core: align Idx words, AND Val words.

        Returns flat (idx, val) result words, a flat keep mask, and
        per-row input lengths for the split/sum stages.
        """
        a_idx, a_val = keys.idx, keys.val
        pos, lens = row_positions(htb.off, rows)
        b_idx = htb.idx[pos]
        probe, hit = _probe_mask(a_idx, b_idx)
        masks = a_val[probe[hit]] & htb.val[pos[hit]]
        nz = masks != 0
        keep = hit.copy()
        keep[hit] = nz
        return b_idx[hit][nz], masks[nz], keep, lens

    def bitmap_intersect_many(self, keys: BitmapSet, htb, rows,
                              metrics: KernelMetrics, *,
                              warps: int = 1, keys_in_shared: bool = True,
                              record_slots: bool = True):
        rows = np.asarray(rows, dtype=np.int64)
        n = len(rows)
        if n == 0:
            return []
        if keys.is_empty():
            return [_EMPTY_SET] * n
        if _trace.enabled:
            row_words = int((htb.off[rows + 1] - htb.off[rows]).sum())
            _trace.tally_kernel(
                "bitmap_intersect_many", items=n,
                bytes_touched=16 * (len(keys.idx) + row_words))
        if self.jit_enabled:
            flat_idx, flat_val, words, pops = _jit.bitmap_rows(
                keys.idx, keys.val, htb.off, htb.idx, htb.val, rows)
        else:
            flat_idx, flat_val, keep, lens = self._bitmap_flat(
                keys, htb, rows)
            words = _per_row_sums(keep, lens)
            pops = _per_row_sums(
                popcount(flat_val).astype(np.int64, copy=False),
                words)
        cuts = np.cumsum(words)[:-1]
        out = []
        for i, (idx_i, val_i) in enumerate(zip(np.split(flat_idx, cuts),
                                               np.split(flat_val, cuts))):
            got = BitmapSet(idx_i, val_i)
            got.__dict__["_count"] = int(pops[i])  # popcount already paid
            out.append(got)
        return out

    def bitmap_intersect_counts(self, keys: BitmapSet, htb, rows,
                                metrics: KernelMetrics, *,
                                warps: int = 1, keys_in_shared: bool = True,
                                record_slots: bool = True) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        n = len(rows)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if keys.is_empty():
            return np.zeros(n, dtype=np.int64)
        if _trace.enabled:
            row_words = int((htb.off[rows + 1] - htb.off[rows]).sum())
            _trace.tally_kernel(
                "bitmap_intersect_counts", items=n,
                bytes_touched=16 * (len(keys.idx) + row_words))
        if self.jit_enabled:
            return _jit.bitmap_row_counts(keys.idx, keys.val, htb.off,
                                          htb.idx, htb.val, rows)
        _, flat_val, keep, lens = self._bitmap_flat(keys, htb, rows)
        weights = np.zeros(len(keep), dtype=np.int64)
        weights[keep] = popcount(flat_val).astype(np.int64, copy=False)
        return _per_row_sums(weights, lens)


# ---------------------------------------------------------------------------
# cost-model self-registration: the planner prices counted work on this
# engine with amortised per-call constants (fitted on the Table II tiny
# stand-ins alongside BENCH_native.json) and, because auto=True, ranks
# every method under "native" as well as "fast" when no backend is
# pinned — method="auto" picks the engine exactly when it wins.
# ---------------------------------------------------------------------------

#: batched per-merge-invocation overhead: one numpy dispatch is shared
#: by a whole frontier, so the marginal per-call cost collapses
NATIVE_SECONDS_PER_MERGE_CALL = 4.5e-7
#: marginal cost per comparison inside a vectorised batch
NATIVE_SECONDS_PER_COMPARISON = 7.0e-9

register_backend_cost(BackendCostModel(
    name="native",
    seconds_per_merge_call=NATIVE_SECONDS_PER_MERGE_CALL,
    seconds_per_comparison=NATIVE_SECONDS_PER_COMPARISON,
    auto=True,
))
