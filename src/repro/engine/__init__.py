"""Unified kernel-backend layer: pluggable execution engines.

Planning/definition (which sets intersect, in which order) lives in
:mod:`repro.core`; measured execution lives here.  Three engines ship:

* ``"sim"`` — :class:`SimulatedDeviceBackend`, the instrumented simulated
  GPU every paper figure is measured with;
* ``"fast"`` — :class:`FastBackend`, raw vectorised NumPy with all
  instrumentation compiled out;
* ``"par"`` — :class:`ParallelBackend`, the fast kernels sharded over
  forked worker processes with deterministic merging (counts identical
  to a serial fast run for any worker count);
* ``"native"`` — :class:`~repro.engine.native.NativeBackend`, the
  batch-kernel engine: whole frontiers of intersections per vectorised
  (optionally numba-JIT) kernel call, counts bit-identical to ``fast``.

Select one via the ``backend=`` argument of any counting entry point, the
``--backend``/``--workers`` CLI flags, or construct an engine directly:

>>> from repro.engine import BACKEND_NAMES, FastBackend, resolve_backend
>>> BACKEND_NAMES
('sim', 'fast', 'par', 'native')
>>> resolve_backend(None).name          # the historical default
'sim'
>>> resolve_backend("fast").instrumented
False
>>> resolve_backend(None, workers=2).name  # workers= implies "par"
'par'
>>> resolve_backend(FastBackend()).name    # instances pass through
'fast'
"""

from repro.engine.base import (
    BACKEND_NAMES,
    KernelBackend,
    get_backend,
    resolve_backend,
)
from repro.engine.fast import FastBackend
from repro.engine.parallel import ParallelBackend
from repro.engine.simulated import SimulatedDeviceBackend

__all__ = [
    "KernelBackend", "SimulatedDeviceBackend", "FastBackend",
    "ParallelBackend", "NativeBackend", "BACKEND_NAMES", "get_backend",
    "resolve_backend",
]


def __getattr__(name: str):
    # NativeBackend imports lazily: repro.engine.native registers its
    # cost model with repro.plan at import time, and loading that chain
    # from this package-level __init__ would be circular
    if name == "NativeBackend":
        from repro.engine.native import NativeBackend

        return NativeBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
