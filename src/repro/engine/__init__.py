"""Unified kernel-backend layer: pluggable execution engines.

Planning/definition (which sets intersect, in which order) lives in
:mod:`repro.core`; measured execution lives here.  Two engines ship:

* ``"sim"`` — :class:`SimulatedDeviceBackend`, the instrumented simulated
  GPU every paper figure is measured with;
* ``"fast"`` — :class:`FastBackend`, raw vectorised NumPy with all
  instrumentation compiled out.

Select one via the ``backend=`` argument of any counting entry point, the
``--backend`` CLI flag, or construct an engine directly::

    from repro import FastBackend, gbc_count
    result = gbc_count(graph, query, backend=FastBackend())
"""

from repro.engine.base import (
    BACKEND_NAMES,
    KernelBackend,
    get_backend,
    resolve_backend,
)
from repro.engine.fast import FastBackend
from repro.engine.simulated import SimulatedDeviceBackend

__all__ = [
    "KernelBackend", "SimulatedDeviceBackend", "FastBackend",
    "BACKEND_NAMES", "get_backend", "resolve_backend",
]
