"""The uninstrumented execution engine: pure vectorised NumPy.

Produces exactly the same intersection *results* as the simulated device
backend — the equivalence tests assert this per primitive and end-to-end
across all five algorithms — but with every piece of instrumentation
compiled out: no ``perf_counter`` calls, no comparison cells, no
transaction charging, no warp-slot bookkeeping.  On medium graphs this is
several times faster than the simulated engine, which is the point:
experiments that only need counts (or host wall-clock) should not pay the
measurement tax.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import KernelBackend
from repro.gpu.metrics import KernelMetrics
from repro.htb.htb import BitmapSet

__all__ = ["FastBackend"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=np.uint64)
_EMPTY_SET = BitmapSet(_EMPTY_I64, _EMPTY_U64)


class FastBackend(KernelBackend):
    """Instrumentation-free kernels built on sorted searchsorted probes."""

    name = "fast"
    instrumented = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "FastBackend()"

    # -- kernel primitives ---------------------------------------------
    def merge(self, a: np.ndarray, b: np.ndarray,
              comparisons: list[int] | None = None) -> np.ndarray:
        # probe the shorter sorted array into the longer one: O(m log n)
        # with small constant, beating intersect1d's concatenate-and-sort
        if len(a) > len(b):
            a, b = b, a
        if len(a) == 0 or len(b) == 0:
            return _EMPTY_I64
        pos = b.searchsorted(a)
        pos[pos == len(b)] = 0  # out-of-range probes can never match
        return a[b[pos] == a]

    def intersect(self, keys: np.ndarray, lst: np.ndarray,
                  metrics: KernelMetrics, *,
                  warps: int = 1, base_word: int = 0,
                  record_slots: bool = True) -> np.ndarray:
        return self.merge(keys, lst)

    def membership(self, keys: np.ndarray, lst: np.ndarray) -> np.ndarray:
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        if len(lst) == 0:
            return np.zeros(len(keys), dtype=bool)
        pos = lst.searchsorted(keys)
        pos[pos == len(lst)] = 0
        return lst[pos] == keys

    def bitmap_intersect(self, keys, lst, metrics: KernelMetrics, *,
                         warps: int = 1, base_word: int = 0,
                         keys_in_shared: bool = True,
                         record_slots: bool = True):
        a_idx, a_val = keys.idx, keys.val
        b_idx, b_val = lst.idx, lst.val
        if len(a_idx) > len(b_idx):  # intersection is commutative
            a_idx, a_val, b_idx, b_val = b_idx, b_val, a_idx, a_val
        n_a, n_b = len(a_idx), len(b_idx)
        if n_a == 0:
            return _EMPTY_SET
        if n_a == 1:
            # the common deep-recursion shape: one stored word, so a
            # scalar probe avoids ~10 tiny-array numpy dispatches
            word = int(a_idx[0])
            pos = int(b_idx.searchsorted(word))
            if pos == n_b or int(b_idx[pos]) != word:
                return _EMPTY_SET
            mask = int(a_val[0]) & int(b_val[pos])
            if mask == 0:
                return _EMPTY_SET
            out = BitmapSet(a_idx, np.asarray([mask], dtype=np.uint64))
            out.__dict__["_count"] = mask.bit_count()  # popcount for free
            return out
        pos = b_idx.searchsorted(a_idx)
        pos[pos == n_b] = 0
        ok = b_idx[pos] == a_idx
        masks = a_val[ok] & b_val[pos[ok]]
        keep = masks != 0
        return BitmapSet(a_idx[ok][keep], masks[keep])
