"""The sharded multi-process execution engine.

:class:`ParallelBackend` is the third registry engine (``"par"``): it
shards the root set across ``workers`` forked processes, each executing
the uninstrumented :class:`~repro.engine.fast.FastBackend` kernels, and
merges the per-shard results deterministically.  Static placement uses
the pre-runtime splitters of :mod:`repro.balance` (``contiguous`` or the
weighted-greedy LPT policy); the ``dynamic`` dispatch mode feeds small
chunks to a shared queue, mirroring the GCL work-stealing semantics of
:mod:`repro.gpu.workqueue` at process granularity.

Counts are bit-identical to a serial ``fast`` run regardless of worker
count, placement, or scheduling order: every root's search tree is
evaluated exactly as the serial engine would, and the merge is either a
scatter by original root index or an exact integer sum / maximum.  Like
the fast engine, ``par`` is uninstrumented — device metrics stay zero.

As a :class:`KernelBackend` its four primitives simply delegate to an
inner fast engine, so code paths without a sharded driver (enumeration,
single intersections) still work — serially — when handed ``"par"``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.base import KernelBackend
from repro.engine.fast import FastBackend
from repro.gpu.metrics import KernelMetrics
from repro.parallel.sharding import (
    DISPATCH_MODES,
    PLACEMENTS,
    default_workers,
    run_sharded,
)

__all__ = ["ParallelBackend"]


class ParallelBackend(KernelBackend):
    """Root-set sharding over forked workers, fast kernels inside."""

    name = "par"
    instrumented = False
    parallel = True

    def __init__(self, workers: int | None = None, *,
                 placement: str = "weighted",
                 dispatch: str = "static",
                 chunk_size: int | None = None) -> None:
        from repro.errors import QueryError

        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if placement not in PLACEMENTS:
            raise QueryError(f"placement must be one of {PLACEMENTS}, "
                             f"got {placement!r}")
        if dispatch not in DISPATCH_MODES:
            raise QueryError(f"dispatch must be one of {DISPATCH_MODES}, "
                             f"got {dispatch!r}")
        self.placement = placement
        self.dispatch = dispatch
        self.chunk_size = chunk_size
        self._inner = FastBackend()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ParallelBackend(workers={self.workers}, "
                f"placement={self.placement!r}, dispatch={self.dispatch!r})")

    def with_workers(self, workers: int) -> "ParallelBackend":
        """This engine's configuration with a different worker count."""
        return ParallelBackend(workers, placement=self.placement,
                               dispatch=self.dispatch,
                               chunk_size=self.chunk_size)

    # -- shard orchestration -------------------------------------------
    def map_shards(self, fn: Callable[[Sequence[int]], Any],
                   num_items: int,
                   weights: np.ndarray | None = None
                   ) -> list[tuple[tuple[int, ...], Any]]:
        """Run ``fn(item_indices)`` over shards of ``range(num_items)``.

        Returns ``[(item_indices, result), ...]`` in deterministic shard
        order; see :func:`repro.parallel.sharding.run_sharded`.  The
        sharded drivers in :mod:`repro.core` call this with a closure
        over their prepared inputs (forked workers inherit them).
        """
        return run_sharded(fn, num_items, workers=self.workers,
                           placement=self.placement, weights=weights,
                           dispatch=self.dispatch,
                           chunk_size=self.chunk_size)

    # -- kernel primitives: delegate to the fast engine ----------------
    def merge(self, a: np.ndarray, b: np.ndarray,
              comparisons: list[int] | None = None) -> np.ndarray:
        return self._inner.merge(a, b, comparisons)

    def intersect(self, keys: np.ndarray, lst: np.ndarray,
                  metrics: KernelMetrics, *,
                  warps: int = 1, base_word: int = 0,
                  record_slots: bool = True) -> np.ndarray:
        return self._inner.merge(keys, lst)

    def membership(self, keys: np.ndarray, lst: np.ndarray) -> np.ndarray:
        return self._inner.membership(keys, lst)

    def bitmap_intersect(self, keys, lst, metrics: KernelMetrics, *,
                         warps: int = 1, base_word: int = 0,
                         keys_in_shared: bool = True,
                         record_slots: bool = True):
        return self._inner.bitmap_intersect(keys, lst, metrics)
