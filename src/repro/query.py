"""Batched multi-query engine with shared per-graph precomputation.

The paper's system pays a large fixed cost per graph — the Definition-2
priority reordering, the two-hop (N2^q) index, and the HTB bitmap views
— before a single (p, q)-biclique is counted.  A service answering many
(p, q) queries over the same graph should build those structures once
and amortise them, which is exactly what this module provides:

* :class:`GraphSession` owns the prepared state of one
  :class:`~repro.graph.bipartite.BipartiteGraph`: the wedge-enumeration
  pass (shared across *all* q values), per-(layer, k) priority orders
  and rank-filtered two-hop indexes, HTB materialisations, and an LRU
  :class:`ResultCache` keyed by ``(graph fingerprint, method, p, q,
  backend)``.  Everything is built lazily and cached; construction
  counts are exposed on :attr:`GraphSession.stats` so build-once
  behaviour is testable, not aspirational.
* :func:`batch_count` evaluates a list of queries against one shared
  session and reports the cache traffic of the batch.

Every counter in :mod:`repro.core` accepts ``session=`` and pulls its
prepared inputs from the session instead of rebuilding them; the
classic ``gbc_count(graph, query)`` call convention is preserved as the
no-session path.

>>> from repro import BicliqueQuery, GraphSession, batch_count, gbc_count
>>> from repro import random_bipartite
>>> g = random_bipartite(num_u=30, num_v=20, num_edges=200, seed=7)
>>> batch = batch_count(g, "2x2,2x3,3x3", backend="fast")
>>> [r.count for r in batch.results]
[908, 528, 118]
>>> batch.results[0].count == gbc_count(g, BicliqueQuery(2, 2),
...                                     backend="fast").count
True
>>> batch.stats.wedge_builds   # one wedge enumeration served q=2 and q=3
1

A session persists across batches, so a repeated query is a cache hit:

>>> session = GraphSession(g)
>>> first = batch_count(session, ["3x3"], backend="fast")
>>> again = batch_count(session, ["3x3"], backend="fast")
>>> (first.cache_hits, again.cache_hits)
(0, 1)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from repro.core.counts import BicliqueQuery, CountResult
from repro.core.gbc import GBCOptions
from repro.engine.base import KernelBackend, resolve_backend
from repro.errors import QueryError
from repro.gpu.device import rtx_3090
from repro.graph.bipartite import BipartiteGraph, LAYER_U, LAYER_V
from repro.graph.priority import priority_order_from_sizes, rank_from_order
from repro.graph.stats import graph_fingerprint
from repro.graph.twohop import TwoHopIndex, WedgeIndex, build_wedge_index
from repro.htb.htb import HTB, htb_from_graph, htb_from_two_hop
from repro.errors import DeadlineExceededError
from repro.obs import trace as _trace
from repro.plan import (AUTO, CountPlan, Planner, ensure_accuracy,
                        execute_plan, explicit_plan)

__all__ = ["GraphSession", "SessionStats", "ResultCache", "BatchResult",
           "batch_count", "parse_queries", "graph_fingerprint"]


def parse_queries(queries) -> list[BicliqueQuery]:
    """Normalise a query batch to a list of :class:`BicliqueQuery`.

    Accepts a comma-separated ``"PxQ"`` string (the CLI syntax), or any
    iterable mixing ``"PxQ"`` strings, ``(p, q)`` pairs, and
    :class:`BicliqueQuery` instances.  A malformed spec raises
    :class:`~repro.errors.QueryError` (a :class:`ValueError`) that names
    the offending item and what is wrong with it — a truncated ``"3x"``,
    a non-integer side, and zero/negative sizes are each called out.

    >>> parse_queries("3x3,3x4")
    [BicliqueQuery(p=3, q=3), BicliqueQuery(p=3, q=4)]
    >>> parse_queries([(2, 2), BicliqueQuery(4, 4)])
    [BicliqueQuery(p=2, q=2), BicliqueQuery(p=4, q=4)]
    >>> parse_queries("0x3")
    Traceback (most recent call last):
        ...
    repro.errors.QueryError: bad query spec '0x3': p and q must be >= 1, got (0, 3)
    """
    if isinstance(queries, str):
        queries = [part for part in queries.split(",") if part.strip()]
    out: list[BicliqueQuery] = []
    for item in queries:
        if isinstance(item, BicliqueQuery):
            out.append(item)
            continue
        if isinstance(item, str):
            parts = item.strip().lower().split("x")
            if len(parts) != 2:
                raise QueryError(f"bad query spec {item!r}; expected 'PxQ' "
                                 f"like '3x4'")
            try:
                p, q = int(parts[0]), int(parts[1])
            except ValueError:
                missing = [n for n, s in zip("pq", parts) if not s.strip()]
                what = (f"missing {' and '.join(missing)}" if missing
                        else "p and q must be integers")
                raise QueryError(
                    f"bad query spec {item!r}: {what}") from None
        else:
            try:
                p, q = item
                p, q = int(p), int(q)
            except (TypeError, ValueError):
                raise QueryError(f"bad query spec {item!r}; expected 'PxQ', "
                                 f"(p, q) or BicliqueQuery") from None
        if p < 1 or q < 1:
            raise QueryError(f"bad query spec {item!r}: p and q must be "
                             f">= 1, got ({p}, {q})")
        out.append(BicliqueQuery(p, q))
    if not out:
        raise QueryError("empty query batch")
    return out


@dataclass
class SessionStats:
    """Construction counters of a :class:`GraphSession`.

    Each counter increments once per *materialisation* of the named
    structure; cache hits leave them untouched.  The batch-engine
    guarantee — one wedge pass, one reorder permutation, one two-hop
    index and one HTB per (layer, k) regardless of batch size — is
    asserted against these counters in ``tests/query/``.
    """

    wedge_builds: int = 0       #: full wedge-enumeration passes (per layer)
    order_builds: int = 0      #: priority (reorder) permutations built
    index_builds: int = 0      #: N2^k two-hop indexes materialised
    htb_adj_builds: int = 0    #: HTBs over 1-hop adjacency (per layer)
    htb_two_hop_builds: int = 0  #: HTBs over N2^k lists (per layer, k)
    native_pack_builds: int = 0  #: native-backend CSR packs (per layer, k)
    prepare_calls: int = 0     #: device-input preparations served

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class ResultCache:
    """A small LRU cache of :class:`~repro.core.counts.CountResult`.

    Keys are built by :meth:`GraphSession.count` from ``(graph
    fingerprint, method, p, q, backend name, ...)``; values are the
    full result objects, so a hit returns the original run's count
    *and* its timings/metrics.  ``hits``/``misses`` make cache traffic
    observable.

    All operations are thread-safe: the serving scheduler
    (:mod:`repro.service`) hits one session's cache from many worker
    threads at once, and an unlocked ``OrderedDict.move_to_end`` under
    that load corrupts recency order or raises ``KeyError`` mid-eviction.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise QueryError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()
        self._data: OrderedDict[tuple, CountResult] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: tuple) -> CountResult | None:
        """The cached result for ``key``, refreshing its recency."""
        with self._lock:
            got = self._data.get(key)
            if got is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return got

    def put(self, key: tuple, value: CountResult) -> None:
        """Insert/refresh ``key``, evicting the least recently used."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


class GraphSession:
    """Prepared, shareable counting state for one bipartite graph.

    The session builds each precomputation product lazily, exactly
    once, and hands it to any counter that asks (every entry point in
    :mod:`repro.core` takes ``session=``):

    * :meth:`wedges` — the full two-hop multiset of a layer (one wedge
      pass, shared by *every* k);
    * :meth:`priority_order` / :meth:`priority_rank` — the Definition-2
      reorder permutation per (layer, k);
    * :meth:`two_hop_index` — the rank-filtered N2^k index per
      (layer, k);
    * :meth:`htb_pair` — the adjacency and two-hop HTBs GBC intersects;
    * :meth:`count` — a counting run through the LRU result cache.

    Sessions assume the graph is immutable (as
    :class:`~repro.graph.bipartite.BipartiteGraph` is designed to be).
    If the underlying arrays are mutated in place regardless, call
    :meth:`refresh`: it re-fingerprints the graph and drops every cache
    on a content change.

    Sessions are thread-safe: every lazy builder runs under one
    reentrant lock (reentrant because builders compose —
    :meth:`two_hop_index` needs :meth:`priority_rank` needs
    :meth:`wedges`), so concurrent counters still build each structure
    exactly once and :attr:`stats` stays exact.  The lock is *not* held
    while a count executes, so queries that found their prepared state
    warm proceed in parallel.
    """

    #: epoch of the :class:`repro.dynamic.DynamicGraphSession` snapshot
    #: this session was materialised from, or None for a static session
    epoch: int | None = None

    def __init__(self, graph: BipartiteGraph, spec=None,
                 max_cached_results: int = 256, *,
                 ledger=None) -> None:
        self._graph = graph
        self.spec = spec
        #: optional :class:`repro.obs.ledger.CostLedger` — executions
        #: report measured seconds into it, and the session's planner
        #: calibrates its rankings from it
        self.ledger = ledger
        self._lock = threading.RLock()
        self._fingerprint = graph_fingerprint(graph)
        self.stats = SessionStats()
        self.results = ResultCache(max_cached_results)
        self._anchored: dict[str, BipartiteGraph] = {LAYER_U: graph}
        self._wedges: dict[str, WedgeIndex] = {}
        self._orders: dict[tuple, np.ndarray] = {}
        self._ranks: dict[tuple, np.ndarray] = {}
        self._indexes: dict[tuple, TwoHopIndex] = {}
        self._htb_adj: dict[str, HTB] = {}
        self._htb_two_hop: dict[tuple, HTB] = {}
        self._native_packs: dict[tuple, object] = {}
        self._plans: dict[tuple, CountPlan] = {}
        self._planner: Planner | None = None

    @property
    def graph(self) -> BipartiteGraph:
        return self._graph

    @property
    def fingerprint(self) -> str:
        """Content hash of the graph at session creation / last refresh."""
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GraphSession({self._graph!r}, "
                f"fingerprint={self._fingerprint[:8]}..., "
                f"cached_results={len(self.results)})")

    def check_owns(self, graph: BipartiteGraph) -> None:
        """Raise :class:`~repro.errors.QueryError` unless this session
        wraps exactly the graph a counter was handed (identity, not
        structural equality — prepared state is per-object)."""
        if graph is not self._graph:
            raise QueryError("session wraps a different graph than the one "
                             "passed to the counter")

    # -- prepared structures -------------------------------------------
    def anchored(self, layer: str) -> BipartiteGraph:
        """The graph presented with ``layer`` as its U side."""
        with self._lock:
            got = self._anchored.get(layer)
            if got is None:
                if layer != LAYER_V:
                    raise QueryError(f"unknown layer {layer!r}")
                self._anchored[layer] = got = self._graph.swapped()
            return got

    def wedges(self, layer: str) -> WedgeIndex:
        """The full two-hop multiset of ``layer`` (one pass, any k)."""
        with self._lock:
            got = self._wedges.get(layer)
            if got is None:
                with _trace.span("prepare.wedges", layer=layer):
                    self.stats.wedge_builds += 1
                    got = build_wedge_index(self.anchored(layer), LAYER_U)
                self._wedges[layer] = got
            return got

    def priority_order(self, layer: str, k: int) -> np.ndarray:
        """The Definition-2 reorder permutation for (``layer``, ``k``)."""
        with self._lock:
            key = (layer, int(k))
            got = self._orders.get(key)
            if got is None:
                with _trace.span("prepare.order", layer=layer, k=int(k)):
                    self.stats.order_builds += 1
                    got = priority_order_from_sizes(
                        self.wedges(layer).n2k_sizes(k))
                self._orders[key] = got
            return got

    def priority_rank(self, layer: str, k: int) -> np.ndarray:
        """rank[vertex] = position in :meth:`priority_order`."""
        with self._lock:
            key = (layer, int(k))
            got = self._ranks.get(key)
            if got is None:
                got = rank_from_order(self.priority_order(layer, k))
                self._ranks[key] = got
            return got

    def two_hop_index(self, layer: str, k: int) -> TwoHopIndex:
        """The priority-rank-filtered N2^k index for (``layer``, ``k``)."""
        with self._lock:
            key = (layer, int(k), "priority")
            got = self._indexes.get(key)
            if got is None:
                with _trace.span("prepare.two_hop", layer=layer,
                                 k=int(k)):
                    self.stats.index_builds += 1
                    got = self.wedges(layer).two_hop_index(
                        k, min_priority_rank=self.priority_rank(layer, k))
                self._indexes[key] = got
            return got

    def id_order_index(self, k: int) -> TwoHopIndex:
        """The id-rank-filtered N2^k index the Basic baseline uses
        (always anchored on U, candidates restricted to larger ids)."""
        with self._lock:
            key = (LAYER_U, int(k), "id")
            got = self._indexes.get(key)
            if got is None:
                with _trace.span("prepare.two_hop_id", k=int(k)):
                    self.stats.index_builds += 1
                    ids = np.arange(self._graph.num_u, dtype=np.int64)
                    got = self.wedges(LAYER_U).two_hop_index(
                        k, min_priority_rank=ids)
                self._indexes[key] = got
            return got

    def htb_pair(self, layer: str, k: int) -> tuple[HTB, HTB]:
        """GBC's two HTBs: 1-hop adjacency (per layer) and N2^k lists
        (per layer, k)."""
        with self._lock:
            htb1 = self._htb_adj.get(layer)
            if htb1 is None:
                with _trace.span("prepare.htb_adj", layer=layer):
                    self.stats.htb_adj_builds += 1
                    htb1 = htb_from_graph(self.anchored(layer), LAYER_U)
                self._htb_adj[layer] = htb1
            key = (layer, int(k))
            htb2 = self._htb_two_hop.get(key)
            if htb2 is None:
                with _trace.span("prepare.htb_two_hop", layer=layer,
                                 k=int(k)):
                    self.stats.htb_two_hop_builds += 1
                    htb2 = htb_from_two_hop(self.two_hop_index(layer, k))
                self._htb_two_hop[key] = htb2
            return htb1, htb2

    def native_pack(self, layer: str, k: int):
        """The native backend's contiguous CSR pack for (``layer``, ``k``)
        — the anchored adjacency plus the rank-filtered N2^k index,
        repacked once per (layer, k) and shared by every native-engine
        count (the ``native:<layer>:<k>`` plan requirement)."""
        with self._lock:
            key = (layer, int(k))
            got = self._native_packs.get(key)
            if got is None:
                from repro.engine.native import build_native_pack

                with _trace.span("prepare.native_pack", layer=layer,
                                 k=int(k)) as sp:
                    self.stats.native_pack_builds += 1
                    got = build_native_pack(self.anchored(layer),
                                            self.two_hop_index(layer, k),
                                            layer, k)
                    sp.annotate(bytes=got.nbytes)
                self._native_packs[key] = got
            return got

    def prepared(self, query: BicliqueQuery, layer: str | None = None):
        """The :class:`~repro.core.device_common.DeviceInputs` for one
        query, served from the session's caches."""
        from repro.core.device_common import prepare_device_inputs
        return prepare_device_inputs(self._graph, query, layer, session=self)

    # -- lifecycle ------------------------------------------------------
    def refresh(self) -> bool:
        """Re-fingerprint the graph; drop all caches if it changed.

        Returns True when a content change was detected (the prepared
        structures and cached results were invalidated), False when the
        graph is untouched and every cache is kept.
        """
        with self._lock:
            fp = graph_fingerprint(self._graph)
            if fp == self._fingerprint:
                return False
            self._fingerprint = fp
            self._anchored = {LAYER_U: self._graph}
            self._wedges.clear()
            self._orders.clear()
            self._ranks.clear()
            self._indexes.clear()
            self._htb_adj.clear()
            self._htb_two_hop.clear()
            self._native_packs.clear()
            self._plans.clear()
            self._planner = None
            self.results.clear()
            return True

    # -- planning ------------------------------------------------------
    def _get_planner(self) -> Planner:
        with self._lock:
            if self._planner is None:
                self._planner = Planner(self._graph, spec=self.spec,
                                        session=self, ledger=self.ledger)
            return self._planner

    def plan(self, query: BicliqueQuery, *,
             backend: KernelBackend | str | None = None,
             workers: int | None = None,
             layer: str | None = None,
             accuracy: str = "exact",
             deadline: float | None = None) -> CountPlan:
        """The cost-based plan for one query shape, cached per shape.

        Planning runs once per (graph, shape-class) — the (p, q) shape
        under a given engine choice — and the chosen plan is reused for
        every later query of that shape on this session, so a mixed
        batch or serving workload pays one probe per distinct shape.
        The probe itself runs through this session, reusing (and
        warming) the shared prepared state.  ``accuracy``/``deadline``
        select the tier as :meth:`repro.plan.planner.Planner.rank`
        documents; deadlines are request-specific wall-clock budgets,
        so deadline-carrying plans bypass the per-shape cache.
        """
        backend_key = backend.name if isinstance(backend, KernelBackend) \
            else backend
        planner = self._get_planner()
        if deadline is not None:
            # a deadline is per-request: what fits one request's budget
            # must not decide another's, so no cache on either side
            return planner.plan(query, backend=backend, workers=workers,
                                layer=layer, accuracy=accuracy,
                                deadline=deadline)
        key = (query.p, query.q, backend_key, workers, layer, accuracy)
        with self._lock:
            got = self._plans.get(key)
            if got is not None:
                return got
        # probe outside the lock: it may run sampled roots
        plan = planner.plan(query, backend=backend, workers=workers,
                            layer=layer, accuracy=accuracy)
        with self._lock:
            return self._plans.setdefault(key, plan)

    # -- counting through the result cache -----------------------------
    def count(self, query: BicliqueQuery, method: str = "GBC", *,
              backend: KernelBackend | str | None = None,
              workers: int | None = None,
              layer: str | None = None,
              options: GBCOptions | None = None,
              threads: int = 16,
              use_cache: bool = True,
              accuracy: str = "exact",
              deadline: float | None = None) -> CountResult:
        """Run one counting query against the session's shared state.

        Results are memoised in :attr:`results` under ``(fingerprint,
        method, p, q, backend name, workers, layer, options, threads)``
        — a hit returns the *original*
        :class:`~repro.core.counts.CountResult` object without
        re-running anything, so treat results as read-only: mutating a
        returned result's ``breakdown``/``metrics`` would alter what
        later hits observe.  Counts are backend-independent, but the
        key includes backend name and worker count so cached
        timing/metric fields always match the configuration that was
        asked for.

        ``method="auto"`` resolves through :meth:`plan` first (one
        probe per query shape, cached); the resolved plan supplies the
        method — and, when no backend was named, the engine — so auto
        runs share the result cache with their explicit equivalents.

        ``accuracy="approx"`` plans the sampling tier (the result's
        ``extras`` carry ``estimate``/``std_error``/``ci95``/
        ``samples``); ``"auto"`` serves exact when it fits and falls
        back to approx when a ``deadline`` makes exact infeasible.
        With ``accuracy="exact"`` a ``deadline`` is a hard admission
        bound: a predicted overrun raises
        :class:`~repro.errors.DeadlineExceededError` before any work
        runs.
        """
        ensure_accuracy(accuracy)
        chosen: CountPlan | None = None
        if accuracy != "exact" and method not in (AUTO, "approx"):
            raise QueryError(
                f"accuracy={accuracy!r} lets the planner choose the "
                f"method; pass method='auto' (got {method!r})")
        if accuracy == "approx":
            chosen = self.plan(query, backend=backend, workers=workers,
                               layer=layer, accuracy="approx",
                               deadline=deadline)
        elif method == AUTO:
            chosen = self.plan(query, backend=backend, workers=workers,
                               layer=layer, accuracy=accuracy,
                               deadline=deadline)
        elif deadline is not None:
            predicted = self._get_planner().predict(
                query, method, backend=backend, workers=workers,
                layer=layer)
            if predicted > deadline:
                if accuracy == "auto":
                    chosen = self.plan(query, backend=backend,
                                       workers=workers, layer=layer,
                                       accuracy="approx",
                                       deadline=deadline)
                else:
                    raise DeadlineExceededError(
                        f"{method} predicts {predicted:.3g}s against a "
                        f"{deadline:.3g}s deadline; retry with "
                        f"accuracy='approx' or 'auto'")
        if chosen is not None:
            method = chosen.method
            if backend is None:
                backend = chosen.backend
                workers = chosen.workers if workers is None \
                    else workers
        engine = resolve_backend(backend, self.spec, workers=workers)
        if method == "approx":
            # estimates are keyed by their (samples, seed) budget: two
            # different budgets are different answers, not a cache hit
            approx_key = (chosen.samples, chosen.seed) \
                if chosen is not None else (None, None)
        else:
            approx_key = None
        key = (self._fingerprint, method, query.p, query.q, engine.name,
               # "par" results carry worker-dependent timings, so each
               # worker count is its own cache entry (counts are
               # worker-invariant, timing/shard fields are not)
               getattr(engine, "workers", None),
               layer, None if options is None else repr(options),
               threads if method == "BCLP" else None,
               approx_key)
        if use_cache:
            hit = self.results.get(key)
            if hit is not None:
                return hit
        result = self._dispatch(method, query, engine, layer, options,
                                threads,
                                samples=None if chosen is None
                                else chosen.samples,
                                seed=None if chosen is None
                                else chosen.seed,
                                predicted=0.0 if chosen is None
                                else chosen.predicted_seconds)
        if use_cache:
            self.results.put(key, result)
        return result

    def _dispatch(self, method: str, query: BicliqueQuery,
                  engine: KernelBackend, layer: str | None,
                  options: GBCOptions | None, threads: int,
                  samples: int | None = None,
                  seed: int | None = None,
                  predicted: float = 0.0) -> CountResult:
        # repro.plan.execute_plan is the one dispatch site for the whole
        # repo; an unregistered name raises UnknownMethodError (a
        # QueryError) from explicit_plan before anything runs
        plan = explicit_plan(self._graph, query, method,
                             backend=engine,
                             workers=getattr(engine, "workers", None),
                             layer=layer, samples=samples, seed=seed)
        if predicted > 0.0:
            # auto runs keep the planner's prediction on the executed
            # plan, so the ledger can learn the observed/predicted ratio
            plan = replace(plan, predicted_seconds=predicted)
        return execute_plan(plan, self._graph, query, session=self,
                            spec=self.spec, backend=engine,
                            options=options, threads=threads)


@dataclass
class BatchResult:
    """Outcome of one :func:`batch_count` call."""

    queries: list[BicliqueQuery]
    results: list[CountResult]
    session: GraphSession
    #: result-cache traffic of *this* batch (not the session lifetime)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def counts(self) -> list[int]:
        return [r.count for r in self.results]

    @property
    def stats(self) -> SessionStats:
        return self.session.stats


def batch_count(graph: BipartiteGraph | GraphSession,
                queries: str | Iterable,
                method: str = "GBC", *,
                backend: KernelBackend | str | None = None,
                workers: int | None = None,
                layer: str | None = None,
                spec=None,
                options: GBCOptions | None = None,
                threads: int = 16,
                use_cache: bool = True,
                accuracy: str = "exact",
                deadline: float | None = None) -> BatchResult:
    """Evaluate a batch of (p, q) queries with shared precomputation.

    ``graph`` may be a raw :class:`~repro.graph.bipartite.BipartiteGraph`
    (a fresh :class:`GraphSession` is created for the batch and returned
    on the result), an existing session, which keeps its caches warm
    across batches, or anything exposing ``as_graph_session()`` — a
    :class:`repro.dynamic.DynamicGraphSession` or one of its pinned
    snapshots, in which case the whole batch evaluates against one
    consistent epoch.  ``queries`` is anything :func:`parse_queries`
    accepts.  All remaining arguments mirror the single-query entry
    points: ``method`` picks the algorithm (``"auto"`` asks the
    cost-based planner, which plans once per distinct query shape and
    shares the session's prepared state across the batch per the
    chosen plan's requirements), ``backend``/``workers`` the execution
    engine, ``layer`` pins the anchored layer, and
    ``accuracy``/``deadline`` select the service tier per query exactly
    as :meth:`GraphSession.count` documents.

    The expensive per-graph structures — wedge enumeration, reorder
    permutation, two-hop index, HTB — are built at most once per
    (layer, k) for the whole batch, and queries repeated across batches
    of the same session are served from the LRU result cache.

    ``spec`` only applies when creating a fresh session; an existing
    session keeps the device spec it was built with, and passing a
    *different* one is an error rather than a silent override (a spec
    value-equal to the session's — including the ``rtx_3090`` default
    of a session built without one — is accepted).
    """
    if isinstance(graph, BipartiteGraph):
        session = GraphSession(graph, spec=spec)
    else:
        if isinstance(graph, GraphSession):
            session = graph
        elif hasattr(graph, "as_graph_session"):
            # an epoch-pinned dynamic graph or snapshot (repro.dynamic):
            # the batch runs against its materialised immutable session
            session = graph.as_graph_session()
        else:
            raise QueryError(
                f"batch_count needs a BipartiteGraph, GraphSession, or "
                f"dynamic session/snapshot; got {type(graph).__name__}")
        effective = session.spec if session.spec is not None else rtx_3090()
        if spec is not None and spec != effective:
            raise QueryError("spec= conflicts with the existing session's "
                             "device spec; create the GraphSession with "
                             "the spec you want")
    parsed = parse_queries(queries)
    hits0, misses0 = session.results.hits, session.results.misses
    results = [session.count(q, method, backend=backend, workers=workers,
                             layer=layer, options=options, threads=threads,
                             use_cache=use_cache, accuracy=accuracy,
                             deadline=deadline)
               for q in parsed]
    return BatchResult(
        queries=parsed,
        results=results,
        session=session,
        cache_hits=session.results.hits - hits0,
        cache_misses=session.results.misses - misses0,
    )
