"""The distributed serving worker: one forked process, one pool shard.

A worker owns a :class:`~repro.service.pool.SessionPool` holding only
the graphs the router placed on it, a private in-process
:class:`~repro.service.scheduler.Scheduler` (so envelope batches still
coalesce and honour deadlines inside the worker), a private
:class:`~repro.obs.ledger.CostLedger` keeping ``method="auto"``
calibrated per worker, and — for partitioned graphs — cached
:func:`~repro.partition.runner.build_root_index` state per query ``q``
so repeated partial counts over its root shard skip index builds.

Transport is a single duplex pipe per worker, strictly
request/response.  Message envelopes (parent → worker)::

    ("batch", graph, [(rid, p, q, method, accuracy, deadline), ...])
    ("partial", graph, [(p, q), ...])
    ("telemetry",)
    ("close",)

Results cross the pipe as plain tuples/dicts (never exceptions or
CountResults, which keeps the protocol picklable by construction):
``("ok", payload)`` per request with the fields to rebuild a
:class:`~repro.core.counts.CountResult`, or ``("err", (type_name,
message))`` which the router rehydrates into the matching
:mod:`repro.errors` class.  Workers are spawned via **fork**, so the
graph arrays arrive by inheritance — nothing graph-sized is ever
pickled.
"""

from __future__ import annotations

import os
import threading

from repro.core.counts import BicliqueQuery, CountResult
from repro.errors import (DeadlineExceededError, PartitionError,
                          QueryError, QueueFullError, ServiceClosedError,
                          ServiceError, UnknownMethodError)
from repro.obs.ledger import CostLedger
from repro.partition.runner import build_root_index, count_roots

__all__ = ["WorkerHandle", "pack_error", "unpack_error", "pack_result",
           "unpack_result"]

#: error classes allowed to cross the worker pipe by name; anything
#: else degrades to ServiceError with the worker's message
_ERROR_TYPES = {cls.__name__: cls for cls in (
    DeadlineExceededError, PartitionError, QueryError, QueueFullError,
    ServiceClosedError, ServiceError, UnknownMethodError, ValueError)}


def pack_error(exc: BaseException) -> tuple[str, str]:
    return (type(exc).__name__, str(exc))


def unpack_error(payload, worker_id: int) -> Exception:
    name, message = payload
    cls = _ERROR_TYPES.get(name)
    if cls is None:
        return ServiceError(f"worker w{worker_id}: {name}: {message}")
    return cls(message)


def pack_result(result: CountResult) -> dict:
    extras = {k: v for k, v in (result.extras or {}).items()
              if isinstance(v, (int, float, str, bool, type(None)))}
    return {"algorithm": result.algorithm, "p": result.query.p,
            "q": result.query.q, "count": result.count,
            "wall_seconds": result.wall_seconds,
            "anchored_layer": result.anchored_layer,
            "backend": result.backend, "extras": extras}


def unpack_result(payload: dict) -> CountResult:
    return CountResult(algorithm=payload["algorithm"],
                       query=BicliqueQuery(payload["p"], payload["q"]),
                       count=payload["count"],
                       wall_seconds=payload["wall_seconds"],
                       anchored_layer=payload["anchored_layer"],
                       backend=payload["backend"],
                       backend_instrumented=False,
                       extras=dict(payload["extras"]))


class _PartialCounter:
    """Per-worker exact counting over its shard of a graph's roots."""

    def __init__(self, graph, roots) -> None:
        self.graph = graph
        self.roots = sorted(int(r) for r in roots)
        self._indexes: dict[int, object] = {}
        self._counts: dict[tuple[int, int], int] = {}

    def count(self, p: int, q: int) -> int:
        key = (int(p), int(q))
        hit = self._counts.get(key)
        if hit is not None:
            return hit
        index = self._indexes.get(key[1])
        if index is None:
            index = build_root_index(self.graph, key[1])
            self._indexes[key[1]] = index
        total = count_roots(self.graph, BicliqueQuery(*key), self.roots,
                            index=index)
        self._counts[key] = total
        return total


def _serve_batch(scheduler, graph: str, items: list) -> list:
    """Run one envelope through the in-worker scheduler; returns one
    ``(rid, "ok"|"err", payload)`` per item, order unspecified."""
    out: list[tuple] = []
    futures: list[tuple] = []
    for rid, p, q, method, accuracy, deadline in items:
        try:
            fut = scheduler.submit(graph, p, q, method=method,
                                   accuracy=accuracy, deadline=deadline)
        except Exception as exc:
            out.append((rid, "err", pack_error(exc)))
        else:
            futures.append((rid, fut))
    for rid, fut in futures:
        try:
            result = fut.result()
        except Exception as exc:
            out.append((rid, "err", pack_error(exc)))
        else:
            out.append((rid, "ok", pack_result(result)))
    return out


def worker_main(conn, worker_id: int, graphs: dict,
                partition_roots: dict, scheduler_kwargs: dict
                ) -> None:  # pragma: no cover - runs in fork child
    """Entry point of one serving worker (inside the forked child).

    ``graphs`` maps name -> BipartiteGraph for this worker's shard;
    ``partition_roots`` maps partitioned-graph name -> this worker's
    root list.  Both arrive through fork inheritance.
    """
    from repro.service.pool import SessionPool
    from repro.service.scheduler import Scheduler

    ledger = CostLedger()
    pool = SessionPool(max_sessions=max(len(graphs), 1), ledger=ledger)
    for name, graph in graphs.items():
        pool.register(name, graph)
    scheduler = Scheduler(pool, ident=f"w{worker_id}",
                          **scheduler_kwargs)
    partials = {name: _PartialCounter(graphs[name], roots)
                for name, roots in partition_roots.items()}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            kind = msg[0]
            if kind == "batch":
                _, graph, items = msg
                conn.send(("batch", _serve_batch(scheduler, graph,
                                                 items)))
            elif kind == "partial":
                _, graph, shapes = msg
                counter = partials.get(graph)
                if counter is None:
                    conn.send(("err", pack_error(ServiceError(
                        f"no partition of {graph!r} on worker "
                        f"w{worker_id}"))))
                    continue
                try:
                    counts = {tuple(s): counter.count(*s)
                              for s in shapes}
                except Exception as exc:
                    conn.send(("err", pack_error(exc)))
                else:
                    conn.send(("partial", counts))
            elif kind == "telemetry":
                conn.send(("telemetry", {
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "graphs": sorted(graphs),
                    "partitioned": sorted(partials),
                    "telemetry": scheduler.telemetry.snapshot(
                        include_samples=True),
                    "ledger": ledger.snapshot(),
                    "pool": pool.snapshot(),
                }))
            elif kind == "close":
                conn.send(("closed", worker_id))
                return
            else:
                conn.send(("err", pack_error(ServiceError(
                    f"unknown envelope kind {kind!r}"))))
    finally:
        scheduler.close()
        pool.close()


class WorkerHandle:
    """Parent-side handle: spawn, exchange envelopes, shut down.

    One envelope is in flight per worker at a time (:meth:`call` holds
    the handle lock around its send/recv pair); concurrency across the
    cluster comes from the router's worker threads each talking to a
    different handle.
    """

    def __init__(self, ctx, worker_id: int, graphs: dict,
                 partition_roots: dict, scheduler_kwargs: dict) -> None:
        self.worker_id = int(worker_id)
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn, self.worker_id, graphs, partition_roots,
                  scheduler_kwargs),
            name=f"repro-dist-w{worker_id}", daemon=True)
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        self._lock = threading.Lock()
        self._closed = False

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return not self._closed and self.process.is_alive()

    def call(self, envelope: tuple):
        """Send one envelope, block for its reply."""
        with self._lock:
            if self._closed:
                raise ServiceError(
                    f"worker w{self.worker_id} is closed")
            try:
                self._conn.send(envelope)
                return self._conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                self._closed = True
                raise ServiceError(
                    f"worker w{self.worker_id} died "
                    f"({type(exc).__name__})") from exc

    def close(self, timeout: float = 5.0) -> None:
        """Graceful shutdown; escalates to terminate (idempotent)."""
        with self._lock:
            if not self._closed:
                try:
                    self._conn.send(("close",))
                    self._conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    pass
                self._closed = True
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=1.0)
