"""The ``serve-dist-bench`` harness: a topology × size throughput grid.

The distributed tier's headline artifact (``BENCH_dist.json``) follows
the run-table shape of topology-scaling benchmarks: one row per
**topology × graph size × repetition**, each row a full zipf workload
driven through a fresh :class:`~repro.dist.DistRouter` at that worker
count, reporting throughput, p95 latency and failure rate.  The
1-worker topology exercises the router's in-process fallback — which
*is* the single-process :class:`~repro.service.scheduler.Scheduler` —
so per-size speedups read directly off the grid as
``qps(N workers) / qps(1 worker)``.

Correctness rides along exactly as in ``serve-bench``: every distinct
served ``(graph, p, q)`` is re-counted with a direct call
(:func:`~repro.service.bench.verify_served`) and the artifact carries
the mismatches (which must be empty), plus a partitioned-tier check
that the fan-out/merge path equals whole-graph counts bit for bit.
"""

from __future__ import annotations

import time

from repro.core.counts import BicliqueQuery
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.parallel.sharding import default_workers
from repro.service.bench import verify_served
from repro.service.scheduler import SchedulerConfig
from repro.service.workload import WorkloadSpec, run_workload
from repro.dist.router import DistRouter

__all__ = ["GRID_SIZES", "dist_bench", "make_grid_graphs"]

#: graph-size tiers of the grid: (U, V, edges) per pooled graph role
GRID_SIZES: dict[str, dict[str, tuple[int, int, int]]] = {
    "small": {"hot": (300, 250, 1400), "warm": (250, 200, 1100),
              "cold": (220, 180, 900)},
    "medium": {"hot": (600, 500, 2800), "warm": (500, 400, 2200),
               "cold": (420, 350, 1800)},
}


def make_grid_graphs(size: str) -> dict:
    """The three-graph pool (hot/warm/cold) for one size tier."""
    shapes = GRID_SIZES[size]
    hu, hv, he = shapes["hot"]
    wu, wv, we = shapes["warm"]
    cu, cv, ce = shapes["cold"]
    return {
        "hot": power_law_bipartite(hu, hv, he, seed=21,
                                   name=f"hot-{size}"),
        "warm": random_bipartite(wu, wv, we, seed=22,
                                 name=f"warm-{size}"),
        "cold": power_law_bipartite(cu, cv, ce, seed=23,
                                    name=f"cold-{size}"),
    }


def _run_one(graphs: dict, topology: int, spec: WorkloadSpec, *,
             replication: int, backend: str, method: str,
             verify: bool) -> dict:
    config = SchedulerConfig(batch_window=0.002, max_batch=64,
                             workers=max(2, topology), backend=backend,
                             method=method)
    router = DistRouter(graphs, workers=topology,
                        replication=replication, hot=("hot",),
                        config=config)
    try:
        result = run_workload(router, spec)
        snap = router.cluster_snapshot()
    finally:
        router.close()
    telemetry = snap["router"]
    issued = max(result.issued, 1)
    failures = result.rejected + result.expired + result.failed
    mismatches = verify_served(graphs, result, backend) if verify \
        else []
    return {
        "topology": topology,
        "distributed": snap["mode"] == "dist",
        "completed": result.completed,
        "issued": result.issued,
        "rejected": result.rejected,
        "expired": result.expired,
        "failed": result.failed,
        "throughput_qps": result.throughput_qps,
        "p50_ms": telemetry["latency_ms"]["p50"],
        "p95_ms": telemetry["latency_ms"]["p95"],
        "failure_rate": failures / issued,
        "cluster_completed": snap["cluster"]["completed"],
        "mismatches": mismatches,
    }


def _partitioned_check(size: str, workers: int, backend: str) -> dict:
    """Fan-out/merge exactness of the partitioned tier at this size."""
    from repro.bench.runner import run_method

    graphs = make_grid_graphs(size)
    shapes = [(2, 2), (2, 3)]
    router = DistRouter(graphs, workers=workers, partitioned=("hot",),
                        backend=backend)
    try:
        served = {f"{p}x{q}": router.count("hot", p, q).count
                  for p, q in shapes}
    finally:
        router.close()
    direct = {f"{p}x{q}": run_method("GBC", graphs["hot"],
                                     BicliqueQuery(p, q),
                                     backend=backend).count
              for p, q in shapes}
    return {"graph_size": size, "workers": workers,
            "served": served, "direct": direct,
            "exact": served == direct}


def dist_bench(*, topologies=(1, 2, 4), sizes=("small", "medium"),
               repetitions: int = 2, num_queries: int = 160,
               clients: int = 8, zipf_s: float = 1.1,
               backend: str = "fast", method: str = "GBC",
               replication: int = 2, seed: int = 17,
               verify: bool = True) -> dict:
    """Run the topology × size grid; returns the artifact dict."""
    topologies = sorted(set(int(t) for t in topologies))
    if not topologies or topologies[0] < 1:
        raise ValueError(f"topologies must be >= 1, got {topologies}")
    rows: list[dict] = []
    for size in sizes:
        for topology in topologies:
            graphs = make_grid_graphs(size)
            for rep in range(repetitions):
                spec = WorkloadSpec(
                    graphs=("hot", "warm", "cold"),
                    shapes=((2, 2), (2, 3), (3, 3), (3, 4)),
                    num_queries=num_queries, clients=clients,
                    zipf_s=zipf_s, method=method,
                    seed=seed + 97 * rep)
                row = _run_one(graphs, topology, spec,
                               replication=replication,
                               backend=backend, method=method,
                               verify=verify)
                row["graph_size"] = size
                row["repetition"] = rep
                rows.append(row)

    throughput: dict[str, dict[str, float]] = {}
    for size in sizes:
        throughput[size] = {}
        for topology in topologies:
            qps = [r["throughput_qps"] for r in rows
                   if r["graph_size"] == size
                   and r["topology"] == topology]
            throughput[size][str(topology)] = sum(qps) / len(qps)
    top = str(topologies[-1])
    speedups = {size: (throughput[size][top] / throughput[size]["1"])
                if "1" in throughput[size]
                and throughput[size]["1"] > 0 else 0.0
                for size in sizes}
    partitioned = _partitioned_check(
        sizes[0], max(topologies[-1], 2), backend)
    return {
        "kind": "dist_bench",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {"usable_cpus": default_workers()},
        "workload": {"num_queries": num_queries, "clients": clients,
                     "zipf_s": zipf_s, "method": method,
                     "backend": backend, "replication": replication,
                     "seed": seed,
                     "shapes": [[2, 2], [2, 3], [3, 3], [3, 4]]},
        "topologies": topologies,
        "sizes": list(sizes),
        "repetitions": repetitions,
        "rows": rows,
        "throughput_qps": throughput,
        "speedup_vs_1w": speedups,
        "max_speedup": max(speedups.values()) if speedups else 0.0,
        "partitioned": partitioned,
        "verified": verify,
    }
