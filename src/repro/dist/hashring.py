"""Consistent hashing for partition-aware request routing.

The router places each pooled graph on a worker by hashing the graph's
content fingerprint onto a ring of virtual nodes
(``vnodes`` points per worker, blake2b positions).  Two properties the
serving tier leans on, both pinned by ``tests/dist/test_hashring.py``:

* **determinism** — placement is a pure function of the fingerprint
  and the node set: every router over the same graphs and worker count
  computes the same table, so routing state never needs coordination;
* **stability** — adding or removing one worker only remaps the keys
  whose arc the change touches (expected ``1/n`` of them), so scaling
  a topology does not reshuffle every session pool.

:meth:`HashRing.replicas` walks the ring clockwise collecting distinct
nodes — the replica set for zipf-hot graphs, which inherits the same
stability property.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ServiceError

__all__ = ["HashRing"]

#: virtual nodes per physical node; enough to keep per-node load within
#: a few percent of fair at single-digit node counts
DEFAULT_VNODES = 64


def _position(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over hashable node ids (worker indices)."""

    def __init__(self, nodes=(), *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: set = set()
        self._points: list[tuple[int, object]] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list:
        return sorted(self._nodes, key=repr)

    def add(self, node) -> None:
        """Insert ``node``'s virtual points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            # ties between distinct nodes at one position are broken by
            # the node repr so insertion order never matters
            self._points.append((_position(f"{node!r}#{i}"), node))
        self._points.sort(key=lambda pt: (pt[0], repr(pt[1])))

    def remove(self, node) -> None:
        """Drop ``node`` and all its virtual points."""
        if node not in self._nodes:
            raise ServiceError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [pt for pt in self._points if pt[1] != node]

    def route(self, key: str):
        """The node owning ``key``: first point clockwise of its hash."""
        if not self._points:
            raise ServiceError("cannot route on an empty ring")
        pos = _position(key)
        idx = bisect.bisect_right([p for p, _ in self._points], pos)
        return self._points[idx % len(self._points)][1]

    def replicas(self, key: str, n: int) -> list:
        """The first ``n`` distinct nodes clockwise of ``key``'s hash.

        The primary (``route(key)``) comes first; ``n`` is capped at
        the ring's node count.
        """
        if n < 1:
            raise ServiceError(f"replica count must be >= 1, got {n}")
        if not self._points:
            raise ServiceError("cannot route on an empty ring")
        pos = _position(key)
        idx = bisect.bisect_right([p for p, _ in self._points], pos)
        picked: list = []
        for step in range(len(self._points)):
            node = self._points[(idx + step) % len(self._points)][1]
            if node not in picked:
                picked.append(node)
                if len(picked) >= min(n, len(self._nodes)):
                    break
        return picked
