"""repro.dist — the multi-process serving tier (scale-out seam).

One :class:`~repro.dist.router.DistRouter` front-end (the same
micro-batching :class:`~repro.service.scheduler.Scheduler` surface:
futures, admission control, deadlines) over N long-lived worker
processes, each owning a shard of the session pool:

* :mod:`~repro.dist.hashring` — consistent hashing on graph content
  fingerprints: deterministic placement, bounded key movement as the
  topology grows or shrinks, replica walks for zipf-hot graphs;
* :mod:`~repro.dist.worker` — the worker process: its own
  ``SessionPool`` + inner ``Scheduler`` + ``CostLedger``, fed batched
  request envelopes over a pipe (fork-spawned once — never a fork per
  batch), plus per-shard partial counting for partitioned graphs;
* :mod:`~repro.dist.router` — routing, replication fan-out,
  partition-merge counting (bit-identical to single-process by the
  per-root decomposition), cross-worker telemetry/ledger aggregation,
  and graceful in-process fallback when ``fork`` is unavailable;
* :mod:`~repro.dist.bench` — the ``serve-dist-bench`` topology × size
  grid behind ``BENCH_dist.json``.

>>> from repro import random_bipartite
>>> from repro.dist import DistRouter
>>> g = random_bipartite(30, 20, 200, seed=7)
>>> with DistRouter({"demo": g}, workers=2) as router:
...     router.count("demo", 2, 3).count
528
"""

from repro.dist.bench import dist_bench, make_grid_graphs
from repro.dist.hashring import HashRing
from repro.dist.router import DistRouter, RouteEntry, plan_routes
from repro.dist.worker import WorkerHandle

__all__ = ["DistRouter", "HashRing", "RouteEntry", "WorkerHandle",
           "dist_bench", "make_grid_graphs", "plan_routes"]
