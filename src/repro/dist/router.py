"""The distributed serving router: one front-end, N worker processes.

:class:`DistRouter` subclasses the micro-batching
:class:`~repro.service.scheduler.Scheduler`, so clients keep the exact
same surface — ``submit()`` futures, admission control
(:class:`~repro.errors.QueueFullError`), per-request deadlines,
graceful ``close()`` — while ``_execute`` ships each micro-batch as
one envelope to a worker process instead of counting in-process.

Placement is decided once, at construction, by :func:`plan_routes` — a
pure function of the graph fingerprints and the topology, so any
router over the same graphs computes the same table:

* **single** graphs live on the one worker their fingerprint hashes to
  on the :class:`~repro.dist.hashring.HashRing`;
* **hot** graphs (named in ``hot=``) are replicated onto
  ``replication`` distinct ring successors, and each batch
  round-robins across the replicas — the pressure valve for zipf-head
  traffic;
* **partitioned** graphs (named in ``partitioned=``) are split with
  BCPar (:func:`~repro.partition.bcpar.bcpar_partition`) and every
  worker owns a shard of the root set; a query fans out to all owners,
  each counts its roots (:func:`~repro.partition.runner.count_roots`),
  and the router sums — bit-identical to a whole-graph count because
  the priority order charges every biclique to exactly one root.

When multiprocessing is unavailable (no ``fork``) or ``workers <= 1``
the router degrades to plain in-process serving over a local
:class:`~repro.service.pool.SessionPool` — identical results, one
WARNING log line — so callers never need a separate code path.
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.core.counts import CountResult
from repro.errors import ServiceError
from repro.graph.bipartite import LAYER_U
from repro.graph.stats import graph_fingerprint
from repro.graph.twohop import build_two_hop_index
from repro.obs import trace as _trace
from repro.obs.ledger import CostLedger
from repro.obs.log import get_logger
from repro.parallel.procpool import fork_available
from repro.partition.bcpar import bcpar_partition
from repro.partition.runner import recommended_budget_words
from repro.service.pool import SessionPool
from repro.service.scheduler import Scheduler, SchedulerConfig
from repro.service.telemetry import merge_snapshots
from repro.dist.hashring import HashRing
from repro.dist.worker import (WorkerHandle, unpack_error,
                               unpack_result)

__all__ = ["DistRouter", "RouteEntry", "plan_routes"]

log = get_logger(__name__)

#: the q used to shape BCPar partitions at registration — partition
#: *placement* may be tuned to any q; partial-count correctness only
#: needs the root cover, which every shaping produces
_PARTITION_SHAPE_Q = 2


class RouteEntry:
    """Where one graph lives: kind, fingerprint and owning workers."""

    __slots__ = ("kind", "fingerprint", "owners", "_rr")

    def __init__(self, kind: str, fingerprint: str,
                 owners: tuple[int, ...]) -> None:
        self.kind = kind                # "single"|"replicated"|"partitioned"
        self.fingerprint = fingerprint
        self.owners = owners
        self._rr = itertools.count()

    def pick(self) -> int:
        """Round-robin across owners (replica load spreading)."""
        return self.owners[next(self._rr) % len(self.owners)]

    def describe(self) -> dict:
        return {"kind": self.kind, "fingerprint": self.fingerprint,
                "owners": list(self.owners)}


def plan_routes(fingerprints: dict[str, str], workers: int, *,
                replication: int = 2, hot=(), partitioned=(),
                vnodes: int = 64) -> dict[str, RouteEntry]:
    """The deterministic placement table for one topology.

    ``fingerprints`` maps graph name -> content fingerprint.  Routing
    hashes the *fingerprint* (not the name), so re-registering the same
    content under another name lands on the same worker, and a mutated
    graph naturally re-routes.
    """
    if workers < 1:
        raise ServiceError(f"workers must be >= 1, got {workers}")
    if replication < 1:
        raise ServiceError(
            f"replication must be >= 1, got {replication}")
    hot, partitioned = set(hot), set(partitioned)
    for name in sorted((hot | partitioned) - set(fingerprints)):
        raise ServiceError(f"hot/partitioned graph {name!r} is not "
                           f"registered")
    if hot & partitioned:
        both = sorted(hot & partitioned)
        raise ServiceError(f"graphs cannot be both hot and "
                           f"partitioned: {both}")
    ring = HashRing(range(workers), vnodes=vnodes)
    routes: dict[str, RouteEntry] = {}
    for name in sorted(fingerprints):
        fp = fingerprints[name]
        if name in partitioned:
            routes[name] = RouteEntry("partitioned", fp,
                                      tuple(range(workers)))
        elif name in hot and workers > 1:
            owners = ring.replicas(fp, min(replication, workers))
            routes[name] = RouteEntry("replicated", fp, tuple(owners))
        else:
            routes[name] = RouteEntry("single", fp, (ring.route(fp),))
    return routes


def _partition_root_shards(graph, workers: int) -> list[list[int]]:
    """BCPar-shaped root shards, one per worker, covering all of U."""
    index = build_two_hop_index(graph, LAYER_U, _PARTITION_SHAPE_Q)
    budget = recommended_budget_words(graph, _PARTITION_SHAPE_Q)
    pset = bcpar_partition(graph, index, budget)
    shards: list[list[int]] = [[] for _ in range(workers)]
    # round-robin whole partitions so co-located closures stay together
    for i, part in enumerate(pset.partitions):
        shards[i % workers].extend(int(r) for r in part.roots)
    return shards


class DistRouter(Scheduler):
    """Serve pooled graphs across N long-lived worker processes.

    ``graphs`` maps name -> loaded
    :class:`~repro.graph.bipartite.BipartiteGraph`; the full topology
    is fixed at construction (workers fork here, inheriting their
    shard's arrays).  Scheduler tunables arrive exactly as on
    :class:`~repro.service.scheduler.Scheduler` (``config=`` or
    keyword overrides) and govern the *router's* admission, batching
    window and deadline bookkeeping; each worker runs its own inner
    scheduler configured from the same tunables.

    >>> from repro import random_bipartite
    >>> from repro.dist import DistRouter
    >>> g = random_bipartite(30, 20, 200, seed=7)
    >>> with DistRouter({"demo": g}, workers=2) as router:
    ...     router.count("demo", 2, 3).count
    528
    """

    def __init__(self, graphs: dict, *, workers: int = 2,
                 replication: int = 2, hot=(), partitioned=(),
                 vnodes: int = 64, ledger: CostLedger | None = None,
                 config: SchedulerConfig | None = None,
                 telemetry=None, **overrides) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self._graphs = dict(graphs)
        self.ledger = ledger or CostLedger()
        self.requested_workers = int(workers)
        self._handles: list[WorkerHandle] = []
        self._routes: dict[str, RouteEntry] = {}
        self._workers_closed = False
        self._harvest_lock = threading.Lock()

        cfg = config or SchedulerConfig(**overrides)
        if workers <= 1 or not fork_available():
            reason = ("workers=1" if workers <= 1
                      else "multiprocessing fork unavailable here")
            log.warning("dist: %s — falling back to in-process serving "
                        "(results identical, no scale-out)", reason)
            pool = SessionPool(max_sessions=max(len(self._graphs), 1),
                               ledger=self.ledger)
            for name, graph in self._graphs.items():
                pool.register(name, graph)
            super().__init__(pool, config=cfg, telemetry=telemetry,
                             ident="router")
            return

        fingerprints = {name: graph_fingerprint(g)
                        for name, g in self._graphs.items()}
        self._routes = plan_routes(fingerprints, workers,
                                   replication=replication, hot=hot,
                                   partitioned=partitioned,
                                   vnodes=vnodes)
        placements: list[dict] = [{} for _ in range(workers)]
        partition_roots: list[dict] = [{} for _ in range(workers)]
        for name, route in self._routes.items():
            if route.kind == "partitioned":
                shards = _partition_root_shards(self._graphs[name],
                                                workers)
                owners = []
                for w, roots in enumerate(shards):
                    if roots:
                        placements[w][name] = self._graphs[name]
                        partition_roots[w][name] = roots
                        owners.append(w)
                # BCPar may cut fewer partitions than workers: only
                # workers that actually hold roots are fan-out owners
                self._routes[name] = RouteEntry(
                    "partitioned", route.fingerprint, tuple(owners))
            else:
                for w in route.owners:
                    placements[w][name] = self._graphs[name]

        worker_kwargs = dict(batch_window=0.0, max_batch=cfg.max_batch,
                             max_pending=cfg.max_pending, workers=2,
                             backend=cfg.backend,
                             backend_workers=cfg.backend_workers,
                             method=cfg.method, accuracy=cfg.accuracy)
        # fork the workers BEFORE the base class starts router threads
        import multiprocessing as mp
        ctx = mp.get_context("fork")
        self._handles = [
            WorkerHandle(ctx, w, placements[w], partition_roots[w],
                         worker_kwargs)
            for w in range(workers)]
        log.info("dist: %d workers up (pids %s), %d graphs routed",
                 workers, [h.pid for h in self._handles],
                 len(self._routes))

        # the router's own pool stays empty in dist mode — sessions
        # live in the workers; the base class only uses it on the
        # in-process path
        router_cfg = cfg if cfg.workers >= workers else \
            SchedulerConfig(batch_window=cfg.batch_window,
                            max_batch=cfg.max_batch,
                            max_pending=cfg.max_pending,
                            workers=max(cfg.workers, workers),
                            backend=cfg.backend,
                            backend_workers=cfg.backend_workers,
                            method=cfg.method, accuracy=cfg.accuracy)
        super().__init__(SessionPool(max_sessions=1), config=router_cfg,
                         telemetry=telemetry, ident="router")

    # -- introspection -------------------------------------------------
    @property
    def distributed(self) -> bool:
        """True when serving through worker processes (not fallback)."""
        return bool(self._handles)

    def routing_table(self) -> dict[str, dict]:
        """Placement of every graph (empty on the fallback path)."""
        return {name: route.describe()
                for name, route in sorted(self._routes.items())}

    def worker_pids(self) -> list[int]:
        return [h.pid for h in self._handles]

    # -- serving -------------------------------------------------------
    def mutate(self, graph: str, mutations) -> int:
        if self.distributed:
            raise ServiceError(
                "mutate-while-serving is single-process only; the "
                "distributed tier serves immutable snapshots")
        return super().mutate(graph, mutations)

    def _execute(self, graph: str, requests) -> None:
        if not self.distributed:
            return super()._execute(graph, requests)
        live = self._claim_live(graph, requests)
        if not live:
            return
        self.telemetry.record_batch(len(live))
        with _trace.span("serve.batch", graph=graph, size=len(live),
                         method=live[0].method,
                         rids=[r.rid for r in live], **self._tk):
            route = self._routes.get(graph)
            if route is None:
                exc = ServiceError(f"graph {graph!r} is not registered "
                                   f"on this router")
                for req in live:
                    self._fail(req, exc, graph)
                return
            if route.kind == "partitioned":
                self._execute_partitioned(graph, route, live)
            else:
                self._execute_routed(graph, route, live)

    def _deadline_left(self, req) -> float | None:
        if req.deadline_at is None:
            return None
        return max(req.deadline_at - time.monotonic(), 1e-3)

    def _execute_routed(self, graph: str, route: RouteEntry,
                        live) -> None:
        worker = route.pick()
        items = [(req.rid, req.query.p, req.query.q, req.method,
                  req.accuracy, self._deadline_left(req))
                 for req in live]
        _trace.event("serve.dispatch", graph=graph,
                     to=f"w{worker}", size=len(items), **self._tk)
        try:
            tag, replies = self._handles[worker].call(
                ("batch", graph, items))
        except Exception as exc:
            failure = ServiceError(f"worker w{worker} failed a batch "
                                   f"on {graph!r}: {exc}")
            for req in live:
                self._fail(req, failure, graph)
            return
        if tag != "batch":  # pragma: no cover - protocol violation
            replies = []
        by_rid = {rid: (status, payload)
                  for rid, status, payload in replies}
        for req in live:
            status, payload = by_rid.get(
                req.rid, ("err", ("ServiceError",
                                  f"worker w{worker} dropped the "
                                  f"request")))
            if status == "ok":
                self._complete(req, unpack_result(payload), graph)
            else:
                self._fail(req, unpack_error(payload, worker), graph)

    def _execute_partitioned(self, graph: str, route: RouteEntry,
                             live) -> None:
        exact = [r for r in live if r.accuracy == "exact"]
        for req in live:
            if req.accuracy != "exact":
                self._fail(req, ServiceError(
                    "partitioned graphs serve the exact tier only"),
                    graph)
        if not exact:
            return
        shapes = sorted({(req.query.p, req.query.q) for req in exact})
        _trace.event("serve.dispatch", graph=graph, to="partitioned",
                     fanout=len(route.owners), shapes=len(shapes),
                     **self._tk)
        t0 = time.monotonic()
        partials: dict[int, dict] = {}
        errors: dict[int, Exception] = {}

        def ask(w: int) -> None:
            try:
                tag, payload = self._handles[w].call(
                    ("partial", graph, shapes))
            except Exception as exc:
                errors[w] = ServiceError(f"worker w{w} failed a "
                                         f"partial count: {exc}")
                return
            if tag == "partial":
                partials[w] = payload
            else:
                errors[w] = unpack_error(payload, w)

        threads = [threading.Thread(target=ask, args=(w,),
                                    name=f"repro-dist-fan-{w}")
                   for w in route.owners]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            exc = next(iter(errors.values()))
            for req in exact:
                self._fail(req, exc, graph)
            return
        elapsed = time.monotonic() - t0
        totals = {shape: sum(partials[w][shape]
                             for w in route.owners)
                  for shape in shapes}
        for req in exact:
            shape = (req.query.p, req.query.q)
            result = CountResult(
                algorithm="partitioned", query=req.query,
                count=totals[shape], wall_seconds=elapsed,
                backend=self.config.backend, backend_instrumented=False,
                extras={"partitions": float(len(route.owners))})
            self._complete(req, result, graph)

    # -- aggregation ---------------------------------------------------
    def cluster_snapshot(self) -> dict:
        """Router + per-worker + merged cluster telemetry, one dict.

        Worker ledgers are folded into :attr:`ledger` as a side effect
        (the cross-process ``method="auto"`` calibration loop).  The
        router view measures end-to-end client latency; worker views
        measure in-worker latency — the difference is queue + pipe
        time.
        """
        router_snap = self.telemetry.snapshot()
        if not self.distributed:
            return {"mode": "local", "workers": {},
                    "router": router_snap, "cluster": router_snap}
        with self._harvest_lock:
            reports = {}
            for handle in self._handles:
                if not handle.alive():
                    continue
                try:
                    tag, payload = handle.call(("telemetry",))
                except ServiceError:
                    continue
                if tag != "telemetry":  # pragma: no cover
                    continue
                reports[payload["worker"]] = payload
                self.ledger.merge_snapshot(payload.get("ledger") or {})
        merged = merge_snapshots(
            [p["telemetry"] for p in reports.values()])
        return {
            "mode": "dist",
            "router": router_snap,
            "workers": {str(w): p["telemetry"]
                        for w, p in sorted(reports.items())},
            "worker_pids": {str(w): p["pid"]
                            for w, p in sorted(reports.items())},
            "cluster": merged,
        }

    # -- lifecycle -----------------------------------------------------
    def close(self, drain: bool = True,
              timeout: float | None = None) -> None:
        """Drain (or fail) queued work, harvest, stop the workers."""
        super().close(drain=drain, timeout=timeout)
        if self._handles and not self._workers_closed:
            try:
                self.cluster_snapshot()     # final ledger harvest
            except Exception:  # pragma: no cover - defensive
                log.warning("dist: final telemetry harvest failed",
                            exc_info=True)
            for handle in self._handles:
                handle.close()
            self._workers_closed = True
