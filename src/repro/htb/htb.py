"""Hierarchical Truncated Bitmap (HTB) — §V-A of the paper.

HTB stores one truncated bitmap per vertex, concatenated into three flat
arrays (Fig. 4(b)):

* ``off``  — per-vertex starting position into ``idx``/``val``;
* ``idx``  — word indices (the range index used to narrow the search);
* ``val``  — 32-bit masks holding up to 32 neighbours each.

Intersection is two-phase (Example 7): binary-search the shorter ``idx``
range against the longer one (few transactions — ``idx`` is ~32x smaller
than the raw adjacency), then AND the matched ``val`` words.  The device
variant charges transactions/ops into :class:`KernelMetrics` through the
same coalescing model the CSR baseline uses, so Fig. 4's transaction
comparison is measured, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph, LAYER_U
from repro.graph.twohop import TwoHopIndex
from repro.gpu.device import DeviceSpec
from repro.gpu.intersect import _lockstep_binary_search
from repro.gpu.memory import charge_gather, charge_stream
from repro.gpu.metrics import KernelMetrics
from repro.gpu.simt import record_work
from repro.htb.bitmap import WORD_BITS, and_aligned, cardinality, decode, encode, popcount

__all__ = ["HTB", "build_htb_from_csr", "build_htb_from_rows",
           "htb_from_graph", "htb_from_two_hop",
           "intersect_device", "intersect_exact", "BitmapSet"]


@dataclass(frozen=True)
class BitmapSet:
    """A candidate set (CL/CR) held in truncated-bitmap form."""

    idx: np.ndarray
    val: np.ndarray

    @classmethod
    def from_vertices(cls, vertices: np.ndarray) -> "BitmapSet":
        return cls(*encode(vertices))

    def vertices(self) -> np.ndarray:
        """Decode back to a sorted id array."""
        return decode(self.idx, self.val)

    def count(self) -> int:
        """Number of vertices in the set (popcount sum, memoised — the
        word arrays are never mutated after construction)."""
        cached = self.__dict__.get("_count")
        if cached is None:
            # direct __dict__ write: the dataclass is frozen, but only
            # against __setattr__
            self.__dict__["_count"] = cached = cardinality(self.val)
        return cached

    @property
    def num_words(self) -> int:
        return int(len(self.idx))

    def is_empty(self) -> bool:
        return len(self.idx) == 0


@dataclass(frozen=True)
class HTB:
    """Per-vertex truncated bitmaps over a whole layer (Off/Idx/Val)."""

    off: np.ndarray
    idx: np.ndarray
    val: np.ndarray
    word_bits: int = WORD_BITS

    @property
    def num_vertices(self) -> int:
        return len(self.off) - 1

    def view(self, vertex: int) -> BitmapSet:
        """The (idx, val) slice for ``vertex`` — zero-copy views, memoised
        per vertex (the flat arrays are immutable after construction)."""
        cache = self.__dict__.setdefault("_views", {})
        got = cache.get(vertex)
        if got is None:
            lo, hi = self.off[vertex], self.off[vertex + 1]
            cache[vertex] = got = BitmapSet(self.idx[lo:hi],
                                            self.val[lo:hi])
        return got

    def words_of(self, vertex: int) -> int:
        """Number of stored words for ``vertex``."""
        return int(self.off[vertex + 1] - self.off[vertex])

    def list_of(self, vertex: int) -> np.ndarray:
        """Decoded sorted neighbour list of ``vertex``."""
        return self.view(vertex).vertices()

    def base_word(self, vertex: int) -> int:
        """Word offset of the vertex's slice inside the flat arrays; used
        by the transaction model to align gathers."""
        offs = self.__dict__.get("_off_list")
        if offs is None:
            self.__dict__["_off_list"] = offs = self.off.tolist()
        return offs[vertex]

    @property
    def total_words(self) -> int:
        return int(len(self.idx))

    @property
    def nbytes(self) -> int:
        """Simulated device footprint: off + idx + val as 4-byte words."""
        return 4 * (len(self.off) + len(self.idx) + len(self.val))

    def one_block_count(self) -> int:
        """Number of stored words holding exactly one vertex (1-blocks) —
        the quantity Border minimises (§V-B)."""
        if len(self.val) == 0:
            return 0
        return int(np.count_nonzero(popcount(self.val) == 1))

    def density(self) -> float:
        """Mean vertices per stored word (higher = more compact)."""
        if len(self.val) == 0:
            return 0.0
        return cardinality(self.val) / len(self.val)


def build_htb_from_csr(offsets: np.ndarray, values: np.ndarray,
                       word_bits: int = WORD_BITS) -> HTB:
    """Build an HTB from a whole CSR layer in one vectorised pass.

    Combined ``row * span + word`` keys let a single ``unique`` find the
    non-zero words of every row at once (sorted row-major, exactly the
    order per-row :func:`repro.htb.bitmap.encode` calls would emit), and
    one ``bitwise_or.at`` scatter ORs all neighbour bits into them.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = len(offsets) - 1
    values = np.asarray(values, dtype=np.int64)
    if len(values) == 0:
        return HTB(off=np.zeros(n + 1, dtype=np.int64),
                   idx=np.empty(0, dtype=np.int64),
                   val=np.empty(0, dtype=np.uint64), word_bits=word_bits)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
    words = values // word_bits
    bits = (values % word_bits).astype(np.uint64)
    span = int(words.max()) + 1
    uniq, inverse = np.unique(rows * span + words, return_inverse=True)
    val = np.zeros(len(uniq), dtype=np.uint64)
    np.bitwise_or.at(val, inverse, np.uint64(1) << bits)
    word_rows = uniq // span
    off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(word_rows, minlength=n), out=off[1:])
    return HTB(off=off, idx=uniq - word_rows * span, val=val,
               word_bits=word_bits)


def build_htb_from_rows(rows: list[np.ndarray],
                        word_bits: int = WORD_BITS) -> HTB:
    """Build an HTB from per-vertex sorted neighbour lists."""
    lens = np.fromiter((len(r) for r in rows), dtype=np.int64,
                       count=len(rows))
    off = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lens, out=off[1:])
    values = (np.concatenate([np.asarray(r, dtype=np.int64) for r in rows])
              if off[-1] else np.empty(0, dtype=np.int64))
    return build_htb_from_csr(off, values, word_bits)


def htb_from_graph(graph: BipartiteGraph, layer: str,
                   word_bits: int = WORD_BITS) -> HTB:
    """HTB over the 1-hop adjacency lists of ``layer``."""
    if layer == LAYER_U:
        return build_htb_from_csr(graph.u_offsets, graph.u_neighbors,
                                  word_bits)
    return build_htb_from_csr(graph.v_offsets, graph.v_neighbors, word_bits)


def htb_from_two_hop(index: TwoHopIndex, word_bits: int = WORD_BITS) -> HTB:
    """HTB over precomputed N2^k lists."""
    return build_htb_from_csr(index.offsets, index.neighbors, word_bits)


def intersect_device(keys: BitmapSet, lst: BitmapSet,
                     spec: DeviceSpec, metrics: KernelMetrics,
                     warps: int = 1,
                     base_word: int = 0,
                     keys_in_shared: bool = True,
                     record_slots: bool = True) -> BitmapSet:
    """Simulated-device HTB intersection (Example 7).

    Phase 1: lock-step binary search of the keys' ``idx`` words inside the
    list's ``idx`` range (global-memory gathers, charged per distinct
    transaction segment).  Phase 2: gather the matched ``val`` words and
    AND them against the keys' masks (one bitwise op per matched word).
    ``keys`` model CL[l-1]/CR[l-1], which GBC stages in shared memory; set
    ``keys_in_shared=False`` to model a global-resident candidate set.
    """
    metrics.intersection_calls += 1
    if keys.is_empty() or lst.is_empty():
        return BitmapSet(np.empty(0, dtype=np.int64),
                         np.empty(0, dtype=np.uint64))
    nk = len(keys.idx)
    if keys_in_shared:
        metrics.shared_accesses += 2 * nk          # read idx + val words
    else:
        charge_stream(metrics, spec, 2 * nk)
    if record_slots:
        record_work(metrics, spec, nk, warps)

    # phase 1: narrow the range over the Idx array
    mask = _lockstep_binary_search(keys.idx, lst.idx, spec, metrics, base_word)
    if not mask.any():
        return BitmapSet(np.empty(0, dtype=np.int64),
                         np.empty(0, dtype=np.uint64))

    # phase 2: gather matched Val words and bitwise-AND
    pos = np.searchsorted(lst.idx, keys.idx[mask])
    charge_gather(metrics, spec, pos + base_word + len(lst.idx))
    out_val = keys.val[mask] & lst.val[pos]
    metrics.bitwise_ops += int(mask.sum())
    keep = out_val != 0
    out_idx = keys.idx[mask][keep]
    out_val = out_val[keep]
    if len(out_idx):
        metrics.results_written += len(out_idx)
        if keys_in_shared:
            metrics.shared_accesses += 2 * len(out_idx)
        else:
            charge_stream(metrics, spec, 2 * len(out_idx))
    return BitmapSet(out_idx, out_val)


def intersect_exact(a: BitmapSet, b: BitmapSet) -> BitmapSet:
    """Reference intersection without device accounting."""
    return BitmapSet(*and_aligned(a.idx, a.val, b.idx, b.val))
