"""Hierarchical Truncated Bitmap (HTB) data structure (§V-A)."""

from repro.htb.bitmap import (
    WORD_BITS,
    and_aligned,
    cardinality,
    decode,
    encode,
    popcount,
)
from repro.htb.htb import (
    HTB,
    BitmapSet,
    build_htb_from_rows,
    htb_from_graph,
    htb_from_two_hop,
    intersect_device,
    intersect_exact,
)

__all__ = [
    "WORD_BITS", "encode", "decode", "popcount", "cardinality", "and_aligned",
    "HTB", "BitmapSet", "build_htb_from_rows", "htb_from_graph",
    "htb_from_two_hop", "intersect_device", "intersect_exact",
]
