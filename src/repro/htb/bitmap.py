"""Truncated-bitmap codec: sorted vertex lists <-> (Idx, Val) word pairs.

A truncated bitmap represents a set of vertex ids as sparse 32-bit words:
vertex ``x`` maps to bit ``x % 32`` of the word with index ``x // 32``
(Example 6 of the paper).  Only non-zero words are stored: ``idx`` holds
the word indices (sorted, unique) and ``val`` the corresponding 32-bit
masks.  Intersecting two sets then becomes aligning ``idx`` arrays and
AND-ing ``val`` words.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "encode",
    "decode",
    "popcount",
    "cardinality",
    "and_aligned",
]

WORD_BITS = 32


def encode(vertices: np.ndarray, word_bits: int = WORD_BITS):
    """Encode a sorted array of vertex ids into (idx, val) truncated bitmaps.

    Returns ``idx`` as int64 word indices and ``val`` as uint64 masks (only
    the low ``word_bits`` bits are ever set; uint64 keeps numpy bit-ops
    safe and cheap).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if len(vertices) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint64))
    words = vertices // word_bits
    bits = (vertices % word_bits).astype(np.uint64)
    idx = np.unique(words)
    val = np.zeros(len(idx), dtype=np.uint64)
    group = np.searchsorted(idx, words)
    np.bitwise_or.at(val, group, np.uint64(1) << bits)
    return idx, val


def decode(idx: np.ndarray, val: np.ndarray,
           word_bits: int = WORD_BITS) -> np.ndarray:
    """Decode (idx, val) truncated bitmaps back into sorted vertex ids."""
    if len(idx) == 0:
        return np.empty(0, dtype=np.int64)
    bit_values = np.arange(word_bits, dtype=np.uint64)
    # (words x word_bits) bit matrix; nonzero walks it row-major, so the
    # output is sorted as long as idx is
    set_bits = (np.asarray(val, dtype=np.uint64)[:, None] >> bit_values) \
        & np.uint64(1)
    rows, cols = np.nonzero(set_bits)
    return np.asarray(idx, dtype=np.int64)[rows] * word_bits + cols


def popcount(val: np.ndarray) -> np.ndarray:
    """Per-word population count of a uint64 mask array."""
    return np.bitwise_count(np.asarray(val, dtype=np.uint64))


def cardinality(val: np.ndarray) -> int:
    """Total number of set bits across the mask array."""
    n = len(val)
    if n == 0:
        return 0
    if n <= 8:
        # typical candidate sets hold a handful of words; Python's
        # int.bit_count beats two numpy kernel dispatches there
        return sum(int(v).bit_count() for v in val.tolist())
    return int(popcount(val).sum())


def and_aligned(a_idx: np.ndarray, a_val: np.ndarray,
                b_idx: np.ndarray, b_val: np.ndarray):
    """Intersect two truncated bitmaps exactly (no device accounting).

    Word indices are aligned with searchsorted, masks AND-ed, and empty
    words dropped — the ground-truth counterpart of the simulated device
    routine in :mod:`repro.htb.htb`.
    """
    if len(a_idx) == 0 or len(b_idx) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint64))
    pos = np.searchsorted(b_idx, a_idx)
    ok = pos < len(b_idx)
    ok[ok] &= b_idx[pos[ok]] == a_idx[ok]
    masks = a_val[ok] & b_val[pos[ok]]
    keep = masks != 0
    return a_idx[ok][keep], masks[keep]
