"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single type at API boundaries while still distinguishing specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class GraphFormatError(ReproError):
    """A graph file or edge list is structurally invalid."""


class GraphValidationError(ReproError):
    """An in-memory graph violates a structural invariant."""


class QueryError(ReproError, ValueError):
    """A (p, q) biclique query or query spec is invalid (e.g. p < 1).

    Also a :class:`ValueError`, because a malformed spec string like
    ``"3x"`` is exactly the kind of bad-value input callers already
    guard with ``except ValueError``.
    """


class UnknownMethodError(QueryError):
    """A counting-method name is not in the :mod:`repro.plan` registry.

    Raised wherever a method name enters the system — the planner, the
    bench runner, the batch engine, and :meth:`Scheduler.submit` — so a
    typo fails at the boundary it crossed, not inside a worker batch.
    A :class:`QueryError` (hence also a :class:`ValueError`): a bad
    method name is a bad value for a query parameter.
    """


class PlanError(ReproError):
    """A :class:`repro.plan.CountPlan` is invalid or cannot be executed
    (e.g. it names a backend its method does not support, or is applied
    to a different query than it was planned for)."""


class DeviceError(ReproError):
    """The simulated GPU device was misconfigured or misused."""


class SharedMemoryExceeded(DeviceError):
    """A kernel tried to allocate more shared memory than the SM provides."""


class DeviceMemoryExceeded(DeviceError):
    """A graph or working set does not fit in simulated global memory."""


class PartitionError(ReproError):
    """Graph partitioning failed or produced an invalid partition."""


class ReorderError(ReproError):
    """A vertex reordering is not a valid permutation of a layer."""


class ServiceError(ReproError):
    """Base class for failures of the query-serving subsystem."""


class QueueFullError(ServiceError):
    """The scheduler's admission queue is full (backpressure): retry
    later or slow the request rate."""


class DeadlineExceededError(ServiceError):
    """A request's deadline passed before the scheduler executed it."""


class ServiceClosedError(ServiceError):
    """The scheduler/pool was closed and no longer accepts requests."""
