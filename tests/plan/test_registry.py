"""The method registry: listing, capabilities, and failure modes."""

import pytest

from repro.bench.runner import METHODS
from repro.errors import QueryError, ReproError, UnknownMethodError
from repro.plan import (MethodSpec, approx_candidates, auto_candidates,
                        ensure_accuracy, ensure_known, get_method,
                        method_names, register_method)


class TestListing:
    def test_canonical_order(self):
        assert method_names() == ("Basic", "BCL", "BCLP", "GBL", "GBC",
                                  "GBC-NH", "GBC-NB", "GBC-NW", "approx")

    def test_bench_runner_methods_is_the_registry(self):
        assert METHODS == method_names()

    def test_every_listed_method_resolves(self):
        for name in method_names():
            spec = get_method(name)
            assert spec.name == name
            assert callable(spec.runner)

    def test_auto_candidates_exclude_ablations_and_approx(self):
        names = [spec.name for spec in auto_candidates()]
        assert names == ["Basic", "BCL", "BCLP", "GBL", "GBC"]
        assert all(spec.cost is not None for spec in auto_candidates())

    def test_approx_candidates_are_the_sampling_tier(self):
        names = [spec.name for spec in approx_candidates()]
        assert names == ["approx"]
        spec = approx_candidates()[0]
        assert spec.approximate
        assert spec.cost is not None


class TestCapabilities:
    def test_basic_cannot_pin_a_layer(self):
        assert not get_method("Basic").supports_layer

    def test_device_methods_report_metrics(self):
        for name in ("GBL", "GBC", "GBC-NH"):
            assert get_method(name).instrumented_metrics
            assert get_method(name).device_model
        for name in ("Basic", "BCL", "BCLP"):
            assert not get_method(name).device_model

    def test_gbc_needs_htb_state(self):
        assert "htb" in get_method("GBC").prepared_kinds
        assert "htb" not in get_method("BCL").prepared_kinds

    def test_variant_default_options(self):
        from repro.core.gbc import gbc_variant

        assert get_method("GBC-NH").default_options() == gbc_variant("NH")
        assert get_method("GBC").default_options is None


class TestFailureModes:
    def test_unknown_method_raises_named_error(self):
        with pytest.raises(UnknownMethodError, match="FOO"):
            get_method("FOO")

    def test_unknown_method_error_is_query_and_value_error(self):
        assert issubclass(UnknownMethodError, QueryError)
        assert issubclass(UnknownMethodError, ValueError)
        assert issubclass(UnknownMethodError, ReproError)

    def test_auto_is_not_a_method(self):
        with pytest.raises(UnknownMethodError):
            get_method("auto")

    def test_ensure_known_gates_auto(self):
        assert ensure_known("GBC") == "GBC"
        assert ensure_known("auto", allow_auto=True) == "auto"
        with pytest.raises(UnknownMethodError):
            ensure_known("auto")

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_method(MethodSpec(name="GBC", runner=lambda *a: None))

    def test_ensure_accuracy(self):
        for tier in ("exact", "approx", "auto"):
            assert ensure_accuracy(tier) == tier
        with pytest.raises(QueryError, match="accuracy"):
            ensure_accuracy("fuzzy")
