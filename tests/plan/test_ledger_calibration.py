"""Ledger-backed planning: calibration re-ranks, counts never change.

The cost ledger may only ever change *which* exact method the planner
picks — every exact method returns the same count, so a ledger-backed
``method="auto"`` must stay bit-identical to every explicit method.
These tests pin that equivalence plus the calibration mechanics:
observed/predicted ratios flow from ``execute_plan`` back into the next
``rank()``, and a misleading prediction gets corrected by measurement.
"""

import pytest

from repro.core.counts import BicliqueQuery
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.graph.stats import graph_fingerprint
from repro.obs import CostLedger
from repro.plan import Planner, execute_plan
from repro.query import GraphSession

GRAPHS = {
    "random": random_bipartite(30, 25, 120, seed=3),
    "power-law": power_law_bipartite(40, 30, 200, seed=5),
}
QUERIES = [BicliqueQuery(2, 2), BicliqueQuery(3, 2), BicliqueQuery(2, 3)]


class TestCountsUnchanged:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_ledger_backed_auto_bit_identical_to_explicit(self,
                                                          graph_name):
        graph = GRAPHS[graph_name]
        bare = GraphSession(graph)
        led = GraphSession(graph, ledger=CostLedger())
        for query in QUERIES:
            for _ in range(2):    # second pass ranks with observations
                assert led.count(query, method="auto",
                                 backend="fast").count \
                    == bare.count(query, method="auto",
                                  backend="fast").count
            for method in ("Basic", "BCL", "BCLP", "GBL", "GBC"):
                explicit = led.count(query, method=method, backend="fast")
                auto = led.count(query, method="auto", backend="fast")
                assert auto.count == explicit.count, (graph_name, query,
                                                      method)


class TestCalibration:
    def test_execution_feeds_the_planner_ratio(self):
        graph = GRAPHS["random"]
        session = GraphSession(graph, ledger=CostLedger())
        query = QUERIES[0]
        session.count(query, method="auto", backend="fast")
        planner = Planner(graph, session=session,
                          ledger=session.ledger)
        ranked = planner.rank(query, backend="fast")
        calibrated = [p for p in ranked
                      if p.calibrated_seconds is not None]
        assert calibrated, "no candidate learned from the measured run"
        chosen = calibrated[0]
        assert chosen.observed_seconds is not None
        assert "ledger-calibrated" in chosen.reason

    def test_measured_costs_override_a_wrong_prediction(self):
        # plant history claiming GBC runs 1000x faster than predicted
        # and every rival 1000x slower: the calibrated ranking must put
        # GBC first regardless of what the static model says
        graph = GRAPHS["power-law"]
        query = BicliqueQuery(3, 2)
        fp = graph_fingerprint(graph)
        ledger = CostLedger()
        baseline = Planner(graph).rank(query, backend="fast")
        for plan in baseline:
            ratio = 1e-3 if plan.method == "GBC" else 1e3
            ledger.record(fp, query.p, query.q, plan.method, plan.backend,
                          plan.predicted_seconds * ratio,
                          predicted_seconds=plan.predicted_seconds)
        ranked = Planner(graph, ledger=ledger).rank(query, backend="fast")
        assert ranked[0].method == "GBC"
        assert ranked[0].calibrated_seconds == pytest.approx(
            ranked[0].predicted_seconds * 1e-3, rel=0.3)

    def test_predict_uses_the_calibrated_cost(self):
        graph = GRAPHS["random"]
        query = QUERIES[0]
        fp = graph_fingerprint(graph)
        bare = Planner(graph)
        raw = bare.predict(query, "GBC", backend="fast")
        ledger = CostLedger()
        ledger.record(fp, query.p, query.q, "GBC", "fast", raw * 10.0,
                      predicted_seconds=raw)
        assert Planner(graph, ledger=ledger).predict(
            query, "GBC", backend="fast") == pytest.approx(raw * 10.0,
                                                           rel=0.05)

    def test_explicit_plan_execution_records_without_a_ratio(self):
        # explicit plans carry no prediction: the cell exists (observed
        # seconds are still useful) but cannot calibrate anything
        graph = GRAPHS["random"]
        query = QUERIES[0]
        ledger = CostLedger()
        session = GraphSession(graph, ledger=ledger)
        session.count(query, method="GBC", backend="fast")
        cell = ledger.lookup(session.fingerprint, query.p, query.q,
                             "GBC", "fast")
        assert cell is not None
        assert cell.ratio is None
