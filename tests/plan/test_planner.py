"""Planner properties: auto == explicit counts, determinism, round-trip.

The golden-graph property the acceptance criteria pin: ``method="auto"``
must be *bit-identical* to every explicit method on every backend — the
planner may only ever change how fast an answer arrives, never the
answer — and its output (the ranked candidate list and the chosen plan)
must be deterministic for a fixed probe seed.
"""

import pytest

from repro.bench.runner import run_method
from repro.core.counts import BicliqueQuery
from repro.errors import PlanError, QueryError
from repro.graph.generators import (planted_bicliques, power_law_bipartite,
                                    random_bipartite)
from repro.plan import CountPlan, Planner, execute_plan, plan_query

GRAPHS = {
    "random": random_bipartite(30, 25, 120, seed=3),
    "power-law": power_law_bipartite(40, 30, 200, seed=5),
    "planted": planted_bicliques(20, 20, [(4, 3), (3, 4)], noise_edges=30,
                                 seed=1),
}
QUERIES = [BicliqueQuery(2, 2), BicliqueQuery(3, 2), BicliqueQuery(2, 3)]


class TestAutoMatchesExplicit:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("backend", ["sim", "fast", "par", "native"])
    def test_auto_count_bit_identical(self, graph_name, backend):
        graph = GRAPHS[graph_name]
        workers = 2 if backend == "par" else None
        for query in QUERIES:
            auto = run_method("auto", graph, query, backend=backend,
                              workers=workers)
            for method in ("Basic", "BCL", "BCLP", "GBL", "GBC"):
                explicit = run_method(method, graph, query, backend=backend,
                                      workers=workers)
                assert auto.count == explicit.count, (
                    f"auto ({auto.algorithm}) disagrees with {method} on "
                    f"{graph_name} {query} [{backend}]")

    def test_auto_resolves_to_a_registered_candidate(self):
        plan = plan_query(GRAPHS["random"], QUERIES[0], method="auto")
        assert plan.method in ("Basic", "BCL", "BCLP", "GBL", "GBC")
        assert plan.source == "auto"
        assert plan.predicted_seconds > 0


class TestDeterminism:
    def test_ranked_plans_stable_for_fixed_seed(self):
        graph = GRAPHS["power-law"]
        query = BicliqueQuery(3, 2)
        first = Planner(graph, seed=7).rank(query)
        second = Planner(graph, seed=7).rank(query)
        assert [p.as_dict() for p in first] == [p.as_dict() for p in second]

    def test_chosen_plan_stable_across_planners(self):
        graph = GRAPHS["random"]
        query = BicliqueQuery(2, 3)
        plans = [Planner(graph, seed=0).plan(query) for _ in range(3)]
        assert all(p == plans[0] for p in plans)

    def test_ranking_is_total_and_sorted(self):
        ranked = Planner(GRAPHS["random"]).rank(BicliqueQuery(2, 2))
        predictions = [p.predicted_seconds for p in ranked]
        assert predictions == sorted(predictions)
        # free engine choice prices methods per engine: each (method,
        # engine) candidate appears exactly once
        assert len({(p.method, p.backend) for p in ranked}) == len(ranked)
        assert {p.method for p in ranked} == \
            {"Basic", "BCL", "BCLP", "GBL", "GBC"}

    def test_session_probe_matches_sessionless(self):
        from repro.query import GraphSession

        graph = GRAPHS["power-law"]
        query = BicliqueQuery(2, 2)
        bare = Planner(graph, seed=0).plan(query, backend="fast")
        session = GraphSession(graph)
        warm = Planner(graph, session=session, seed=0).plan(query,
                                                            backend="fast")
        assert warm.as_dict() == bare.as_dict()


class TestRoundTrip:
    def test_explain_round_trip(self):
        """A plan survives as_dict -> from_dict exactly (what ``plan
        explain`` output and BENCH_plan.json rely on)."""
        for query in QUERIES:
            plan = plan_query(GRAPHS["random"], query, method="auto")
            assert CountPlan.from_dict(plan.as_dict()) == plan

    def test_round_tripped_plan_executes_identically(self):
        graph = GRAPHS["planted"]
        query = BicliqueQuery(2, 2)
        plan = plan_query(graph, query, method="auto")
        again = CountPlan.from_dict(plan.as_dict())
        assert execute_plan(again, graph, query).count == \
            execute_plan(plan, graph, query).count

    def test_unknown_keys_rejected(self):
        plan = plan_query(GRAPHS["random"], QUERIES[0], method="GBC")
        data = plan.as_dict()
        data["surprise"] = 1
        with pytest.raises(PlanError, match="surprise"):
            CountPlan.from_dict(data)


class TestEngineChoice:
    def test_free_choice_prefers_uninstrumented(self):
        plan = Planner(GRAPHS["random"]).plan(BicliqueQuery(2, 2))
        # auto means "fastest": either uninstrumented engine may win,
        # but never the instrumented simulated device
        assert plan.backend in ("fast", "native")

    def test_free_choice_ranks_native_candidates(self):
        """With no pinned engine the ranking prices the device methods
        on the native batch-kernel engine too, with its own cost model
        and an extra ``native:<layer>:<k>`` prepared requirement."""
        ranked = Planner(GRAPHS["random"]).rank(BicliqueQuery(2, 2))
        native = [p for p in ranked if p.backend == "native"]
        assert {p.method for p in native} == {"GBL", "GBC"}
        for plan in native:
            assert any(key.startswith("native:") for key in plan.prepared)
            fast_twin = next(p for p in ranked if p.backend == "fast"
                             and p.method == plan.method)
            assert plan.predicted_seconds < fast_twin.predicted_seconds

    def test_sim_backend_prefers_the_device_methods(self):
        """On the instrumented engine the headline is simulated device
        seconds — the paper's GBC must dominate the CPU methods."""
        ranked = Planner(GRAPHS["power-law"]).rank(BicliqueQuery(3, 2),
                                                   backend="sim")
        assert ranked[0].method == "GBC"
        assert ranked[1].method == "GBL"

    def test_workers_imply_par(self):
        plan = Planner(GRAPHS["random"]).plan(BicliqueQuery(2, 2),
                                              workers=2)
        assert plan.backend == "par"
        assert plan.workers == 2

    def test_fast_with_workers_priced_as_par(self):
        """backend='fast' + workers resolves to the sharded engine at
        execution time (resolve_backend's upgrade), so the planner must
        price and label it as 'par' — fork overhead included."""
        planner = Planner(GRAPHS["random"])
        query = BicliqueQuery(2, 2)
        upgraded = planner.plan(query, backend="fast", workers=2)
        serial = planner.plan(query, backend="fast")
        assert upgraded.backend == "par"
        assert upgraded.predicted_seconds > serial.predicted_seconds
        assert execute_plan(upgraded, GRAPHS["random"]).backend == "par"

    def test_sim_with_workers_rejected(self):
        with pytest.raises(QueryError, match="serial"):
            Planner(GRAPHS["random"]).rank(BicliqueQuery(2, 2),
                                           backend="sim", workers=2)

    def test_pinned_layer_excludes_basic(self):
        ranked = Planner(GRAPHS["random"]).rank(BicliqueQuery(2, 2),
                                                layer="V")
        assert all(p.method != "Basic" for p in ranked)
        assert all(p.layer == "V" for p in ranked)


class TestSignalCaches:
    """Sessionless planning memoises per-graph signals by content."""

    def test_probe_runs_once_per_graph_content(self, monkeypatch):
        import repro.core.estimate as estimate
        from repro.plan import planner as planner_mod

        graph = random_bipartite(22, 18, 90, seed=41)
        query = BicliqueQuery(2, 2)
        calls = {"n": 0}
        real = estimate.sample_root_profile

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(estimate, "sample_root_profile", counting)
        planner_mod._PROBE_CACHE.clear()
        first = Planner(graph).plan(query)
        second = Planner(graph).plan(query)   # a brand-new planner
        assert first.as_dict() == second.as_dict()
        assert calls["n"] == 1

    def test_stats_cached_by_content(self):
        from repro.graph.stats import cached_stats

        graph = random_bipartite(22, 18, 90, seed=42)
        assert cached_stats(graph) is cached_stats(graph)

    def test_reused_planner_reprobes_after_in_place_edit(self, monkeypatch):
        """One planner held across an in-place mutation of its graph's
        arrays must re-sync: the old probe memo is dropped and the new
        content is probed exactly once (see also
        tests/query/test_staleness.py for the full staleness layer)."""
        import numpy as np

        import repro.core.estimate as estimate
        from repro.plan import planner as planner_mod

        graph = random_bipartite(22, 18, 90, seed=44)
        donor = random_bipartite(22, 18, 90, seed=45)
        query = BicliqueQuery(2, 2)
        calls = {"n": 0}
        real = estimate.sample_root_profile

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(estimate, "sample_root_profile", counting)
        planner_mod._PROBE_CACHE.clear()
        planner = Planner(graph)
        planner.plan(query)
        planner.plan(query)                      # memoised: no new probe
        assert calls["n"] == 1
        for name in ("u_offsets", "u_neighbors", "v_offsets",
                     "v_neighbors"):
            np.copyto(getattr(graph, name), getattr(donor, name))
        changed = planner.plan(query)            # re-syncs, probes again
        assert calls["n"] == 2
        assert changed.as_dict() == Planner(graph).plan(query).as_dict()
        assert calls["n"] == 2                   # shared via probe cache

    def test_session_probe_still_warms_prepared_state(self, monkeypatch):
        """Session planners bypass the probe cache on purpose: their
        probe doubles as the session's prepared-state warmer."""
        from repro.query import GraphSession

        graph = random_bipartite(22, 18, 90, seed=43)
        session = GraphSession(graph)
        Planner(graph, session=session).plan(BicliqueQuery(2, 2))
        assert session.stats.wedge_builds >= 1
