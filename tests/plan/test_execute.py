"""execute_plan: the single dispatch site and its contracts."""

import pytest

from repro.core.counts import BicliqueQuery
from repro.errors import PlanError, UnknownMethodError
from repro.graph.generators import random_bipartite
from repro.plan import (CountPlan, execute_plan, explicit_plan, plan_query,
                        warm_session)

GRAPH = random_bipartite(30, 25, 140, seed=11)
QUERY = BicliqueQuery(2, 2)


class TestExplicitPlans:
    def test_default_backend_is_sim(self):
        plan = explicit_plan(GRAPH, QUERY, "GBC")
        assert plan.backend == "sim"
        assert plan.source == "explicit"
        assert plan.predicted_seconds == 0.0

    def test_workers_imply_par(self):
        plan = explicit_plan(GRAPH, QUERY, "BCL", workers=2)
        assert plan.backend == "par" and plan.workers == 2

    def test_fast_with_workers_recorded_as_par(self):
        plan = explicit_plan(GRAPH, QUERY, "BCL", backend="fast",
                             workers=2)
        assert plan.backend == "par"
        assert execute_plan(plan, GRAPH).backend == "par"

    def test_unknown_method_fails_before_execution(self):
        with pytest.raises(UnknownMethodError):
            explicit_plan(GRAPH, QUERY, "FOO")

    def test_requirements_follow_the_method(self):
        basic = explicit_plan(GRAPH, QUERY, "Basic")
        gbc = explicit_plan(GRAPH, QUERY, "GBC")
        assert any(k.startswith("two_hop_id:") for k in basic.prepared)
        assert any(k.startswith("htb:") for k in gbc.prepared)


class TestExecution:
    def test_executes_without_query_argument(self):
        plan = explicit_plan(GRAPH, QUERY, "BCL", backend="fast")
        direct = execute_plan(plan, GRAPH)
        assert direct.count == execute_plan(plan, GRAPH, QUERY).count

    def test_query_mismatch_rejected(self):
        plan = explicit_plan(GRAPH, QUERY, "BCL")
        with pytest.raises(PlanError, match=r"\(3, 3\)"):
            execute_plan(plan, GRAPH, BicliqueQuery(3, 3))

    def test_variant_options_default_from_registry(self):
        result = execute_plan(explicit_plan(GRAPH, QUERY, "GBC-NH"), GRAPH)
        assert result.algorithm == "GBC-NH"

    def test_backend_instance_override_wins(self):
        from repro.engine.fast import FastBackend

        plan = explicit_plan(GRAPH, QUERY, "GBC")     # plans for "sim"
        result = execute_plan(plan, GRAPH, backend=FastBackend())
        assert result.backend == "fast"

    def test_auto_plan_end_to_end(self):
        plan = plan_query(GRAPH, QUERY, method="auto")
        auto = execute_plan(plan, GRAPH)
        explicit = execute_plan(explicit_plan(GRAPH, QUERY, plan.method,
                                              backend=plan.backend), GRAPH)
        assert auto.count == explicit.count


class TestWarmSession:
    def test_warms_exactly_the_required_state(self):
        from repro.query import GraphSession

        session = GraphSession(GRAPH)
        warm_session(session, explicit_plan(GRAPH, QUERY, "GBC"))
        stats = session.stats
        assert stats.wedge_builds == 1
        assert stats.order_builds == 1
        assert stats.index_builds == 1
        assert stats.htb_adj_builds == 1
        assert stats.htb_two_hop_builds == 1
        # warming is idempotent: nothing rebuilds
        warm_session(session, explicit_plan(GRAPH, QUERY, "GBC"))
        assert session.stats.wedge_builds == 1

    def test_warmed_run_builds_nothing_new(self):
        from repro.query import GraphSession

        session = GraphSession(GRAPH)
        plan = explicit_plan(GRAPH, QUERY, "BCL", backend="fast")
        warm_session(session, plan)
        before = dict(session.stats.as_dict())
        result = execute_plan(plan, GRAPH, session=session)
        after = session.stats.as_dict()
        assert result.count == execute_plan(plan, GRAPH).count
        for key in ("wedge_builds", "order_builds", "index_builds"):
            assert after[key] == before[key]

    def test_unknown_requirement_kind_rejected(self):
        from repro.query import GraphSession

        bogus = CountPlan(method="BCL", p=2, q=2,
                          prepared=("nonsense:U:2",))
        with pytest.raises(PlanError, match="nonsense"):
            warm_session(GraphSession(GRAPH), bogus)

    def test_plan_must_carry_resolved_method(self):
        with pytest.raises(PlanError, match="auto"):
            CountPlan(method="auto", p=2, q=2)
