"""Backend equivalence: the fast engine must be indistinguishable from
the simulated one in every *result* while charging no metrics at all."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.basic import basic_count
from repro.core.bcl import bcl_count
from repro.core.bclp import bclp_count
from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count, gbc_variant
from repro.core.gbl import gbl_count
from repro.engine import (
    BACKEND_NAMES,
    FastBackend,
    KernelBackend,
    SimulatedDeviceBackend,
    get_backend,
    resolve_backend,
)
from repro.errors import QueryError
from repro.gpu.device import small_test_device
from repro.gpu.metrics import KernelMetrics
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.htb.htb import BitmapSet

ALGORITHMS = [basic_count, bcl_count, bclp_count, gbl_count, gbc_count]


def _sorted_unique(rng, n, hi):
    return np.unique(rng.integers(0, hi, size=n).astype(np.int64))


class TestRegistry:
    def test_names(self):
        assert set(BACKEND_NAMES) == {"sim", "fast", "par", "native"}

    def test_get_backend(self):
        from repro.engine import NativeBackend, ParallelBackend

        assert isinstance(get_backend("sim"), SimulatedDeviceBackend)
        assert isinstance(get_backend("fast"), FastBackend)
        assert isinstance(get_backend("par", workers=2), ParallelBackend)
        assert isinstance(get_backend("native"), NativeBackend)
        with pytest.raises(QueryError):
            get_backend("cuda")

    def test_resolve_defaults_to_sim(self):
        engine = resolve_backend(None)
        assert engine.name == "sim" and engine.instrumented

    def test_resolve_passes_instances_through(self):
        engine = FastBackend()
        assert resolve_backend(engine) is engine
        with pytest.raises(QueryError):
            resolve_backend(42)

    def test_resolve_binds_spec(self):
        spec = small_test_device()
        engine = resolve_backend("sim", spec)
        assert engine.spec is spec

    def test_protocol(self):
        for name in BACKEND_NAMES:
            assert isinstance(get_backend(name), KernelBackend)


class TestPrimitiveEquivalence:
    """Property-style: random sorted sets, every primitive, both engines."""

    @pytest.mark.parametrize("seed", range(8))
    def test_intersect_and_merge(self, seed):
        rng = np.random.default_rng(seed)
        sim = SimulatedDeviceBackend(small_test_device())
        fast = FastBackend()
        for _ in range(16):
            a = _sorted_unique(rng, int(rng.integers(0, 40)), 120)
            b = _sorted_unique(rng, int(rng.integers(0, 80)), 120)
            expect = np.intersect1d(a, b)
            m = KernelMetrics()
            np.testing.assert_array_equal(sim.intersect(a, b, m), expect)
            np.testing.assert_array_equal(fast.intersect(a, b, m), expect)
            np.testing.assert_array_equal(sim.merge(a, b), expect)
            np.testing.assert_array_equal(fast.merge(a, b), expect)

    @pytest.mark.parametrize("seed", range(8))
    def test_membership(self, seed):
        rng = np.random.default_rng(100 + seed)
        sim = SimulatedDeviceBackend(small_test_device())
        fast = FastBackend()
        a = _sorted_unique(rng, 25, 90)
        b = _sorted_unique(rng, 45, 90)
        np.testing.assert_array_equal(sim.membership(a, b),
                                      fast.membership(a, b))

    @pytest.mark.parametrize("seed", range(8))
    def test_bitmap_intersect(self, seed):
        rng = np.random.default_rng(200 + seed)
        sim = SimulatedDeviceBackend(small_test_device())
        fast = FastBackend()
        for _ in range(16):
            a = BitmapSet.from_vertices(
                _sorted_unique(rng, int(rng.integers(0, 50)), 300))
            b = BitmapSet.from_vertices(
                _sorted_unique(rng, int(rng.integers(0, 50)), 300))
            m = KernelMetrics()
            got_sim = sim.bitmap_intersect(a, b, m)
            got_fast = fast.bitmap_intersect(a, b, m)
            np.testing.assert_array_equal(got_sim.vertices(),
                                          got_fast.vertices())
            assert got_sim.count() == got_fast.count()

    def test_fast_merge_ignores_comparison_cell(self):
        fast = FastBackend()
        cell = [0]
        fast.merge(np.arange(5, dtype=np.int64),
                   np.arange(3, 9, dtype=np.int64), cell)
        assert cell[0] == 0

    def test_sim_merge_counts_comparisons(self):
        sim = SimulatedDeviceBackend(small_test_device())
        cell = [0]
        sim.merge(np.arange(5, dtype=np.int64),
                  np.arange(3, 9, dtype=np.int64), cell)
        assert cell[0] == 11


class TestAlgorithmEquivalence:
    """Identical biclique counts across all five algorithms on random
    bipartite graphs, fast vs simulated."""

    @pytest.mark.parametrize("seed", [3, 11, 27])
    @pytest.mark.parametrize("pq", [(2, 2), (3, 2), (2, 3), (3, 3)])
    def test_counts_match(self, seed, pq):
        graph = random_bipartite(35, 30, 260, seed=seed)
        query = BicliqueQuery(*pq)
        counts = set()
        for fn in ALGORITHMS:
            counts.add(fn(graph, query).count)
            counts.add(fn(graph, query, backend="fast").count)
        assert len(counts) == 1, f"backends disagree: {counts}"

    def test_counts_match_power_law(self):
        graph = power_law_bipartite(60, 50, 400, seed=5)
        query = BicliqueQuery(3, 3)
        sim = gbc_count(graph, query)
        fast = gbc_count(graph, query, backend="fast")
        assert sim.count == fast.count

    @pytest.mark.parametrize("variant", ["NH", "NB", "NW"])
    def test_gbc_variants_match(self, variant):
        graph = random_bipartite(30, 25, 180, seed=9)
        query = BicliqueQuery(2, 3)
        sim = gbc_count(graph, query, options=gbc_variant(variant))
        fast = gbc_count(graph, query, options=gbc_variant(variant),
                         backend="fast")
        assert sim.count == fast.count


class TestInstrumentationContract:
    """Fast runs charge nothing; sim runs keep their historical metrics."""

    def test_fast_gbc_has_zero_metrics(self):
        graph = random_bipartite(30, 25, 180, seed=1)
        res = gbc_count(graph, BicliqueQuery(2, 2), backend="fast")
        assert res.backend == "fast"
        m = res.metrics
        assert m.global_transactions == 0
        assert m.comparisons == 0
        assert m.shared_accesses == 0
        assert m.intersection_calls == 0
        assert m.thread_slots_total == 0

    def test_sim_gbc_still_charges(self):
        graph = random_bipartite(30, 25, 180, seed=1)
        res = gbc_count(graph, BicliqueQuery(2, 2))
        assert res.backend == "sim"
        assert res.metrics.global_transactions > 0
        assert res.metrics.intersection_calls > 0

    def test_bcl_instrument_opt_out(self):
        graph = random_bipartite(30, 25, 180, seed=2)
        query = BicliqueQuery(2, 2)
        on = bcl_count(graph, query)
        off = bcl_count(graph, query, instrument=False)
        fast = bcl_count(graph, query, backend="fast")
        assert on.count == off.count == fast.count
        assert "comp_s_seconds" in on.breakdown
        assert off.breakdown == {} and off.extras == {}
        assert fast.breakdown == {} and fast.extras == {}

    def test_backend_recorded_on_results(self):
        graph = random_bipartite(20, 20, 100, seed=4)
        query = BicliqueQuery(2, 2)
        for fn in ALGORITHMS:
            sim = fn(graph, query)
            fast = fn(graph, query, backend="fast")
            assert sim.backend == "sim" and sim.backend_instrumented
            assert fast.backend == "fast" and not fast.backend_instrumented

    def test_headline_seconds_falls_back_to_wall_when_uninstrumented(self):
        from repro.bench.runner import headline_seconds

        graph = random_bipartite(20, 20, 100, seed=4)
        query = BicliqueQuery(2, 2)
        sim = gbc_count(graph, query)
        fast = gbc_count(graph, query, backend="fast")
        assert headline_seconds(sim) == sim.device_seconds
        assert headline_seconds(fast) == fast.wall_seconds
