"""The native batch-kernel backend: equivalence, gating, prepared state.

Three layers of protection:

* **primitive equivalence** — every batch kernel against the protocol's
  default implementation (a loop over the scalar ``fast`` kernels) on
  randomised CSR/HTB batches, including empty keys/rows/selections;
* **algorithm equivalence** — every counter (ablation variants
  included) produces counts bit-identical to ``fast``, on regular and
  degenerate graphs, across all four registered engines;
* **tier gating** — ``REPRO_NATIVE_JIT`` and the explicit ``jit=`` flag
  resolve as documented whether or not numba is installed, and (when it
  is) the JIT tier matches the pure-numpy tier exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import run_method
from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count, gbc_variant
from repro.core.gbl import gbl_count
from repro.engine import NativeBackend, ParallelBackend, resolve_backend
from repro.engine.fast import FastBackend
from repro.engine.native import (
    JIT_ENV,
    build_native_pack,
    jit_available,
)
from repro.gpu.metrics import KernelMetrics
from repro.graph.builders import from_edges
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.htb.htb import BitmapSet, build_htb_from_rows

ALGORITHMS = ("Basic", "BCL", "BCLP", "GBL", "GBC",
              "GBC-NH", "GBC-NB", "GBC-NW")
BACKEND_FACTORIES = {
    "sim": lambda: "sim",
    "fast": lambda: "fast",
    "par": lambda: ParallelBackend(workers=2),
    "native": lambda: NativeBackend(),
}


def _random_rows(rng, n_rows, universe, max_len):
    return [np.unique(rng.integers(0, universe,
                                   size=int(rng.integers(0, max_len))))
            .astype(np.int64) for _ in range(n_rows)]


def _pack_csr(rows):
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(r) for r in rows], out=offsets[1:])
    values = (np.concatenate(rows) if offsets[-1]
              else np.empty(0, dtype=np.int64))
    return offsets, values


class TestPrimitiveEquivalence:
    """Each batch kernel vs the scalar-loop default on the same data."""

    @pytest.fixture()
    def engines(self):
        return NativeBackend(jit=False), FastBackend()

    def test_merge_many(self, engines):
        native, fast = engines
        rng = np.random.default_rng(0)
        a = np.unique(rng.integers(0, 200, 80)).astype(np.int64)
        lists = _random_rows(rng, 12, 200, 40) + [np.empty(0, np.int64)]
        got = native.merge_many(a, lists)
        want = fast.merge_many(a, lists)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)
        assert native.merge_many(a, []) == []
        for out in native.merge_many(np.empty(0, np.int64), lists):
            assert len(out) == 0

    def test_membership_many(self, engines):
        native, fast = engines
        rng = np.random.default_rng(1)
        keys = np.unique(rng.integers(0, 100, 30)).astype(np.int64)
        lists = _random_rows(rng, 9, 100, 25) + [np.empty(0, np.int64)]
        got = native.membership_many(keys, lists)
        want = fast.membership_many(keys, lists)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(np.asarray(g), np.asarray(w))
        for out in native.membership_many(np.empty(0, np.int64), lists):
            assert len(out) == 0

    def test_intersect_many_and_sizes(self, engines):
        native, fast = engines
        rng = np.random.default_rng(2)
        offsets, values = _pack_csr(_random_rows(rng, 20, 300, 50))
        keys = np.unique(rng.integers(0, 300, 90)).astype(np.int64)
        rows = rng.integers(0, 20, 15)
        m = KernelMetrics()
        got = native.intersect_many(keys, offsets, values, rows, m)
        want = fast.intersect_many(keys, offsets, values, rows, m)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)
        np.testing.assert_array_equal(
            native.intersect_sizes(keys, offsets, values, rows, m),
            fast.intersect_sizes(keys, offsets, values, rows, m))
        assert native.intersect_many(keys, offsets, values, [], m) == []
        empty = native.intersect_sizes(np.empty(0, np.int64), offsets,
                                       values, rows, m)
        assert empty.sum() == 0 and len(empty) == len(rows)

    def test_bitmap_many_and_counts(self, engines):
        native, fast = engines
        rng = np.random.default_rng(3)
        htb = build_htb_from_rows(_random_rows(rng, 16, 400, 60))
        keys = BitmapSet.from_vertices(
            np.unique(rng.integers(0, 400, 120)).astype(np.int64))
        rows = rng.integers(0, 16, 12)
        m = KernelMetrics()
        got = native.bitmap_intersect_many(keys, htb, rows, m)
        want = fast.bitmap_intersect_many(keys, htb, rows, m)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.idx, w.idx)
            np.testing.assert_array_equal(g.val, w.val)
            assert g.count() == w.count()
        np.testing.assert_array_equal(
            native.bitmap_intersect_counts(keys, htb, rows, m),
            fast.bitmap_intersect_counts(keys, htb, rows, m))
        empty_keys = BitmapSet.from_vertices(np.empty(0, np.int64))
        for got in native.bitmap_intersect_many(empty_keys, htb, rows, m):
            assert got.is_empty()
        assert native.bitmap_intersect_counts(
            empty_keys, htb, rows, m).sum() == 0


class TestPairwiseEquivalence:
    """The frontier's pairwise kernels vs the scalar-loop defaults.

    ``FastBackend`` inherits the protocol's default pairwise entry
    points (a loop over the scalar kernels with identical arguments),
    so it is the reference the vectorised implementations must match —
    including both probe directions of the adaptive ``searchsorted``
    (small A rows against big CSR rows and the reverse).
    """

    @pytest.fixture()
    def engines(self):
        return NativeBackend(jit=False), FastBackend()

    def _ragged(self, rows):
        offsets, values = _pack_csr(rows)
        return offsets, values

    @pytest.mark.parametrize("a_len,b_len", [(6, 60), (60, 6), (25, 25)])
    def test_intersect_pairs(self, engines, a_len, b_len):
        native, fast = engines
        rng = np.random.default_rng(a_len * 100 + b_len)
        a_off, a_val = self._ragged(
            _random_rows(rng, 10, 300, a_len) + [np.empty(0, np.int64)])
        offsets, values = _pack_csr(
            _random_rows(rng, 14, 300, b_len) + [np.empty(0, np.int64)])
        a_ids = rng.integers(0, 11, 30).astype(np.int64)
        rows = rng.integers(0, 15, 30).astype(np.int64)
        m = KernelMetrics()
        got_off, got_flat = native.intersect_pairs(
            a_off, a_val, a_ids, offsets, values, rows, m)
        want_off, want_flat = fast.intersect_pairs(
            a_off, a_val, a_ids, offsets, values, rows, m)
        np.testing.assert_array_equal(got_off, want_off)
        np.testing.assert_array_equal(got_flat, want_flat)
        np.testing.assert_array_equal(
            native.intersect_pairs_sizes(a_off, a_val, a_ids, offsets,
                                         values, rows, m),
            fast.intersect_pairs_sizes(a_off, a_val, a_ids, offsets,
                                       values, rows, m))

    def test_intersect_pairs_empty(self, engines):
        native, _ = engines
        m = KernelMetrics()
        none = np.empty(0, np.int64)
        off, flat = native.intersect_pairs(
            np.zeros(1, np.int64), none, none,
            np.zeros(1, np.int64), none, none, m)
        assert len(off) == 1 and len(flat) == 0
        sizes = native.intersect_pairs_sizes(
            np.zeros(3, np.int64), none, np.zeros(2, np.int64),
            np.zeros(5, np.int64), none, np.zeros(2, np.int64), m)
        np.testing.assert_array_equal(sizes, [0, 0])

    def test_bitmap_pairs(self, engines):
        native, fast = engines
        rng = np.random.default_rng(17)
        htb = build_htb_from_rows(
            _random_rows(rng, 12, 500, 80) + [np.empty(0, np.int64)])
        a_sets = [BitmapSet.from_vertices(r)
                  for r in _random_rows(rng, 8, 500, 70)]
        a_off, _ = self._ragged([s.idx for s in a_sets])
        a_idx = np.concatenate([s.idx for s in a_sets])
        a_val = np.concatenate([s.val for s in a_sets])
        a_ids = rng.integers(0, 8, 25).astype(np.int64)
        rows = rng.integers(0, 13, 25).astype(np.int64)
        m = KernelMetrics()
        got = native.bitmap_pairs(a_off, a_idx, a_val, a_ids, htb,
                                  rows, m)
        want = fast.bitmap_pairs(a_off, a_idx, a_val, a_ids, htb,
                                 rows, m)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)
        np.testing.assert_array_equal(
            native.bitmap_pairs_counts(a_off, a_idx, a_val, a_ids,
                                       htb, rows, m),
            fast.bitmap_pairs_counts(a_off, a_idx, a_val, a_ids,
                                     htb, rows, m))

    @pytest.mark.skipif(not jit_available(),
                        reason="numba not installed (pip install .[native])")
    def test_jit_pairwise_matches_numpy(self):
        rng = np.random.default_rng(23)
        a_off, a_val = _pack_csr(_random_rows(rng, 9, 250, 40))
        offsets, values = _pack_csr(_random_rows(rng, 11, 250, 45))
        a_ids = rng.integers(0, 9, 20).astype(np.int64)
        rows = rng.integers(0, 11, 20).astype(np.int64)
        m = KernelMetrics()
        jit, plain = NativeBackend(jit=True), NativeBackend(jit=False)
        got_off, got_flat = jit.intersect_pairs(
            a_off, a_val, a_ids, offsets, values, rows, m)
        want_off, want_flat = plain.intersect_pairs(
            a_off, a_val, a_ids, offsets, values, rows, m)
        np.testing.assert_array_equal(got_off, want_off)
        np.testing.assert_array_equal(got_flat, want_flat)
        np.testing.assert_array_equal(
            jit.intersect_pairs_sizes(a_off, a_val, a_ids, offsets,
                                      values, rows, m),
            plain.intersect_pairs_sizes(a_off, a_val, a_ids, offsets,
                                        values, rows, m))


class TestAlgorithmEquivalence:
    """Counts bit-identical to fast across every counter and variant."""

    @pytest.fixture(scope="class")
    def graph(self):
        return power_law_bipartite(50, 40, 260, seed=5, name="native-eq")

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matches_fast(self, graph, algorithm):
        for query in (BicliqueQuery(2, 2), BicliqueQuery(3, 2),
                      BicliqueQuery(2, 3)):
            fast = run_method(algorithm, graph, query, backend="fast")
            native = run_method(algorithm, graph, query, backend="native")
            assert native.count == fast.count
            assert native.backend == "native"
            assert not native.backend_instrumented


class TestDegenerateInputs:
    """All four engines agree on the pathological shapes."""

    CASES = {
        "empty": (from_edges(4, 3, [], name="empty"),
                  BicliqueQuery(2, 2), 0),
        "isolated": (from_edges(6, 5, [(0, 0), (0, 1), (1, 0), (1, 1)],
                                name="isolated"),
                     BicliqueQuery(2, 2), 1),
        "single-edge": (from_edges(3, 3, [(1, 2)], name="single-edge"),
                        BicliqueQuery(1, 1), 1),
        "exceeds-degree": (random_bipartite(10, 8, 30, seed=3,
                                            name="exceeds"),
                           BicliqueQuery(9, 9), 0),
    }

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_backends_agree(self, case, algorithm):
        graph, query, expected = self.CASES[case]
        counts = {}
        for name, make in BACKEND_FACTORIES.items():
            counts[name] = run_method(algorithm, graph, query,
                                      backend=make()).count
        assert counts == {name: expected for name in BACKEND_FACTORIES}, \
            f"{algorithm} disagrees on {case}: {counts}"


class TestJitGating:
    def test_env_off(self, monkeypatch):
        for raw in ("0", "false", "off", "no"):
            monkeypatch.setenv(JIT_ENV, raw)
            assert NativeBackend().jit_enabled is False

    def test_env_on_degrades_without_numba(self, monkeypatch):
        for raw in ("1", "true", "on", "yes"):
            monkeypatch.setenv(JIT_ENV, raw)
            assert NativeBackend().jit_enabled is jit_available()

    def test_env_unset_means_auto(self, monkeypatch):
        monkeypatch.delenv(JIT_ENV, raising=False)
        assert NativeBackend().jit_enabled is jit_available()

    def test_explicit_flag(self, monkeypatch):
        monkeypatch.setenv(JIT_ENV, "1")  # flag beats the environment
        assert NativeBackend(jit=False).jit_enabled is False
        assert NativeBackend(jit=True).jit_enabled is jit_available()

    @pytest.mark.skipif(not jit_available(),
                        reason="numba not installed (pip install .[native])")
    def test_jit_tier_matches_numpy_tier(self):
        graph = power_law_bipartite(40, 30, 200, seed=9)
        for query in (BicliqueQuery(3, 2), BicliqueQuery(2, 3)):
            jit = gbl_count(graph, query,
                            backend=NativeBackend(jit=True)).count
            plain = gbl_count(graph, query,
                              backend=NativeBackend(jit=False)).count
            assert jit == plain
            jit = gbc_count(graph, query,
                            backend=NativeBackend(jit=True)).count
            plain = gbc_count(graph, query,
                              backend=NativeBackend(jit=False)).count
            assert jit == plain


class TestPreparedState:
    def test_session_pack_built_once(self):
        from repro.query import GraphSession

        graph = random_bipartite(30, 25, 150, seed=4)
        session = GraphSession(graph)
        query = BicliqueQuery(3, 2)
        first = gbl_count(graph, query, backend="native", session=session)
        again = gbl_count(graph, query, backend="native", session=session,
                          )
        assert first.count == again.count
        assert session.stats.native_pack_builds == 1
        assert first.count == gbl_count(graph, query,
                                        backend="fast").count

    def test_pack_cached_per_layer_k(self):
        from repro.query import GraphSession

        graph = random_bipartite(20, 20, 100, seed=6)
        session = GraphSession(graph)
        a = session.native_pack("U", 2)
        assert session.native_pack("U", 2) is a
        session.native_pack("U", 3)
        assert session.stats.native_pack_builds == 2
        assert session.refresh() is False      # untouched graph
        assert session.native_pack("U", 2) is a

    def test_warm_session_builds_native_kind(self):
        from repro.plan import execute_plan, explicit_plan, warm_session
        from repro.query import GraphSession

        graph = random_bipartite(25, 20, 120, seed=8)
        session = GraphSession(graph)
        query = BicliqueQuery(2, 2)
        plan = explicit_plan(graph, query, "GBL", backend="native")
        assert any(key.startswith("native:") for key in plan.prepared)
        warm_session(session, plan)
        assert session.stats.native_pack_builds == 1
        result = execute_plan(plan, graph, query, session=session)
        assert session.stats.native_pack_builds == 1   # reused, not rebuilt
        assert result.count == gbl_count(graph, query,
                                         backend="fast").count

    def test_adhoc_pack_matches_session_pack(self):
        from repro.query import GraphSession

        graph = random_bipartite(20, 15, 90, seed=2)
        session = GraphSession(graph)
        prepared = session.prepared(BicliqueQuery(2, 2))
        adhoc = build_native_pack(prepared.graph, prepared.index,
                                  prepared.anchored_layer, prepared.q)
        cached = session.native_pack(prepared.anchored_layer, prepared.q)
        np.testing.assert_array_equal(adhoc.adj_offsets,
                                      cached.adj_offsets)
        np.testing.assert_array_equal(adhoc.adj_values, cached.adj_values)
        np.testing.assert_array_equal(adhoc.idx_offsets,
                                      cached.idx_offsets)
        np.testing.assert_array_equal(adhoc.idx_values, cached.idx_values)
        assert cached.nbytes == adhoc.nbytes


class TestAutoPlanning:
    def test_auto_count_can_choose_native_and_agrees(self):
        from repro.query import batch_count

        graph = random_bipartite(40, 30, 200, seed=12)
        auto = batch_count(graph, "2x2,3x2", method="auto")
        explicit = batch_count(graph, "2x2,3x2", method="GBC",
                               backend="fast")
        assert auto.counts == explicit.counts

    def test_resolve_backend_accepts_native(self):
        engine = resolve_backend("native")
        assert isinstance(engine, NativeBackend)
        assert engine.name == "native"
        with pytest.raises(Exception):
            resolve_backend("native", workers=2)
