"""The sharded multi-process engine: planning, execution, determinism.

The hard guarantee under test: ``ParallelBackend`` merges per-shard
results so that counts are bit-identical to a serial ``fast`` run for
*any* worker count, placement, or dispatch mode — and metric aggregation
is stable (all-zero, like the fast engine it wraps).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.basic import basic_count
from repro.core.bcl import bcl_count, bcl_per_root_profile
from repro.core.bclp import bclp_count
from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.core.gbl import gbl_count
from repro.engine import (
    FastBackend,
    KernelBackend,
    ParallelBackend,
    get_backend,
    resolve_backend,
)
from repro.errors import QueryError
from repro.gpu.metrics import KernelMetrics
from repro.parallel import plan_shards, run_sharded
from repro.graph.generators import power_law_bipartite, random_bipartite

ALGORITHMS = [basic_count, bcl_count, bclp_count, gbl_count, gbc_count]


class TestRegistry:
    def test_par_is_registered(self):
        engine = get_backend("par", workers=3)
        assert isinstance(engine, ParallelBackend)
        assert isinstance(engine, KernelBackend)
        assert engine.name == "par"
        assert engine.workers == 3
        assert engine.parallel and not engine.instrumented

    def test_resolve_workers_selects_parallel(self):
        for backend in (None, "fast", "par", FastBackend()):
            engine = resolve_backend(backend, workers=2)
            assert isinstance(engine, ParallelBackend)
            assert engine.workers == 2

    def test_resolve_workers_rejects_sim(self):
        with pytest.raises(QueryError):
            resolve_backend("sim", workers=2)

    def test_resolve_keeps_configured_instance(self):
        engine = ParallelBackend(2, placement="contiguous",
                                 dispatch="dynamic", chunk_size=3)
        assert resolve_backend(engine, workers=2) is engine
        rebuilt = resolve_backend(engine, workers=4)
        assert rebuilt.workers == 4
        assert rebuilt.placement == "contiguous"
        assert rebuilt.dispatch == "dynamic"
        assert rebuilt.chunk_size == 3

    def test_without_workers_nothing_changes(self):
        assert resolve_backend(None).name == "sim"
        assert resolve_backend("fast").name == "fast"

    def test_invalid_configuration_rejected(self):
        with pytest.raises(QueryError):
            ParallelBackend(0)
        with pytest.raises(QueryError):
            ParallelBackend(2, placement="random")
        with pytest.raises(QueryError):
            ParallelBackend(2, dispatch="chaotic")


class TestShardPlanning:
    @pytest.mark.parametrize("placement", ["contiguous", "weighted"])
    @pytest.mark.parametrize("dispatch", ["static", "dynamic"])
    def test_shards_partition_the_items(self, placement, dispatch):
        rng = np.random.default_rng(0)
        for n, workers in [(1, 1), (5, 2), (37, 4), (100, 8)]:
            plan = plan_shards(n, workers, placement=placement,
                               weights=rng.random(n), dispatch=dispatch)
            assert plan.covered() == list(range(n))

    def test_static_respects_worker_cap(self):
        plan = plan_shards(50, 4, placement="contiguous")
        assert plan.num_shards <= 4

    def test_dynamic_chunk_size(self):
        plan = plan_shards(20, 2, dispatch="dynamic", chunk_size=3)
        assert all(len(s) <= 3 for s in plan.shards)
        assert plan.covered() == list(range(20))

    def test_dynamic_orders_heaviest_first(self):
        weights = np.asarray([1.0] * 10 + [100.0] * 2)
        plan = plan_shards(12, 2, dispatch="dynamic", chunk_size=2,
                           weights=weights)
        assert set(plan.shards[0]) == {10, 11}

    def test_empty_plan(self):
        assert plan_shards(0, 4).num_shards == 0
        assert run_sharded(sum, 0, workers=4) == []

    def test_plan_is_deterministic(self):
        w = np.random.default_rng(7).random(61)
        a = plan_shards(61, 4, weights=w)
        b = plan_shards(61, 4, weights=w)
        assert a == b


class TestRunSharded:
    def test_results_keyed_by_indices(self):
        got = run_sharded(lambda idxs: [i * i for i in idxs], 10, workers=3,
                          placement="contiguous")
        squares = {}
        for idxs, res in got:
            squares.update(zip(idxs, res))
        assert squares == {i: i * i for i in range(10)}

    @pytest.mark.parametrize("dispatch", ["static", "dynamic"])
    def test_closures_cross_the_fork(self, dispatch):
        payload = np.arange(100, dtype=np.int64)  # inherited, not pickled
        got = run_sharded(lambda idxs: int(payload[list(idxs)].sum()), 100,
                          workers=4, dispatch=dispatch)
        assert sum(res for _, res in got) == int(payload.sum())

    def test_worker_count_never_changes_the_merge(self):
        expect = sum(i * 3 for i in range(57))
        for workers in (1, 2, 3, 8):
            got = run_sharded(lambda idxs: sum(i * 3 for i in idxs), 57,
                              workers=workers)
            assert sum(res for _, res in got) == expect


class TestAlgorithmEquivalence:
    """par == fast == sim counts, for every algorithm and worker count."""

    @pytest.mark.parametrize("fn", ALGORITHMS,
                             ids=lambda f: f.__name__)
    def test_counts_match_fast(self, fn):
        graph = power_law_bipartite(50, 40, 260, seed=13)
        query = BicliqueQuery(3, 2)
        expect = fn(graph, query, backend="fast").count
        assert fn(graph, query).count == expect
        for workers in (1, 2, 4):
            assert fn(graph, query, workers=workers).count == expect

    @pytest.mark.parametrize("placement", ["contiguous", "weighted"])
    @pytest.mark.parametrize("dispatch", ["static", "dynamic"])
    def test_counts_match_across_modes(self, placement, dispatch):
        graph = random_bipartite(35, 30, 240, seed=3)
        query = BicliqueQuery(2, 3)
        expect = bcl_count(graph, query, backend="fast").count
        engine = ParallelBackend(2, placement=placement, dispatch=dispatch)
        assert bcl_count(graph, query, backend=engine).count == expect

    def test_result_records_par_backend(self):
        graph = random_bipartite(20, 20, 90, seed=5)
        res = gbc_count(graph, BicliqueQuery(2, 2), workers=2)
        assert res.backend == "par"
        assert not res.backend_instrumented


class TestDeterminism:
    """Same inputs, different worker counts -> byte-identical outputs."""

    def test_counts_and_metrics_stable_across_workers(self):
        graph = power_law_bipartite(60, 45, 300, seed=21)
        query = BicliqueQuery(3, 3)
        serial = gbc_count(graph, query, backend="fast")
        runs = [gbc_count(graph, query, workers=w) for w in (1, 2, 4)] \
            + [gbc_count(graph, query, workers=2)]  # repeat: run-to-run too
        counts = {r.count for r in runs} | {serial.count}
        assert len(counts) == 1
        # stable metric aggregation: identical to the serial fast run
        # (all-zero counters, and the same zero-cost schedule) for any
        # worker count
        for r in runs:
            assert r.metrics == KernelMetrics()
            assert r.makespan_cycles == serial.makespan_cycles
            assert r.per_root_cycles == serial.per_root_cycles

    def test_per_root_data_keeps_priority_order(self):
        graph = power_law_bipartite(40, 30, 200, seed=9)
        query = BicliqueQuery(3, 2)
        serial = bcl_per_root_profile(graph, query, backend="fast")
        for workers in (2, 4):
            par = bcl_per_root_profile(graph, query, workers=workers)
            assert par.root_ids == serial.root_ids
            assert par.per_root_counts == serial.per_root_counts

    def test_bclp_schedule_inputs_survive_sharding(self):
        graph = random_bipartite(30, 25, 150, seed=2)
        query = BicliqueQuery(2, 2)
        serial = bclp_count(graph, query, threads=4, backend="fast")
        par = bclp_count(graph, query, threads=4, workers=2)
        assert par.count == serial.count
        assert par.breakdown["threads"] == 4.0


class TestPrimitiveDelegation:
    """As a plain KernelBackend, par behaves exactly like fast."""

    def test_primitives_match_fast(self):
        rng = np.random.default_rng(31)
        fast, par = FastBackend(), ParallelBackend(2)
        for _ in range(10):
            a = np.unique(rng.integers(0, 80, size=30).astype(np.int64))
            b = np.unique(rng.integers(0, 80, size=50).astype(np.int64))
            m = KernelMetrics()
            np.testing.assert_array_equal(par.merge(a, b), fast.merge(a, b))
            np.testing.assert_array_equal(par.intersect(a, b, m),
                                          fast.intersect(a, b, m))
            np.testing.assert_array_equal(par.membership(a, b),
                                          fast.membership(a, b))
            assert m == KernelMetrics()


class TestBenchAndRunnerThreading:
    def test_run_method_threads_workers(self):
        from repro.bench.runner import run_method

        graph = random_bipartite(25, 20, 120, seed=8)
        query = BicliqueQuery(2, 2)
        expect = run_method("GBC", graph, query, backend="fast").count
        for method in ("Basic", "BCL", "BCLP", "GBL", "GBC"):
            res = run_method(method, graph, query, workers=2)
            assert res.count == expect
            assert res.backend == "par"

    def test_run_matrix_accepts_workers(self):
        from repro.bench.runner import run_matrix

        graphs = {"g": random_bipartite(20, 18, 90, seed=4)}
        runs = run_matrix(graphs, [BicliqueQuery(2, 2)], ["Basic", "BCL"],
                          workers=2)
        assert len(runs) == 2
        assert len({r.count for r in runs}) == 1
