"""Tests for per-vertex local biclique counts."""

from itertools import combinations
from math import comb

import numpy as np
import pytest

from repro.core.counts import BicliqueQuery
from repro.core.localcounts import local_biclique_counts
from repro.core.verify import brute_force_count
from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.builders import complete_bipartite


def _brute_local(graph, p, q):
    """Reference: enumerate all bicliques, attribute to members."""
    cu = np.zeros(graph.num_u, dtype=object)
    cv = np.zeros(graph.num_v, dtype=object)
    total = 0
    for L in combinations(range(graph.num_u), p):
        common = None
        for u in L:
            nbrs = set(map(int, graph.neighbors(LAYER_U, u)))
            common = nbrs if common is None else (common & nbrs)
        if common is None or len(common) < q:
            continue
        found = comb(len(common), q)
        total += found
        for u in L:
            cu[u] += found
        share = comb(len(common) - 1, q - 1)
        for v in common:
            cv[v] += share
    return total, cu, cv


class TestLocalCounts:
    @pytest.mark.parametrize("pq", [(2, 2), (3, 2), (2, 3)])
    def test_matches_reference(self, small_random, pq):
        q = BicliqueQuery(*pq)
        res = local_biclique_counts(small_random, q)
        total, cu, cv = _brute_local(small_random, *pq)
        assert res.total == total
        assert res.counts_u.tolist() == cu.tolist()
        assert res.counts_v.tolist() == cv.tolist()

    def test_sum_identities(self, medium_power_law):
        q = BicliqueQuery(3, 2)
        res = local_biclique_counts(medium_power_law, q)
        assert sum(res.counts_u) == q.p * res.total
        assert sum(res.counts_v) == q.q * res.total

    def test_total_matches_global(self, synthetic_graph):
        q = BicliqueQuery(2, 3)
        res = local_biclique_counts(synthetic_graph, q)
        assert res.total == brute_force_count(synthetic_graph, q)

    def test_complete_graph_uniform(self):
        g = complete_bipartite(4, 5)
        res = local_biclique_counts(g, BicliqueQuery(2, 3))
        # symmetry: every U vertex participates equally
        assert len(set(res.counts_u.tolist())) == 1
        assert len(set(res.counts_v.tolist())) == 1

    def test_paper_example(self, paper_graph):
        res = local_biclique_counts(paper_graph, BicliqueQuery(3, 2))
        # two bicliques: {u1,u2,u3}x{v1,v2} and {u1,u2,u4}x{v0,v2}
        assert res.total == 2
        assert res.counts_u.tolist() == [0, 2, 2, 1, 1]
        assert res.counts_v.tolist() == [1, 1, 2, 0, 0]

    def test_top_vertices(self, paper_graph):
        res = local_biclique_counts(paper_graph, BicliqueQuery(3, 2))
        top = res.top_vertices(LAYER_U, k=2)
        assert {t[0] for t in top} == {1, 2}

    def test_forced_v_anchor(self, small_random):
        q = BicliqueQuery(2, 2)
        a = local_biclique_counts(small_random, q, layer=LAYER_U)
        b = local_biclique_counts(small_random, q, layer=LAYER_V)
        assert a.counts_u.tolist() == b.counts_u.tolist()
        assert a.counts_v.tolist() == b.counts_v.tolist()
