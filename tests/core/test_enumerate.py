"""Tests for biclique enumeration."""



from repro.core.counts import BicliqueQuery
from repro.core.enumerate import enumerate_bicliques
from repro.core.verify import brute_force_count
from repro.graph.bipartite import LAYER_U, LAYER_V


def _is_biclique(graph, left, right) -> bool:
    return all(graph.has_edge(u, v) for u in left for v in right)


class TestEnumerate:
    def test_paper_example(self, paper_graph):
        out = set(enumerate_bicliques(paper_graph, BicliqueQuery(3, 2)))
        assert out == {((1, 2, 3), (1, 2)), ((1, 2, 4), (0, 2))}

    def test_count_matches_brute_force(self, small_random):
        for pq in [(2, 2), (3, 2), (2, 3)]:
            q = BicliqueQuery(*pq)
            items = list(enumerate_bicliques(small_random, q))
            assert len(items) == brute_force_count(small_random, q)

    def test_no_duplicates(self, medium_power_law):
        q = BicliqueQuery(2, 2)
        items = list(enumerate_bicliques(medium_power_law, q))
        assert len(items) == len(set(items))

    def test_all_outputs_are_bicliques(self, small_random):
        q = BicliqueQuery(2, 3)
        for left, right in enumerate_bicliques(small_random, q):
            assert len(left) == 2 and len(right) == 3
            assert _is_biclique(small_random, left, right)

    def test_limit(self, medium_power_law):
        q = BicliqueQuery(2, 2)
        items = list(enumerate_bicliques(medium_power_law, q, limit=7))
        assert len(items) == 7

    def test_limit_larger_than_count(self, paper_graph):
        items = list(enumerate_bicliques(paper_graph, BicliqueQuery(3, 2),
                                         limit=10**6))
        assert len(items) == 2

    def test_anchor_v_orientation_preserved(self, small_random):
        """Regardless of anchoring, L holds U ids and R holds V ids."""
        q = BicliqueQuery(2, 2)
        for layer in (LAYER_U, LAYER_V):
            for left, right in enumerate_bicliques(small_random, q,
                                                   layer=layer, limit=20):
                assert _is_biclique(small_random, left, right)

    def test_empty_graph(self):
        from repro.graph.builders import empty_graph
        items = list(enumerate_bicliques(empty_graph(3, 3),
                                         BicliqueQuery(1, 1)))
        assert items == []
