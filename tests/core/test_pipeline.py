"""Tests for the end-to-end reorder -> HTB -> count pipeline."""

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.pipeline import REORDER_METHODS, run_pipeline
from repro.core.verify import brute_force_count


@pytest.fixture(scope="module")
def graph():
    from repro.graph.generators import power_law_bipartite
    return power_law_bipartite(100, 80, 450, seed=13, name="pipe")


@pytest.fixture(scope="module")
def query():
    return BicliqueQuery(3, 2)


class TestPipeline:
    @pytest.mark.parametrize("method", REORDER_METHODS)
    def test_count_invariant_under_reordering(self, graph, query, method):
        pipe = run_pipeline(graph, query, reorder=method,
                            border_iterations=8)
        assert pipe.result.count == brute_force_count(graph, query)

    def test_unknown_method(self, graph, query):
        with pytest.raises(ValueError):
            run_pipeline(graph, query, reorder="sortofrandom")

    def test_components_reported(self, graph, query):
        pipe = run_pipeline(graph, query, reorder="border",
                            border_iterations=8)
        assert pipe.reorder_seconds > 0
        assert pipe.htb_transform_seconds > 0
        assert pipe.counting_seconds > 0

    def test_none_skips_reorder(self, graph, query):
        pipe = run_pipeline(graph, query, reorder="none")
        assert pipe.reordering is None
        assert pipe.reordered_graph is graph

    def test_reuse_reordered_graph(self, graph, query):
        first = run_pipeline(graph, query, reorder="border",
                             border_iterations=8)
        again = run_pipeline(graph, BicliqueQuery(2, 2), reorder="border",
                             reordered=first.reordered_graph)
        assert again.reorder_seconds == 0.0
        assert again.result.count == brute_force_count(graph,
                                                       BicliqueQuery(2, 2))
