"""Tests for BCLP's thread scheduling model."""

import pytest

from repro.core.bclp import bclp_count, schedule_makespan
from repro.core.counts import BicliqueQuery


class TestScheduleMakespan:
    def test_single_thread_is_sum(self):
        assert schedule_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_many_threads_is_max(self):
        assert schedule_makespan([1.0, 2.0, 3.0], 10) == 3.0

    def test_list_scheduling_order(self):
        # arrival order matters: [4,1,1,1,1] on 2 threads -> 4 vs 4x1
        assert schedule_makespan([4.0, 1.0, 1.0, 1.0, 1.0], 2) == 4.0

    def test_empty(self):
        assert schedule_makespan([], 4) == 0.0


class TestBCLPCount:
    def test_count_matches_bcl(self, medium_power_law):
        from repro.core.bcl import bcl_count
        q = BicliqueQuery(3, 2)
        assert bclp_count(medium_power_law, q).count == \
            bcl_count(medium_power_law, q).count

    def test_speedup_reported(self, medium_power_law):
        res = bclp_count(medium_power_law, BicliqueQuery(3, 2), threads=8)
        assert res.breakdown["threads"] == 8.0
        assert res.breakdown["speedup_vs_sequential"] >= 1.0

    def test_more_threads_not_slower(self, medium_power_law):
        q = BicliqueQuery(3, 3)
        t1 = bclp_count(medium_power_law, q, threads=1)
        t16 = bclp_count(medium_power_law, q, threads=16)
        # modelled makespan shrinks (or stays equal) with more threads
        assert t16.breakdown["makespan_seconds"] <= \
            t1.breakdown["makespan_seconds"] * 1.05

    def test_wall_time_is_makespan_plus_prep(self, medium_power_law):
        res = bclp_count(medium_power_law, BicliqueQuery(2, 2))
        assert res.wall_seconds == pytest.approx(
            res.breakdown["preprocessing_seconds"]
            + res.breakdown["makespan_seconds"])
