"""Tests for the sampling estimator."""

import numpy as np

from repro.core.counts import BicliqueQuery
from repro.core.estimate import estimate_count
from repro.core.verify import brute_force_count


class TestEstimate:
    def test_exact_when_samples_cover_population(self, small_random):
        q = BicliqueQuery(2, 2)
        res = estimate_count(small_random, q, samples=10**6)
        assert res.estimate == brute_force_count(small_random, q)
        assert res.std_error == 0.0

    def test_deterministic_given_seed(self, medium_power_law):
        q = BicliqueQuery(2, 2)
        a = estimate_count(medium_power_law, q, samples=10, seed=42)
        b = estimate_count(medium_power_law, q, samples=10, seed=42)
        assert a.estimate == b.estimate

    def test_unbiased_over_seeds(self, medium_power_law):
        """Mean over many seeds approaches the truth (HT unbiasedness)."""
        q = BicliqueQuery(2, 2)
        truth = brute_force_count(medium_power_law, q)
        estimates = [estimate_count(medium_power_law, q, samples=24,
                                    seed=s).estimate for s in range(40)]
        mean = float(np.mean(estimates))
        assert abs(mean - truth) / truth < 0.25

    def test_error_shrinks_with_samples(self, medium_power_law):
        q = BicliqueQuery(2, 2)
        truth = brute_force_count(medium_power_law, q)
        few = [estimate_count(medium_power_law, q, samples=4,
                              seed=s).relative_error(truth)
               for s in range(12)]
        many = [estimate_count(medium_power_law, q, samples=48,
                               seed=s).relative_error(truth)
                for s in range(12)]
        assert float(np.mean(many)) <= float(np.mean(few)) + 0.05

    def test_empty_graph(self):
        from repro.graph.builders import empty_graph
        res = estimate_count(empty_graph(4, 4), BicliqueQuery(2, 2))
        assert res.estimate == 0.0 and res.population == 0

    def test_relative_error_zero_truth(self, small_random):
        res = estimate_count(small_random, BicliqueQuery(2, 2), samples=4)
        assert res.relative_error(0) == abs(res.estimate)
