"""Tests for the brute-force ground-truth counter itself."""

from math import comb

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.verify import brute_force_count, brute_force_count_both_anchors
from repro.graph.bipartite import LAYER_V
from repro.graph.builders import complete_bipartite, empty_graph
from repro.graph.generators import planted_bicliques, star_bipartite


class TestClosedForms:
    @pytest.mark.parametrize("p,q", [(1, 1), (2, 2), (2, 3), (3, 2), (4, 5)])
    def test_complete_bipartite(self, p, q):
        g = complete_bipartite(4, 5)
        assert brute_force_count(g, BicliqueQuery(p, q)) == \
            comb(4, p) * comb(5, q)

    def test_paper_example2(self, paper_graph):
        """Figure 1(a) contains exactly two (3,2)-bicliques."""
        assert brute_force_count(paper_graph, BicliqueQuery(3, 2)) == 2

    def test_star(self):
        g = star_bipartite(6, center_on_u=True)
        assert brute_force_count(g, BicliqueQuery(1, 3)) == comb(6, 3)
        assert brute_force_count(g, BicliqueQuery(2, 1)) == 0

    def test_planted(self):
        g = planted_bicliques(20, 20, [(4, 3), (3, 4)], seed=0)
        q = BicliqueQuery(2, 2)
        expected = comb(4, 2) * comb(3, 2) + comb(3, 2) * comb(4, 2)
        assert brute_force_count(g, q) == expected

    def test_empty_graph(self):
        assert brute_force_count(empty_graph(5, 5), BicliqueQuery(1, 1)) == 0

    def test_p_larger_than_layer(self):
        g = complete_bipartite(2, 2)
        assert brute_force_count(g, BicliqueQuery(3, 1)) == 0

    def test_edges_are_11_bicliques(self, paper_graph):
        assert brute_force_count(paper_graph, BicliqueQuery(1, 1)) == \
            paper_graph.num_edges


class TestAnchors:
    def test_both_anchors_agree(self, small_random):
        for pq in [(2, 2), (3, 2), (2, 3)]:
            brute_force_count_both_anchors(small_random, BicliqueQuery(*pq))

    def test_v_anchor_value(self, paper_graph):
        assert brute_force_count(paper_graph, BicliqueQuery(3, 2),
                                 anchor=LAYER_V) == 2
