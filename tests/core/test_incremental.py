"""Tests for dynamic butterfly maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import DynamicButterflyCounter
from repro.errors import GraphValidationError
from repro.graph.builders import complete_bipartite
from repro.graph.generators import random_bipartite


class TestDynamicButterflies:
    def test_from_graph_matches_static(self, small_random):
        counter = DynamicButterflyCounter.from_graph(small_random)
        assert counter.butterflies == counter.recount()

    def test_insert_matches_recount(self):
        rng = np.random.default_rng(3)
        counter = DynamicButterflyCounter.empty(12, 12)
        for _ in range(60):
            u = int(rng.integers(0, 12))
            v = int(rng.integers(0, 12))
            if not counter.has_edge(u, v):
                counter.insert(u, v)
                assert counter.butterflies == counter.recount()

    def test_delete_matches_recount(self):
        g = random_bipartite(10, 10, 50, seed=4)
        counter = DynamicButterflyCounter.from_graph(g)
        rng = np.random.default_rng(5)
        edges = list(g.edges())
        rng.shuffle(edges)
        for u, v in edges[:25]:
            counter.delete(u, int(v))
            assert counter.butterflies == counter.recount()

    def test_insert_delete_roundtrip(self):
        g = random_bipartite(8, 8, 30, seed=6)
        counter = DynamicButterflyCounter.from_graph(g)
        before = counter.butterflies
        created = counter.insert(0, 7) if not counter.has_edge(0, 7) else 0
        if counter.has_edge(0, 7):
            destroyed = counter.delete(0, 7)
            assert destroyed == created or before == counter.butterflies
        assert counter.butterflies == counter.recount()

    def test_complete_graph_formula(self):
        from math import comb
        counter = DynamicButterflyCounter.from_graph(complete_bipartite(4, 4))
        assert counter.butterflies == comb(4, 2) ** 2

    def test_duplicate_insert_rejected(self):
        counter = DynamicButterflyCounter.empty(2, 2)
        counter.insert(0, 0)
        with pytest.raises(GraphValidationError):
            counter.insert(0, 0)

    def test_missing_delete_rejected(self):
        counter = DynamicButterflyCounter.empty(2, 2)
        with pytest.raises(GraphValidationError):
            counter.delete(0, 0)

    def test_out_of_range(self):
        counter = DynamicButterflyCounter.empty(2, 2)
        with pytest.raises(GraphValidationError):
            counter.insert(5, 0)

    def test_update_counter(self):
        counter = DynamicButterflyCounter.empty(3, 3)
        counter.insert(0, 0)
        counter.insert(1, 1)
        assert counter.updates_applied == 2


@st.composite
def update_sequences(draw):
    """Layer sizes plus an arbitrary stream of (u, v) update targets."""
    num_u = draw(st.integers(2, 6))
    num_v = draw(st.integers(2, 6))
    ops = draw(st.lists(
        st.tuples(st.integers(0, num_u - 1), st.integers(0, num_v - 1)),
        min_size=1, max_size=40))
    return num_u, num_v, ops


class TestDynamicButterflyProperties:
    """Randomized update sequences against recount-from-scratch — the
    streaming-maintenance invariant ([37]/[40]) the counter exists for."""

    @settings(max_examples=40, deadline=None)
    @given(update_sequences())
    def test_toggle_sequence_matches_recount(self, seq):
        """Interleaved inserts and deletes (toggle each touched pair)
        keep the maintained count equal to an exact recount at every
        step."""
        num_u, num_v, ops = seq
        counter = DynamicButterflyCounter.empty(num_u, num_v)
        for u, v in ops:
            if counter.has_edge(u, v):
                destroyed = counter.delete(u, v)
                assert destroyed >= 0
            else:
                created = counter.insert(u, v)
                assert created >= 0
            assert counter.butterflies == counter.recount()

    @settings(max_examples=25, deadline=None)
    @given(update_sequences())
    def test_delete_then_reinsert_roundtrip(self, seq):
        """Deleting any present edge and reinserting it restores the
        count, and both updates report the same delta."""
        num_u, num_v, ops = seq
        counter = DynamicButterflyCounter.empty(num_u, num_v)
        for u, v in ops:
            if not counter.has_edge(u, v):
                counter.insert(u, v)
        edges = [(u, v) for u in range(num_u) for v in counter.adj_u[u]]
        for u, v in edges:
            before = counter.butterflies
            destroyed = counter.delete(u, v)
            recreated = counter.insert(u, v)
            assert destroyed == recreated
            assert counter.butterflies == before
        assert counter.butterflies == counter.recount()

    @settings(max_examples=25, deadline=None)
    @given(update_sequences(), st.integers(0, 2 ** 31 - 1))
    def test_teardown_to_empty(self, seq, seed):
        """Deleting every edge in random order ends at zero butterflies,
        matching recount at each step."""
        num_u, num_v, ops = seq
        counter = DynamicButterflyCounter.empty(num_u, num_v)
        for u, v in ops:
            if not counter.has_edge(u, v):
                counter.insert(u, v)
        edges = [(u, v) for u in range(num_u) for v in counter.adj_u[u]]
        rng = np.random.default_rng(seed)
        rng.shuffle(edges)
        for u, v in edges:
            counter.delete(u, v)
            assert counter.butterflies == counter.recount()
        assert counter.butterflies == 0
