"""Tests for dynamic butterfly maintenance."""

import numpy as np
import pytest

from repro.core.incremental import DynamicButterflyCounter
from repro.errors import GraphValidationError
from repro.graph.builders import complete_bipartite
from repro.graph.generators import random_bipartite


class TestDynamicButterflies:
    def test_from_graph_matches_static(self, small_random):
        counter = DynamicButterflyCounter.from_graph(small_random)
        assert counter.butterflies == counter.recount()

    def test_insert_matches_recount(self):
        rng = np.random.default_rng(3)
        counter = DynamicButterflyCounter.empty(12, 12)
        for _ in range(60):
            u = int(rng.integers(0, 12))
            v = int(rng.integers(0, 12))
            if not counter.has_edge(u, v):
                counter.insert(u, v)
                assert counter.butterflies == counter.recount()

    def test_delete_matches_recount(self):
        g = random_bipartite(10, 10, 50, seed=4)
        counter = DynamicButterflyCounter.from_graph(g)
        rng = np.random.default_rng(5)
        edges = list(g.edges())
        rng.shuffle(edges)
        for u, v in edges[:25]:
            counter.delete(u, int(v))
            assert counter.butterflies == counter.recount()

    def test_insert_delete_roundtrip(self):
        g = random_bipartite(8, 8, 30, seed=6)
        counter = DynamicButterflyCounter.from_graph(g)
        before = counter.butterflies
        created = counter.insert(0, 7) if not counter.has_edge(0, 7) else 0
        if counter.has_edge(0, 7):
            destroyed = counter.delete(0, 7)
            assert destroyed == created or before == counter.butterflies
        assert counter.butterflies == counter.recount()

    def test_complete_graph_formula(self):
        from math import comb
        counter = DynamicButterflyCounter.from_graph(complete_bipartite(4, 4))
        assert counter.butterflies == comb(4, 2) ** 2

    def test_duplicate_insert_rejected(self):
        counter = DynamicButterflyCounter.empty(2, 2)
        counter.insert(0, 0)
        with pytest.raises(GraphValidationError):
            counter.insert(0, 0)

    def test_missing_delete_rejected(self):
        counter = DynamicButterflyCounter.empty(2, 2)
        with pytest.raises(GraphValidationError):
            counter.delete(0, 0)

    def test_out_of_range(self):
        counter = DynamicButterflyCounter.empty(2, 2)
        with pytest.raises(GraphValidationError):
            counter.insert(5, 0)

    def test_update_counter(self):
        counter = DynamicButterflyCounter.empty(3, 3)
        counter.insert(0, 0)
        counter.insert(1, 1)
        assert counter.updates_applied == 2
