"""Tests for the GPU baseline (GBL)."""


from repro.core.counts import BicliqueQuery
from repro.core.gbl import gbl_count
from repro.gpu.device import small_test_device


class TestGBL:
    def test_paper_example(self, paper_graph):
        assert gbl_count(paper_graph, BicliqueQuery(3, 2)).count == 2

    def test_metrics_populated(self, medium_power_law):
        res = gbl_count(medium_power_law, BicliqueQuery(3, 2))
        assert res.metrics.global_transactions > 0
        assert res.metrics.comparisons > 0
        assert res.device_seconds > 0

    def test_no_stealing(self, medium_power_law):
        res = gbl_count(medium_power_law, BicliqueQuery(3, 2))
        assert res.steals == 0

    def test_deterministic(self, medium_power_law):
        q = BicliqueQuery(2, 3)
        a = gbl_count(medium_power_law, q)
        b = gbl_count(medium_power_law, q)
        assert a.makespan_cycles == b.makespan_cycles

    def test_custom_device(self, medium_power_law):
        res = gbl_count(medium_power_law, BicliqueQuery(2, 2),
                        spec=small_test_device(), num_blocks=2)
        assert res.count > 0

    def test_imbalance_reported(self, medium_power_law):
        res = gbl_count(medium_power_law, BicliqueQuery(3, 2))
        assert res.breakdown["imbalance"] >= 1.0
