"""Tests for the Basic model."""

from repro.core.basic import basic_count
from repro.core.counts import BicliqueQuery
from repro.core.verify import brute_force_count


class TestBasic:
    def test_paper_example(self, paper_graph):
        assert basic_count(paper_graph, BicliqueQuery(3, 2)).count == 2

    def test_matches_brute_force(self, synthetic_graph):
        for pq in [(2, 2), (3, 2), (2, 4)]:
            q = BicliqueQuery(*pq)
            assert basic_count(synthetic_graph, q).count == \
                brute_force_count(synthetic_graph, q)

    def test_always_anchors_u(self, paper_graph):
        res = basic_count(paper_graph, BicliqueQuery(3, 2))
        assert res.anchored_layer == "U"

    def test_p_equals_one(self, paper_graph):
        from math import comb
        res = basic_count(paper_graph, BicliqueQuery(1, 2))
        expected = sum(comb(paper_graph.degree("U", u), 2)
                       for u in range(paper_graph.num_u))
        assert res.count == expected
