"""Cross-algorithm agreement: every counter must match brute force on a
grid of graphs and queries.  This is the central correctness battery."""

import pytest

from repro.core.basic import basic_count
from repro.core.bcl import bcl_count
from repro.core.bclp import bclp_count
from repro.core.counts import BicliqueQuery
from repro.core.gbc import GBCOptions, gbc_count, gbc_variant
from repro.core.gbl import gbl_count
from repro.core.verify import brute_force_count
from repro.graph.builders import complete_bipartite, empty_graph, from_adjacency
from repro.graph.generators import (
    paper_synthetic,
    planted_bicliques,
    power_law_bipartite,
    random_bipartite,
    star_bipartite,
)

GRAPHS = {
    "fig1a": from_adjacency({0: [0, 1], 1: [0, 1, 2], 2: [0, 1, 2, 4],
                             3: [1, 2, 3], 4: [0, 2, 3, 4]},
                            num_u=5, num_v=5),
    "random": random_bipartite(25, 20, 100, seed=1),
    "power-law": power_law_bipartite(40, 30, 160, seed=2),
    "synthetic": paper_synthetic(30, 26, mean_degree=6, locality=12, seed=3),
    "planted": planted_bicliques(16, 16, [(4, 3), (3, 3)], noise_edges=12,
                                 seed=4),
    "complete": complete_bipartite(5, 4),
    "star": star_bipartite(8),
    "empty": empty_graph(6, 6),
}

QUERIES = [BicliqueQuery(*pq) for pq in
           [(1, 1), (1, 3), (2, 1), (2, 2), (2, 3), (3, 2), (3, 3), (4, 2)]]

ALGORITHMS = {
    "basic": lambda g, q: basic_count(g, q).count,
    "bcl": lambda g, q: bcl_count(g, q).count,
    "bclp": lambda g, q: bclp_count(g, q, threads=4).count,
    "gbl": lambda g, q: gbl_count(g, q).count,
    "gbc": lambda g, q: gbc_count(g, q).count,
    "gbc-nh": lambda g, q: gbc_count(g, q, options=gbc_variant("NH")).count,
    "gbc-nb": lambda g, q: gbc_count(g, q, options=gbc_variant("NB")).count,
    "gbc-nw": lambda g, q: gbc_count(g, q, options=gbc_variant("NW")).count,
}


@pytest.fixture(scope="module")
def truths():
    return {(name, str(q)): brute_force_count(g, q)
            for name, g in GRAPHS.items() for q in QUERIES}


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_algorithm_matches_brute_force(algo, graph_name, truths):
    g = GRAPHS[graph_name]
    fn = ALGORITHMS[algo]
    for q in QUERIES:
        assert fn(g, q) == truths[(graph_name, str(q))], \
            f"{algo} wrong on {graph_name} {q}"


@pytest.mark.parametrize("layer", ["U", "V"])
def test_forced_anchor_agreement(layer, truths):
    """Forcing either anchor layer must not change any count."""
    g = GRAPHS["power-law"]
    for q in QUERIES:
        assert bcl_count(g, q, layer=layer).count == \
            truths[("power-law", str(q))]
        assert gbc_count(g, q, layer=layer).count == \
            truths[("power-law", str(q))]


def test_gbc_small_batch_limit():
    """Tiny BFS batches exercise the batching boundary logic."""
    g = GRAPHS["power-law"]
    q = BicliqueQuery(3, 2)
    expected = brute_force_count(g, q)
    for limit in (1, 2, 3, 7):
        res = gbc_count(g, q, options=GBCOptions(batch_limit=limit))
        assert res.count == expected


def test_gbc_custom_blocks():
    g = GRAPHS["random"]
    q = BicliqueQuery(2, 2)
    expected = brute_force_count(g, q)
    for blocks in (1, 3, 17):
        res = gbc_count(g, q, options=GBCOptions(num_blocks=blocks))
        assert res.count == expected
