"""Tests for BCL and its Fig. 1(b) instrumentation."""

import pytest

from repro.core.bcl import bcl_count, bcl_per_root_profile
from repro.core.counts import BicliqueQuery


class TestBCLResult:
    def test_count_on_paper_graph(self, paper_graph):
        assert bcl_count(paper_graph, BicliqueQuery(3, 2)).count == 2

    def test_breakdown_keys(self, medium_power_law):
        res = bcl_count(medium_power_law, BicliqueQuery(3, 3))
        for key in ("comp_s_seconds", "comp_h_seconds", "other_seconds",
                    "intersection_fraction"):
            assert key in res.breakdown

    def test_breakdown_sums_to_total(self, medium_power_law):
        res = bcl_count(medium_power_law, BicliqueQuery(3, 3))
        total = (res.breakdown["comp_s_seconds"]
                 + res.breakdown["comp_h_seconds"]
                 + res.breakdown["other_seconds"])
        assert total == pytest.approx(res.wall_seconds, rel=0.05)

    def test_intersections_dominate(self, medium_power_law):
        """The Fig. 1(b) claim: intersections are the bulk of BCL time."""
        res = bcl_count(medium_power_law, BicliqueQuery(3, 3))
        assert res.breakdown["intersection_fraction"] > 0.5

    def test_comparison_counts_positive(self, medium_power_law):
        res = bcl_count(medium_power_law, BicliqueQuery(3, 3))
        assert res.extras["comparisons_two_hop"] > 0
        assert res.extras["comparisons_one_hop"] > 0


class TestPerRootProfile:
    def test_counts_sum_to_total(self, medium_power_law):
        q = BicliqueQuery(3, 2)
        profile = bcl_per_root_profile(medium_power_law, q)
        assert sum(profile.per_root_counts) == \
            bcl_count(medium_power_law, q).count

    def test_per_root_lists_aligned(self, medium_power_law):
        profile = bcl_per_root_profile(medium_power_law, BicliqueQuery(2, 2))
        assert len(profile.per_root_seconds) == len(profile.per_root_counts)
        assert len(profile.root_ids) == len(profile.per_root_counts)

    def test_fraction_bounds(self, medium_power_law):
        profile = bcl_per_root_profile(medium_power_law, BicliqueQuery(2, 2))
        assert 0.0 <= profile.fraction_intersections() <= 1.0
