"""Tests for the search-tree profiler."""


from repro.core.counts import BicliqueQuery
from repro.core.profile import profile_search
from repro.core.verify import brute_force_count
from repro.graph.generators import paper_synthetic


class TestProfileSearch:
    def test_leaf_count_matches_structure(self, medium_power_law):
        q = BicliqueQuery(3, 2)
        profile = profile_search(medium_power_law, q)
        # depth p level exists whenever bicliques exist
        if brute_force_count(medium_power_law, q) > 0:
            assert profile.levels[-1].leaves > 0

    def test_depth_bounded_by_p(self, medium_power_law):
        q = BicliqueQuery(3, 2)
        profile = profile_search(medium_power_law, q)
        # anchoring may swap p and q; depth is bounded by max(p, q)
        assert len(profile.levels) <= max(q.p, q.q) + 1

    def test_mean_cl_shrinks_with_depth(self):
        """The §IV claim: candidate sets shrink as the search deepens."""
        g = paper_synthetic(120, 100, mean_degree=10, locality=24, seed=31)
        profile = profile_search(g, BicliqueQuery(4, 3))
        assert profile.shrink_ratio() < 1.0

    def test_totals_consistent(self, medium_power_law):
        q = BicliqueQuery(3, 2)
        profile = profile_search(medium_power_law, q)
        assert profile.total_nodes() >= profile.roots
        for lv in profile.levels:
            assert lv.nodes >= 0 and lv.pruned_cr >= 0

    def test_empty_graph(self):
        from repro.graph.builders import empty_graph
        profile = profile_search(empty_graph(4, 4), BicliqueQuery(2, 2))
        assert profile.roots == 0
        assert profile.total_nodes() == 0
