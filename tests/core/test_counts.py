"""Tests for query/result types and anchoring."""

import pytest

from repro.core.counts import BicliqueQuery, anchored_view
from repro.errors import QueryError
from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.builders import from_adjacency


class TestBicliqueQuery:
    def test_valid(self):
        q = BicliqueQuery(3, 4)
        assert q.p == 3 and q.q == 4

    @pytest.mark.parametrize("p,q", [(0, 1), (1, 0), (-1, 2)])
    def test_invalid(self, p, q):
        with pytest.raises(QueryError):
            BicliqueQuery(p, q)

    def test_swapped(self):
        assert BicliqueQuery(2, 5).swapped() == BicliqueQuery(5, 2)

    def test_str(self):
        assert str(BicliqueQuery(3, 4)) == "(3,4)"


class TestAnchoredView:
    def test_forced_u(self, paper_graph):
        g, p, q, layer = anchored_view(paper_graph, BicliqueQuery(3, 2),
                                       layer=LAYER_U)
        assert layer == LAYER_U and (p, q) == (3, 2)
        assert g.num_u == paper_graph.num_u

    def test_forced_v_swaps(self, paper_graph):
        g, p, q, layer = anchored_view(paper_graph, BicliqueQuery(3, 2),
                                       layer=LAYER_V)
        assert layer == LAYER_V and (p, q) == (2, 3)
        assert g.num_u == paper_graph.num_v

    def test_auto_picks_cheap_layer(self):
        # V is one big hub: anchor must go to V
        g = from_adjacency({u: [0] for u in range(10)})
        _, _, _, layer = anchored_view(g, BicliqueQuery(2, 2))
        assert layer == LAYER_V
