"""Tests for the wedge-based butterfly counter."""

from math import comb

from repro.core.butterfly import butterfly_count
from repro.core.counts import BicliqueQuery
from repro.core.verify import brute_force_count
from repro.graph.builders import complete_bipartite, empty_graph
from repro.graph.generators import star_bipartite


class TestButterfly:
    def test_complete(self):
        g = complete_bipartite(4, 4)
        assert butterfly_count(g).count == comb(4, 2) * comb(4, 2)

    def test_star_has_none(self):
        assert butterfly_count(star_bipartite(10)).count == 0

    def test_empty(self):
        assert butterfly_count(empty_graph(4, 4)).count == 0

    def test_matches_brute_force(self, small_random, medium_power_law):
        for g in (small_random, medium_power_law):
            assert butterfly_count(g).count == \
                brute_force_count(g, BicliqueQuery(2, 2))

    def test_matches_gbc(self, small_random):
        from repro.core.gbc import gbc_count
        assert butterfly_count(small_random).count == \
            gbc_count(small_random, BicliqueQuery(2, 2)).count
