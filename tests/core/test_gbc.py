"""Tests for GBC: options, variants, and the paper's qualitative claims."""

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.gbc import GBCOptions, gbc_count, gbc_variant
from repro.core.gbl import gbl_count
from repro.errors import QueryError
from repro.gpu.device import rtx_3090, small_test_device
from repro.graph.generators import power_law_bipartite


@pytest.fixture(scope="module")
def workload():
    return power_law_bipartite(150, 100, 700, seed=12, name="gbc-load")


@pytest.fixture(scope="module")
def query():
    return BicliqueQuery(3, 3)


class TestOptions:
    def test_defaults(self):
        opts = GBCOptions()
        assert opts.hybrid and opts.use_htb and opts.balance == "joint"
        assert opts.variant_name == "GBC"

    def test_variant_names(self):
        assert gbc_variant("NH").variant_name == "GBC-NH"
        assert gbc_variant("NB").variant_name == "GBC-NB"
        assert gbc_variant("NW").variant_name == "GBC-NW"

    def test_unknown_variant(self):
        with pytest.raises(QueryError):
            gbc_variant("XX")

    def test_bad_balance(self):
        with pytest.raises(QueryError):
            GBCOptions(balance="magic")


class TestDeviceResult:
    def test_fields_populated(self, workload, query):
        res = gbc_count(workload, query)
        assert res.count > 0
        assert res.device_seconds > 0
        assert res.makespan_cycles > 0
        assert res.metrics.intersection_calls > 0
        assert res.peak_working_set_bytes > 0
        assert "htb_transform_seconds" in res.breakdown

    def test_deterministic(self, workload, query):
        a = gbc_count(workload, query)
        b = gbc_count(workload, query)
        assert a.count == b.count
        assert a.makespan_cycles == b.makespan_cycles
        assert a.metrics.global_transactions == b.metrics.global_transactions


class TestPaperClaims:
    def test_gbc_beats_gbl_in_device_time(self, workload, query):
        """Fig. 7: GBC outperforms the naive GPU baseline."""
        gbc = gbc_count(workload, query)
        gbl = gbl_count(workload, query)
        assert gbc.device_seconds < gbl.device_seconds

    def test_htb_reduces_transactions(self, workload, query):
        """§V-A: HTB slashes global-memory transactions vs CSR search."""
        full = gbc_count(workload, query)
        nb = gbc_count(workload, query, options=gbc_variant("NB"))
        assert full.metrics.global_transactions < nb.metrics.global_transactions

    def test_hybrid_raises_utilization(self, workload, query):
        """§IV: hybrid DFS-BFS keeps more lanes busy than pure DFS."""
        full = gbc_count(workload, query)
        nh = gbc_count(workload, query, options=gbc_variant("NH"))
        assert full.metrics.utilization > nh.metrics.utilization

    def test_hybrid_uses_more_memory(self, workload, query):
        """Fig. 11: the BFS staging costs extra working-set memory."""
        full = gbc_count(workload, query)
        nh = gbc_count(workload, query, options=gbc_variant("NH"))
        assert full.peak_working_set_bytes >= nh.peak_working_set_bytes

    def test_balancing_reduces_makespan(self, workload, query):
        """§V-C: joint balancing beats the naive split."""
        full = gbc_count(workload, query)
        nw = gbc_count(workload, query, options=gbc_variant("NW"))
        assert full.makespan_cycles <= nw.makespan_cycles

    def test_all_variants_slower_or_equal(self, workload, query):
        """Fig. 9: every ablation costs device time."""
        full = gbc_count(workload, query)
        for name in ("NH", "NB", "NW"):
            crippled = gbc_count(workload, query, options=gbc_variant(name))
            assert crippled.device_seconds >= full.device_seconds * 0.99, name


class TestSharedMemoryBatching:
    def test_small_shared_memory_limits_batches(self, workload, query):
        """A device with tiny shared memory must still count correctly."""
        tiny = small_test_device(shared_mem=256)
        res = gbc_count(workload, query, spec=tiny)
        assert res.count == gbc_count(workload, query).count

    def test_shared_peak_bounded_by_buffer(self, workload, query):
        spec = rtx_3090()
        res = gbc_count(workload, query, spec=spec)
        assert res.metrics.shared_bytes_peak <= spec.shared_mem_per_block * 2
