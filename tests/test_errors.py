"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.GraphFormatError,
        errors.GraphValidationError,
        errors.QueryError,
        errors.UnknownMethodError,
        errors.PlanError,
        errors.DeviceError,
        errors.SharedMemoryExceeded,
        errors.DeviceMemoryExceeded,
        errors.PartitionError,
        errors.ReorderError,
        errors.ServiceError,
        errors.QueueFullError,
        errors.DeadlineExceededError,
        errors.ServiceClosedError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_memory_errors_are_device_errors(self):
        assert issubclass(errors.SharedMemoryExceeded, errors.DeviceError)
        assert issubclass(errors.DeviceMemoryExceeded, errors.DeviceError)

    def test_serving_failures_are_service_errors(self):
        assert issubclass(errors.QueueFullError, errors.ServiceError)
        assert issubclass(errors.DeadlineExceededError, errors.ServiceError)
        assert issubclass(errors.ServiceClosedError, errors.ServiceError)

    def test_query_error_is_a_value_error(self):
        """Malformed query specs are bad values; both idioms must work."""
        assert issubclass(errors.QueryError, ValueError)

    def test_unknown_method_is_a_query_error(self):
        """A bad method name is a bad query value — catchable as
        QueryError, ValueError, or by its own name at the boundary
        (Scheduler.submit, run_method, the planner) that raised it."""
        assert issubclass(errors.UnknownMethodError, errors.QueryError)
        assert issubclass(errors.UnknownMethodError, ValueError)

    def test_single_catch_at_api_boundary(self):
        """Library misuse is catchable with one except clause."""
        from repro.core.counts import BicliqueQuery
        with pytest.raises(errors.ReproError):
            BicliqueQuery(0, 3)
        from repro.graph.builders import from_edges
        with pytest.raises(errors.ReproError):
            from_edges(1, 1, [(5, 5)])
