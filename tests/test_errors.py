"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.GraphFormatError,
        errors.GraphValidationError,
        errors.QueryError,
        errors.DeviceError,
        errors.SharedMemoryExceeded,
        errors.DeviceMemoryExceeded,
        errors.PartitionError,
        errors.ReorderError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_memory_errors_are_device_errors(self):
        assert issubclass(errors.SharedMemoryExceeded, errors.DeviceError)
        assert issubclass(errors.DeviceMemoryExceeded, errors.DeviceError)

    def test_single_catch_at_api_boundary(self):
        """Library misuse is catchable with one except clause."""
        from repro.core.counts import BicliqueQuery
        with pytest.raises(errors.ReproError):
            BicliqueQuery(0, 3)
        from repro.graph.builders import from_edges
        with pytest.raises(errors.ReproError):
            from_edges(1, 1, [(5, 5)])
