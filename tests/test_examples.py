"""Smoke tests for the runnable examples shipped under examples/.

The quickstart is exercised by CI as a standalone step; the batch-query
example is smoke-run here so tier-1 catches a broken example before CI
does.  Each example asserts its own invariants internally — a clean run
is the test.
"""

import runpy
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def test_batch_queries_example_runs(capsys):
    runpy.run_path(str(EXAMPLES / "batch_queries.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "batch results" in out
    assert "cache hit(s)" in out
    assert "verified" in out


def test_serve_demo_example_runs(capsys):
    runpy.run_path(str(EXAMPLES / "serve_demo.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "served 200 queries from 8 client threads" in out
    assert "telemetry snapshot" in out
    assert "bit-identical to direct runs" in out
    assert "micro-batching" in out
