"""Tests for SIMT slot scheduling arithmetic (the §IV formulas)."""

from repro.gpu.device import rtx_3090
from repro.gpu.metrics import KernelMetrics
from repro.gpu.simt import record_work, slot_rounds, warp_chunks


class TestSlotRounds:
    def test_exact_fit(self):
        sr = slot_rounds(64, warps=2, warp_size=32)
        assert sr.rounds == 1
        assert sr.utilization == 1.0

    def test_partial_fill(self):
        sr = slot_rounds(10, warps=2, warp_size=32)
        assert sr.rounds == 1
        assert sr.total_slots == 64
        assert sr.active_slots == 10

    def test_multiple_rounds(self):
        sr = slot_rounds(100, warps=1, warp_size=32)
        assert sr.rounds == 4

    def test_zero_work(self):
        sr = slot_rounds(0, warps=4)
        assert sr.rounds == 0 and sr.utilization == 1.0

    def test_paper_formula_dfs_vs_bfs(self):
        """§IV: m keys, k warps, n children.
        DFS: ceil(m/32k) rounds per child -> n*ceil(m/32k) total.
        BFS: ceil(m*n/32k) rounds.  For m < 32k the BFS round count is
        strictly smaller for n > 1."""
        m, k, n = 10, 2, 6
        dfs_rounds = n * slot_rounds(m, k).rounds
        bfs_rounds = slot_rounds(m * n, k).rounds
        assert dfs_rounds == 6
        assert bfs_rounds == 1
        assert bfs_rounds < dfs_rounds

    def test_figure3_example(self):
        """Fig. 3: 4 threads/warp, |CL|=2, 2 children: DFS needs 2 rounds
        at 50% utilisation; hybrid needs 1 round at 100%."""
        dfs = slot_rounds(2, warps=1, warp_size=4)
        hybrid = slot_rounds(4, warps=1, warp_size=4)
        assert dfs.rounds * 2 == 2          # one round per child
        assert dfs.utilization == 0.5
        assert hybrid.rounds == 1
        assert hybrid.utilization == 1.0


class TestRecordWork:
    def test_metrics_updated(self):
        m = KernelMetrics()
        record_work(m, rtx_3090(), work_items=10, warps=1)
        assert m.thread_slots_active == 10
        assert m.thread_slots_total == 32
        assert m.utilization == 10 / 32


class TestWarpChunks:
    def test_chunking(self):
        assert list(warp_chunks(70, 32)) == [(0, 32), (32, 64), (64, 70)]

    def test_empty(self):
        assert list(warp_chunks(0)) == []
