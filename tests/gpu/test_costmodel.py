"""Tests for the cycle cost model."""

import pytest

from repro.gpu.costmodel import effective_cycles, kernel_cycles, kernel_seconds
from repro.gpu.device import rtx_3090
from repro.gpu.metrics import KernelMetrics


def _metrics(**kw):
    m = KernelMetrics()
    for k, v in kw.items():
        setattr(m, k, v)
    return m


class TestKernelCycles:
    def test_zero(self):
        assert kernel_cycles(KernelMetrics(), rtx_3090()) == 0.0

    def test_linear_components(self):
        spec = rtx_3090()
        m = _metrics(global_transactions=2, comparisons=10, atomics=1)
        expected = (2 * spec.global_latency_cycles
                    + 10 * spec.cycles_per_op
                    + spec.atomic_latency_cycles)
        assert kernel_cycles(m, spec) == expected

    def test_shared_cheaper_than_global(self):
        spec = rtx_3090()
        g = _metrics(global_transactions=100)
        s = _metrics(shared_accesses=100)
        assert kernel_cycles(s, spec) < kernel_cycles(g, spec)


class TestEffectiveCycles:
    def test_full_utilization_matches_plain(self):
        spec = rtx_3090()
        m = _metrics(comparisons=100, thread_slots_total=32,
                     thread_slots_active=32)
        assert effective_cycles(m, spec) == kernel_cycles(m, spec)

    def test_low_utilization_inflates_compute(self):
        spec = rtx_3090()
        m = _metrics(comparisons=100, thread_slots_total=64,
                     thread_slots_active=16)
        assert effective_cycles(m, spec) == pytest.approx(400.0)

    def test_memory_not_inflated(self):
        spec = rtx_3090()
        m = _metrics(global_transactions=3, thread_slots_total=64,
                     thread_slots_active=1)
        assert effective_cycles(m, spec) == 3 * spec.global_latency_cycles


class TestKernelSeconds:
    def test_scaling_with_blocks(self):
        spec = rtx_3090()
        m = _metrics(comparisons=spec.clock_hz)  # one second of serial ops
        assert kernel_seconds(m, spec, parallel_blocks=1) == pytest.approx(1.0)
        assert kernel_seconds(m, spec, parallel_blocks=10) == pytest.approx(0.1)
