"""Tests for the hash-based intersection comparator."""

import numpy as np

from repro.gpu.device import rtx_3090
from repro.gpu.hashjoin import HashedList, build_hash_table, hash_intersect
from repro.gpu.intersect import binary_search_intersect
from repro.gpu.metrics import KernelMetrics


def _arr(*xs):
    return np.asarray(xs, dtype=np.int64)


class TestHashedList:
    def test_all_values_stored(self):
        vals = _arr(1, 5, 9, 33, 64, 65)
        table = HashedList(vals)
        stored = sorted(x for x in table.buckets.tolist() if x >= 0)
        assert stored == vals.tolist()

    def test_bucket_placement(self):
        table = HashedList(_arr(0, 7, 14))
        for x in (0, 7, 14):
            b = x % table.num_buckets
            row = table.buckets[b * table.slots_per_bucket:
                                (b + 1) * table.slots_per_bucket]
            assert x in row.tolist()

    def test_empty(self):
        table = HashedList(_arr())
        assert table.table_words >= 1


class TestHashIntersect:
    def test_matches_reference(self):
        rng = np.random.default_rng(7)
        spec = rtx_3090()
        for _ in range(40):
            a = np.unique(rng.integers(0, 600, rng.integers(0, 60)))
            b = np.unique(rng.integers(0, 600, rng.integers(1, 120)))
            table = build_hash_table(b, spec)
            m = KernelMetrics()
            got = hash_intersect(a, table, spec, m)
            assert np.array_equal(got, np.intersect1d(a, b))

    def test_empty_inputs(self):
        spec = rtx_3090()
        table = build_hash_table(_arr(1, 2), spec)
        assert len(hash_intersect(_arr(), table, spec, KernelMetrics())) == 0

    def test_build_charged(self):
        spec = rtx_3090()
        m = KernelMetrics()
        build_hash_table(np.arange(256), spec, metrics=m)
        assert m.global_transactions > 0

    def test_fewer_comparisons_than_binary_search_on_long_lists(self):
        """The hashing trade: O(1) probes beat O(log n) on long lists."""
        spec = rtx_3090()
        keys = np.arange(0, 512, 4, dtype=np.int64)
        lst = np.arange(0, 8192, 2, dtype=np.int64)
        mb = KernelMetrics()
        binary_search_intersect(keys, lst, spec, mb)
        table = build_hash_table(lst, spec)
        mh = KernelMetrics()
        hash_intersect(keys, table, spec, mh)
        assert mh.comparisons < mb.comparisons

    def test_table_memory_overhead_reported(self):
        table = build_hash_table(np.arange(100), rtx_3090())
        assert table.table_words >= 100
