"""Tests for simulated-device set intersection."""

import numpy as np

from repro.gpu.device import rtx_3090, small_test_device
from repro.gpu.intersect import (
    binary_search_intersect,
    membership_mask,
    merge_intersect,
)
from repro.gpu.metrics import KernelMetrics


def _arr(*xs):
    return np.asarray(xs, dtype=np.int64)


class TestBinarySearchIntersect:
    def test_basic_result(self):
        m = KernelMetrics()
        out = binary_search_intersect(_arr(3, 10, 23, 102),
                                      _arr(3, 8, 10, 17, 73, 79, 82),
                                      rtx_3090(), m)
        assert out.tolist() == [3, 10]

    def test_empty_inputs(self):
        m = KernelMetrics()
        spec = rtx_3090()
        assert len(binary_search_intersect(_arr(), _arr(1, 2), spec, m)) == 0
        assert len(binary_search_intersect(_arr(1), _arr(), spec, m)) == 0

    def test_disjoint(self):
        m = KernelMetrics()
        out = binary_search_intersect(_arr(1, 3), _arr(2, 4), rtx_3090(), m)
        assert len(out) == 0

    def test_matches_reference_random(self):
        rng = np.random.default_rng(0)
        spec = rtx_3090()
        for _ in range(50):
            a = np.unique(rng.integers(0, 200, rng.integers(0, 40)))
            b = np.unique(rng.integers(0, 200, rng.integers(0, 80)))
            m = KernelMetrics()
            got = binary_search_intersect(a, b, spec, m)
            assert np.array_equal(got, np.intersect1d(a, b))

    def test_counts_transactions(self):
        m = KernelMetrics()
        binary_search_intersect(_arr(3, 10, 23, 102),
                                _arr(3, 8, 10, 17, 73, 79, 82),
                                rtx_3090(), m)
        assert m.global_transactions > 0
        assert m.comparisons > 0
        assert m.intersection_calls == 1

    def test_longer_list_more_comparisons(self):
        spec = rtx_3090()
        keys = np.arange(0, 64, 2, dtype=np.int64)
        short = np.arange(100, dtype=np.int64)
        long = np.arange(4000, dtype=np.int64)
        m1, m2 = KernelMetrics(), KernelMetrics()
        binary_search_intersect(keys, short, spec, m1)
        binary_search_intersect(keys, long, spec, m2)
        assert m2.comparisons > m1.comparisons

    def test_small_and_vector_paths_agree(self):
        """The pure-Python fast path must account identically to the
        vectorised path (result, transactions, comparisons, words)."""
        from repro.gpu.intersect import (
            _lockstep_binary_search_small,
            _lockstep_binary_search_vec,
        )
        rng = np.random.default_rng(1)
        spec = rtx_3090()
        for _ in range(40):
            keys = np.unique(rng.integers(0, 500, rng.integers(1, 50)))
            lst = np.unique(rng.integers(0, 500, rng.integers(1, 100)))
            m1, m2 = KernelMetrics(), KernelMetrics()
            f1 = _lockstep_binary_search_small(keys, lst, spec, m1, 7)
            f2 = _lockstep_binary_search_vec(keys, lst, spec, m2, 7)
            assert np.array_equal(f1, f2)
            assert m1.global_transactions == m2.global_transactions
            assert m1.comparisons == m2.comparisons
            assert m1.global_words == m2.global_words

    def test_slot_recording_toggle(self):
        spec = small_test_device()
        keys, lst = _arr(1, 2, 3), _arr(2, 3, 4)
        m1, m2 = KernelMetrics(), KernelMetrics()
        binary_search_intersect(keys, lst, spec, m1, record_slots=True)
        binary_search_intersect(keys, lst, spec, m2, record_slots=False)
        assert m1.thread_slots_total > 0
        assert m2.thread_slots_total == 0


class TestMergeIntersect:
    def test_result(self):
        out = merge_intersect(_arr(1, 3, 5), _arr(3, 4, 5))
        assert out.tolist() == [3, 5]

    def test_comparison_cell(self):
        cell = [0]
        merge_intersect(_arr(1, 2), _arr(2, 3, 4), cell)
        assert cell[0] == 5

    def test_empty(self):
        assert len(merge_intersect(_arr(), _arr(1))) == 0


class TestMembershipMask:
    def test_mask(self):
        mask = membership_mask(_arr(1, 2, 3), _arr(2, 3, 9))
        assert mask.tolist() == [False, True, True]

    def test_empty_keys(self):
        assert len(membership_mask(_arr(), _arr(1))) == 0
