"""Tests for KernelMetrics accumulation."""

from repro.gpu.metrics import KernelMetrics


class TestMerge:
    def test_sums_counters(self):
        a = KernelMetrics(global_transactions=2, comparisons=5)
        b = KernelMetrics(global_transactions=3, comparisons=1)
        a.merge(b)
        assert a.global_transactions == 5
        assert a.comparisons == 6

    def test_peak_takes_max(self):
        a = KernelMetrics(shared_bytes_peak=10)
        b = KernelMetrics(shared_bytes_peak=40)
        a.merge(b)
        assert a.shared_bytes_peak == 40
        a.merge(KernelMetrics(shared_bytes_peak=5))
        assert a.shared_bytes_peak == 40

    def test_add_does_not_mutate(self):
        a = KernelMetrics(comparisons=1)
        b = KernelMetrics(comparisons=2)
        c = a + b
        assert c.comparisons == 3
        assert a.comparisons == 1 and b.comparisons == 2

    def test_copy_detached(self):
        a = KernelMetrics(comparisons=1)
        c = a.copy()
        c.comparisons += 1
        assert a.comparisons == 1


class TestUtilization:
    def test_default_is_one(self):
        assert KernelMetrics().utilization == 1.0

    def test_ratio(self):
        m = KernelMetrics()
        m.record_slots(8, 32)
        assert m.utilization == 0.25

    def test_note_shared_peak(self):
        m = KernelMetrics()
        m.note_shared_peak(100)
        m.note_shared_peak(50)
        assert m.shared_bytes_peak == 100
