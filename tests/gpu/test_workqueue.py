"""Tests for the GCL work-stealing timeline model."""

import numpy as np

from repro.gpu.device import small_test_device
from repro.gpu.workqueue import simulate_blocks


def _spec():
    return small_test_device()


class TestNoStealing:
    def test_makespan_is_heaviest_block(self):
        spec = _spec()
        res = simulate_blocks([[100.0, 100.0], [10.0]], spec, stealing=False)
        atomic = spec.atomic_latency_cycles
        assert res.makespan_cycles == 200.0 + 2 * atomic
        assert res.steals == 0

    def test_empty(self):
        res = simulate_blocks([], _spec(), stealing=False)
        assert res.makespan_cycles == 0.0

    def test_all_empty_blocks(self):
        res = simulate_blocks([[], []], _spec(), stealing=False)
        assert res.makespan_cycles == 0.0


class TestStealing:
    def test_idle_block_steals(self):
        spec = _spec()
        heavy = [100.0] * 10
        res = simulate_blocks([heavy, []], spec, stealing=True)
        assert res.steals > 0
        no_steal = simulate_blocks([heavy, []], spec, stealing=False)
        assert res.makespan_cycles < no_steal.makespan_cycles

    def test_balanced_input_needs_no_steals(self):
        spec = _spec()
        res = simulate_blocks([[50.0], [50.0]], spec, stealing=True)
        assert res.steals == 0

    def test_imbalance_improves(self):
        spec = _spec()
        rng = np.random.default_rng(0)
        costs = (rng.pareto(1.1, 64) * 1000 + 100).tolist()
        skewed = [costs, [], [], []]
        with_steal = simulate_blocks(skewed, spec, stealing=True)
        without = simulate_blocks(skewed, spec, stealing=False)
        assert with_steal.imbalance < without.imbalance

    def test_busy_conservation(self):
        """Every task's cost appears in some block's busy time."""
        spec = _spec()
        tasks = [[10.0, 20.0], [5.0], [40.0, 1.0]]
        res = simulate_blocks(tasks, spec, stealing=True)
        paid = float(res.block_busy_cycles.sum())
        work = sum(sum(t) for t in tasks)
        assert paid >= work  # work plus overheads

    def test_atomics_counted(self):
        spec = _spec()
        res = simulate_blocks([[1.0, 1.0], []], spec, stealing=True)
        # one atomic per own pop, two per steal
        assert res.atomics >= 2
