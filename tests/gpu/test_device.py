"""Tests for the simulated device specification."""

import pytest

from repro.errors import DeviceError
from repro.gpu.device import DeviceSpec, rtx_3090, small_test_device


class TestDeviceSpec:
    def test_rtx3090_matches_paper(self):
        spec = rtx_3090()
        assert spec.num_sms == 82
        assert spec.total_cores == 10496
        assert spec.warp_size == 32

    def test_words_per_transaction(self):
        assert rtx_3090().words_per_transaction == 32

    def test_threads_per_block(self):
        spec = small_test_device(warps_per_block=2)
        assert spec.threads_per_block == 64

    def test_seconds_conversion(self):
        spec = rtx_3090()
        assert spec.seconds(spec.clock_hz) == pytest.approx(1.0)

    def test_rejects_bad_warp_size(self):
        with pytest.raises(DeviceError):
            DeviceSpec(name="bad", num_sms=1, cores_per_sm=1, warp_size=0)

    def test_rejects_partial_word_transactions(self):
        with pytest.raises(DeviceError):
            DeviceSpec(name="bad", num_sms=1, cores_per_sm=1,
                       transaction_bytes=130)
