"""Tests for the coalesced-transaction accounting model."""

import numpy as np

from repro.gpu.device import rtx_3090
from repro.gpu.memory import (
    charge_gather,
    charge_stream,
    transactions_for_gather,
    transactions_for_stream,
)
from repro.gpu.metrics import KernelMetrics


class TestGatherTransactions:
    def test_same_segment_is_one(self):
        # 4 words inside one 32-word segment -> 1 transaction
        assert transactions_for_gather(np.array([0, 5, 17, 31]), 32) == 1

    def test_spread_segments(self):
        assert transactions_for_gather(np.array([0, 33, 70]), 32) == 3

    def test_duplicates_collapse(self):
        assert transactions_for_gather(np.array([5, 5, 6]), 32) == 1

    def test_empty(self):
        assert transactions_for_gather(np.array([], dtype=np.int64), 32) == 0

    def test_paper_example5_shape(self):
        """Example 5: 4 keys binary-searched in a 7-element list spanning
        two 4-int blocks costs 5 transactions; the aligned-gather model
        reproduces the same per-step distinct-block counting."""
        # iteration probes from the example: {17}, {8, 79}, {3,10,73,82}
        txns = (transactions_for_gather(np.array([3]), 4)       # entry 17 @ idx 3
                + transactions_for_gather(np.array([1, 5]), 4)  # entries 8, 79
                + transactions_for_gather(np.array([0, 2, 4, 6]), 4))
        assert txns == 1 + 2 + 2


class TestStreamTransactions:
    def test_rounding_up(self):
        assert transactions_for_stream(33, 32) == 2
        assert transactions_for_stream(32, 32) == 1

    def test_zero(self):
        assert transactions_for_stream(0, 32) == 0


class TestCharging:
    def test_charge_gather_accumulates(self):
        m = KernelMetrics()
        spec = rtx_3090()
        got = charge_gather(m, spec, np.array([0, 100]))
        assert got == 2
        assert m.global_transactions == 2
        assert m.global_words == 2

    def test_charge_stream_accumulates(self):
        m = KernelMetrics()
        spec = rtx_3090()
        charge_stream(m, spec, 64)
        assert m.global_transactions == 2
        assert m.global_words == 64
