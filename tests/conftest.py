"""Shared fixtures: small deterministic graphs and a small device."""

from __future__ import annotations

import pytest

from repro.core.counts import BicliqueQuery
from repro.gpu.device import small_test_device
from repro.graph.builders import complete_bipartite, from_adjacency
from repro.graph.generators import (
    paper_synthetic,
    planted_bicliques,
    power_law_bipartite,
    random_bipartite,
)


@pytest.fixture
def paper_graph():
    """The running example of Fig. 1(a): u0..u4 on U, v0..v4 on V.

    Adjacency reconstructed from Examples 1-3: N(u1) = {v0,v1,v2},
    N(u2) = {v0,v1,v2,v4}, N(u3) = {v1,v2,v3}, N(u4) = {v0,v2,v3,v4},
    N(u0) = {v3,v4}; the shared-neighbour relations of Example 1 hold
    (u2&u3 share {v1,v2}, u2&u4 share {v0,v2,v4}, u3&u4 share {v2,v3}) and
    exactly two (3,2)-bicliques exist: ({u1,u2,u3},{v1,v2}) and
    ({u1,u2,u4},{v0,v2}) — Example 2.
    """
    return from_adjacency({
        0: [3, 4],
        1: [0, 1, 2],
        2: [0, 1, 2, 4],
        3: [1, 2, 3],
        4: [0, 2, 3, 4],
    }, num_u=5, num_v=5, name="fig1a")


@pytest.fixture
def small_random():
    return random_bipartite(30, 25, 120, seed=3, name="small-random")


@pytest.fixture
def medium_power_law():
    return power_law_bipartite(80, 60, 400, seed=5, name="medium-pl")


@pytest.fixture
def synthetic_graph():
    return paper_synthetic(48, 40, mean_degree=8, locality=16, seed=9,
                           name="small-syn")


@pytest.fixture
def planted_graph():
    return planted_bicliques(20, 20, [(4, 3), (3, 4), (5, 2)],
                             noise_edges=0, seed=1, name="plants")


@pytest.fixture
def k45():
    return complete_bipartite(4, 5)


@pytest.fixture
def device():
    return small_test_device()


@pytest.fixture
def query_32():
    return BicliqueQuery(3, 2)


def pytest_addoption(parser):
    parser.addoption("--bench-scale", action="store", default="bench",
                     help="dataset scale for benchmark runs (tiny/bench/full)")
    parser.addoption("--update-golden", action="store_true", default=False,
                     help="re-pin tests/golden/golden_counts.json from the "
                          "current engines instead of asserting against it")
