"""Markdown link check over README.md and docs/ (the CI docs step).

Every relative link in the user-facing markdown must resolve to a real
file or directory in the repository; external (http/https/mailto)
targets are out of scope for an offline check.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
DOCS = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
# [text](target) — target captured up to the first ')' or whitespace
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def test_docs_directory_is_populated():
    assert (ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (ROOT / "docs" / "PAPER_MAP.md").is_file()


@pytest.mark.parametrize("doc", DOCS,
                         ids=lambda p: p.relative_to(ROOT).as_posix())
def test_relative_links_resolve(doc):
    broken = []
    for target in LINK_RE.findall(doc.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL):
            continue
        path = target.split("#", 1)[0]
        if not path:          # pure in-page anchor
            continue
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"broken relative links in {doc.name}: {broken}"
