"""Cross-process telemetry aggregation and worker-tagged tracing.

``merge_snapshots`` must behave like one long-running Telemetry fed the
combined event stream: exact on undecimated inputs (percentiles are
recomputed from the union of raw samples, never averaged), and within
decimation tolerance once streams have been thinned.  Trace events from
an ident-carrying scheduler must say which worker emitted them.
"""

import pytest

from repro.core.gbc import gbc_count  # noqa: F401 - keeps import graph warm
from repro.graph.generators import random_bipartite
from repro.obs.trace import tracing
from repro.service.pool import SessionPool
from repro.service.scheduler import Scheduler
from repro.service.telemetry import Telemetry, merge_snapshots, percentile


def _fill(t: Telemetry, latencies_ms, *, submitted=0, rejected=0,
          expired=0, failed=0) -> None:
    for _ in range(submitted):
        t.record_submit(queue_depth=1)
    for _ in range(rejected):
        t.record_rejected()
    t.record_expired(expired)
    for _ in range(failed):
        t.record_failed()
    if latencies_ms:
        t.record_batch(len(latencies_ms))
    for ms in latencies_ms:
        t.record_completed(ms / 1e3)


def test_merge_equals_single_combined_stream_exactly():
    streams = [
        [5.0, 7.0, 11.0, 13.0, 42.0],
        [1.0, 2.0, 3.0],
        [100.0, 200.0, 8.0, 9.0, 10.0, 11.0],
    ]
    workers = []
    for i, stream in enumerate(streams):
        t = Telemetry()
        _fill(t, stream, submitted=len(stream) + i, rejected=i,
              expired=i, failed=1)
        workers.append(t)
    combined = Telemetry()
    _fill(combined, [ms for s in streams for ms in s],
          submitted=sum(len(s) + i for i, s in enumerate(streams)),
          rejected=sum(range(len(streams))),
          expired=sum(range(len(streams))), failed=len(streams))

    merged = merge_snapshots([t.snapshot(include_samples=True)
                              for t in workers])
    ref = combined.snapshot()

    assert merged["workers"] == 3
    for key in ("submitted", "rejected", "expired", "completed",
                "failed"):
        assert merged[key] == ref[key], key
    # percentiles recomputed from the union of raw samples — exact
    for pct in ("p50", "p90", "p95", "p99", "max", "min"):
        assert merged["latency_ms"][pct] == ref["latency_ms"][pct], pct
    assert merged["latency_ms"]["mean"] == \
        pytest.approx(ref["latency_ms"]["mean"])
    # one batch per worker stream merges into the union histogram
    assert merged["batches"]["count"] == len(streams)
    assert merged["batches"]["histogram"] == \
        {str(len(s)): 1 for s in streams}


def test_merge_qps_uses_longest_elapsed_not_sum():
    snaps = []
    for completed, elapsed in [(60, 2.0), (40, 4.0)]:
        t = Telemetry()
        _fill(t, [1.0] * completed)
        snap = t.snapshot(include_samples=True)
        snap["elapsed_seconds"] = elapsed      # pin wall time
        snaps.append(snap)
    merged = merge_snapshots(snaps)
    assert merged["completed"] == 100
    assert merged["throughput_qps"] == pytest.approx(100 / 4.0)


def test_merge_within_decimation_tolerance():
    """Decimated streams merge to percentiles near the true stream's."""
    latencies = [float(((7 * i) % 100) + 1) for i in range(4000)]
    half = len(latencies) // 2
    workers = []
    for chunk in (latencies[:half], latencies[half:]):
        t = Telemetry(max_latency_samples=256)     # forces decimation
        _fill(t, chunk)
        workers.append(t)
    merged = merge_snapshots([t.snapshot(include_samples=True)
                              for t in workers])
    assert merged["latency_ms"]["stride"] > 1      # decimation happened
    for pct in (50, 90, 95):
        true = percentile(latencies, pct)
        got = merged["latency_ms"][f"p{pct}"]
        assert got == pytest.approx(true, rel=0.15), pct
    assert merged["completed"] == len(latencies)


def test_merge_of_nothing_is_empty():
    merged = merge_snapshots([])
    assert merged["workers"] == 0
    assert merged["completed"] == 0
    assert merged["throughput_qps"] == 0.0
    assert merged["latency_ms"]["p95"] == 0.0


def test_serve_events_carry_worker_ident():
    pool = SessionPool()
    pool.register("g", random_bipartite(30, 25, 140, seed=4))
    with tracing() as rec:
        with Scheduler(pool, batch_window=0.0, backend="fast",
                       ident="w7") as sched:
            sched.count("g", 2, 2)
    tagged = [r for r in rec.records
              if str(r.get("name", "")).startswith("serve.")]
    assert tagged, "no serve.* records captured"
    assert all(r["attrs"].get("worker") == "w7" for r in tagged)


def test_router_events_tagged_router_in_fallback_mode():
    from repro.dist.router import DistRouter

    g = random_bipartite(30, 25, 140, seed=4)
    with tracing() as rec:
        with DistRouter({"g": g}, workers=1, backend="fast") as router:
            router.count("g", 2, 2)
    tagged = [r for r in rec.records
              if str(r.get("name", "")).startswith("serve.")]
    assert tagged
    assert all(r["attrs"].get("worker") == "router" for r in tagged)
