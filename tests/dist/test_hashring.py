"""Consistent-hash ring: determinism, stability, replica semantics.

The serving tier leans on two properties: placement is a pure function
of (key set, node set) — no coordination state — and topology changes
move only a bounded fraction of keys.  Both are pinned here, along with
the :func:`~repro.dist.router.plan_routes` table built on top.
"""

import pytest

from repro.dist.hashring import HashRing
from repro.dist.router import plan_routes
from repro.errors import ServiceError

KEYS = [f"fp-{i:04d}" for i in range(600)]


def test_routing_is_deterministic_across_instances():
    a = HashRing(range(4))
    b = HashRing([3, 1, 0, 2])          # insertion order must not matter
    assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]


def test_add_node_moves_bounded_fraction_of_keys():
    ring = HashRing(range(4))
    before = {k: ring.route(k) for k in KEYS}
    ring.add(4)
    after = {k: ring.route(k) for k in KEYS}
    moved = [k for k in KEYS if before[k] != after[k]]
    # expected move rate is 1/5; allow generous slack but far below a
    # full reshuffle
    assert len(moved) <= len(KEYS) * 0.45
    # every moved key must have moved TO the new node, never between
    # old nodes
    assert all(after[k] == 4 for k in moved)


def test_remove_node_moves_only_its_keys():
    ring = HashRing(range(5))
    before = {k: ring.route(k) for k in KEYS}
    ring.remove(2)
    after = {k: ring.route(k) for k in KEYS}
    for k in KEYS:
        if before[k] != 2:
            assert after[k] == before[k]
        else:
            assert after[k] != 2


def test_replicas_distinct_primary_first():
    ring = HashRing(range(5))
    for key in KEYS[:50]:
        reps = ring.replicas(key, 3)
        assert len(reps) == 3
        assert len(set(reps)) == 3
        assert reps[0] == ring.route(key)


def test_replicas_capped_at_node_count():
    ring = HashRing(range(2))
    assert len(ring.replicas("x", 5)) == 2


def test_ring_membership_and_errors():
    ring = HashRing()
    with pytest.raises(ServiceError):
        ring.route("anything")
    ring.add("w0")
    assert "w0" in ring and len(ring) == 1
    ring.add("w0")                       # idempotent
    assert len(ring) == 1
    with pytest.raises(ServiceError):
        ring.remove("w9")
    with pytest.raises(ServiceError):
        ring.replicas("k", 0)


def test_plan_routes_deterministic_and_kinded():
    fps = {"hot": "fp-a", "warm": "fp-b", "big": "fp-c"}
    t1 = plan_routes(fps, 4, replication=2, hot=("hot",),
                     partitioned=("big",))
    t2 = plan_routes(dict(reversed(list(fps.items()))), 4,
                     replication=2, hot=("hot",), partitioned=("big",))
    for name in fps:
        assert t1[name].describe() == t2[name].describe()
    assert t1["big"].kind == "partitioned"
    assert t1["big"].owners == (0, 1, 2, 3)
    assert t1["hot"].kind == "replicated"
    assert len(set(t1["hot"].owners)) == 2
    assert t1["warm"].kind == "single"
    assert len(t1["warm"].owners) == 1


def test_plan_routes_round_robin_pick():
    fps = {"hot": "fp-a"}
    table = plan_routes(fps, 4, replication=3, hot=("hot",))
    route = table["hot"]
    picks = [route.pick() for _ in range(6)]
    assert picks[:3] == list(route.owners)
    assert picks[3:] == list(route.owners)


def test_plan_routes_rejects_bad_specs():
    fps = {"a": "fp-a"}
    with pytest.raises(ServiceError):
        plan_routes(fps, 2, hot=("missing",))
    with pytest.raises(ServiceError):
        plan_routes(fps, 2, hot=("a",), partitioned=("a",))
    with pytest.raises(ServiceError):
        plan_routes(fps, 0)
    with pytest.raises(ServiceError):
        plan_routes(fps, 2, replication=0)


def test_single_worker_plan_never_replicates():
    fps = {"hot": "fp-a", "warm": "fp-b"}
    table = plan_routes(fps, 1, replication=3, hot=("hot",))
    assert table["hot"].kind == "single"
    assert table["hot"].owners == (0,)
