"""DistRouter: oracle-exact serving, fallback, failure paths.

The load-bearing guarantee is bit-identical counts: every routing kind
(single, replicated, partitioned) must return exactly what a direct
single-process count returns.  The fallback tests pin the graceful
degradation contract — ``workers=1`` or no ``fork`` serves identically
in-process with one WARNING — and the rest covers the distributed
re-interpretations of the Scheduler failure paths.
"""

import logging

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.dist.router import DistRouter
from repro.errors import (DeadlineExceededError, QueueFullError,
                          ServiceError)
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.parallel.procpool import fork_available

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="no fork on this platform")

SHAPES = [(2, 2), (2, 3), (3, 3)]


def make_graphs() -> dict:
    return {
        "hot": power_law_bipartite(60, 50, 280, seed=5),
        "warm": random_bipartite(50, 40, 220, seed=6),
        "big": power_law_bipartite(70, 55, 320, seed=7),
    }


def oracle(graphs: dict) -> dict:
    return {(name, p, q): gbc_count(g, BicliqueQuery(p, q),
                                    backend="fast").count
            for name, g in graphs.items() for p, q in SHAPES}


@needs_fork
def test_dist_counts_match_oracle_across_route_kinds():
    graphs = make_graphs()
    expected = oracle(graphs)
    with DistRouter(graphs, workers=3, replication=2, hot=("hot",),
                    partitioned=("big",), backend="fast") as router:
        assert router.distributed
        table = router.routing_table()
        assert table["big"]["kind"] == "partitioned"
        assert table["hot"]["kind"] == "replicated"
        assert table["warm"]["kind"] == "single"
        for (name, p, q), want in sorted(expected.items()):
            got = router.count(name, p, q)
            assert got.count == want, (name, p, q)
        # replicated graphs answer identically from every replica
        repeats = [router.count("hot", 2, 2).count for _ in range(4)]
        assert set(repeats) == {expected[("hot", 2, 2)]}


@needs_fork
def test_partitioned_result_is_tagged():
    graphs = make_graphs()
    with DistRouter(graphs, workers=2, partitioned=("big",),
                    backend="fast") as router:
        res = router.count("big", 2, 2)
        assert res.algorithm == "partitioned"
        owners = router.routing_table()["big"]["owners"]
        assert res.extras["partitions"] == float(len(owners))
        assert res.count == gbc_count(graphs["big"], BicliqueQuery(2, 2),
                                      backend="fast").count


def test_workers_1_falls_back_in_process(caplog):
    graphs = make_graphs()
    with caplog.at_level(logging.WARNING, logger="repro.dist.router"):
        with DistRouter(graphs, workers=1, backend="fast") as router:
            assert not router.distributed
            assert router.routing_table() == {}
            assert router.worker_pids() == []
            expected = oracle(graphs)
            for (name, p, q), want in sorted(expected.items()):
                assert router.count(name, p, q).count == want
    assert any("falling back to in-process serving" in r.message
               for r in caplog.records)


def test_no_fork_falls_back_in_process(caplog, monkeypatch):
    import repro.dist.router as router_mod
    monkeypatch.setattr(router_mod, "fork_available", lambda: False)
    graphs = {"only": random_bipartite(30, 25, 140, seed=9)}
    with caplog.at_level(logging.WARNING, logger="repro.dist.router"):
        with DistRouter(graphs, workers=4, backend="fast") as router:
            assert not router.distributed
            want = gbc_count(graphs["only"], BicliqueQuery(2, 2),
                             backend="fast").count
            assert router.count("only", 2, 2).count == want
    assert any("fork unavailable" in r.message for r in caplog.records)


@needs_fork
def test_mutate_rejected_in_dist_mode():
    graphs = {"g": random_bipartite(30, 25, 140, seed=9)}
    with DistRouter(graphs, workers=2, backend="fast") as router:
        with pytest.raises(ServiceError, match="single-process only"):
            router.mutate("g", [("add", 0, 0)])


@needs_fork
def test_unknown_graph_fails_the_request():
    graphs = {"g": random_bipartite(30, 25, 140, seed=9)}
    with DistRouter(graphs, workers=2, backend="fast") as router:
        with pytest.raises(ServiceError, match="not registered"):
            router.count("nope", 2, 2)
        # the router survives and keeps serving
        assert router.count("g", 2, 2).count >= 0


@needs_fork
def test_partitioned_graphs_serve_exact_only():
    graphs = {"big": power_law_bipartite(60, 50, 280, seed=5)}
    with DistRouter(graphs, workers=2, partitioned=("big",),
                    backend="fast") as router:
        with pytest.raises(ServiceError, match="exact tier only"):
            router.count("big", 2, 2, accuracy="approx")
        assert router.count("big", 2, 2, accuracy="exact").count > 0


@needs_fork
def test_deadline_and_backpressure_cross_process():
    graphs = {"g": power_law_bipartite(60, 50, 280, seed=5)}
    router = DistRouter(graphs, workers=2, backend="fast",
                        batch_window=0.05, max_pending=2)
    try:
        with pytest.raises(DeadlineExceededError):
            router.count("g", 2, 2, deadline=1e-6)
        futures = []
        with pytest.raises(QueueFullError):
            for _ in range(50):
                futures.append(router.submit("g", 2, 2))
        for fut in futures:
            assert fut.result(timeout=30).count > 0
    finally:
        router.close()


@needs_fork
def test_cluster_snapshot_merges_workers_and_ledger():
    graphs = make_graphs()
    with DistRouter(graphs, workers=2, partitioned=("big",),
                    backend="fast") as router:
        for name in graphs:
            router.count(name, 2, 2)
        snap = router.cluster_snapshot()
    assert snap["mode"] == "dist"
    assert snap["router"]["completed"] == 3
    assert set(snap["workers"]) <= {"0", "1"}
    cluster = snap["cluster"]
    assert cluster["workers"] == len(snap["workers"])
    # every routed (non-partitioned) execution ran inside some worker
    assert cluster["completed"] >= 2
    assert router.ledger.snapshot()["cells"]


@needs_fork
def test_close_is_idempotent_and_stops_workers():
    import os

    graphs = {"g": random_bipartite(30, 25, 140, seed=9)}
    router = DistRouter(graphs, workers=2, backend="fast")
    pids = router.worker_pids()
    assert router.count("g", 2, 2).count >= 0
    router.close()
    router.close()
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
