"""serve-dist-bench artifact: structure, schema, leaderboard cells.

A tiny (but real) grid run — the full-size grid lives in
``benchmarks/test_dist_throughput.py``.
"""

import pytest

from repro.dist.bench import GRID_SIZES, dist_bench, make_grid_graphs
from repro.obs.leaderboard import extract_cells
from repro.obs.schema import SchemaError, validate_artifact
from repro.parallel.procpool import fork_available


def test_grid_graphs_are_deterministic():
    a = make_grid_graphs("small")
    b = make_grid_graphs("small")
    assert set(a) == {"hot", "warm", "cold"}
    for name in a:
        assert a[name].num_edges == b[name].num_edges
    assert set(GRID_SIZES) == {"small", "medium"}


@pytest.mark.skipif(not fork_available(),
                    reason="no fork on this platform")
def test_tiny_grid_artifact_schema_and_cells():
    artifact = dist_bench(topologies=(1, 2), sizes=("small",),
                          repetitions=1, num_queries=16, clients=4,
                          backend="fast")
    assert validate_artifact(artifact, name="BENCH_dist.json") == \
        "dist_bench"
    rows = artifact["rows"]
    assert len(rows) == 2
    assert {r["topology"] for r in rows} == {1, 2}
    # topology 1 is the in-process fallback, 2 is genuinely distributed
    by_topology = {r["topology"]: r for r in rows}
    assert not by_topology[1]["distributed"]
    assert by_topology[2]["distributed"]
    for row in rows:
        assert row["mismatches"] == []
        assert row["completed"] + row["rejected"] + row["expired"] \
            + row["failed"] == row["issued"]
    assert artifact["partitioned"]["exact"]
    assert "1" in artifact["throughput_qps"]["small"]

    cells = extract_cells("BENCH_dist.json", artifact)
    kinds = {(c["cell"], c["metric"]) for c in cells}
    assert ("small|1w", "throughput_qps") in kinds
    assert ("small|2w", "throughput_qps") in kinds
    assert ("small", "speedup_vs_1w") in kinds
    assert all(c["direction"] == "higher" for c in cells)


def test_artifact_schema_rejects_missing_rows():
    with pytest.raises(SchemaError):
        validate_artifact({"kind": "dist_bench", "generated": "x"},
                          name="broken")


def test_bad_topologies_rejected():
    with pytest.raises(ValueError):
        dist_bench(topologies=(0,), sizes=("small",))
