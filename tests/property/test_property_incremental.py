"""Property-based tests for generalized incremental (p, q) maintenance.

The invariant that makes mutate-while-serving trustworthy: after
*every* prefix of *any* edge-mutation stream, a
:class:`~repro.dynamic.DynamicGraphSession`'s tracked counts are
bit-identical to a fresh from-scratch recount of the mutated graph —
for every shape, on every backend.  Hypothesis drives random toggle
streams over random bipartite graphs; the dedicated classes cover the
delete-reinsert round trip and teardown-to-empty.

The per-test example budget scales with ``REPRO_HYPOTHESIS_EXAMPLES``
(default 20) so the CI ``mutate-fuzz`` job can raise it without
slowing tier-1.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro import random_bipartite
from repro.core.delta import bicliques_containing_edge
from repro.dynamic import DynamicGraphSession, EdgeMutation

EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "20"))
SHAPES = [(2, 2), (2, 3), (3, 3)]
BACKENDS = ["sim", "fast", "native"]

graph_strategy = st.fixed_dictionaries({
    "num_u": st.integers(2, 9),
    "num_v": st.integers(2, 9),
    "density": st.floats(0.0, 0.6),
    "seed": st.integers(0, 2**16),
})
stream_strategy = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)),
    min_size=1, max_size=24)


def make_graph(params):
    max_edges = params["num_u"] * params["num_v"]
    return random_bipartite(
        num_u=params["num_u"], num_v=params["num_v"],
        num_edges=int(params["density"] * max_edges),
        seed=params["seed"])


def clip(graph, raw_stream):
    return [(u % graph.num_u, v % graph.num_v) for u, v in raw_stream]


class TestToggleStreamsMatchRecount:
    """Counts ≡ fresh recount after every prefix of a random stream."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=EXAMPLES, deadline=None)
    @seed(0)
    @given(params=graph_strategy, raw_stream=stream_strategy)
    def test_every_prefix(self, backend, params, raw_stream):
        graph = make_graph(params)
        dyn = DynamicGraphSession.from_graph(graph, track=SHAPES,
                                             backend=backend)
        for u, v in clip(graph, raw_stream):
            dyn.toggle(u, v)
            for p, q in SHAPES:
                assert dyn.count(p, q) == dyn.recount(p, q, backend=backend)

    @settings(max_examples=EXAMPLES, deadline=None)
    @seed(1)
    @given(params=graph_strategy, raw_stream=stream_strategy,
           ratio=st.sampled_from([0.0, 1e-12, 1e9]))
    def test_cutover_never_changes_an_answer(self, params, raw_stream,
                                             ratio):
        """The delta-vs-rebuild cutover is a performance decision only:
        forced always-delta (huge ratio) and forced always-rebuild
        (tiny ratio) both stay exact."""
        graph = make_graph(params)
        dyn = DynamicGraphSession.from_graph(graph, track=SHAPES,
                                             cutover_ratio=ratio)
        for u, v in clip(graph, raw_stream):
            dyn.toggle(u, v)
        for p, q in SHAPES:
            assert dyn.count(p, q) == dyn.recount(p, q)


class TestRoundTrips:
    @settings(max_examples=EXAMPLES, deadline=None)
    @seed(2)
    @given(params=graph_strategy, edge=st.tuples(st.integers(0, 8),
                                                 st.integers(0, 8)))
    def test_delete_reinsert_is_identity(self, params, edge):
        graph = make_graph(params)
        dyn = DynamicGraphSession.from_graph(graph, track=SHAPES)
        before = {s: dyn.count(*s) for s in SHAPES}
        epoch = dyn.epoch
        (u, v), = clip(graph, [edge])
        if dyn.has_edge(u, v):
            dyn.delete(u, v)
            dyn.insert(u, v)
        else:
            dyn.insert(u, v)
            dyn.delete(u, v)
        assert {s: dyn.count(*s) for s in SHAPES} == before
        assert dyn.epoch == epoch + 2
        assert dyn.num_edges == graph.num_edges

    @settings(max_examples=EXAMPLES, deadline=None)
    @seed(3)
    @given(params=graph_strategy)
    def test_teardown_to_empty(self, params):
        graph = make_graph(params)
        dyn = DynamicGraphSession.from_graph(graph, track=SHAPES)
        for u in range(graph.num_u):
            for v in graph.neighbors("U", u).tolist():
                dyn.delete(u, int(v))
        assert dyn.num_edges == 0
        for p, q in SHAPES:
            assert dyn.count(p, q) == 0
        # and back up: replaying every edge restores the original counts
        for u in range(graph.num_u):
            for v in graph.neighbors("U", u).tolist():
                dyn.insert(u, int(v))
        fresh = DynamicGraphSession.from_graph(graph)
        for p, q in SHAPES:
            assert dyn.count(p, q) == fresh.recount(p, q)


class TestDeltaRule:
    @settings(max_examples=EXAMPLES, deadline=None)
    @seed(4)
    @given(params=graph_strategy, edge=st.tuples(st.integers(0, 8),
                                                 st.integers(0, 8)),
           shape=st.sampled_from(SHAPES + [(1, 1), (1, 3), (3, 1), (4, 2)]))
    def test_invariant_to_edge_presence(self, params, edge, shape):
        """The delta of (u, v) is the same computed before or after the
        structural update — the property that lets one rule serve both
        insert and delete."""
        graph = make_graph(params)
        dyn = DynamicGraphSession.from_graph(graph)
        (u, v), = clip(graph, [edge])
        p, q = shape
        before = bicliques_containing_edge(dyn._rows_u, dyn._rows_v,
                                           u, v, p, q)
        dyn.toggle(u, v)
        after = bicliques_containing_edge(dyn._rows_u, dyn._rows_v,
                                          u, v, p, q)
        assert before == after

    @settings(max_examples=EXAMPLES, deadline=None)
    @seed(5)
    @given(params=graph_strategy, edge=st.tuples(st.integers(0, 8),
                                                 st.integers(0, 8)),
           shape=st.sampled_from(SHAPES))
    def test_delta_equals_count_difference(self, params, edge, shape):
        graph = make_graph(params)
        dyn = DynamicGraphSession.from_graph(graph)
        (u, v), = clip(graph, [edge])
        p, q = shape
        delta = bicliques_containing_edge(dyn._rows_u, dyn._rows_v,
                                          u, v, p, q)
        before = dyn.recount(p, q)
        sign = -1 if dyn.has_edge(u, v) else 1
        dyn.toggle(u, v)
        assert dyn.recount(p, q) == before + sign * delta
