"""Property-based tests for scheduling and work stealing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance.makespan import perfect_makespan
from repro.balance.preruntime import (
    contiguous_split,
    interleaved_split,
    split_loads,
    weighted_greedy_split,
)
from repro.gpu.device import small_test_device
from repro.gpu.workqueue import simulate_blocks

costs_strategy = st.lists(st.floats(min_value=1.0, max_value=1e5,
                                    allow_nan=False, allow_infinity=False),
                          min_size=1, max_size=80)


class TestSplitsAreBijections:
    @given(st.integers(0, 100), st.integers(1, 16))
    def test_contiguous(self, n, blocks):
        out = contiguous_split(n, blocks)
        assert sorted(i for blk in out for i in blk) == list(range(n))

    @given(st.integers(0, 100), st.integers(1, 16))
    def test_interleaved(self, n, blocks):
        out = interleaved_split(n, blocks)
        assert sorted(i for blk in out for i in blk) == list(range(n))

    @given(costs_strategy, st.integers(1, 16))
    def test_weighted(self, costs, blocks):
        w = np.asarray(costs)
        out = weighted_greedy_split(w, blocks)
        assert sorted(i for blk in out for i in blk) == list(range(len(w)))


class TestMakespanBounds:
    @settings(max_examples=50)
    @given(costs_strategy, st.integers(1, 8))
    def test_greedy_at_least_perfect(self, costs, blocks):
        w = np.asarray(costs)
        loads = split_loads(weighted_greedy_split(w, blocks), w)
        assert loads.max() >= perfect_makespan(w, blocks) - 1e-6

    @settings(max_examples=50)
    @given(costs_strategy, st.integers(1, 8))
    def test_greedy_within_graham_bound_of_contiguous(self, costs, blocks):
        # LPT greedy is not pointwise <= an arbitrary split (hypothesis
        # finds counterexamples like [29635, 32122, 2, 29634, 32121] on 2
        # blocks), but Graham's bound guarantees makespan <=
        # (4/3 - 1/3m) * OPT, and any split's makespan >= OPT
        w = np.asarray(costs)
        greedy = split_loads(weighted_greedy_split(w, blocks), w).max()
        naive = split_loads(contiguous_split(len(w), blocks), w).max()
        assert greedy <= (4 / 3 - 1 / (3 * blocks)) * naive + 1e-6


class TestStealingProperties:
    @settings(max_examples=40, deadline=None)
    @given(costs_strategy, st.integers(1, 6))
    def test_all_work_done(self, costs, blocks):
        """Busy time covers at least the total work regardless of layout."""
        spec = small_test_device(blocks=blocks)
        assignment = contiguous_split(len(costs), blocks)
        lists = [[costs[i] for i in blk] for blk in assignment]
        res = simulate_blocks(lists, spec, stealing=True)
        assert float(res.block_busy_cycles.sum()) >= sum(costs) - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(costs_strategy, st.integers(2, 6))
    def test_stealing_not_catastrophically_worse(self, costs, blocks):
        """Stealing's overhead stays bounded relative to no stealing."""
        spec = small_test_device(blocks=blocks)
        assignment = contiguous_split(len(costs), blocks)
        lists = [[costs[i] for i in blk] for blk in assignment]
        steal = simulate_blocks(lists, spec, stealing=True)
        plain = simulate_blocks(lists, spec, stealing=False)
        overhead = (2 * spec.atomic_latency_cycles
                    + 2.0 * blocks) * max(len(costs), 1)
        assert steal.makespan_cycles <= plain.makespan_cycles + overhead
