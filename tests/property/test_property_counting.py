"""Property-based correctness of the counters against brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bcl import bcl_count
from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.core.gbl import gbl_count
from repro.core.verify import brute_force_count
from repro.graph.builders import from_edges


@st.composite
def small_graphs(draw):
    num_u = draw(st.integers(2, 10))
    num_v = draw(st.integers(2, 10))
    n_edges = draw(st.integers(0, min(num_u * num_v, 35)))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, num_u - 1), st.integers(0, num_v - 1)),
        min_size=n_edges, max_size=n_edges))
    return from_edges(num_u, num_v, pairs)


@st.composite
def queries(draw):
    return BicliqueQuery(draw(st.integers(1, 4)), draw(st.integers(1, 4)))


class TestCountingProperties:
    @settings(max_examples=60, deadline=None)
    @given(small_graphs(), queries())
    def test_gbc_matches_brute_force(self, g, q):
        assert gbc_count(g, q).count == brute_force_count(g, q)

    @settings(max_examples=40, deadline=None)
    @given(small_graphs(), queries())
    def test_bcl_matches_brute_force(self, g, q):
        assert bcl_count(g, q).count == brute_force_count(g, q)

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(), queries())
    def test_gbl_matches_brute_force(self, g, q):
        assert gbl_count(g, q).count == brute_force_count(g, q)

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(), queries())
    def test_symmetry_under_layer_swap(self, g, q):
        """count(G, p, q) == count(G^T, q, p)."""
        assert brute_force_count(g, q) == \
            gbc_count(g.swapped(), q.swapped()).count

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(), queries())
    def test_monotone_in_p(self, g, q):
        """Adding a required vertex can never increase the count when the
        candidate pool is a subset: count(p+1, q) <= count(p, q) * |U|."""
        base = brute_force_count(g, q)
        bigger = brute_force_count(g, BicliqueQuery(q=q.q, p=q.p + 1))
        assert bigger <= base * max(g.num_u, 1)

    @settings(max_examples=30, deadline=None)
    @given(small_graphs())
    def test_11_count_is_edge_count(self, g):
        assert gbc_count(g, BicliqueQuery(1, 1)).count == g.num_edges

    @settings(max_examples=25, deadline=None)
    @given(small_graphs(), queries())
    def test_edge_addition_monotonicity(self, g, q):
        """Adding an edge never decreases the biclique count."""
        before = brute_force_count(g, q)
        # add the first missing edge, if any
        added = None
        for u in range(g.num_u):
            row = set(g.neighbors("U", u).tolist())
            for v in range(g.num_v):
                if v not in row:
                    added = (u, v)
                    break
            if added:
                break
        if added is None:
            return
        g2 = from_edges(g.num_u, g.num_v, list(g.edges()) + [added])
        assert brute_force_count(g2, q) >= before
