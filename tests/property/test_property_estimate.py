"""Statistical properties of the root-sampling estimator.

The ``"approx"`` tier's contract is statistical, so its tests are too:
over many *fixed* seeds the Horvitz-Thompson estimate must be unbiased,
its reported ``std_error`` must shrink with the sample budget, its 95%
interval must actually cover the exact count at (at least) the nominal
rate, and — because the estimate depends only on the seed and the
per-root integer counts — one seed must give a bit-identical estimate
on every backend.

Every seed here is pinned, so the suite is deterministic: the
statistical assertions were calibrated once and cannot flake.  The
seed *budget* scales with ``REPRO_HYPOTHESIS_EXAMPLES`` (default 20,
CI's ``approx-accuracy`` job runs 200) like the incremental fuzz
suite, so CI hammers the same properties harder without slowing
tier-1.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.counts import BicliqueQuery
from repro.core.estimate import Z95, estimate_count
from repro.core.gbc import gbc_count
from repro.graph.generators import power_law_bipartite, random_bipartite

EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "20"))

#: seeds per statistical assertion — scaled, but floored high enough
#: that the sample means below are stable
SEEDS = range(max(2 * EXAMPLES, 40))

BACKENDS = ["sim", "fast", "native"]

# shapes chosen so the promising-root population comfortably exceeds
# the sample budgets the tests draw (no silent exact-recovery path)
CASES = {
    "uniform": (lambda: random_bipartite(60, 50, 500, seed=7),
                BicliqueQuery(3, 3)),
    "power-law": (lambda: power_law_bipartite(60, 50, 320, seed=11),
                  BicliqueQuery(3, 2)),
}


@pytest.fixture(scope="module", params=sorted(CASES))
def case(request):
    build, query = CASES[request.param]
    graph = build()
    return graph, query, gbc_count(graph, query).count


class TestUnbiasedness:
    def test_mean_estimate_matches_exact(self, case):
        """The seed-averaged estimate sits within its own standard
        error of the exact count (a two-sided z-test at ~4 sigma, so
        the pinned seeds pass with huge margin iff the estimator is
        actually unbiased)."""
        graph, query, exact = case
        estimates = np.asarray([
            estimate_count(graph, query, samples=16, seed=s).estimate
            for s in SEEDS])
        sem = estimates.std(ddof=1) / np.sqrt(len(estimates))
        assert abs(estimates.mean() - exact) <= 4.0 * sem

    def test_estimates_vary_across_seeds(self, case):
        """Sanity: the budget really is below the population, so the
        unbiasedness test above is averaging genuine samples, not
        exact-recovery constants."""
        graph, query, _ = case
        first = estimate_count(graph, query, samples=16, seed=0)
        assert first.samples < first.population
        estimates = {estimate_count(graph, query, samples=16, seed=s).estimate
                     for s in range(8)}
        assert len(estimates) > 1


class TestExactRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_samples_at_population_is_exact(self, case, backend):
        """``samples >= population`` enumerates every root once: the
        estimate IS the exact count, with zero reported variance."""
        graph, query, exact = case
        probe = estimate_count(graph, query, samples=1, seed=0)
        est = estimate_count(graph, query, samples=probe.population,
                             seed=123, backend=backend)
        assert est.estimate == float(exact)
        assert est.std_error == 0.0
        assert est.ci95 == 0.0
        assert est.samples == est.population

    def test_overshooting_the_population_is_still_exact(self, case):
        graph, query, exact = case
        est = estimate_count(graph, query, samples=10**6, seed=0)
        assert est.estimate == float(exact)
        assert est.std_error == 0.0


class TestErrorShrinkage:
    def test_mean_std_error_shrinks_with_budget(self, case):
        """Averaged over seeds, the reported standard error decreases
        monotonically in the sample budget (per-seed it is itself an
        estimate and may wiggle; the mean may not)."""
        graph, query, _ = case
        budgets = (5, 15, 40)
        means = []
        for m in budgets:
            errs = [estimate_count(graph, query, samples=m, seed=s).std_error
                    for s in SEEDS]
            means.append(float(np.mean(errs)))
        assert means[0] > means[1] > means[2]

    def test_reported_error_tracks_true_spread(self, case):
        """The mean reported std_error is a usable stand-in for the
        true sampling spread: within a factor of two of the empirical
        standard deviation of the estimates themselves."""
        graph, query, _ = case
        results = [estimate_count(graph, query, samples=16, seed=s)
                   for s in SEEDS]
        true_sd = float(np.std([r.estimate for r in results], ddof=1))
        mean_reported = float(np.mean([r.std_error for r in results]))
        assert 0.5 * true_sd <= mean_reported <= 2.0 * true_sd


class TestBackendIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 7, 1234])
    def test_estimate_bit_identical_across_backends(self, case, seed):
        """The estimate depends on the seed and the per-root integer
        counts only — never on engine timing — so every backend must
        reproduce it to the last bit, std_error included."""
        graph, query, _ = case
        results = [estimate_count(graph, query, samples=12, seed=seed,
                                  backend=b) for b in BACKENDS]
        estimates = {r.estimate for r in results}
        errors = {r.std_error for r in results}
        assert len(estimates) == 1, f"estimates diverge: {estimates}"
        assert len(errors) == 1, f"std_errors diverge: {errors}"

    def test_same_seed_same_result(self, case):
        graph, query, _ = case
        a = estimate_count(graph, query, samples=12, seed=42)
        b = estimate_count(graph, query, samples=12, seed=42)
        assert (a.estimate, a.std_error) == (b.estimate, b.std_error)


class TestCoverage:
    def test_ci95_covers_at_nominal_rate(self, case):
        """Empirical coverage of the reported 95% interval over the
        pinned seeds is at least the nominal rate minus a small-sample
        allowance (the normal approximation on a handful of draws is
        slightly anti-conservative, so the floor is 0.85 rather than
        0.95; in practice the importance weighting keeps measured
        coverage well above 0.9 — see docs/APPROX.md)."""
        graph, query, exact = case
        hits = 0
        results = [estimate_count(graph, query, samples=24, seed=s)
                   for s in SEEDS]
        for r in results:
            low, high = r.ci_bounds(Z95)
            hits += int(low <= exact <= high)
        coverage = hits / len(results)
        assert coverage >= 0.85, f"CI95 coverage {coverage:.2f} < 0.85"
