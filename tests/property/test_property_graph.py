"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.builders import from_edges
from repro.graph.io import dumps, loads
from repro.graph.twohop import n2k, two_hop_multiset


@st.composite
def graphs(draw):
    num_u = draw(st.integers(1, 12))
    num_v = draw(st.integers(1, 12))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, num_u - 1), st.integers(0, num_v - 1)),
        max_size=50))
    return from_edges(num_u, num_v, pairs)


class TestGraphProperties:
    @settings(max_examples=80)
    @given(graphs())
    def test_validate_never_fails_on_builder_output(self, g):
        g.validate()

    @settings(max_examples=80)
    @given(graphs())
    def test_dual_csr_consistent(self, g):
        edges_u = {(u, int(v)) for u in range(g.num_u)
                   for v in g.neighbors(LAYER_U, u)}
        edges_v = {(int(u), v) for v in range(g.num_v)
                   for u in g.neighbors(LAYER_V, v)}
        assert edges_u == edges_v

    @settings(max_examples=60)
    @given(graphs())
    def test_io_roundtrip(self, g):
        back = loads(dumps(g))
        assert back.num_u == g.num_u and back.num_v == g.num_v
        assert np.array_equal(back.u_neighbors, g.u_neighbors)

    @settings(max_examples=60)
    @given(graphs())
    def test_konect_roundtrip(self, g):
        back = loads(dumps(g, konect=True))
        assert np.array_equal(back.u_offsets, g.u_offsets)

    @settings(max_examples=50)
    @given(graphs())
    def test_swapped_involution(self, g):
        gg = g.swapped().swapped()
        assert np.array_equal(gg.u_neighbors, g.u_neighbors)
        assert np.array_equal(gg.v_offsets, g.v_offsets)

    @settings(max_examples=40)
    @given(graphs(), st.integers(1, 4))
    def test_two_hop_symmetric(self, g, k):
        for u in range(g.num_u):
            for w in n2k(g, LAYER_U, u, k):
                assert u in n2k(g, LAYER_U, int(w), k).tolist()

    @settings(max_examples=40)
    @given(graphs())
    def test_two_hop_counts_bounded_by_degree(self, g):
        for u in range(g.num_u):
            _, counts = two_hop_multiset(g, LAYER_U, u)
            if len(counts):
                assert counts.max() <= g.degree(LAYER_U, u)

    @settings(max_examples=40)
    @given(graphs(), st.data())
    def test_relabel_preserves_degree_multiset(self, g, data):
        pu = np.asarray(data.draw(st.permutations(range(g.num_u))),
                        dtype=np.int64)
        pv = np.asarray(data.draw(st.permutations(range(g.num_v))),
                        dtype=np.int64)
        gg = g.relabeled(pu, pv)
        assert sorted(gg.degrees(LAYER_U).tolist()) == \
            sorted(g.degrees(LAYER_U).tolist())
        assert sorted(gg.degrees(LAYER_V).tolist()) == \
            sorted(g.degrees(LAYER_V).tolist())
