"""Property-based tests for reorderings and partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counts import BicliqueQuery
from repro.core.verify import brute_force_count
from repro.graph.bipartite import LAYER_U
from repro.graph.builders import from_edges
from repro.graph.twohop import build_two_hop_index
from repro.partition.bcpar import bcpar_partition
from repro.reorder.base import apply_reordering, validate_permutation
from repro.reorder.border import border_reordering
from repro.reorder.degree import degree_permutation
from repro.reorder.gorder import gorder_permutation


@st.composite
def graphs(draw):
    num_u = draw(st.integers(2, 14))
    num_v = draw(st.integers(2, 14))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, num_u - 1), st.integers(0, num_v - 1)),
        max_size=60))
    return from_edges(num_u, num_v, pairs)


class TestReorderProperties:
    @settings(max_examples=40, deadline=None)
    @given(graphs())
    def test_border_produces_permutations(self, g):
        reordering, _ = border_reordering(g, iterations=4)
        validate_permutation(reordering.perm_u, g.num_u)
        validate_permutation(reordering.perm_v, g.num_v)

    @settings(max_examples=40, deadline=None)
    @given(graphs())
    def test_gorder_produces_permutations(self, g):
        validate_permutation(gorder_permutation(g, LAYER_U), g.num_u)

    @settings(max_examples=40)
    @given(graphs())
    def test_degree_produces_permutations(self, g):
        validate_permutation(degree_permutation(g, LAYER_U), g.num_u)

    @settings(max_examples=20, deadline=None)
    @given(graphs())
    def test_border_count_invariant(self, g):
        """The load-bearing property: reordering never changes counts."""
        reordering, _ = border_reordering(g, iterations=4)
        gg = apply_reordering(g, reordering)
        q = BicliqueQuery(2, 2)
        assert brute_force_count(gg, q) == brute_force_count(g, q)

    @settings(max_examples=30, deadline=None)
    @given(graphs())
    def test_border_never_increases_one_blocks(self, g):
        _, stats = border_reordering(g, iterations=8,
                                     degree_preorder=False)
        for layer_stats in stats.values():
            assert layer_stats.one_blocks_after <= \
                layer_stats.one_blocks_before


class TestBCParProperties:
    @settings(max_examples=30, deadline=None)
    @given(graphs(), st.integers(50, 2000))
    def test_partition_always_valid(self, g, budget):
        index = build_two_hop_index(g, LAYER_U, 2)
        pset = bcpar_partition(g, index, budget_words=budget)
        pset.validate(index)

    @settings(max_examples=20, deadline=None)
    @given(graphs())
    def test_partitioned_count_exact(self, g):
        from repro.partition.runner import run_bcpar
        q = BicliqueQuery(2, 2)
        report, _ = run_bcpar(g, q, budget_words=300)
        assert report.total_count == brute_force_count(g, q)
        assert report.on_demand_transfer_words == 0
