"""Property-based tests for the truncated-bitmap codec and HTB."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import rtx_3090
from repro.gpu.metrics import KernelMetrics
from repro.htb.bitmap import and_aligned, cardinality, decode, encode
from repro.htb.htb import BitmapSet, intersect_device

vertex_sets = st.lists(st.integers(min_value=0, max_value=5000),
                       max_size=120).map(
    lambda xs: np.unique(np.asarray(xs, dtype=np.int64)))


class TestCodecProperties:
    @given(vertex_sets)
    def test_roundtrip(self, vs):
        assert np.array_equal(decode(*encode(vs)), vs)

    @given(vertex_sets)
    def test_cardinality_matches(self, vs):
        _, val = encode(vs)
        assert cardinality(val) == len(vs)

    @given(vertex_sets)
    def test_idx_sorted_unique(self, vs):
        idx, val = encode(vs)
        assert np.all(np.diff(idx) > 0)
        assert np.all(np.asarray(val, dtype=np.uint64) != 0)

    @given(vertex_sets, vertex_sets)
    def test_and_is_intersection(self, a, b):
        out = decode(*and_aligned(*encode(a), *encode(b)))
        assert np.array_equal(out, np.intersect1d(a, b))

    @given(vertex_sets, vertex_sets)
    def test_and_subset_bound(self, a, b):
        idx, val = and_aligned(*encode(a), *encode(b))
        assert cardinality(val) <= min(len(a), len(b))

    @given(vertex_sets)
    def test_self_intersection_is_identity(self, a):
        idx, val = and_aligned(*encode(a), *encode(a))
        assert np.array_equal(decode(idx, val), a)


class TestDeviceIntersection:
    @settings(max_examples=40)
    @given(vertex_sets, vertex_sets)
    def test_device_matches_exact(self, a, b):
        m = KernelMetrics()
        out = intersect_device(BitmapSet(*encode(a)), BitmapSet(*encode(b)),
                               rtx_3090(), m)
        assert np.array_equal(out.vertices(), np.intersect1d(a, b))

    @settings(max_examples=40)
    @given(vertex_sets, vertex_sets)
    def test_transactions_nonnegative_and_bounded(self, a, b):
        """Phase-1 transactions can't exceed one per probe step."""
        m = KernelMetrics()
        intersect_device(BitmapSet(*encode(a)), BitmapSet(*encode(b)),
                         rtx_3090(), m)
        assert m.global_transactions <= m.comparisons + 2
