"""Tests for the four Table IV strategies."""

import numpy as np
import pytest

from repro.balance.strategies import STRATEGIES, evaluate_strategy, get_strategy
from repro.gpu.device import small_test_device


class TestRegistry:
    def test_all_four_present(self):
        assert set(STRATEGIES) == {"none", "pre", "runtime", "joint"}

    def test_stealing_flags(self):
        assert not get_strategy("none").stealing
        assert not get_strategy("pre").stealing
        assert get_strategy("runtime").stealing
        assert get_strategy("joint").stealing

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_strategy("magic")


class TestEvaluate:
    def _workload(self, n=120, seed=0):
        rng = np.random.default_rng(seed)
        costs = rng.pareto(1.2, n) * 1e4 + 100
        # weights are noisy estimates of the true costs
        weights = costs * rng.uniform(0.6, 1.4, n)
        return costs, weights

    def test_every_strategy_improves_on_none(self):
        """Table IV row ordering: all three beat 'No Balance' on a skewed
        workload."""
        costs, weights = self._workload()
        spec = small_test_device(blocks=8)
        makespans = {s: evaluate_strategy(s, costs, weights, 8, spec)
                     .makespan_cycles for s in STRATEGIES}
        assert makespans["pre"] < makespans["none"]
        assert makespans["runtime"] < makespans["none"]
        assert makespans["joint"] < makespans["none"]

    def test_joint_at_least_as_good_as_pre_with_bad_estimates(self):
        """When weights mispredict costs, stealing on top of the static
        split must not hurt much and typically helps."""
        rng = np.random.default_rng(5)
        costs = rng.pareto(1.05, 200) * 1e5 + 10
        weights = np.ones_like(costs)  # useless estimates
        spec = small_test_device(blocks=8)
        pre = evaluate_strategy("pre", costs, weights, 8, spec)
        joint = evaluate_strategy("joint", costs, weights, 8, spec)
        assert joint.makespan_cycles <= pre.makespan_cycles

    def test_imbalance_diagnostic(self):
        costs, weights = self._workload(seed=3)
        spec = small_test_device(blocks=4)
        none = evaluate_strategy("none", costs, weights, 4, spec)
        joint = evaluate_strategy("joint", costs, weights, 4, spec)
        assert joint.imbalance <= none.imbalance
