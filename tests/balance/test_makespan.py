"""Tests for makespan diagnostics."""

import numpy as np
import pytest

from repro.balance.makespan import imbalance_factor, lpt_upper_bound, perfect_makespan
from repro.balance.preruntime import split_loads, weighted_greedy_split


class TestPerfectMakespan:
    def test_even_split(self):
        assert perfect_makespan(np.array([1.0, 1.0, 1.0, 1.0]), 2) == 2.0

    def test_dominated_by_largest(self):
        assert perfect_makespan(np.array([10.0, 1.0]), 4) == 10.0

    def test_empty(self):
        assert perfect_makespan(np.array([]), 3) == 0.0


class TestImbalance:
    def test_even(self):
        assert imbalance_factor(np.array([5.0, 5.0])) == 1.0

    def test_skewed(self):
        assert imbalance_factor(np.array([9.0, 1.0])) == pytest.approx(1.8)

    def test_empty(self):
        assert imbalance_factor(np.array([])) == 1.0


class TestLPTBound:
    def test_greedy_within_bound(self):
        rng = np.random.default_rng(2)
        for blocks in (2, 4, 8):
            w = rng.pareto(1.5, 64) + 0.5
            loads = split_loads(weighted_greedy_split(w, blocks), w)
            assert loads.max() <= lpt_upper_bound(w, blocks) + 1e-9
