"""Tests for static placement policies."""

import numpy as np

from repro.balance.preruntime import (
    contiguous_split,
    interleaved_split,
    split_loads,
    weighted_greedy_split,
)


def _covers_all(blocks, n):
    got = sorted(i for blk in blocks for i in blk)
    assert got == list(range(n))


class TestContiguous:
    def test_partition_of_tasks(self):
        blocks = contiguous_split(10, 3)
        _covers_all(blocks, 10)
        assert blocks[0] == [0, 1, 2]

    def test_more_blocks_than_tasks(self):
        blocks = contiguous_split(2, 5)
        _covers_all(blocks, 2)
        assert sum(1 for b in blocks if b) == 2

    def test_empty(self):
        assert contiguous_split(0, 4) == [[], [], [], []]


class TestInterleaved:
    def test_striding(self):
        blocks = interleaved_split(7, 3)
        assert blocks[0] == [0, 3, 6]
        assert blocks[1] == [1, 4]
        _covers_all(blocks, 7)


class TestWeightedGreedy:
    def test_partition_of_tasks(self):
        w = np.array([5.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        blocks = weighted_greedy_split(w, 2)
        _covers_all(blocks, 6)

    def test_balances_skewed_weights(self):
        w = np.array([100.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        blocks = weighted_greedy_split(w, 2)
        loads = split_loads(blocks, w)
        # heavy task alone; the small ones on the other block
        assert loads.max() == 100.0
        assert loads.min() == 5.0

    def test_beats_contiguous_on_sorted_weights(self):
        rng = np.random.default_rng(0)
        w = np.sort(rng.pareto(1.3, 100) + 0.1)[::-1]
        greedy = split_loads(weighted_greedy_split(w, 8), w).max()
        naive = split_loads(contiguous_split(100, 8), w).max()
        assert greedy < naive

    def test_deterministic(self):
        w = np.array([3.0, 3.0, 2.0, 2.0])
        assert weighted_greedy_split(w, 2) == weighted_greedy_split(w, 2)
