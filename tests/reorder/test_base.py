"""Tests for reordering plumbing."""

import numpy as np
import pytest

from repro.errors import ReorderError
from repro.graph.bipartite import LAYER_U
from repro.reorder.base import (
    Reordering,
    apply_reordering,
    compose_permutations,
    identity_permutation,
    validate_permutation,
)


class TestValidatePermutation:
    def test_accepts_identity(self):
        validate_permutation(identity_permutation(5), 5)

    def test_rejects_wrong_length(self):
        with pytest.raises(ReorderError):
            validate_permutation(np.array([0, 1]), 3)

    def test_rejects_duplicates(self):
        with pytest.raises(ReorderError):
            validate_permutation(np.array([0, 0, 2]), 3)


class TestApplyReordering:
    def test_identity_is_noop(self, paper_graph):
        r = Reordering("id", identity_permutation(5), identity_permutation(5))
        g = apply_reordering(paper_graph, r)
        assert np.array_equal(g.u_neighbors, paper_graph.u_neighbors)

    def test_name_records_method(self, paper_graph):
        r = Reordering("mymethod", identity_permutation(5),
                       identity_permutation(5))
        assert "mymethod" in apply_reordering(paper_graph, r).name

    def test_degree_sequence_invariant(self, medium_power_law):
        rng = np.random.default_rng(1)
        r = Reordering("rand",
                       rng.permutation(medium_power_law.num_u),
                       rng.permutation(medium_power_law.num_v))
        g = apply_reordering(medium_power_law, r)
        assert sorted(g.degrees(LAYER_U).tolist()) == \
            sorted(medium_power_law.degrees(LAYER_U).tolist())


class TestCompose:
    def test_compose_order(self):
        first = np.array([1, 2, 0])   # 0->1, 1->2, 2->0
        second = np.array([2, 0, 1])  # 0->2, 1->0, 2->1
        composed = compose_permutations(first, second)
        # vertex 0: first sends to 1, second sends 1 to 0
        assert composed.tolist() == [0, 1, 2]

    def test_size_mismatch(self):
        with pytest.raises(ReorderError):
            compose_permutations(np.array([0, 1]), np.array([0]))
