"""Tests for the block census (1-block accounting)."""

import numpy as np

from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.builders import from_adjacency
from repro.reorder.blocks import block_census, build_block_counts, htb_word_total


class TestBuildBlockCounts:
    def test_shape(self, medium_power_law):
        counts = build_block_counts(medium_power_law, LAYER_U)
        n_blocks = -(-medium_power_law.num_u // 32)
        assert counts.shape == (medium_power_law.num_v, n_blocks)

    def test_row_sums_are_degrees(self, medium_power_law):
        counts = build_block_counts(medium_power_law, LAYER_U)
        assert np.array_equal(counts.sum(axis=1),
                              medium_power_law.degrees(LAYER_V))

    def test_custom_positions(self):
        # two V rows over 64 U columns; moving u33 next to u0 merges blocks
        g = from_adjacency({0: [0], 33: [0]}, num_u=64, num_v=1)
        default = build_block_counts(g, LAYER_U)
        assert (default == 1).sum() == 2  # two 1-blocks
        positions = np.arange(64, dtype=np.int64)
        positions[33], positions[1] = 1, 33
        moved = build_block_counts(g, LAYER_U, positions)
        assert (moved == 2).sum() == 1  # merged into one 2-block


class TestBlockCensus:
    def test_histogram(self):
        g = from_adjacency({0: [0], 40: [0], 64: [0], 65: [0]},
                           num_u=96, num_v=1)
        census = block_census(g, LAYER_U)
        # columns 0 and 40 are alone; 64,65 share a block
        assert census.histogram == {1: 2, 2: 1}
        assert census.one_blocks == 2
        assert census.nonzero_blocks == 3

    def test_mean_fill(self):
        g = from_adjacency({0: [0], 1: [0]}, num_u=2, num_v=1)
        census = block_census(g, LAYER_U)
        assert census.mean_fill == 2.0

    def test_word_total_matches_htb(self, medium_power_law):
        """The block census must equal the words an HTB actually builds."""
        from repro.htb.htb import htb_from_graph
        total = htb_word_total(medium_power_law, LAYER_V)
        htb = htb_from_graph(medium_power_law, LAYER_U)  # rows = U adjacency
        assert total == htb.total_words
