"""Tests for the Gorder-style comparator."""


from repro.graph.bipartite import LAYER_U
from repro.graph.generators import power_law_bipartite
from repro.reorder.base import apply_reordering, validate_permutation
from repro.reorder.gorder import gorder_permutation, gorder_reordering


class TestGorderPermutation:
    def test_is_permutation(self, medium_power_law):
        perm = gorder_permutation(medium_power_law, LAYER_U)
        validate_permutation(perm, medium_power_law.num_u)

    def test_empty_layer(self):
        from repro.graph.builders import empty_graph
        g = empty_graph(0, 3)
        assert len(gorder_permutation(g, LAYER_U)) == 0

    def test_starts_from_max_degree(self, medium_power_law):
        perm = gorder_permutation(medium_power_law, LAYER_U)
        hub = int(medium_power_law.degrees(LAYER_U).argmax())
        assert perm[hub] == 0

    def test_window_sizes(self, medium_power_law):
        for w in (1, 3, 8):
            perm = gorder_permutation(medium_power_law, LAYER_U, window=w)
            validate_permutation(perm, medium_power_law.num_u)

    def test_groups_shared_neighbour_vertices(self):
        """Vertices with identical neighbourhoods should land adjacently."""
        from repro.graph.builders import from_adjacency
        g = from_adjacency({0: [0, 1], 1: [5, 6], 2: [0, 1], 3: [5, 6]},
                           num_u=4, num_v=8)
        perm = gorder_permutation(g, LAYER_U, window=2)
        # 0 and 2 are twins; 1 and 3 are twins — each pair adjacent
        assert abs(int(perm[0]) - int(perm[2])) == 1
        assert abs(int(perm[1]) - int(perm[3])) == 1


class TestGorderReordering:
    def test_isomorphic(self, medium_power_law):
        r = gorder_reordering(medium_power_law)
        g = apply_reordering(medium_power_law, r)
        g.validate()

    def test_count_invariance(self, small_random):
        from repro.core.counts import BicliqueQuery
        from repro.core.verify import brute_force_count
        g = apply_reordering(small_random, gorder_reordering(small_random))
        q = BicliqueQuery(2, 3)
        assert brute_force_count(g, q) == brute_force_count(small_random, q)

    def test_improves_locality_on_skewed_data(self):
        """Gorder should help HTB vs no reorder (the Table III ordering
        No-Reorder > Gorder)."""
        from repro.htb.htb import htb_from_graph
        g = power_law_bipartite(300, 200, 1500, seed=11)
        reordered = apply_reordering(g, gorder_reordering(g))
        before = htb_from_graph(g, LAYER_U).total_words
        after = htb_from_graph(reordered, LAYER_U).total_words
        assert after <= before * 1.05  # at worst roughly neutral
