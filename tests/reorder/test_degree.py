"""Tests for degree-based reordering."""

import numpy as np

from repro.graph.bipartite import LAYER_U
from repro.reorder.base import validate_permutation
from repro.reorder.degree import degree_permutation, degree_reordering


class TestDegreePermutation:
    def test_is_permutation(self, medium_power_law):
        perm = degree_permutation(medium_power_law, LAYER_U)
        validate_permutation(perm, medium_power_law.num_u)

    def test_descending(self, medium_power_law):
        perm = degree_permutation(medium_power_law, LAYER_U)
        deg = medium_power_law.degrees(LAYER_U)
        new_deg = np.empty_like(deg)
        new_deg[perm] = deg
        assert np.all(np.diff(new_deg) <= 0)

    def test_ascending(self, medium_power_law):
        perm = degree_permutation(medium_power_law, LAYER_U, descending=False)
        deg = medium_power_law.degrees(LAYER_U)
        new_deg = np.empty_like(deg)
        new_deg[perm] = deg
        assert np.all(np.diff(new_deg) >= 0)

    def test_tie_break_by_id(self, k45):
        perm = degree_permutation(k45, LAYER_U)
        assert perm.tolist() == [0, 1, 2, 3]


class TestDegreeReordering:
    def test_both_layers(self, medium_power_law):
        r = degree_reordering(medium_power_law)
        validate_permutation(r.perm_u, medium_power_law.num_u)
        validate_permutation(r.perm_v, medium_power_law.num_v)

    def test_single_layer(self, medium_power_law):
        r = degree_reordering(medium_power_law, layers=(LAYER_U,))
        assert np.array_equal(r.perm_v,
                              np.arange(medium_power_law.num_v))
