"""Tests for Border (Algorithm 2)."""


from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.builders import from_adjacency
from repro.graph.generators import power_law_bipartite
from repro.htb.htb import htb_from_graph
from repro.reorder.base import apply_reordering, validate_permutation
from repro.reorder.blocks import block_census
from repro.reorder.border import border_permutation, border_reordering


class TestBorderPermutation:
    def test_is_permutation(self, medium_power_law):
        perm, _ = border_permutation(medium_power_law, LAYER_U, iterations=8)
        validate_permutation(perm, medium_power_law.num_u)

    def test_tiny_layer_is_noop_after_preorder(self):
        """A layer fitting in one 32-bit word cannot be improved."""
        g = from_adjacency({0: [0], 1: [0, 1]}, num_u=2, num_v=2)
        perm, stats = border_permutation(g, LAYER_U, iterations=4,
                                         degree_preorder=False)
        assert perm.tolist() == [0, 1]
        assert stats.swaps_applied == 0

    def test_reduces_one_blocks(self):
        """On a scattered layout Border must not increase 1-blocks, and on
        power-law data it should strictly reduce them."""
        g = power_law_bipartite(200, 120, 900, seed=8)
        _, stats = border_permutation(g, LAYER_V, iterations=64,
                                      degree_preorder=False)
        assert stats.one_blocks_after <= stats.one_blocks_before
        assert stats.swaps_applied > 0

    def test_profit_accounting_matches_census(self):
        """After running Border, the census under the returned positions
        equals before-minus-profit in 1-block terms."""
        g = power_law_bipartite(150, 90, 700, seed=4)
        perm, stats = border_permutation(g, LAYER_V, iterations=32,
                                         degree_preorder=False)
        census = block_census(g, LAYER_V, positions=perm)
        assert census.one_blocks == stats.one_blocks_after

    def test_word_bits_parameter(self):
        g = power_law_bipartite(64, 64, 256, seed=6)
        perm, _ = border_permutation(g, LAYER_U, iterations=4, word_bits=8)
        validate_permutation(perm, 64)


class TestBorderReordering:
    def test_produces_isomorphic_graph(self, medium_power_law):
        reordering, _ = border_reordering(medium_power_law, iterations=8)
        g = apply_reordering(medium_power_law, reordering)
        g.validate()
        assert g.num_edges == medium_power_law.num_edges

    def test_count_invariance(self, small_random):
        """Reordering must never change biclique counts."""
        from repro.core.counts import BicliqueQuery
        from repro.core.verify import brute_force_count
        reordering, _ = border_reordering(small_random, iterations=8)
        g = apply_reordering(small_random, reordering)
        q = BicliqueQuery(3, 2)
        assert brute_force_count(g, q) == brute_force_count(small_random, q)

    def test_compacts_htb(self):
        """End to end: Border should not grow HTB, and on skewed data it
        should shrink it (Table III's mechanism)."""
        g = power_law_bipartite(300, 200, 1500, seed=10)
        reordering, _ = border_reordering(g, iterations=64)
        reordered = apply_reordering(g, reordering)
        before = htb_from_graph(g, LAYER_U).total_words
        after = htb_from_graph(reordered, LAYER_U).total_words
        assert after <= before

    def test_stats_per_layer(self, medium_power_law):
        _, stats = border_reordering(medium_power_law, iterations=4)
        assert set(stats) == {LAYER_U, LAYER_V}
