"""Tests for graph builders."""

import pytest

from repro.errors import GraphValidationError
from repro.graph.bipartite import LAYER_U
from repro.graph.builders import (
    complete_bipartite,
    empty_graph,
    from_adjacency,
    from_edges,
)


class TestFromEdges:
    def test_simple(self):
        g = from_edges(2, 2, [(0, 0), (0, 1), (1, 0)])
        assert g.num_edges == 3
        assert g.neighbors(LAYER_U, 0).tolist() == [0, 1]

    def test_dedup(self):
        g = from_edges(2, 2, [(0, 0), (0, 0), (1, 1)])
        assert g.num_edges == 2

    def test_dedup_disabled_raises(self):
        with pytest.raises(GraphValidationError):
            from_edges(2, 2, [(0, 0), (0, 0)], dedup=False)

    def test_out_of_range_u(self):
        with pytest.raises(GraphValidationError):
            from_edges(2, 2, [(2, 0)])

    def test_out_of_range_v(self):
        with pytest.raises(GraphValidationError):
            from_edges(2, 2, [(0, 5)])

    def test_empty_edges(self):
        g = from_edges(3, 4, [])
        assert g.num_edges == 0
        assert g.degrees(LAYER_U).tolist() == [0, 0, 0]

    def test_transpose_consistency(self):
        g = from_edges(3, 3, [(0, 2), (1, 0), (2, 1), (0, 0)])
        g.validate()


class TestFromAdjacency:
    def test_dict_input(self):
        g = from_adjacency({0: [1, 0], 2: [2]})
        assert g.num_u == 3
        assert g.neighbors(LAYER_U, 0).tolist() == [0, 1]
        assert g.degree(LAYER_U, 1) == 0

    def test_list_input(self):
        g = from_adjacency([[0, 1], [1]])
        assert g.num_u == 2 and g.num_v == 2

    def test_duplicate_neighbors_collapsed(self):
        g = from_adjacency({0: [1, 1, 1]})
        assert g.degree(LAYER_U, 0) == 1

    def test_explicit_sizes(self):
        g = from_adjacency({0: [0]}, num_u=4, num_v=6)
        assert g.num_u == 4 and g.num_v == 6


class TestCompleteAndEmpty:
    def test_complete_edge_count(self):
        g = complete_bipartite(3, 4)
        assert g.num_edges == 12
        g.validate()

    def test_complete_degrees(self):
        g = complete_bipartite(3, 4)
        assert all(g.degree(LAYER_U, u) == 4 for u in range(3))

    def test_empty(self):
        g = empty_graph(5, 0)
        assert g.num_edges == 0
        g.validate()
