"""Tests for graph statistics (Table II columns)."""

from repro.graph.builders import complete_bipartite, empty_graph
from repro.graph.stats import TABLE2_HEADER, compute_stats, format_table2_row


class TestComputeStats:
    def test_complete(self):
        s = compute_stats(complete_bipartite(4, 5))
        assert s.num_u == 4 and s.num_v == 5 and s.num_edges == 20
        assert s.mean_degree_u == 5.0
        assert s.mean_degree_v == 4.0
        assert s.max_degree_u == 5
        assert s.degree_skew_u == 1.0

    def test_empty(self):
        s = compute_stats(empty_graph(3, 3))
        assert s.num_edges == 0
        assert s.mean_degree_u == 0.0
        assert s.degree_skew_u == 0.0

    def test_skew(self, medium_power_law):
        s = compute_stats(medium_power_law)
        assert s.degree_skew_v > 1.0

    def test_format_row(self):
        s = compute_stats(complete_bipartite(2, 3))
        row = format_table2_row(s)
        assert "2" in row and "3" in row and "6" in row
        # aligns under the header
        assert len(row) == len(TABLE2_HEADER)
