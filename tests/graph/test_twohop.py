"""Tests for 2-hop neighbourhood computation (N2, N2^k, the index)."""

import numpy as np
import pytest

from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.builders import complete_bipartite, from_adjacency
from repro.graph.twohop import (
    build_two_hop_index,
    build_wedge_index,
    n2k,
    two_hop_multiset,
)


class TestTwoHopMultiset:
    def test_paper_example(self, paper_graph):
        """Example 1: u2 & u3 share {v1,v2}; u2 & u4 share {v0,v2,v4};
        u3 & u4 share {v2,v3}."""
        verts, counts = two_hop_multiset(paper_graph, LAYER_U, 2)
        got = dict(zip(verts.tolist(), counts.tolist()))
        assert got[3] == 2
        assert got[4] == 3

    def test_excludes_self(self, paper_graph):
        verts, _ = two_hop_multiset(paper_graph, LAYER_U, 1)
        assert 1 not in verts.tolist()

    def test_isolated_vertex(self):
        g = from_adjacency({0: [0], 2: [1]}, num_u=3, num_v=2)
        verts, counts = two_hop_multiset(g, LAYER_U, 1)
        assert len(verts) == 0

    def test_sorted_output(self, medium_power_law):
        verts, _ = two_hop_multiset(medium_power_law, LAYER_U, 0)
        assert np.all(np.diff(verts) > 0)

    def test_symmetry(self, small_random):
        """u' in N2(u) with count c iff u in N2(u') with count c."""
        for u in range(small_random.num_u):
            verts, counts = two_hop_multiset(small_random, LAYER_U, u)
            for w, c in zip(verts.tolist(), counts.tolist()):
                back_v, back_c = two_hop_multiset(small_random, LAYER_U, w)
                idx = back_v.tolist().index(u)
                assert back_c[idx] == c


class TestN2k:
    def test_threshold(self, paper_graph):
        # u2's 2-hop neighbours with >= 2 shared: u1 (shares v0,v1,v2),
        # u3 (v1,v2), u4 (v0,v2,v4); u0 shares only v4
        assert n2k(paper_graph, LAYER_U, 2, 2).tolist() == [1, 3, 4]
        # with >= 3 shared: u1 and u4 only
        assert n2k(paper_graph, LAYER_U, 2, 3).tolist() == [1, 4]

    def test_k_one_is_all_two_hop(self, small_random):
        for u in range(5):
            verts, _ = two_hop_multiset(small_random, LAYER_U, u)
            assert np.array_equal(n2k(small_random, LAYER_U, u, 1), verts)

    def test_complete_graph(self):
        g = complete_bipartite(4, 3)
        for u in range(4):
            assert n2k(g, LAYER_U, u, 3).tolist() == \
                [x for x in range(4) if x != u]

    def test_v_layer(self, paper_graph):
        # v0 and v1 share u1 and u2
        lst = n2k(paper_graph, LAYER_V, 0, 2)
        assert 1 in lst.tolist()


class TestTwoHopIndex:
    def test_matches_per_vertex(self, medium_power_law):
        index = build_two_hop_index(medium_power_law, LAYER_U, 2)
        for u in range(medium_power_law.num_u):
            assert np.array_equal(index.of(u),
                                  n2k(medium_power_law, LAYER_U, u, 2))

    def test_sizes(self, paper_graph):
        index = build_two_hop_index(paper_graph, LAYER_U, 2)
        assert index.size(2) == 3
        assert index.num_vertices == 5

    def test_rank_filter_halves_entries(self, small_random):
        full = build_two_hop_index(small_random, LAYER_U, 1)
        rank = np.arange(small_random.num_u, dtype=np.int64)
        filt = build_two_hop_index(small_random, LAYER_U, 1,
                                   min_priority_rank=rank)
        # symmetry: exactly half of the symmetric pairs survive
        assert filt.total_entries() * 2 == full.total_entries()

    def test_rank_filter_keeps_only_higher_rank(self, small_random):
        rng = np.random.default_rng(0)
        rank = rng.permutation(small_random.num_u).astype(np.int64)
        filt = build_two_hop_index(small_random, LAYER_U, 2,
                                   min_priority_rank=rank)
        for u in range(small_random.num_u):
            for w in filt.of(u):
                assert rank[int(w)] > rank[u]


class TestWedgeIndex:
    """One wedge pass must reproduce every k-derived structure exactly."""

    def test_rows_match_multiset(self, medium_power_law):
        wedges = build_wedge_index(medium_power_law, LAYER_U)
        for u in range(medium_power_law.num_u):
            verts, counts = two_hop_multiset(medium_power_law, LAYER_U, u)
            lo, hi = wedges.offsets[u], wedges.offsets[u + 1]
            assert np.array_equal(wedges.neighbors[lo:hi], verts)
            assert np.array_equal(wedges.counts[lo:hi], counts)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_n2k_sizes_match(self, small_random, k):
        wedges = build_wedge_index(small_random, LAYER_U)
        sizes = wedges.n2k_sizes(k)
        for u in range(small_random.num_u):
            assert sizes[u] == len(n2k(small_random, LAYER_U, u, k))

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_two_hop_index_matches_classic_builder(self, small_random, k):
        wedges = build_wedge_index(small_random, LAYER_U)
        rng = np.random.default_rng(1)
        for rank in (None,
                     np.arange(small_random.num_u, dtype=np.int64),
                     rng.permutation(small_random.num_u).astype(np.int64)):
            classic = build_two_hop_index(small_random, LAYER_U, k,
                                          min_priority_rank=rank)
            derived = wedges.two_hop_index(k, min_priority_rank=rank)
            assert np.array_equal(derived.offsets, classic.offsets)
            assert np.array_equal(derived.neighbors, classic.neighbors)
            assert derived.k == classic.k and derived.layer == classic.layer

    def test_empty_layer(self):
        g = from_adjacency({0: [0], 2: [1]}, num_u=3, num_v=2)
        wedges = build_wedge_index(g, LAYER_U)
        assert wedges.num_vertices == 3
        assert wedges.n2k_sizes(1).tolist() == [0, 0, 0]
        idx = wedges.two_hop_index(1)
        assert idx.total_entries() == 0
