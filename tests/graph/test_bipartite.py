"""Tests for the core BipartiteGraph structure."""

import numpy as np
import pytest

from repro.errors import GraphValidationError, ReorderError
from repro.graph.bipartite import LAYER_U, LAYER_V, other_layer
from repro.graph.builders import empty_graph, from_edges


class TestOtherLayer:
    def test_swaps(self):
        assert other_layer(LAYER_U) == LAYER_V
        assert other_layer(LAYER_V) == LAYER_U

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            other_layer("X")


class TestBasicAccessors:
    def test_counts(self, paper_graph):
        assert paper_graph.num_u == 5
        assert paper_graph.num_v == 5
        assert paper_graph.num_edges == 16

    def test_layer_size(self, paper_graph):
        assert paper_graph.layer_size(LAYER_U) == 5
        assert paper_graph.layer_size(LAYER_V) == 5

    def test_neighbors_sorted(self, paper_graph):
        for u in range(paper_graph.num_u):
            row = paper_graph.neighbors(LAYER_U, u)
            assert np.all(np.diff(row) > 0)

    def test_neighbors_values(self, paper_graph):
        assert paper_graph.neighbors(LAYER_U, 0).tolist() == [3, 4]
        assert paper_graph.neighbors(LAYER_U, 2).tolist() == [0, 1, 2, 4]

    def test_reverse_neighbors(self, paper_graph):
        # v0 is adjacent to u1, u2, u4
        assert paper_graph.neighbors(LAYER_V, 0).tolist() == [1, 2, 4]

    def test_degree(self, paper_graph):
        assert paper_graph.degree(LAYER_U, 1) == 3
        assert paper_graph.degree(LAYER_V, 2) == 4

    def test_degrees_sum_to_edges(self, paper_graph):
        assert int(paper_graph.degrees(LAYER_U).sum()) == paper_graph.num_edges
        assert int(paper_graph.degrees(LAYER_V).sum()) == paper_graph.num_edges

    def test_has_edge(self, paper_graph):
        assert paper_graph.has_edge(1, 1)
        assert not paper_graph.has_edge(0, 0)

    def test_edges_iteration(self, paper_graph):
        edges = list(paper_graph.edges())
        assert len(edges) == paper_graph.num_edges
        assert (0, 3) in edges and (4, 4) in edges


class TestSwapped:
    def test_roundtrip(self, paper_graph):
        s = paper_graph.swapped()
        assert s.num_u == paper_graph.num_v
        assert s.num_edges == paper_graph.num_edges
        back = s.swapped()
        assert np.array_equal(back.u_neighbors, paper_graph.u_neighbors)

    def test_swapped_adjacency(self, paper_graph):
        s = paper_graph.swapped()
        assert s.neighbors(LAYER_U, 0).tolist() == \
            paper_graph.neighbors(LAYER_V, 0).tolist()


class TestRelabeled:
    def test_identity(self, paper_graph):
        g = paper_graph.relabeled()
        assert np.array_equal(g.u_neighbors, paper_graph.u_neighbors)

    def test_permutation_preserves_edges(self, small_random):
        rng = np.random.default_rng(0)
        pu = rng.permutation(small_random.num_u)
        pv = rng.permutation(small_random.num_v)
        g = small_random.relabeled(pu, pv)
        g.validate()
        assert g.num_edges == small_random.num_edges
        for u in range(small_random.num_u):
            old = set(map(int, small_random.neighbors(LAYER_U, u)))
            new = set(map(int, g.neighbors(LAYER_U, int(pu[u]))))
            assert new == {int(pv[v]) for v in old}

    def test_invalid_permutation_rejected(self, paper_graph):
        with pytest.raises(ReorderError):
            paper_graph.relabeled(np.zeros(5, dtype=np.int64), None)


class TestInducedSubgraph:
    def test_full_subgraph_is_same(self, paper_graph):
        sub = paper_graph.induced_subgraph(np.arange(5), np.arange(5))
        assert sub.num_edges == paper_graph.num_edges

    def test_partial(self, paper_graph):
        sub = paper_graph.induced_subgraph([1, 2], [0, 1, 2])
        sub.validate()
        assert sub.num_u == 2 and sub.num_v == 3
        # u1 -> {v0,v1,v2} all kept; u2 -> {v0,v1,v2} (v4 dropped)
        assert sub.neighbors(LAYER_U, 0).tolist() == [0, 1, 2]
        assert sub.neighbors(LAYER_U, 1).tolist() == [0, 1, 2]

    def test_partial_dropped_edges(self, paper_graph):
        sub = paper_graph.induced_subgraph([0, 3], [3])
        assert sub.neighbors(LAYER_U, 0).tolist() == [0]
        assert sub.neighbors(LAYER_U, 1).tolist() == [0]

    def test_renumbering(self, paper_graph):
        sub = paper_graph.induced_subgraph([4], [3, 4])
        assert sub.neighbors(LAYER_U, 0).tolist() == [0, 1]


class TestValidate:
    def test_good_graph_passes(self, paper_graph, small_random):
        paper_graph.validate()
        small_random.validate()

    def test_empty_graph_passes(self):
        empty_graph(3, 4).validate()

    def test_detects_bad_offsets(self, paper_graph):
        from repro.graph.bipartite import BipartiteGraph
        bad = BipartiteGraph(paper_graph.num_u, paper_graph.num_v,
                             paper_graph.u_offsets[:-1],
                             paper_graph.u_neighbors,
                             paper_graph.v_offsets,
                             paper_graph.v_neighbors)
        with pytest.raises(GraphValidationError):
            bad.validate()

    def test_detects_unsorted_rows(self):
        from repro.graph.bipartite import BipartiteGraph
        g = from_edges(2, 3, [(0, 0), (0, 2), (1, 1)])
        tampered = g.u_neighbors.copy()
        tampered[0], tampered[1] = tampered[1], tampered[0]
        bad = BipartiteGraph(g.num_u, g.num_v, g.u_offsets, tampered,
                             g.v_offsets, g.v_neighbors)
        with pytest.raises(GraphValidationError):
            bad.validate()
