"""Tests for edge-list IO (plain and KONECT dialects)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.bipartite import LAYER_U
from repro.graph.io import dumps, loads, read_edge_list, write_edge_list


class TestLoads:
    def test_plain(self):
        g = loads("0 0\n0 1\n2 1\n")
        assert g.num_u == 3 and g.num_v == 2 and g.num_edges == 3

    def test_comments_and_blanks(self):
        g = loads("# a comment\n\n0 0\n\n# more\n1 1\n")
        assert g.num_edges == 2

    def test_konect_one_based(self):
        text = "% bip\n% 3 2 2\n1 1\n1 2\n2 1\n"
        g = loads(text)
        assert g.num_u == 2 and g.num_v == 2
        assert g.neighbors(LAYER_U, 0).tolist() == [0, 1]

    def test_size_line_plain(self):
        g = loads("# 1 5 7\n0 0\n")
        assert g.num_u == 5 and g.num_v == 7

    def test_bad_line(self):
        with pytest.raises(GraphFormatError):
            loads("0\n")

    def test_non_integer(self):
        with pytest.raises(GraphFormatError):
            loads("a b\n")

    def test_negative_id(self):
        with pytest.raises(GraphFormatError):
            loads("-1 0\n")


class TestRoundTrip:
    @pytest.mark.parametrize("konect", [False, True])
    def test_dumps_loads(self, small_random, konect):
        text = dumps(small_random, konect=konect)
        g = loads(text)
        assert g.num_u == small_random.num_u
        assert g.num_v == small_random.num_v
        assert np.array_equal(g.u_neighbors, small_random.u_neighbors)

    def test_file_roundtrip(self, tmp_path, paper_graph):
        path = tmp_path / "g.txt"
        write_edge_list(paper_graph, path)
        g = read_edge_list(path)
        assert np.array_equal(g.u_offsets, paper_graph.u_offsets)

    def test_file_roundtrip_konect(self, tmp_path, paper_graph):
        path = tmp_path / "g.konect"
        write_edge_list(paper_graph, path, konect=True)
        g = read_edge_list(path)
        assert g.num_edges == paper_graph.num_edges
        assert np.array_equal(g.u_neighbors, paper_graph.u_neighbors)

    def test_empty_graph_roundtrip(self):
        from repro.graph.builders import empty_graph
        g = loads(dumps(empty_graph(2, 3)))
        assert g.num_u == 2 and g.num_v == 3 and g.num_edges == 0
