"""Tests for Definition-2 vertex priority and layer selection."""


from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.builders import complete_bipartite, from_adjacency
from repro.graph.priority import (
    priority_order,
    priority_rank,
    select_layer,
    wedge_mass,
)
from repro.graph.twohop import n2k


class TestPriorityOrder:
    def test_is_permutation(self, medium_power_law):
        order = priority_order(medium_power_law, LAYER_U, 2)
        assert sorted(order.tolist()) == list(range(medium_power_law.num_u))

    def test_fewest_two_hop_first(self, small_random):
        order = priority_order(small_random, LAYER_U, 2)
        sizes = [len(n2k(small_random, LAYER_U, int(u), 2)) for u in order]
        assert sizes == sorted(sizes)

    def test_tie_break_by_id(self):
        g = complete_bipartite(4, 3)  # all |N2^k| equal
        order = priority_order(g, LAYER_U, 2)
        assert order.tolist() == [0, 1, 2, 3]

    def test_rank_inverts_order(self, small_random):
        order = priority_order(small_random, LAYER_U, 2)
        rank = priority_rank(small_random, LAYER_U, 2)
        for pos, vertex in enumerate(order.tolist()):
            assert rank[vertex] == pos


class TestWedgeMass:
    def test_star(self):
        # one V-hub of degree 4: wedge mass through V = 4*3 = 12
        g = from_adjacency({0: [0], 1: [0], 2: [0], 3: [0]})
        assert wedge_mass(g, LAYER_V) == 12
        assert wedge_mass(g, LAYER_U) == 0

    def test_complete(self):
        g = complete_bipartite(3, 3)
        assert wedge_mass(g, LAYER_V) == 3 * 3 * 2


class TestSelectLayer:
    def test_prefers_cheaper_side(self):
        # V has a huge hub -> anchoring on U would be expensive
        g = from_adjacency({u: [0] for u in range(10)})
        assert select_layer(g, 2, 2) == LAYER_V

    def test_symmetric_tie_uses_p_q(self):
        g = complete_bipartite(3, 3)
        assert select_layer(g, 2, 3) == LAYER_U
        assert select_layer(g, 3, 2) == LAYER_V
