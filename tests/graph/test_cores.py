"""Tests for (α, β)-core decomposition and biclique-safe pruning."""

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.verify import brute_force_count
from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.builders import complete_bipartite, from_adjacency
from repro.graph.cores import alpha_beta_core, prune_for_query
from repro.graph.generators import planted_bicliques, power_law_bipartite


class TestAlphaBetaCore:
    def test_degrees_satisfied(self):
        g = power_law_bipartite(100, 80, 500, seed=21)
        core = alpha_beta_core(g, 2, 3)
        sub = core.subgraph
        if sub.num_u:
            assert int(sub.degrees(LAYER_U).min()) >= 2
        if sub.num_v:
            assert int(sub.degrees(LAYER_V).min()) >= 3

    def test_complete_graph_survives(self):
        g = complete_bipartite(4, 5)
        core = alpha_beta_core(g, 5, 4)
        assert core.subgraph.num_edges == 20

    def test_too_strict_empties(self):
        g = complete_bipartite(3, 3)
        core = alpha_beta_core(g, 4, 1)
        assert core.subgraph.num_edges == 0

    def test_cascade(self):
        # a chain: removing the leaf cascades the whole path for alpha=2
        g = from_adjacency({0: [0], 1: [0, 1], 2: [1, 2]},
                           num_u=3, num_v=3)
        core = alpha_beta_core(g, 2, 2)
        assert core.subgraph.num_edges == 0

    def test_maximality(self):
        """Peeling an already-peeled graph is a no-op."""
        g = power_law_bipartite(80, 60, 400, seed=22)
        once = alpha_beta_core(g, 2, 2).subgraph
        twice = alpha_beta_core(once, 2, 2).subgraph
        assert twice.num_edges == once.num_edges

    def test_reduction_metric(self):
        g = power_law_bipartite(100, 80, 450, seed=23)
        core = alpha_beta_core(g, 3, 3)
        assert 0.0 <= core.reduction(g) <= 1.0


class TestPruneForQuery:
    @pytest.mark.parametrize("pq", [(2, 2), (3, 2), (2, 3)])
    def test_count_preserved(self, pq):
        g = planted_bicliques(18, 18, [(4, 4), (3, 3)], noise_edges=40,
                              seed=5)
        q = BicliqueQuery(*pq)
        pruned = prune_for_query(g, q.p, q.q)
        assert brute_force_count(pruned.subgraph, q) == \
            brute_force_count(g, q)

    def test_prunes_the_tail(self):
        g = power_law_bipartite(150, 100, 600, seed=24)
        pruned = prune_for_query(g, 3, 3)
        assert pruned.subgraph.num_edges < g.num_edges

    def test_keep_arrays_map_back(self):
        g = planted_bicliques(10, 10, [(3, 3)], noise_edges=5, seed=6)
        pruned = prune_for_query(g, 3, 3)
        for new_u in range(pruned.subgraph.num_u):
            old_u = int(pruned.keep_u[new_u])
            new_nbrs = pruned.keep_v[pruned.subgraph.neighbors(LAYER_U, new_u)]
            old_nbrs = set(map(int, g.neighbors(LAYER_U, old_u)))
            assert set(map(int, new_nbrs)) <= old_nbrs
